#!/usr/bin/env bash
# Tier-2 verification: release build, lint, full test suite, and golden
# diffs of the repro harness.
#
# The golden checks run small-scale targets with `--jobs 0` (all cores)
# and diff stdout against the checked-in sequential captures, so they
# verify both the harness output and the byte-identity of the parallel
# runner in one step. `--timing` output goes to stderr and
# BENCH_repro.json, which this script preserves. The timed table1 run
# also gates on events dispatched: the optimized event loop may not
# dispatch more events than the seed loop that produced the goldens.
# The HTML report gate renders fig2/fig3 dashboards at two --jobs
# values and requires byte-identity; the audit gate re-derives every
# stage segmentation blind from the throughput curve and fails on any
# disagreement with the run log (pipefail makes `| tail -1` strict).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo clippy"
cargo clippy -q --workspace --all-targets -- -D warnings

echo "== cargo test"
# Single-threaded: the parallel-identity sweeps mutate the process-wide
# sim-threads default, and serial runs keep timing-sensitive output
# stable on small hosts.
RUST_TEST_THREADS=1 cargo test -q --workspace

echo "== repro table1 --small --timing vs golden"
tmp_out=$(mktemp)
tmp_err=$(mktemp)
tmp_json=$(mktemp)
had_json=0
if [ -f BENCH_repro.json ]; then
    cp BENCH_repro.json "$tmp_json"
    had_json=1
fi
restore() {
    rm -f "$tmp_out" "$tmp_err"
    if [ "$had_json" -eq 1 ]; then
        mv "$tmp_json" BENCH_repro.json
    else
        rm -f "$tmp_json" BENCH_repro.json
    fi
}
trap restore EXIT

cargo run --release -q -p bench --bin repro -- table1 --small --timing --jobs 0 >"$tmp_out" 2>"$tmp_err"
cat "$tmp_err" >&2
diff -u scripts/golden_table1_small.txt "$tmp_out"

echo "== stale-timer gate: events dispatched must not grow"
# The seed event loop dispatched 1,167,954 events producing the
# committed small table1 golden. True timer cancellation may only
# REMOVE no-op dispatches (superseded retransmit timers) — if the
# count ever rises above the seed's, something is scheduling events
# the old loop never saw, and the "bit-identical goldens" claim is
# luck rather than equivalence.
seed_events=1167954
events=$(awk '$1 == "table1" { print $4; exit }' "$tmp_err")
if [ -z "$events" ]; then
    echo "stale-timer gate: could not parse events from --timing output" >&2
    exit 1
fi
echo "   table1 --small dispatched $events events (seed: $seed_events)"
if [ "$events" -gt "$seed_events" ]; then
    echo "stale-timer gate: $events events dispatched > seed $seed_events" >&2
    exit 1
fi

echo "== repro fig3 --small vs golden"
cargo run --release -q -p bench --bin repro -- fig3 --small --jobs 0 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_fig3_small.txt "$tmp_out"

echo "== conservative-parallel engine matches the sequential goldens"
# The same goldens, regenerated with each simulation sharded across two
# worker threads. Any divergence from the sequential captures — one
# byte — fails the build: the lookahead-window engine must be
# observationally identical, not statistically close.
cargo run --release -q -p bench --bin repro -- table1 --small --sim-threads 2 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_table1_small.txt "$tmp_out"
cargo run --release -q -p bench --bin repro -- fig3 --small --sim-threads 2 --jobs 0 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_fig3_small.txt "$tmp_out"
echo "   table1 + fig3 identical at --sim-threads 2"

echo "== repro crossover --small vs golden"
cargo run --release -q -p bench --bin repro -- crossover --small --jobs 0 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_crossover_small.txt "$tmp_out"

echo "== repro montecarlo --small vs golden"
# The Monte-Carlo estimator replays generated multi-fault timelines
# (correlated groups, gray faults, overlapping arrivals); the golden
# pins the whole estimate — every replication row, the confidence
# intervals, and the closed-form cross-check verdict — across --jobs
# and --sim-threads.
cargo run --release -q -p bench --bin repro -- montecarlo --small --jobs 0 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_montecarlo_small.txt "$tmp_out"
cargo run --release -q -p bench --bin repro -- montecarlo --small --sim-threads 2 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_montecarlo_small.txt "$tmp_out"
echo "   montecarlo identical at --jobs 0 and --sim-threads 2"

echo "== montecarlo sanity gates"
# The showcase timeline must actually exercise the new fault universe
# (correlated consequents, gray faults overlapping fail-stop ones),
# and the single-fault-class run must agree with the closed-form AA
# within the stated tolerance (the PASS verdict is computed in-binary).
grep -Eq "overlap: [0-9]+ faults total \([1-9][0-9]* correlated\)" "$tmp_out" \
    || { echo "montecarlo gate: no correlated faults in the showcase" >&2; exit 1; }
grep -Eq "gray & fail-stop overlap [1-9][0-9]*\.[0-9] s" "$tmp_out" \
    || { echo "montecarlo gate: no gray/fail-stop overlap in the showcase" >&2; exit 1; }
grep -q "tolerance 0.05: PASS" "$tmp_out" \
    || { echo "montecarlo gate: closed-form cross-check did not PASS" >&2; exit 1; }
echo "   correlated + gray/fail-stop overlap present; cross-check PASS"

echo "== repro membership --small vs golden"
# The ring-vs-gossip detector sweep: rack-crash detection latency,
# availability/throughput, gray-fault false exclusions, and rejoin
# latency for both detectors over N in {4,8,16,32}. The golden pins
# every row and the crossover sentence across --jobs and --sim-threads.
cargo run --release -q -p bench --bin repro -- membership --small --jobs 0 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_membership_small.txt "$tmp_out"
cargo run --release -q -p bench --bin repro -- membership --small --sim-threads 2 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_membership_small.txt "$tmp_out"
echo "   membership identical at --jobs 0 and --sim-threads 2"

echo "== membership sanity gates"
# At the largest swept N the epidemic detector must beat the ring on
# rack-crash detection latency (the whole point of the study), and the
# gray fault must separate the detectors: the ring false-excludes,
# gossip's indirect ping-req path keeps every live node in every view.
ring32=$(awk '$1 == "32" && $2 == "ring"   { print $3 }' "$tmp_out")
gossip32=$(awk '$1 == "32" && $2 == "gossip" { print $3 }' "$tmp_out")
if [ -z "$ring32" ] || [ -z "$gossip32" ]; then
    echo "membership gate: could not parse N=32 detection rows" >&2
    exit 1
fi
awk -v r="$ring32" -v g="$gossip32" 'BEGIN { exit !(g+0 < r+0) }' \
    || { echo "membership gate: gossip ($gossip32 s) not faster than ring ($ring32 s) at N=32" >&2; exit 1; }
grep -Eq "^32  ring +[0-9.+]+ +[0-9.]+ +[0-9]+ +[1-9][0-9]*" "$tmp_out" \
    || { echo "membership gate: ring shows no false exclusions under the gray fault" >&2; exit 1; }
grep -Eq "^32  gossip +[0-9.+]+ +[0-9.]+ +[0-9]+ +0 " "$tmp_out" \
    || { echo "membership gate: gossip false-exclusion count at N=32 is not zero" >&2; exit 1; }
echo "   N=32 detection: ring ${ring32}s vs gossip ${gossip32}s; gray-fault split confirmed"

echo "== repro scale --small vs golden"
# The cache-sync scaling sweep: eager-broadcast vs batched-digest over
# N in {4,16} on a radix-8 fat-tree fabric, cold-start node-crash
# scenario. The golden pins every row across --jobs and --sim-threads.
cargo run --release -q -p bench --bin repro -- scale --small --jobs 0 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_scale_small.txt "$tmp_out"
cargo run --release -q -p bench --bin repro -- scale --small --sim-threads 2 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_scale_small.txt "$tmp_out"
echo "   scale identical at --jobs 0 and --sim-threads 2"

echo "== scale sanity gates"
# The tentpole claim, asserted on the TCP-PRESS-HB ring rows: eager
# broadcast costs (N-1) control frames per caching action, so its
# ctrl/req must grow with N (>= 2.5x from N=4 to N=16; the exact 4x is
# blunted by crash-eviction churn in the small N=4 baseline), while
# digest mode's fanout-bounded flushes must stay flat (<= 2x) and cost
# less than half of eager's total frames at N=16.
e4=$(awk  '$1 == "4"  && $2 == "TCP-PRESS-HB" && $3 == "eager"  && $4 == "ring" { print $10 }' "$tmp_out")
e16=$(awk '$1 == "16" && $2 == "TCP-PRESS-HB" && $3 == "eager"  && $4 == "ring" { print $10 }' "$tmp_out")
d4=$(awk  '$1 == "4"  && $2 == "TCP-PRESS-HB" && $3 == "digest" && $4 == "ring" { print $10 }' "$tmp_out")
d16=$(awk '$1 == "16" && $2 == "TCP-PRESS-HB" && $3 == "digest" && $4 == "ring" { print $10 }' "$tmp_out")
ef16=$(awk '$1 == "16" && $2 == "TCP-PRESS-HB" && $3 == "eager"  && $4 == "ring" { print $9 }' "$tmp_out")
df16=$(awk '$1 == "16" && $2 == "TCP-PRESS-HB" && $3 == "digest" && $4 == "ring" { print $9 }' "$tmp_out")
if [ -z "$e4" ] || [ -z "$e16" ] || [ -z "$d4" ] || [ -z "$d16" ]; then
    echo "scale gate: could not parse ctrl/req columns" >&2
    exit 1
fi
awk -v a="$e16" -v b="$e4" 'BEGIN { exit !(a+0 >= 2.5 * (b+0)) }' \
    || { echo "scale gate: eager ctrl/req not growing with N ($e4 -> $e16)" >&2; exit 1; }
awk -v a="$d16" -v b="$d4" 'BEGIN { exit !(a+0 <= 2.0 * (b+0)) }' \
    || { echo "scale gate: digest ctrl/req not flat in N ($d4 -> $d16)" >&2; exit 1; }
awk -v d="$df16" -v e="$ef16" 'BEGIN { exit !(2 * (d+0) < e+0) }' \
    || { echo "scale gate: digest frames at N=16 ($df16) not under half of eager ($ef16)" >&2; exit 1; }
echo "   eager ctrl/req $e4 -> $e16 (linear), digest $d4 -> $d16 (flat); frames $df16 vs $ef16"

echo "== repro fig3 --attribution vs golden"
# Root-cause attribution: every lost/deadline-missing request is
# classified into exactly one cause bucket. The golden pins the three
# runs' Pareto tables, conservation verdicts, stage splits, and
# critical-path percentiles across --jobs and --sim-threads.
cargo run --release -q -p bench --bin repro -- fig3 --small --attribution --jobs 0 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_fig3_attr_small.txt "$tmp_out"
cargo run --release -q -p bench --bin repro -- fig3 --small --attribution --sim-threads 2 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_fig3_attr_small.txt "$tmp_out"
echo "   fig3 attribution identical at --jobs 0 and --sim-threads 2"

echo "== attribution conservation gates"
# The conservation law, re-derived here from the printed tables rather
# than trusted from the binary's own verdict: per-cause losses must sum
# exactly to the total attributed (integers, exact), the per-block
# verdict must be OK with its full-precision time delta under 1e-9
# (attributed unavailable seconds == (1-AA)*T), and the printed
# unavailable-seconds columns must re-add within printed precision.
check_conservation() {
    # $1 = output file, $2 = expected number of attribution blocks
    if grep -q "conservation: FAIL" "$1"; then
        echo "conservation gate: FAIL verdict present in $1" >&2
        return 1
    fi
    ok=$(grep -c "^conservation: OK" "$1" || true)
    if [ "$ok" -ne "$2" ]; then
        echo "conservation gate: expected $2 OK verdicts, found $ok" >&2
        return 1
    fi
    if [ "$(grep -c "time delta .* < 1e-9" "$1" || true)" -ne "$2" ]; then
        echo "conservation gate: a block's time delta is not under 1e-9" >&2
        return 1
    fi
    awk '
        /^cause +lost/ { inblk = 1; sum = 0; usum = 0; next }
        inblk && /^total attributed/ {
            if (sum != $3) { printf "count mismatch: causes sum %d != total %d\n", sum, $3; bad = 1 }
            d = usum - $4; if (d < 0) d = -d
            if (d > 5e-6) { printf "unavail mismatch: causes sum %.6f != total %.6f\n", usum, $4; bad = 1 }
            utot = $4; next
        }
        inblk && /^in-flight residual/ { ures = $4; next }
        inblk && /^\(1-AA\)\*T/ {
            d = utot + ures - $2; if (d < 0) d = -d
            if (d > 5e-6) { printf "time mismatch: %.6f + %.6f != %.6f\n", utot, ures, $2; bad = 1 }
            inblk = 0; blocks++; next
        }
        inblk { sum += $(NF-3); usum += $NF }
        END {
            if (blocks != expect) { printf "expected %d attribution blocks, saw %d\n", expect, blocks; bad = 1 }
            exit bad
        }' expect="$2" "$1"
}
check_conservation "$tmp_out" 3
echo "   fig3: 3/3 runs conserve (counts exact, time under 1e-9)"
cargo run --release -q -p bench --bin repro -- scale --small --attribution --jobs 0 >"$tmp_out" 2>/dev/null
check_conservation "$tmp_out" 12
echo "   scale: 12/12 sweep points conserve"

echo "== repro table1 --metrics vs golden"
cargo run --release -q -p bench --bin repro -- table1 --small --metrics --jobs 0 >"$tmp_out" 2>/dev/null
diff -u scripts/golden_table1_metrics_small.txt "$tmp_out"

echo "== HTML reports are byte-identical across --jobs"
tmp_rep1=$(mktemp)
tmp_rep2=$(mktemp)
for fig in fig2 fig3 montecarlo; do
    cargo run --release -q -p bench --bin repro -- "$fig" --small --jobs 1 --report "$tmp_rep1" >/dev/null 2>&1
    cargo run --release -q -p bench --bin repro -- "$fig" --small --jobs 0 --report "$tmp_rep2" >/dev/null 2>&1
    cmp "$tmp_rep1" "$tmp_rep2"
    echo "   $fig report: $(wc -c <"$tmp_rep1") bytes, identical"
done
rm -f "$tmp_rep1" "$tmp_rep2"

echo "== blind stage-segmentation audit"
cargo run --release -q -p bench --bin repro -- audit --small --jobs 0 2>/dev/null | tail -1

echo "== traced fig3 is deterministic"
tmp_trace1=$(mktemp)
tmp_trace2=$(mktemp)
cargo run --release -q -p bench --bin repro -- fig3 --small --trace "$tmp_trace1" >/dev/null 2>&1
cargo run --release -q -p bench --bin repro -- fig3 --small --jobs 0 --trace "$tmp_trace2" >/dev/null 2>&1
cmp "$tmp_trace1" "$tmp_trace2"
rm -f "$tmp_trace1" "$tmp_trace2"

echo "verify: OK"
