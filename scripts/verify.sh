#!/usr/bin/env bash
# Tier-2 verification: release build, full test suite, and a golden
# diff of the repro harness.
#
# The golden check runs `repro -- table1 --small --timing` with
# `--jobs 0` (all cores) and diffs stdout against the checked-in
# sequential capture, so it verifies both the harness output and the
# byte-identity of the parallel runner in one step. `--timing` output
# goes to stderr and BENCH_repro.json, which this script preserves.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q

echo "== repro table1 --small --timing vs golden"
tmp_out=$(mktemp)
tmp_json=$(mktemp)
had_json=0
if [ -f BENCH_repro.json ]; then
    cp BENCH_repro.json "$tmp_json"
    had_json=1
fi
restore() {
    rm -f "$tmp_out"
    if [ "$had_json" -eq 1 ]; then
        mv "$tmp_json" BENCH_repro.json
    else
        rm -f "$tmp_json" BENCH_repro.json
    fi
}
trap restore EXIT

cargo run --release -q -p bench --bin repro -- table1 --small --timing --jobs 0 >"$tmp_out"
diff -u scripts/golden_table1_small.txt "$tmp_out"

echo "verify: OK"
