//! Phase 1 in miniature: crash a node under TCP-PRESS and under
//! VIA-PRESS-5 and watch how differently the two substrates let the
//! server react (§5.3 of the paper).
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use cluster_performability::experiments::figures::render_timeline;
use cluster_performability::experiments::{run_fault_experiment, ClusterConfig, FaultScenario};
use cluster_performability::mendosus::FaultKind;
use cluster_performability::press::PressVersion;
use cluster_performability::simnet::fabric::NodeId;

fn main() {
    for version in [PressVersion::Tcp, PressVersion::Via5] {
        // Hard-reboot node 3 for 90 seconds, mid-run.
        let result = run_fault_experiment(
            ClusterConfig::fault_experiment(version),
            FaultScenario::standard(FaultKind::NodeCrash, NodeId(3)),
            7,
        );
        println!("{}", render_timeline(&result));
        println!(
            "requests: {} attempted, {} failed ({:.2}% availability over the run)\n",
            result.report.availability.attempts,
            result.report.availability.failures(),
            result.report.availability.availability() * 100.0
        );
    }
    println!(
        "TCP-PRESS freezes (its only failure signal is a ~13-minute retransmission\n\
         timeout) and the rebooted node's rejoin is disregarded, while the VIA\n\
         version detects the break instantly, reconfigures, and reintegrates."
    );
}
