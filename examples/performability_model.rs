//! Phase 2 standalone: the analytic performability model with
//! hand-written stage parameters — no simulation at all.
//!
//! This is the paper's §2.2–2.3 machinery usable as a plain library:
//! describe how a server responds to each fault (the 7-stage model),
//! give fault rates (Table 3), and get availability and performability.
//!
//! ```text
//! cargo run --example performability_model
//! ```

use cluster_performability::performability::fault_load::{paper_fault_load, DAY, MONTH};
use cluster_performability::performability::metric::{performability, IDEAL_AVAILABILITY};
use cluster_performability::performability::model::{average_availability, FaultBehavior};
use cluster_performability::performability::stages::{SevenStage, Stage};

fn main() {
    let tn = 5_000.0; // requests per second in normal operation

    // A hypothetical server: detects any fault in 15 s (throughput zero
    // until then), then runs at 3/4 capacity until the component is
    // repaired, with a 20 s half-speed transient after recovery.
    let mut stages = SevenStage::zeroed();
    stages.set(Stage::A, 15.0, 0.0);
    stages.set(Stage::C, 0.0, 0.75 * tn); // stretched to each MTTR below
    stages.set(Stage::D, 20.0, 0.5 * tn);

    for (label, app_mttf) in [("one app fault per day", DAY), ("one per month", MONTH)] {
        let behaviors: Vec<FaultBehavior> = paper_fault_load(app_mttf)
            .into_iter()
            .map(|entry| FaultBehavior {
                stages: stages.scaled_to_repair(entry.mttr),
                entry,
            })
            .collect();
        let aa = average_availability(tn, &behaviors);
        let p = performability(tn, aa, IDEAL_AVAILABILITY);
        println!("{label}:");
        println!("  average availability AA = {aa:.6}  (unavailability {:.1} ppm)", (1.0 - aa) * 1e6);
        println!("  performability P = {p:.1}  (Tn x log(0.99999)/log(AA))");
        // Which fault classes hurt most?
        let mut worst: Vec<(String, f64)> = behaviors
            .iter()
            .map(|b| (b.entry.fault.name().to_string(), b.unavailability(tn)))
            .collect();
        worst.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("  top contributors:");
        for (name, u) in worst.iter().take(3) {
            println!("    {name:<42} {:.1} ppm", u * 1e6);
        }
        println!();
    }
}
