//! The design question the paper answers in §6.3: *how buggy can VIA
//! afford to be before TCP is the better choice?*
//!
//! Builds phase-1 profiles for one TCP and one VIA version on the small
//! test-bed, then sweeps the VIA fault rate to find the crossover.
//!
//! ```text
//! cargo run --release --example sensitivity
//! ```

use cluster_performability::experiments::{behaviors_for_load, version_profile, RunScale};
use cluster_performability::performability::fault_load::{paper_fault_load, ModelFault, MONTH};
use cluster_performability::performability::metric::IDEAL_AVAILABILITY;
use cluster_performability::performability::sensitivity::{
    crossover_multiplier, performability_at,
};
use cluster_performability::press::PressVersion;

fn main() {
    println!("measuring fault responses (11 faults x 2 versions, small test-bed)...");
    let tcp = version_profile(PressVersion::TcpHb, RunScale::Small, 3);
    let via = version_profile(PressVersion::Via5, RunScale::Small, 3);

    let load = paper_fault_load(MONTH);
    let tcp_behaviors = behaviors_for_load(&tcp, &load);
    let via_behaviors = behaviors_for_load(&via, &load);

    let tcp_p = performability_at(tcp.tn, &tcp_behaviors, 1.0, IDEAL_AVAILABILITY, |_| false);
    println!("\n{} performability: {tcp_p:.1}", tcp.version);

    println!("{} performability as its fault rates scale:", via.version);
    for factor in [1.0, 2.0, 4.0, 8.0] {
        let p = performability_at(
            via.tn,
            &via_behaviors,
            factor,
            IDEAL_AVAILABILITY,
            ModelFault::scales_for_via_pessimism,
        );
        let marker = if p >= tcp_p { "VIA ahead" } else { "TCP ahead" };
        println!("  {factor:>4.1}x faults -> P = {p:8.1}   [{marker}]");
    }

    match crossover_multiplier(
        via.tn,
        &via_behaviors,
        tcp_p,
        IDEAL_AVAILABILITY,
        64.0,
        ModelFault::scales_for_via_pessimism,
    ) {
        Some(c) => println!(
            "\ncrossover on this shrunk, sub-saturated test-bed: {:.1}x.\n\
             (Here both versions serve the same offered load, so only VIA's\n\
             availability edge counts. At the paper's scale — where VIA also\n\
             carries a 42% throughput advantage — the crossover is several-fold:\n\
             run `cargo run --release -p bench --bin repro -- crossover`.)",
            c.multiplier
        ),
        None => println!("\nno crossover within 64x — one substrate dominates outright."),
    }
}
