//! Quickstart: boot the 4-node PRESS cluster on VIA, serve traffic for
//! ten simulated seconds, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cluster_performability::experiments::{ClusterConfig, ClusterSim};
use cluster_performability::press::PressVersion;
use cluster_performability::simnet::SimTime;

fn main() {
    // The paper's test-bed: 4 nodes, 128 MB cooperative caches, 1 Gb/s
    // cLAN fabric, driven slightly above nominal peak.
    let version = PressVersion::Via5;
    let config = ClusterConfig::paper_defaults(version);
    println!(
        "booting {} on {} nodes at {:.0} req/s offered load...",
        version,
        config.press.nodes,
        config.rate
    );

    let mut sim = ClusterSim::new(config, 42);
    sim.run_until(SimTime::from_secs(10));

    let report = sim.report();
    println!(
        "served {} of {} requests ({:.3}% availability)",
        report.availability.successes,
        report.availability.attempts,
        report.availability.availability() * 100.0
    );
    println!(
        "steady-state throughput: {:.0} req/s (paper's Table 1: {:.0})",
        sim.mean_throughput(3.0, 10.0),
        version.paper_throughput()
    );
    println!(
        "cluster state: {} nodes cooperating, all processes running: {}",
        report.final_members[0], report.all_running
    );
    println!(
        "response times: p50 {:.1} ms, p99 {:.1} ms",
        report.latency.quantile(0.50) * 1e3,
        report.latency.quantile(0.99) * 1e3
    );
}
