//! Cross-crate integration tests: the §5 behaviour matrix of the paper,
//! run end-to-end on the shrunk test-bed.
//!
//! Each test asserts the *qualitative* observation the paper reports for
//! a (version, fault) pair; the quantitative shapes are exercised by the
//! repro harness at paper scale.

use cluster_performability::experiments::{
    run_fault_experiment, ClusterConfig, FaultRunResult, FaultScenario,
};
use cluster_performability::mendosus::FaultKind;
use cluster_performability::press::PressVersion;
use cluster_performability::simnet::fabric::NodeId;

fn quick(version: PressVersion, kind: FaultKind, node: usize) -> FaultRunResult {
    run_fault_experiment(
        ClusterConfig::small(version),
        FaultScenario::quick(kind, NodeId(node)),
        1234,
    )
}

fn tail_level(r: &FaultRunResult) -> f64 {
    r.series
        .mean_between(r.markers.end - 10.0, r.markers.end)
        .unwrap_or(0.0)
        / r.tn
}

// ---------------------------------------------------------------------
// §5.2 network hardware failures
// ---------------------------------------------------------------------

#[test]
fn link_fault_all_versions_match_the_paper() {
    // TCP-PRESS: stalls for the fault, never detects, fully recovers.
    let tcp = quick(PressVersion::Tcp, FaultKind::LinkDown, 3);
    assert!(tcp.markers.detected.is_none());
    assert!(tcp.during_fault() < 0.3 * tcp.tn);
    assert!(!tcp.needs_operator_reset);
    assert!(tail_level(&tcp) > 0.8);

    // TCP-PRESS-HB: detects at the 15 s heartbeat threshold, splinters
    // 3+1, and does NOT re-merge when the link returns.
    let hb = quick(PressVersion::TcpHb, FaultKind::LinkDown, 3);
    let lag = hb.markers.detected.expect("hb detects") - hb.markers.fault;
    assert!((10.0..25.0).contains(&lag), "lag {lag}");
    assert!(hb.needs_operator_reset);

    // VIA versions: near-instant detection, same splinter.
    for v in [PressVersion::Via0, PressVersion::Via3, PressVersion::Via5] {
        let via = quick(v, FaultKind::LinkDown, 3);
        let lag = via.markers.detected.expect("via detects") - via.markers.fault;
        assert!(lag < 2.0, "{v}: lag {lag}");
        assert!(via.needs_operator_reset, "{v} must stay splintered");
        // The surviving 3-node side keeps serving during the fault.
        assert!(via.during_fault() > 0.4 * via.tn, "{v}: {}", via.during_fault());
    }
}

#[test]
fn switch_fault_partitions_everything() {
    let via = quick(PressVersion::Via3, FaultKind::SwitchDown, 0);
    // Every node ends up standalone; standalone nodes still serve from
    // their own caches and disks.
    assert!(via.needs_operator_reset);
    assert!(via.during_fault() > 0.0);

    let tcp = quick(PressVersion::Tcp, FaultKind::SwitchDown, 0);
    assert!(tcp.during_fault() < 0.3 * tcp.tn, "TCP freezes: {}", tcp.during_fault());
    assert!(!tcp.needs_operator_reset, "TCP rides it out");
}

// ---------------------------------------------------------------------
// §5.3 node faults
// ---------------------------------------------------------------------

#[test]
fn node_crash_reintegration_depends_on_detection() {
    // HB and VIA reintegrate the rebooted node.
    for v in [PressVersion::TcpHb, PressVersion::Via0, PressVersion::Via5] {
        let r = quick(v, FaultKind::NodeCrash, 3);
        assert!(!r.needs_operator_reset, "{v} must reintegrate");
        assert!(tail_level(&r) > 0.8, "{v} tail {}", tail_level(&r));
    }
    // TCP-PRESS: the rejoin is disregarded while the stale connections
    // look alive; the cluster ends as 3 + a standalone node.
    let tcp = quick(PressVersion::Tcp, FaultKind::NodeCrash, 3);
    assert!(tcp.needs_operator_reset);
    assert_eq!(tcp.report.final_members, vec![3, 3, 3, 1]);
}

#[test]
fn node_hang_stalls_tcp_but_hb_splinters() {
    // TCP-PRESS correctly deduces no fault occurred (throughput falls
    // while everyone waits, then returns).
    let tcp = quick(PressVersion::Tcp, FaultKind::NodeHang, 3);
    assert!(tcp.markers.detected.is_none());
    assert!(tcp.during_fault() < 0.5 * tcp.tn);
    assert!(!tcp.needs_operator_reset);
    assert!(tail_level(&tcp) > 0.8);

    // TCP-PRESS-HB incorrectly declares a fault and splinters.
    let hb = quick(PressVersion::TcpHb, FaultKind::NodeHang, 3);
    assert!(hb.markers.detected.is_some());
    assert!(hb.needs_operator_reset);
}

// ---------------------------------------------------------------------
// §5.4 memory exhaustion
// ---------------------------------------------------------------------

#[test]
fn kernel_alloc_fault_freezes_tcp_only() {
    let tcp = quick(PressVersion::Tcp, FaultKind::KernelAllocFail, 3);
    assert!(tcp.during_fault() < 0.3 * tcp.tn, "TCP: {}", tcp.during_fault());
    assert!(!tcp.needs_operator_reset);

    let hb = quick(PressVersion::TcpHb, FaultKind::KernelAllocFail, 3);
    assert!(hb.markers.detected.is_some(), "heartbeats flag the mute node");

    // VIA pre-allocates: the fault has no visible effect at all.
    for v in [PressVersion::Via0, PressVersion::Via5] {
        let via = quick(v, FaultKind::KernelAllocFail, 3);
        assert!(
            via.during_fault() > 0.9 * via.tn,
            "{v} should be immune: {} vs {}",
            via.during_fault(),
            via.tn
        );
        assert!(!via.needs_operator_reset);
    }
}

#[test]
fn pin_fault_touches_only_the_zero_copy_version() {
    for v in [PressVersion::Tcp, PressVersion::Via0, PressVersion::Via3] {
        let r = quick(v, FaultKind::MemPinFail, 3);
        assert!(
            r.during_fault() > 0.9 * r.tn,
            "{v} does not pin dynamically: {} vs {}",
            r.during_fault(),
            r.tn
        );
    }
    // VIA-PRESS-5 sheds cache entries it cannot pin; extra misses go to
    // disk. (On the shrunk test-bed the overall dip is small but the
    // shedding must be observable.)
    let r5 = quick(PressVersion::Via5, FaultKind::MemPinFail, 3);
    let skips = r5.report.process_log.is_empty();
    assert!(skips, "no process should die from a pin fault");
    assert!(!r5.needs_operator_reset);
}

// ---------------------------------------------------------------------
// §5.5 application faults
// ---------------------------------------------------------------------

#[test]
fn null_pointer_fault_propagation_differs_by_substrate() {
    // TCP: synchronous EFAULT; nothing dies; throughput barely moves.
    let tcp = quick(PressVersion::Tcp, FaultKind::BadParamNull, 3);
    assert!(tcp.report.process_log.is_empty(), "{:?}", tcp.report.process_log);
    assert!(!tcp.needs_operator_reset);

    // VIA-0: asynchronous completion error; the faulting process
    // fail-fasts and restarts.
    let via0 = quick(PressVersion::Via0, FaultKind::BadParamNull, 3);
    let exits0: Vec<usize> = via0
        .report
        .process_log
        .iter()
        .filter(|(_, _, e)| format!("{e:?}") == "Exit")
        .map(|(_, n, _)| n.0)
        .collect();
    assert_eq!(exits0, vec![3], "only the faulting node dies");
    assert!(!via0.needs_operator_reset, "restart + rejoin heals it");

    // VIA-3/5 (remote writes): the error is reported at BOTH ends; two
    // processes die.
    for v in [PressVersion::Via3, PressVersion::Via5] {
        let r = quick(v, FaultKind::BadParamNull, 3);
        let exits = r
            .report
            .process_log
            .iter()
            .filter(|(_, _, e)| format!("{e:?}") == "Exit")
            .count();
        assert_eq!(exits, 2, "{v}: remote-write faults kill both ends");
        assert!(!r.needs_operator_reset, "{v} heals after restarts");
    }
}

#[test]
fn app_crash_and_hang_recover_after_the_fault() {
    for v in [PressVersion::Tcp, PressVersion::TcpHb, PressVersion::Via5] {
        let crash = quick(v, FaultKind::AppCrash, 3);
        assert!(
            crash.report.process_log.len() >= 2,
            "{v}: exit+restart expected, got {:?}",
            crash.report.process_log
        );
        let hang = quick(v, FaultKind::AppHang, 3);
        assert!(hang.during_fault() < hang.tn, "{v}: a hang costs something");
        assert!(tail_level(&hang) > 0.7, "{v}: hang must be transparent after SIGCONT");
    }
}

// ---------------------------------------------------------------------
// Cross-cutting
// ---------------------------------------------------------------------

#[test]
fn availability_loss_matches_fault_severity() {
    // A 30 s full stall (TCP link fault) must cost far more availability
    // than a 30 s pin fault (cache shedding only).
    let stall = quick(PressVersion::Tcp, FaultKind::LinkDown, 3);
    let shed = quick(PressVersion::Via5, FaultKind::MemPinFail, 3);
    assert!(
        stall.report.availability.availability() + 0.05
            < shed.report.availability.availability(),
        "stall {} vs shed {}",
        stall.report.availability.availability(),
        shed.report.availability.availability()
    );
}
