//! End-to-end pipeline tests: phase 1 → stage extraction → phase 2 →
//! the paper's qualitative conclusions, on the shrunk test-bed.

use cluster_performability::experiments::{
    behaviors_for_load, evaluate, version_profile, ClusterConfig, ClusterSim, RunScale,
};
use cluster_performability::performability::fault_load::{paper_fault_load, ModelFault, MONTH};
use cluster_performability::performability::metric::IDEAL_AVAILABILITY;
use cluster_performability::performability::sensitivity::{
    crossover_multiplier, performability_at,
};
use cluster_performability::press::PressVersion;
use cluster_performability::simnet::SimTime;

#[test]
fn runs_are_deterministic_and_seed_sensitive() {
    let run = |seed: u64| {
        let mut sim = ClusterSim::new(ClusterConfig::small(PressVersion::Via3), seed);
        sim.run_until(SimTime::from_secs(6));
        let r = sim.report();
        (
            r.availability.attempts,
            r.availability.successes,
            r.throughput.points,
        )
    };
    assert_eq!(run(99), run(99), "same seed, same world");
    assert_ne!(run(99).2, run(100).2, "different seed, different world");
}

#[test]
fn latency_distribution_is_plausible_under_light_load() {
    let mut sim = ClusterSim::new(ClusterConfig::small(PressVersion::Via5), 5);
    sim.run_until(SimTime::from_secs(8));
    let lat = sim.report().latency;
    assert!(lat.count() > 3_000);
    // Sub-saturated: most requests finish in a few ms, all within the
    // client timeout.
    assert!(lat.quantile(0.5) < 0.05, "p50 {}", lat.quantile(0.5));
    assert!(lat.quantile(0.99) < 6.0, "p99 {}", lat.quantile(0.99));
    assert!(lat.mean() > 0.0);
}

/// The paper's central (and surprising) §6.2 result, end to end: under
/// the same fault load, the VIA versions deliver better availability
/// than the TCP versions, and the fastest version wins performability.
#[test]
fn headline_results_hold_on_the_small_testbed() {
    let profiles: Vec<_> = PressVersion::ALL
        .iter()
        .map(|v| version_profile(*v, RunScale::Small, 4242))
        .collect();
    let load = paper_fault_load(MONTH);
    let results: Vec<_> = profiles.iter().map(|p| evaluate(p, &load)).collect();

    let get = |v: PressVersion| {
        results
            .iter()
            .find(|r| r.version == v)
            .expect("all versions evaluated")
    };
    let tcp = get(PressVersion::Tcp);
    let hb = get(PressVersion::TcpHb);
    for via in [PressVersion::Via0, PressVersion::Via3, PressVersion::Via5] {
        let r = get(via);
        assert!(
            r.availability > tcp.availability,
            "{via}: {} should beat TCP-PRESS {}",
            r.availability,
            tcp.availability
        );
        assert!(
            r.performability > tcp.performability && r.performability > hb.performability,
            "{via} should win performability"
        );
    }
    // Heartbeats help TCP, even if they can misfire.
    assert!(hb.availability > tcp.availability);
    // Availability is "uniformly terrible": nobody reaches five nines.
    for r in &results {
        assert!(r.availability < 0.99999, "{}: {}", r.version, r.availability);
    }
}

/// Scaling VIA's switch/link/application fault rates must eventually
/// hand TCP the lead, with a crossover strictly above 1x.
#[test]
fn via_lead_erodes_with_fault_rate() {
    let via = version_profile(PressVersion::Via5, RunScale::Small, 77);
    let tcp = version_profile(PressVersion::TcpHb, RunScale::Small, 77);
    let load = paper_fault_load(MONTH);
    let via_behaviors = behaviors_for_load(&via, &load);
    let tcp_behaviors = behaviors_for_load(&tcp, &load);
    let tcp_p = performability_at(tcp.tn, &tcp_behaviors, 1.0, IDEAL_AVAILABILITY, |_| false);
    let result = crossover_multiplier(
        via.tn,
        &via_behaviors,
        tcp_p,
        IDEAL_AVAILABILITY,
        64.0,
        ModelFault::scales_for_via_pessimism,
    )
    .expect("a crossover must exist: VIA leads at 1x but degrades with rate");
    assert!(
        result.multiplier > 1.2,
        "crossover at {:.2}x should be comfortably above 1x",
        result.multiplier
    );
}
