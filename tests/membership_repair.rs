//! Integration tests for the membership-repair extension (the §6.2
//! "rigorous membership algorithm"): splintered clusters must re-merge
//! without operator intervention once the fabric heals.

use cluster_performability::experiments::{
    run_fault_experiment, ClusterConfig, FaultScenario,
};
use cluster_performability::mendosus::FaultKind;
use cluster_performability::press::PressVersion;
use cluster_performability::simnet::fabric::NodeId;

fn run(version: PressVersion, kind: FaultKind, repair: bool) -> (bool, Vec<usize>) {
    let mut config = ClusterConfig::small(version);
    config.press.membership_repair = repair;
    let mut scenario = FaultScenario::quick(kind, NodeId(3));
    // Leave extra time after recovery for probes to converge.
    scenario.run = simnet::SimDuration::from_secs(120);
    let r = run_fault_experiment(config, scenario, 31);
    (r.needs_operator_reset, r.report.final_members)
}

#[test]
fn link_fault_splinters_heal_with_repair() {
    for version in [PressVersion::TcpHb, PressVersion::Via5] {
        let (reset_off, _) = run(version, FaultKind::LinkDown, false);
        assert!(reset_off, "{version}: paper PRESS stays splintered");
        let (reset_on, members) = run(version, FaultKind::LinkDown, true);
        assert!(!reset_on, "{version}: repair must re-merge, members {members:?}");
        assert_eq!(members, vec![4, 4, 4, 4]);
    }
}

#[test]
fn tcp_press_failed_rejoin_heals_with_repair() {
    let (reset_off, members_off) = run(PressVersion::Tcp, FaultKind::NodeCrash, false);
    assert!(reset_off, "paper TCP-PRESS ends 3+1: {members_off:?}");
    let (reset_on, members_on) = run(PressVersion::Tcp, FaultKind::NodeCrash, true);
    assert!(!reset_on, "repair must merge the standalone node back: {members_on:?}");
    assert_eq!(members_on, vec![4, 4, 4, 4]);
}

#[test]
fn switch_fault_total_partition_heals_with_repair() {
    let (reset_off, _) = run(PressVersion::Via3, FaultKind::SwitchDown, false);
    assert!(reset_off, "four singletons without repair");
    let (reset_on, members) = run(PressVersion::Via3, FaultKind::SwitchDown, true);
    assert!(!reset_on, "repair must rebuild the full cluster: {members:?}");
    assert_eq!(members, vec![4, 4, 4, 4]);
}

#[test]
fn repair_is_inert_when_nothing_splinters() {
    // A fault the cluster already heals from: repair must not change
    // the outcome (no spurious exclusions or merges).
    let (reset_off, m_off) = run(PressVersion::Via5, FaultKind::AppCrash, false);
    let (reset_on, m_on) = run(PressVersion::Via5, FaultKind::AppCrash, true);
    assert!(!reset_off && !reset_on);
    assert_eq!(m_off, m_on);
}
