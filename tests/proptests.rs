//! Property-based tests on the core data structures and invariants.

use cluster_performability::performability::fault_load::{FaultEntry, ModelFault};
use cluster_performability::performability::metric::performability;
use cluster_performability::performability::model::{
    average_availability, average_throughput, unavailability_breakdown, FaultBehavior,
};
use cluster_performability::performability::stages::{SevenStage, Stage};
use cluster_performability::press::cache::LruCache;
use cluster_performability::simnet::{Engine, SimDuration, SimRng, SimTime, ThroughputRecorder};
use cluster_performability::transport::tcp::{TcpConfig, TcpStack};
use cluster_performability::transport::{
    CallParams, CostModel, Effect, MsgClass, SendStatus, Substrate, Upcall,
};
use cluster_performability::workload::Zipf;
use proptest::prelude::*;
use simnet::fabric::NodeId;

proptest! {
    /// The engine always delivers events in (time, insertion) order.
    #[test]
    fn engine_orders_arbitrary_schedules(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut engine = Engine::new();
        for (i, t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = engine.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
        }
        prop_assert_eq!(engine.pending(), 0);
    }

    /// The batch primitives agree with the one-at-a-time `pop` loop:
    /// `pop_batch` yields exactly one instant per call and `drain_until`
    /// dispatches the same `(time, event)` sequence, so same-instant
    /// events stay FIFO through either fast path.
    #[test]
    fn engine_batch_primitives_preserve_fifo(
        times in prop::collection::vec(0u64..40, 1..200),
        deadline in 0u64..50,
    ) {
        // The tiny timestamp range forces heavy same-instant collisions.
        let mut reference = Engine::new();
        let mut batched = Engine::new();
        let mut drained = Engine::new();
        for (i, t) in times.iter().enumerate() {
            let at = SimTime::from_nanos(*t);
            reference.schedule_at(at, i);
            batched.schedule_at(at, i);
            drained.schedule_at(at, i);
        }
        let mut expect = Vec::new();
        while let Some((t, i)) = reference.pop() {
            expect.push((t, i));
        }
        // pop_batch: each call appends one instant's burst in FIFO order.
        let mut via_batch = Vec::new();
        let mut burst = Vec::new();
        while let Some(t) = batched.pop_batch(&mut burst) {
            for i in burst.drain(..) {
                via_batch.push((t, i));
            }
        }
        prop_assert_eq!(&via_batch, &expect);
        prop_assert_eq!(batched.pending(), 0);
        // drain_until: identical prefix up to the deadline, rest queued.
        let cut = SimTime::from_nanos(deadline);
        let mut via_drain = Vec::new();
        drained.drain_until(cut, |t, i| via_drain.push((t, i)));
        let head: Vec<_> = expect.iter().copied().filter(|(t, _)| *t <= cut).collect();
        prop_assert_eq!(&via_drain, &head);
        prop_assert_eq!(drained.pending(), expect.len() - via_drain.len());
        prop_assert_eq!(drained.now(), cut, "clock must rest at the deadline");
    }

    /// Bucketed throughput conserves the event count.
    #[test]
    fn recorder_conserves_events(stamps in prop::collection::vec(0u64..30_000_000_000u64, 0..500)) {
        let mut rec = ThroughputRecorder::new(SimDuration::from_secs(1));
        for s in &stamps {
            rec.record(SimTime::from_nanos(*s));
        }
        prop_assert_eq!(rec.total(), stamps.len() as u64);
        // The series integrates back to (at most) the same count; events
        // in the final partial bucket are excluded by design.
        let series = rec.series(SimTime::from_secs(31));
        let total: f64 = series.points.iter().map(|(_, v)| v).sum();
        prop_assert!((total - stamps.len() as f64).abs() < 1e-6);
    }

    /// LRU cache never exceeds capacity, and an inserted file is present
    /// until evicted or removed.
    #[test]
    fn lru_capacity_invariant(ops in prop::collection::vec((0u32..50, prop::bool::ANY), 1..300)) {
        let mut cache = LruCache::new(8);
        for (file, touch) in ops {
            if touch {
                cache.touch(file);
            } else {
                let evicted = cache.insert(file);
                prop_assert!(cache.contains(file));
                if let Some(e) = evicted {
                    prop_assert!(!cache.contains(e));
                    prop_assert_ne!(e, file);
                }
            }
            prop_assert!(cache.len() <= 8);
        }
    }

    /// Zipf samples stay in range and the CDF mass function is monotone.
    #[test]
    fn zipf_samples_in_range(n in 1u32..5_000, alpha in 0.0f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(n, alpha);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        let mut last = 0.0;
        for top in [1usize, 2, 5, n as usize] {
            let m = z.mass_of_top(top);
            prop_assert!(m >= last - 1e-12);
            prop_assert!(m <= 1.0 + 1e-9);
            last = m;
        }
    }

    /// Phase-2 invariants: AA in (0,1], breakdown sums to 1-AA, and
    /// performability is monotone in availability.
    #[test]
    fn model_invariants(
        durations in prop::collection::vec(0.0f64..500.0, 7),
        levels in prop::collection::vec(0.0f64..1.5, 7),
        mttf in 10_000.0f64..10_000_000.0,
    ) {
        let tn = 1000.0;
        let mut stages = SevenStage::zeroed();
        for (i, stage) in Stage::ALL.iter().enumerate() {
            stages.set(*stage, durations[i], levels[i] * tn);
        }
        let entry = FaultEntry {
            fault: ModelFault::NodeCrash,
            mttf,
            mttr: 180.0,
            instances: 4,
        };
        let b = FaultBehavior { entry, stages };
        // Skip degenerate loads that violate the single-fault assumption.
        prop_assume!(b.degraded_fraction() < 1.0);
        let behaviors = vec![b];
        let at = average_throughput(tn, &behaviors);
        let aa = average_availability(tn, &behaviors);
        prop_assert!(at <= tn + 1e-9);
        prop_assert!(aa > 0.0 && aa <= 1.0 + 1e-12);
        let sum: f64 = unavailability_breakdown(tn, &behaviors).iter().map(|(_, u)| u).sum();
        prop_assert!((sum - (1.0 - aa)).abs() < 1e-9, "sum {} vs {}", sum, 1.0 - aa);
        if aa < 1.0 {
            let p1 = performability(tn, aa, 0.99999);
            let p2 = performability(tn, (aa + 1.0) / 2.0, 0.99999);
            prop_assert!(p2 >= p1 - 1e-9, "P must improve with availability");
        }
    }

    /// Stage-C rescaling preserves every other stage and never goes
    /// negative.
    #[test]
    fn scaled_to_repair_is_safe(
        a in 0.0f64..100.0,
        b in 0.0f64..100.0,
        c in 0.0f64..1000.0,
        mttr in 0.0f64..2000.0,
    ) {
        let mut st = SevenStage::zeroed();
        st.set(Stage::A, a, 1.0);
        st.set(Stage::B, b, 2.0);
        st.set(Stage::C, c, 3.0);
        st.set(Stage::D, 5.0, 4.0);
        let scaled = st.scaled_to_repair(mttr);
        prop_assert!(scaled.get(Stage::C).duration >= 0.0);
        prop_assert!((scaled.get(Stage::C).duration - (mttr - a - b).max(0.0)).abs() < 1e-9);
        prop_assert_eq!(scaled.get(Stage::A).duration, a);
        prop_assert_eq!(scaled.get(Stage::B).duration, b);
        prop_assert_eq!(scaled.get(Stage::D).duration, 5.0);
    }

    /// TCP delivers every cleanly-sent message exactly once, in order,
    /// under an arbitrary pattern of segment losses — retransmission
    /// recovers everything.
    #[test]
    fn tcp_delivers_exactly_once_under_loss(
        sizes in prop::collection::vec(1u32..20_000, 1..20),
        loss in prop::collection::vec(prop::bool::ANY, 0..12),
    ) {
        let mut a: TcpStack<u32> = TcpStack::new(NodeId(0), TcpConfig::default(), CostModel::tcp());
        let mut b: TcpStack<u32> = TcpStack::new(NodeId(1), TcpConfig::default(), CostModel::tcp());

        // Drive a tiny event loop by hand: effects -> frames/timers.
        let mut now = SimTime::ZERO;
        let mut frames = Vec::new();
        let mut timers = Vec::new();
        let mut delivered = Vec::new();
        let mut effects = Vec::new();

        // Establish the connection reliably; the loss pattern applies to
        // the data phase (losing every SYN legitimately aborts
        // establishment, which is not the property under test).
        a.open(now, NodeId(1), &mut effects);
        while !effects.is_empty() {
            for e in std::mem::take(&mut effects) {
                if let Effect::Transmit(f) = e {
                    let mut out = Vec::new();
                    if f.dst == NodeId(1) {
                        b.frame_arrived(now, f, &mut out);
                    } else {
                        a.frame_arrived(now, f, &mut out);
                    }
                    effects.extend(out);
                }
            }
        }
        prop_assert!(a.is_connected(NodeId(1)));

        let mut sent = 0usize;
        let mut loss_iter = loss.into_iter();
        for round in 0..400 {
            // Feed pending sends while the buffer accepts them.
            while sent < sizes.len() {
                let mut out = Vec::new();
                let st = a.send(
                    now,
                    NodeId(1),
                    MsgClass::FileData,
                    sent as u32,
                    sizes[sent],
                    CallParams::default(),
                    &mut out,
                );
                effects.extend(out);
                match st {
                    SendStatus::Accepted => sent += 1,
                    _ => break,
                }
            }
            // Route effects.
            for e in std::mem::take(&mut effects) {
                match e {
                    Effect::Transmit(f) => frames.push(f),
                    Effect::SetTimer { at, key } => timers.push((at, key)),
                    Effect::Upcall(Upcall::Deliver { msg, .. }) => delivered.push(msg),
                    _ => {}
                }
            }
            // Deliver or drop each frame.
            for f in std::mem::take(&mut frames) {
                if loss_iter.next().unwrap_or(false) {
                    continue; // lost
                }
                let mut out = Vec::new();
                if f.dst == NodeId(1) {
                    b.frame_arrived(now, f, &mut out);
                } else {
                    a.frame_arrived(now, f, &mut out);
                }
                effects.extend(out);
            }
            // If idle, fire the earliest timer to force retransmission.
            if effects.is_empty() && frames.is_empty() {
                timers.sort_by_key(|(at, _)| *at);
                if timers.is_empty() {
                    break;
                }
                let (at, key) = timers.remove(0);
                now = now.max(at);
                let mut out = Vec::new();
                if key.node == NodeId(0) {
                    a.timer_fired(now, key, &mut out);
                } else {
                    b.timer_fired(now, key, &mut out);
                }
                effects.extend(out);
            }
            if delivered.len() == sizes.len() && sent == sizes.len() {
                break;
            }
            let _ = round;
        }
        let expected: Vec<u32> = (0..sizes.len() as u32).collect();
        prop_assert_eq!(delivered, expected, "in-order exactly-once delivery");
    }
}
