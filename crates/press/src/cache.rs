//! Cooperative caching: the per-node LRU file cache and the
//! cluster-wide caching directory each node maintains from broadcasts.

use std::collections::{BTreeMap, HashMap};

use simnet::fabric::NodeId;

use crate::msg::FileId;

/// A least-recently-used cache of equally sized files.
///
/// Capacity is expressed in entries (the trace normalizes all files to
/// the same size, §5.1).
///
/// # Example
///
/// ```
/// use press::cache::LruCache;
///
/// let mut cache = LruCache::new(2);
/// assert_eq!(cache.insert(1), None);
/// assert_eq!(cache.insert(2), None);
/// cache.touch(1); // 1 is now most recent
/// assert_eq!(cache.insert(3), Some(2)); // 2 was least recent
/// ```
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    tick: u64,
    by_file: HashMap<FileId, u64>,
    by_age: BTreeMap<u64, FileId>,
}

impl LruCache {
    /// A cache holding up to `capacity` files.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            tick: 0,
            by_file: HashMap::new(),
            by_age: BTreeMap::new(),
        }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entries.
    pub fn len(&self) -> usize {
        self.by_file.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.by_file.is_empty()
    }

    /// Whether `file` is cached (does not refresh recency).
    pub fn contains(&self, file: FileId) -> bool {
        self.by_file.contains_key(&file)
    }

    /// Marks `file` most recently used. Returns `false` if absent.
    pub fn touch(&mut self, file: FileId) -> bool {
        let Some(age) = self.by_file.get(&file).copied() else {
            return false;
        };
        self.by_age.remove(&age);
        self.tick += 1;
        self.by_age.insert(self.tick, file);
        self.by_file.insert(file, self.tick);
        true
    }

    /// Inserts `file` as most recently used, returning the evicted file
    /// if the cache was full. Re-inserting refreshes recency and evicts
    /// nothing.
    pub fn insert(&mut self, file: FileId) -> Option<FileId> {
        if self.touch(file) {
            return None;
        }
        let evicted = if self.by_file.len() >= self.capacity {
            let (_, victim) = self.by_age.pop_first().expect("cache is full, so nonempty");
            self.by_file.remove(&victim);
            Some(victim)
        } else {
            None
        };
        self.tick += 1;
        self.by_age.insert(self.tick, file);
        self.by_file.insert(file, self.tick);
        evicted
    }

    /// Removes `file`; returns whether it was present.
    pub fn remove(&mut self, file: FileId) -> bool {
        match self.by_file.remove(&file) {
            Some(age) => {
                self.by_age.remove(&age);
                true
            }
            None => false,
        }
    }

    /// Removes and returns the least recently used file.
    pub fn pop_lru(&mut self) -> Option<FileId> {
        let (_, victim) = self.by_age.pop_first()?;
        self.by_file.remove(&victim);
        Some(victim)
    }

    /// All cached files (unspecified order).
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.by_age.values().copied()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.by_file.clear();
        self.by_age.clear();
    }
}

/// A node's view of who caches what, maintained from `CacheAdd` /
/// `CacheEvict` broadcasts.
#[derive(Debug, Clone)]
pub struct Directory {
    holders: Vec<Vec<NodeId>>,
}

impl Directory {
    /// An empty directory over `files` file ids.
    pub fn new(files: u32) -> Self {
        Directory {
            holders: vec![Vec::new(); files as usize],
        }
    }

    /// Records that `node` caches `file`.
    pub fn add(&mut self, file: FileId, node: NodeId) {
        let h = &mut self.holders[file as usize];
        if !h.contains(&node) {
            h.push(node);
        }
    }

    /// Records that `node` no longer caches `file`.
    pub fn remove(&mut self, file: FileId, node: NodeId) {
        self.holders[file as usize].retain(|n| *n != node);
    }

    /// Nodes believed to cache `file`.
    pub fn holders(&self, file: FileId) -> &[NodeId] {
        &self.holders[file as usize]
    }

    /// Forgets everything a departed node cached.
    pub fn drop_node(&mut self, node: NodeId) {
        for h in &mut self.holders {
            h.retain(|n| *n != node);
        }
    }

    /// Total (file, holder) entries — diagnostics.
    pub fn entries(&self) -> usize {
        self.holders.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(3);
        for f in [1, 2, 3] {
            assert_eq!(c.insert(f), None);
        }
        assert_eq!(c.insert(4), Some(1));
        assert!(c.contains(4) && !c.contains(1));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn touch_changes_eviction_order() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.touch(1));
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn remove_and_pop_lru() {
        let mut c = LruCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        assert!(c.remove(2));
        assert!(!c.remove(2));
        assert_eq!(c.pop_lru(), Some(1));
        assert_eq!(c.pop_lru(), Some(3));
        assert_eq!(c.pop_lru(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn touch_on_absent_is_false() {
        let mut c = LruCache::new(2);
        assert!(!c.touch(7));
    }

    #[test]
    fn files_iterates_in_lru_order() {
        let mut c = LruCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.touch(1);
        let order: Vec<FileId> = c.files().collect();
        assert_eq!(order, [2, 3, 1]);
    }

    #[test]
    fn directory_tracks_holders() {
        let mut d = Directory::new(10);
        d.add(5, NodeId(0));
        d.add(5, NodeId(2));
        d.add(5, NodeId(0)); // duplicate ignored
        assert_eq!(d.holders(5), &[NodeId(0), NodeId(2)]);
        d.remove(5, NodeId(0));
        assert_eq!(d.holders(5), &[NodeId(2)]);
        assert_eq!(d.entries(), 1);
    }

    #[test]
    fn directory_drop_node_clears_all_entries() {
        let mut d = Directory::new(4);
        for f in 0..4 {
            d.add(f, NodeId(1));
            d.add(f, NodeId(3));
        }
        d.drop_node(NodeId(3));
        for f in 0..4 {
            assert_eq!(d.holders(f), &[NodeId(1)]);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_cache_is_rejected() {
        LruCache::new(0);
    }
}
