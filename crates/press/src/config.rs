//! PRESS configuration: document set, caches, per-request CPU costs,
//! disks, heartbeats and recovery behaviour.

use simnet::SimDuration;

/// Which failure-detection protocol the versions with membership
/// support (the TCP variants and VIA-PRESS) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipImpl {
    /// The paper's heartbeat ring: each node beats to its ring
    /// successor and watches its predecessor against the 3-beat
    /// threshold. Detection of k simultaneous adjacent failures is
    /// sequential — one threshold per unmasked node.
    Ring,
    /// SWIM-style epidemic membership (`crates/gossip`): random-peer
    /// probes with indirect ping-req and a suspect→confirm state
    /// machine. Detection latency stays flat as the cluster grows.
    Gossip,
}

/// How cooperative-caching state propagates to the other members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSyncImpl {
    /// The paper's PRESS (§3): every caching action is immediately
    /// broadcast to every member — O(N) frames per action, O(N²)
    /// cluster-wide, and a frame that would block freezes the sender's
    /// main thread (§5.4).
    Eager,
    /// Batched digests: caching deltas coalesce locally and flush as
    /// one `CacheDigest` frame to `digest_fanout` peers (round-robin)
    /// every `digest_interval` — at most `fanout / interval` control
    /// frames per node per second regardless of the request rate or
    /// cluster size. Directory staleness is bounded by
    /// `ceil((N-1) / fanout) × interval`; a stale entry only costs a
    /// disk fallback, never correctness.
    Digest,
}

/// Static server parameters. [`PressConfig::paper_testbed`] reproduces
/// the paper's setup (§5.1): 4 nodes, 128 MB file cache per node, two
/// SCSI disks, normalized file sizes, 5 s heartbeats with a 15 s (3
/// beat) detection threshold.
///
/// The four `*_cost` constants are the calibrated per-request HTTP work
/// (identical across all five versions); their sum (≈541 µs) plus the
/// substrate costs reproduces Table 1 — see `transport::cost` for the
/// derivation.
#[derive(Debug, Clone)]
pub struct PressConfig {
    /// Number of cluster nodes.
    pub nodes: usize,
    /// Distinct files in the (static, fully replicated on disk)
    /// document set.
    pub files: u32,
    /// Every file's size after the trace normalization (§5.1).
    pub file_bytes: u32,
    /// Per-node file-cache capacity in bytes (128 MB in the paper).
    pub cache_bytes: u64,
    /// CPU to accept and parse one client request.
    pub accept_parse_cost: SimDuration,
    /// CPU to make the routing decision.
    pub route_cost: SimDuration,
    /// CPU to read a cached file.
    pub cache_read_cost: SimDuration,
    /// CPU to send the response to the client (client-network path).
    pub client_reply_cost: SimDuration,
    /// Disk service time per read.
    pub disk_service: SimDuration,
    /// Disks per node (requests load-balance across them).
    pub disks_per_node: usize,
    /// Refuse new client connections when the CPU backlog exceeds this
    /// (listen-queue overflow under overload).
    pub admission_backlog: SimDuration,
    /// Maximum deferred work items while the main thread is blocked on a
    /// send; beyond this, arrivals are dropped (accept-queue overflow).
    pub deferred_cap: usize,
    /// Heartbeat period (TCP-PRESS-HB).
    pub hb_interval: SimDuration,
    /// Declare the ring predecessor dead after this many missed beats.
    pub hb_misses: u32,
    /// Delay between rejoin attempts after a restart.
    pub rejoin_retry: SimDuration,
    /// Rejoin attempts before giving up and serving standalone.
    pub rejoin_attempts: u32,
    /// Failure-detection protocol for the membership-running versions.
    /// [`MembershipImpl::Ring`] is the paper's PRESS.
    pub membership: MembershipImpl,
    /// Parameters for [`MembershipImpl::Gossip`] (ignored under Ring).
    pub gossip: gossip::SwimConfig,
    /// How caching actions reach the other members.
    /// [`CacheSyncImpl::Eager`] is the paper's PRESS.
    pub cache_sync: CacheSyncImpl,
    /// Digest flush period ([`CacheSyncImpl::Digest`] only).
    pub digest_interval: SimDuration,
    /// Peers flushed per digest tick, round-robin over the member list
    /// ([`CacheSyncImpl::Digest`] only; clamped to the live peer
    /// count).
    pub digest_fanout: usize,
    /// Enables the membership-repair extension the paper's §6.2 calls
    /// for ("a rigorous membership algorithm"): nodes periodically probe
    /// excluded peers and re-merge splintered sub-clusters without
    /// operator intervention. Off in the paper's PRESS.
    pub membership_repair: bool,
    /// Probe period for the membership-repair extension.
    pub repair_probe_interval: SimDuration,
}

impl PressConfig {
    /// The paper's 4-node test-bed.
    pub fn paper_testbed() -> Self {
        PressConfig {
            nodes: 4,
            files: 60_000,
            file_bytes: 8_192,
            cache_bytes: 128 << 20,
            accept_parse_cost: SimDuration::from_micros(160),
            route_cost: SimDuration::from_micros(12),
            cache_read_cost: SimDuration::from_micros(18),
            client_reply_cost: SimDuration::from_micros(344),
            disk_service: SimDuration::from_millis(9),
            disks_per_node: 2,
            admission_backlog: SimDuration::from_millis(1500),
            deferred_cap: 2_000,
            hb_interval: SimDuration::from_secs(5),
            hb_misses: 3,
            rejoin_retry: SimDuration::from_secs(2),
            rejoin_attempts: 3,
            membership: MembershipImpl::Ring,
            gossip: gossip::SwimConfig::default(),
            cache_sync: CacheSyncImpl::Eager,
            digest_interval: SimDuration::from_millis(500),
            digest_fanout: 2,
            membership_repair: false,
            repair_probe_interval: SimDuration::from_secs(10),
        }
    }

    /// Files that fit in one node's cache.
    pub fn cache_entries(&self) -> usize {
        (self.cache_bytes / u64::from(self.file_bytes)) as usize
    }

    /// 4 KB pages needed to pin one file (VIA-PRESS-5 zero-copy).
    pub fn pages_per_file(&self) -> u32 {
        self.file_bytes.div_ceil(4096)
    }

    /// The calibrated per-request base cost (all four components).
    pub fn base_request_cost(&self) -> SimDuration {
        self.accept_parse_cost + self.route_cost + self.cache_read_cost + self.client_reply_cost
    }

    /// Heartbeat-loss detection threshold (`hb_misses × hb_interval` —
    /// 15 s in the paper).
    pub fn hb_detect_threshold(&self) -> SimDuration {
        self.hb_interval * u64::from(self.hb_misses)
    }
}

impl Default for PressConfig {
    fn default() -> Self {
        PressConfig::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_section_5_1() {
        let c = PressConfig::paper_testbed();
        assert_eq!(c.nodes, 4);
        assert_eq!(c.cache_bytes, 128 << 20);
        assert_eq!(c.cache_entries(), 16_384);
        assert_eq!(c.hb_detect_threshold(), SimDuration::from_secs(15));
        // The aggregate cache must cover the working set so steady-state
        // operation is disk-free, but one node's cache must not — that
        // asymmetry drives the degraded stages.
        assert!(c.cache_entries() * c.nodes >= c.files as usize);
        assert!(c.cache_entries() < c.files as usize);
    }

    #[test]
    fn base_cost_matches_calibration() {
        let c = PressConfig::paper_testbed();
        let us = c.base_request_cost().as_nanos() as f64 / 1000.0;
        assert!((530.0..555.0).contains(&us), "base cost = {us}us");
    }

    #[test]
    fn pages_per_file_rounds_up() {
        let mut c = PressConfig::paper_testbed();
        assert_eq!(c.pages_per_file(), 2);
        c.file_bytes = 4097;
        assert_eq!(c.pages_per_file(), 2);
        c.file_bytes = 4096;
        assert_eq!(c.pages_per_file(), 1);
    }
}
