//! A model of **PRESS**, the cluster-based locality-conscious web server
//! the paper evaluates (§3).
//!
//! Any node can receive a client request (round-robin DNS) and becomes
//! the *initial node*; based on cooperative caching information it
//! either serves the file itself or forwards the request to the *service
//! node* that caches it. Caching actions are broadcast; load information
//! piggybacks on every intra-cluster message.
//!
//! The five versions of Table 1 are selected with [`PressVersion`]:
//! TCP-PRESS, TCP-PRESS-HB (heartbeats), VIA-PRESS-0 (regular user-level
//! messages), VIA-PRESS-3 (remote writes + polling), VIA-PRESS-5
//! (zero-copy, dynamically pinned file cache).
//!
//! [`PressNode`] is transport-agnostic: it drives any
//! [`transport::Substrate`] and reacts to its upcalls, so behavioural
//! differences between the versions *emerge* from the substrates' fault
//! models rather than being scripted.

pub mod cache;
pub mod config;
pub mod msg;
pub mod node;
pub mod version;

pub use cache::{Directory, LruCache};
pub use config::{CacheSyncImpl, MembershipImpl, PressConfig};
pub use msg::{MsgBody, PressMsg, Request};
pub use node::{AppEffect, AppEvent, ClientAccept, DropReason, NodeCtx, PressNode};
pub use version::PressVersion;
