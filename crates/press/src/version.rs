//! The five PRESS versions of Table 1.

use transport::{CostModel, ViaMode};

/// Which PRESS build is running — Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PressVersion {
    /// TCP intra-cluster communication; connection breaks trigger
    /// reconfiguration.
    Tcp,
    /// TCP plus a heartbeat ring for failure detection.
    TcpHb,
    /// VIA with regular user-level messages.
    Via0,
    /// VIA with remote memory writes and polling in all messages.
    Via3,
    /// VIA-PRESS-3 plus zero-copy file transfers (pinned file cache).
    Via5,
}

impl PressVersion {
    /// All versions in Table 1 order.
    pub const ALL: [PressVersion; 5] = [
        PressVersion::Tcp,
        PressVersion::TcpHb,
        PressVersion::Via0,
        PressVersion::Via3,
        PressVersion::Via5,
    ];

    /// The paper's name for the version.
    pub fn name(self) -> &'static str {
        match self {
            PressVersion::Tcp => "TCP-PRESS",
            PressVersion::TcpHb => "TCP-PRESS-HB",
            PressVersion::Via0 => "VIA-PRESS-0",
            PressVersion::Via3 => "VIA-PRESS-3",
            PressVersion::Via5 => "VIA-PRESS-5",
        }
    }

    /// Whether the version runs on VIA (vs. TCP).
    pub fn uses_via(self) -> bool {
        !matches!(self, PressVersion::Tcp | PressVersion::TcpHb)
    }

    /// Whether the version runs the heartbeat failure detector.
    pub fn heartbeats(self) -> bool {
        self == PressVersion::TcpHb
    }

    /// Whether intra-cluster messages use remote memory writes.
    pub fn remote_writes(self) -> bool {
        matches!(self, PressVersion::Via3 | PressVersion::Via5)
    }

    /// Whether file transfers are zero-copy (requires dynamic pinning of
    /// the file cache).
    pub fn zero_copy(self) -> bool {
        self == PressVersion::Via5
    }

    /// The VIA mode for VIA versions.
    pub fn via_mode(self) -> Option<ViaMode> {
        match self {
            PressVersion::Tcp | PressVersion::TcpHb => None,
            PressVersion::Via0 => Some(ViaMode::Messaging),
            PressVersion::Via3 | PressVersion::Via5 => Some(ViaMode::RemoteWrite),
        }
    }

    /// The calibrated cost model for the version's substrate.
    pub fn cost_model(self) -> CostModel {
        match self {
            PressVersion::Tcp | PressVersion::TcpHb => CostModel::tcp(),
            PressVersion::Via0 => CostModel::via0(),
            PressVersion::Via3 => CostModel::via3(),
            PressVersion::Via5 => CostModel::via5(),
        }
    }

    /// Near-peak throughput the paper measured on its 4-node test-bed
    /// (Table 1), in requests per second — the reference our calibration
    /// targets.
    pub fn paper_throughput(self) -> f64 {
        match self {
            PressVersion::Tcp => 4965.0,
            PressVersion::TcpHb => 4965.0,
            PressVersion::Via0 => 6031.0,
            PressVersion::Via3 => 6221.0,
            PressVersion::Via5 => 7058.0,
        }
    }

    /// Table 1's "main features" column.
    pub fn main_features(self) -> &'static str {
        match self {
            PressVersion::Tcp => {
                "TCP used for intra-cluster communication; connection breaks trigger reconfiguration"
            }
            PressVersion::TcpHb => {
                "TCP used for intra-cluster communication; loss of heartbeat messages triggers reconfiguration"
            }
            PressVersion::Via0 => {
                "VIA used for intra-cluster communication; connection breaks trigger reconfiguration"
            }
            PressVersion::Via3 => {
                "VIA with remote memory writes in all messages; connection breaks trigger reconfiguration"
            }
            PressVersion::Via5 => {
                "VIA with remote memory writes and zero-copy data transfers; connection breaks trigger reconfiguration"
            }
        }
    }
}

impl std::fmt::Display for PressVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_table_1() {
        use PressVersion::*;
        assert!(!Tcp.uses_via() && !TcpHb.uses_via());
        assert!(Via0.uses_via() && Via3.uses_via() && Via5.uses_via());
        assert!(TcpHb.heartbeats());
        assert!(PressVersion::ALL.iter().filter(|v| v.heartbeats()).count() == 1);
        assert!(!Via0.remote_writes() && Via3.remote_writes() && Via5.remote_writes());
        assert!(Via5.zero_copy() && !Via3.zero_copy());
    }

    #[test]
    fn paper_throughputs_are_ordered() {
        use PressVersion::*;
        assert_eq!(Tcp.paper_throughput(), TcpHb.paper_throughput());
        assert!(Via0.paper_throughput() > Tcp.paper_throughput());
        assert!(Via3.paper_throughput() > Via0.paper_throughput());
        assert!(Via5.paper_throughput() > Via3.paper_throughput());
    }

    #[test]
    fn via_modes_match_versions() {
        assert_eq!(PressVersion::Tcp.via_mode(), None);
        assert_eq!(PressVersion::Via0.via_mode(), Some(ViaMode::Messaging));
        assert_eq!(PressVersion::Via5.via_mode(), Some(ViaMode::RemoteWrite));
    }

    #[test]
    fn zero_copy_implies_zero_copy_cost_model() {
        for v in PressVersion::ALL {
            assert_eq!(v.cost_model().zero_copy_bulk, v.zero_copy());
        }
    }
}
