//! Intra-cluster message types and the client request record.
//!
//! Variable-length payloads (membership views, cache summaries) are
//! `Arc`-shared slices: fanning one logical message out to N peers
//! clones the `PressMsg` N times, and with `Arc` payloads each clone is
//! a reference-count bump instead of a fresh heap allocation.

use std::sync::Arc;

use simnet::fabric::NodeId;
use simnet::SimTime;

/// Identifies a file in the (static) document set.
pub type FileId = u32;

/// One client HTTP request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Globally unique request id (assigned by the client pool).
    pub id: u64,
    /// The file requested.
    pub file: FileId,
    /// When the client issued it.
    pub issued: SimTime,
}

/// An intra-cluster message. Every message piggybacks the sender's
/// current load ("each node piggy-backs its current load onto any
/// intra-cluster message", §3).
#[derive(Debug, Clone, PartialEq)]
pub struct PressMsg {
    /// Sender's open-connection count at send time.
    pub load: u32,
    /// The payload.
    pub body: MsgBody,
}

/// Message payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum MsgBody {
    /// Initial node asks the service node for a file.
    Forward {
        /// The request being served.
        req_id: u64,
        /// The file wanted.
        file: FileId,
    },
    /// Service node returns the file contents to the initial node.
    FileResp {
        /// The request being served.
        req_id: u64,
        /// The file (its bytes ride in the frame's size accounting).
        file: FileId,
    },
    /// The sender started caching `file` (§3: broadcast on caching).
    CacheAdd {
        /// The file now cached at the sender.
        file: FileId,
    },
    /// The sender evicted `file` from its cache.
    CacheEvict {
        /// The file no longer cached at the sender.
        file: FileId,
    },
    /// Batched cache deltas (`CacheSyncImpl::Digest`): everything the
    /// sender's cache gained and lost since the receiver's last digest,
    /// coalesced to at most one entry per file — a file cached and
    /// evicted between digests collapses to a single (idempotent)
    /// evict.
    CacheDigest {
        /// Files now cached at the sender that the receiver hasn't
        /// been told about.
        adds: Arc<[FileId]>,
        /// Files evicted at the sender since the receiver's last
        /// digest.
        evicts: Arc<[FileId]>,
    },
    /// Heartbeat to the ring successor (TCP-PRESS-HB).
    Heartbeat {
        /// Monotonic per-sender sequence number.
        seq: u64,
    },
    /// SWIM epidemic-membership traffic (ping/ping-req/ack with
    /// piggybacked updates), when `MembershipImpl::Gossip` replaces the
    /// heartbeat ring.
    Gossip(gossip::GossipMsg),
    /// Reconfiguration notice: the sender excluded `node` from the
    /// cooperating cluster (the ring is modified on every fault, §3).
    MemberDown {
        /// The excluded node.
        node: NodeId,
    },
    /// A restarted node asks to re-enter the cluster.
    RejoinRequest,
    /// Reply to a rejoin: the current membership view.
    RejoinInfo {
        /// Nodes the responder currently cooperates with.
        members: Arc<[NodeId]>,
    },
    /// Cache contents summary sent to a rejoining node so it can route.
    CacheInfo {
        /// Files cached at the sender.
        files: Arc<[FileId]>,
    },
    /// Membership-repair extension (§6.2 future work): probe asking a
    /// non-member to merge back.
    MergeRequest,
    /// Membership-repair extension: accept a merge, sharing the view.
    MergeAccept {
        /// Nodes the responder currently cooperates with.
        members: Arc<[NodeId]>,
    },
    /// Membership-repair extension: a previously excluded node is back.
    MemberUp {
        /// The re-admitted node.
        node: NodeId,
    },
}

impl PressMsg {
    /// Wire size of the message payload in bytes, using era-appropriate
    /// encodings (fixed small control records, 4-byte file ids, and the
    /// configured file size for file data).
    pub fn wire_bytes(&self, file_bytes: u32) -> u32 {
        match &self.body {
            MsgBody::Forward { .. } => 64,
            MsgBody::FileResp { .. } => file_bytes,
            MsgBody::CacheAdd { .. } | MsgBody::CacheEvict { .. } => 32,
            MsgBody::CacheDigest { adds, evicts } => {
                32 + 4 * (adds.len() + evicts.len()) as u32
            }
            MsgBody::Heartbeat { .. } => 32,
            // Fixed header plus (node, incarnation, state) triples.
            MsgBody::Gossip(g) => 32 + 16 * g.updates().len() as u32,
            MsgBody::MemberDown { .. } => 32,
            MsgBody::MergeRequest | MsgBody::MemberUp { .. } => 32,
            MsgBody::MergeAccept { members } => 32 + 4 * members.len() as u32,
            MsgBody::RejoinRequest => 32,
            MsgBody::RejoinInfo { members } => 32 + 4 * members.len() as u32,
            MsgBody::CacheInfo { files } => 32 + 4 * files.len() as u32,
        }
    }

    /// The transport-level class of this message, used for cost
    /// accounting and fault interposition targeting.
    pub fn class(&self) -> transport::MsgClass {
        use transport::MsgClass;
        match &self.body {
            MsgBody::Forward { .. } => MsgClass::Forward,
            MsgBody::FileResp { .. } => MsgClass::FileData,
            MsgBody::CacheAdd { .. }
            | MsgBody::CacheEvict { .. }
            | MsgBody::CacheDigest { .. } => MsgClass::CacheUpdate,
            MsgBody::Heartbeat { .. } | MsgBody::Gossip(_) => MsgClass::Heartbeat,
            MsgBody::MemberDown { .. }
            | MsgBody::RejoinRequest
            | MsgBody::RejoinInfo { .. }
            | MsgBody::CacheInfo { .. }
            | MsgBody::MergeRequest
            | MsgBody::MergeAccept { .. }
            | MsgBody::MemberUp { .. } => MsgClass::Control,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_data_uses_the_configured_file_size() {
        let m = PressMsg {
            load: 0,
            body: MsgBody::FileResp { req_id: 1, file: 2 },
        };
        assert_eq!(m.wire_bytes(8192), 8192);
        assert_eq!(m.class(), transport::MsgClass::FileData);
    }

    #[test]
    fn control_messages_are_small() {
        for body in [
            MsgBody::Forward { req_id: 1, file: 2 },
            MsgBody::CacheAdd { file: 3 },
            MsgBody::CacheEvict { file: 3 },
            MsgBody::Heartbeat { seq: 9 },
            MsgBody::RejoinRequest,
        ] {
            let m = PressMsg { load: 0, body };
            assert!(m.wire_bytes(8192) <= 64);
        }
    }

    #[test]
    fn cache_info_scales_with_entries() {
        let m = PressMsg {
            load: 0,
            body: MsgBody::CacheInfo {
                files: (0..1000).collect(),
            },
        };
        assert_eq!(m.wire_bytes(8192), 32 + 4000);
        assert_eq!(m.class(), transport::MsgClass::Control);
    }
}
