//! The PRESS node: request routing, cooperative caching, reconfiguration
//! and rejoin, over any [`Substrate`].
//!
//! # Execution model
//!
//! The composition layer owns the node's CPU meter and its transport
//! endpoint and calls into the node for: client arrivals
//! ([`PressNode::client_request`]), its own scheduled continuations
//! ([`PressNode::on_app_event`]) and transport upcalls
//! ([`PressNode::on_upcall`]). Every entry point takes a [`NodeCtx`] and
//! pushes [`AppEffect`]s (things only the composition layer can do:
//! schedule events, complete client requests, restart the process).
//!
//! # Blocking
//!
//! PRESS serializes intra-cluster sending; when the substrate reports
//! [`SendStatus::WouldBlock`] towards some peer the node *freezes* its
//! data path — the behaviour behind "the stalling of communication to
//! the faulty node freezes the entire cluster" (§5.4). Heartbeats,
//! membership control and rejoin handling keep running (they live on
//! their own timers/threads in real PRESS), which is exactly what lets
//! TCP-PRESS-HB splinter and recover while TCP-PRESS stays frozen.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use simnet::fabric::NodeId;
use simnet::{CpuMeter, SimTime};
use transport::{
    BreakReason, CallParams, Effects, SendInterposer, SendStatus, Substrate, Upcall,
};

use crate::cache::{Directory, LruCache};
use crate::config::{CacheSyncImpl, MembershipImpl, PressConfig};
use crate::msg::{FileId, MsgBody, PressMsg, Request};
use crate::version::PressVersion;

/// Continuations the node schedules for itself.
#[derive(Debug, Clone, PartialEq)]
pub enum AppEvent {
    /// Accept/parse CPU finished for a client request.
    Parsed(Request),
    /// A disk read completed.
    DiskDone(DiskJob),
    /// A forwarded request has waited as long as its client would.
    PendingTimeout(u64),
    /// Periodic heartbeat send/check (TCP-PRESS-HB).
    HeartbeatTick,
    /// One SWIM protocol period ([`MembershipImpl::Gossip`]).
    GossipTick,
    /// Periodic rejoin attempt after a restart.
    RejoinTick,
    /// Periodic membership-repair probe (extension, off by default).
    ProbeTick,
    /// Periodic cache-digest flush ([`CacheSyncImpl::Digest`] only).
    DigestTick,
}

/// What a finished disk read was for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskJob {
    /// A locally served client request.
    Local(Request),
    /// A request forwarded to us by `from`.
    Remote {
        /// The forwarded request id.
        req_id: u64,
        /// The file read.
        file: FileId,
        /// The initial node awaiting the data.
        from: NodeId,
    },
}

/// Things only the composition layer can do for the node.
#[derive(Debug, Clone, PartialEq)]
pub enum AppEffect {
    /// Call [`PressNode::on_app_event`] with `ev` at time `at`.
    Schedule {
        /// When.
        at: SimTime,
        /// What.
        ev: AppEvent,
    },
    /// Like `Schedule`, but for fixed-horizon watchdogs (`at` is always
    /// the current time plus one constant): successive emissions have
    /// non-decreasing timestamps, so the composition layer can queue
    /// them on an O(1) already-sorted lane instead of the heap.
    ScheduleMonotone {
        /// When.
        at: SimTime,
        /// What.
        ev: AppEvent,
    },
    /// The response for `req_id` leaves the node at `at` (success if the
    /// client is still waiting).
    Reply {
        /// The completed request.
        req_id: u64,
        /// Completion time (after CPU queueing).
        at: SimTime,
    },
    /// Fail-fast: the process terminates itself; the Mendosus daemon
    /// will restart it.
    ProcessExit {
        /// Why (for reports).
        reason: &'static str,
    },
}

/// Why a client arrival was turned away (for root-cause attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The node was frozen on a blocked send and its deferred queue
    /// overflowed (§5.4).
    DeferOverflow,
    /// Admission control shed the request under CPU backlog.
    Admission,
}

/// Outcome of handing a client request to the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientAccept {
    /// The request entered the server.
    Accepted,
    /// The listen/accept queue was full (the client's connection attempt
    /// will time out).
    Dropped(DropReason),
}

/// Everything a node entry point may touch, borrowed from the
/// composition layer.
///
/// Generic over the substrate so a caller holding a concrete transport
/// (e.g. `SubstrateImpl`) gets fully monomorphized, devirtualized node
/// code; the default parameter keeps trait-object callers (tests, mock
/// substrates) working unchanged.
pub struct NodeCtx<'a, S: ?Sized = dyn Substrate<PressMsg> + 'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// This node's CPU.
    pub cpu: &'a mut CpuMeter,
    /// This node's transport endpoint.
    pub sub: &'a mut S,
    /// The Mendosus interposition layer for send parameters.
    pub interposer: &'a mut dyn SendInterposer,
    /// Transport effects produced during the call (frames, timers, CPU).
    pub fx: &'a mut Effects<PressMsg>,
    /// Application effects produced during the call.
    pub app: &'a mut Vec<AppEffect>,
}

/// Behaviour counters for experiments and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Requests served from the local cache.
    pub served_local: u64,
    /// Requests served via a remote cache.
    pub served_remote: u64,
    /// Requests that needed a disk read.
    pub served_disk: u64,
    /// Client arrivals dropped at admission.
    pub dropped_admission: u64,
    /// Work items dropped because the deferred queue overflowed.
    pub dropped_deferred: u64,
    /// Sends dropped after a synchronous EFAULT.
    pub efault_drops: u64,
    /// Forwarded requests that timed out waiting for the service node.
    pub forward_timeouts: u64,
    /// Messages ignored because the sender is not a member.
    pub ignored_foreign: u64,
    /// Files served but not cached because pinning failed (VIA-PRESS-5).
    pub pin_cache_skips: u64,
    /// Peers excluded from the cluster.
    pub exclusions: u64,
    /// Rejoin requests disregarded because the node seemed alive.
    pub rejoins_disregarded: u64,
    /// Times this node completed a rejoin.
    pub rejoined: u64,
    /// Sub-cluster merges completed by the membership-repair extension.
    pub merges: u64,
    /// Cache-synchronization frames handed to the transport: one per
    /// peer per caching action under [`CacheSyncImpl::Eager`], one per
    /// non-empty digest flush under [`CacheSyncImpl::Digest`].
    pub cache_sync_frames: u64,
    /// Non-empty `CacheDigest` frames sent (digest mode only).
    pub digest_flushes: u64,
    /// Caching deltas recorded into the digest log (digest mode only);
    /// `digest_deltas / digest_flushes` is the achieved batching.
    pub digest_deltas: u64,
    /// Digest flushes the transport refused (would-block, sync error,
    /// or no connection); the peer's watermark is not advanced, so the
    /// same deltas retry on its next round-robin turn.
    pub digest_retries: u64,
}

#[derive(Debug)]
struct Stalled {
    msg: PressMsg,
    remaining: VecDeque<NodeId>,
}

#[derive(Debug)]
enum Deferred {
    Client(Request),
    Event(AppEvent),
    Deliver { peer: NodeId, msg: PressMsg },
}

/// One PRESS server process.
#[derive(Debug)]
pub struct PressNode {
    id: NodeId,
    version: PressVersion,
    config: PressConfig,
    members: BTreeSet<NodeId>,
    joined: bool,
    rejoining: bool,
    announce_on_connect: bool,
    rejoin_tries: u32,
    last_hb: BTreeMap<NodeId, SimTime>,
    hb_seq: u64,
    /// The SWIM detector, present iff this version runs
    /// [`MembershipImpl::Gossip`].
    swim: Option<gossip::Swim>,
    /// When each currently open suspicion started (for trace spans).
    suspect_since: BTreeMap<NodeId, SimTime>,
    cache: LruCache,
    directory: Directory,
    /// Coalesced caching deltas awaiting digest flushes, keyed by file:
    /// whether the file is now cached here, and the generation the
    /// delta was recorded at ([`CacheSyncImpl::Digest`] only).
    digest_log: BTreeMap<FileId, (bool, u64)>,
    /// Monotonic generation stamped on each recorded delta.
    digest_gen: u64,
    /// Round-robin flush position over the sorted peer list.
    digest_cursor: usize,
    /// Highest generation each peer has been sent a digest through.
    peer_digest_gen: BTreeMap<NodeId, u64>,
    load_map: Vec<u32>,
    open_requests: u32,
    pending_remote: BTreeMap<u64, (Request, NodeId)>,
    disks: Vec<SimTime>,
    stalled: Option<Stalled>,
    deferred: VecDeque<Deferred>,
    stats: NodeStats,
    trace: bool,
    attr: bool,
}

impl PressNode {
    /// Creates a stopped node; call [`PressNode::start`] to boot it.
    pub fn new(id: NodeId, version: PressVersion, config: PressConfig) -> Self {
        let cache = LruCache::new(config.cache_entries());
        let directory = Directory::new(config.files);
        let nodes = config.nodes;
        PressNode {
            id,
            version,
            config,
            members: BTreeSet::new(),
            joined: false,
            rejoining: false,
            announce_on_connect: false,
            rejoin_tries: 0,
            last_hb: BTreeMap::new(),
            hb_seq: 0,
            swim: None,
            suspect_since: BTreeMap::new(),
            cache,
            directory,
            digest_log: BTreeMap::new(),
            digest_gen: 0,
            digest_cursor: 0,
            peer_digest_gen: BTreeMap::new(),
            load_map: vec![0; nodes],
            open_requests: 0,
            pending_remote: BTreeMap::new(),
            disks: Vec::new(),
            stalled: None,
            deferred: VecDeque::new(),
            stats: NodeStats::default(),
            trace: false,
            attr: false,
        }
    }

    /// Enables or disables structured trace emission; traced events are
    /// appended to `ctx.fx` as [`Effect::Trace`] for the harness to
    /// collect.
    pub fn set_trace(&mut self, enabled: bool) {
        self.trace = enabled;
    }

    /// Enables or disables causal attribution evidence; evidence is
    /// appended to `ctx.fx` as [`transport::Effect::Attr`] for the
    /// cluster's attribution accumulator.
    pub fn set_attr(&mut self, enabled: bool) {
        self.attr = enabled;
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The version this node runs.
    pub fn version(&self) -> PressVersion {
        self.version
    }

    /// Behaviour counters.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// SWIM protocol counters, when this node runs
    /// [`MembershipImpl::Gossip`].
    pub fn swim_stats(&self) -> Option<&gossip::SwimStats> {
        self.swim.as_ref().map(|s| s.stats())
    }

    /// Whether this node runs the epidemic detector instead of the ring.
    fn gossip_active(&self) -> bool {
        self.version.heartbeats() && self.config.membership == MembershipImpl::Gossip
    }

    /// Current cooperating membership (includes self).
    pub fn members(&self) -> &BTreeSet<NodeId> {
        &self.members
    }

    /// Whether the node currently cooperates with anyone besides itself.
    pub fn is_cooperating(&self) -> bool {
        self.members.len() > 1
    }

    /// Whether the data path is currently frozen on a blocked send.
    pub fn is_blocked(&self) -> bool {
        self.stalled.is_some()
    }

    /// Files currently cached (for rejoin cache-info and tests).
    pub fn cached_files(&self) -> Vec<FileId> {
        self.cache.files().collect()
    }

    /// This node's view of who caches what (for experiments and the
    /// eager-vs-digest equivalence tests).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Files with recorded caching deltas not yet flushed to every
    /// current peer ([`CacheSyncImpl::Digest`]; empty under eager).
    pub fn digest_pending(&self) -> Vec<FileId> {
        let floor = self.peer_digest_floor();
        self.digest_log
            .iter()
            .filter(|(_, (_, gen))| *gen > floor)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Whether this node batches caching actions into digests.
    fn digest_active(&self) -> bool {
        self.config.cache_sync == CacheSyncImpl::Digest
    }

    /// The highest generation every current peer has already received.
    fn peer_digest_floor(&self) -> u64 {
        self.members
            .iter()
            .filter(|p| **p != self.id)
            .map(|p| self.peer_digest_gen.get(p).copied().unwrap_or(0))
            .min()
            .unwrap_or(self.digest_gen)
    }

    /// Boots the process.
    ///
    /// `cold` start: the whole cluster is coming up together, so the
    /// node assumes full membership. Otherwise this is a restart into a
    /// running cluster: the node starts alone and runs the rejoin
    /// protocol (§3 "Reconfiguration").
    pub fn start<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, cold: bool) {
        self.members.clear();
        self.members.insert(self.id);
        self.joined = cold;
        self.rejoining = !cold;
        self.announce_on_connect = !cold;
        self.rejoin_tries = 0;
        self.open_requests = 0;
        self.pending_remote.clear();
        if self.attr && self.stalled.is_some() {
            // A restart clears a frozen data path; close the stall
            // window so attribution does not blame it forever.
            ctx.fx.push(transport::Effect::Attr(telemetry::AttrEvent::StallEnd));
        }
        self.stalled = None;
        self.deferred.clear();
        self.cache.clear();
        self.directory = Directory::new(self.config.files);
        self.digest_log.clear();
        self.digest_gen = 0;
        self.digest_cursor = 0;
        self.peer_digest_gen.clear();
        self.disks = vec![ctx.now; self.config.disks_per_node];
        self.last_hb.clear();
        if cold {
            for n in 0..self.config.nodes {
                self.members.insert(NodeId(n));
            }
        }
        for n in 0..self.config.nodes {
            let peer = NodeId(n);
            if peer != self.id {
                ctx.sub.open(ctx.now, peer, ctx.fx);
                self.last_hb.insert(peer, ctx.now);
            }
        }
        self.suspect_since.clear();
        if self.gossip_active() {
            // The detector sees the same initial view the node holds: a
            // warm restart starts alone and learns peers through the
            // rejoin protocol (admit_member → readmit).
            self.swim = Some(gossip::Swim::new(
                self.config.gossip.clone(),
                self.id,
                self.members.iter().copied(),
            ));
            ctx.app.push(AppEffect::Schedule {
                at: ctx.now + self.config.gossip.probe_interval,
                ev: AppEvent::GossipTick,
            });
        } else if self.version.heartbeats() {
            ctx.app.push(AppEffect::Schedule {
                at: ctx.now + self.config.hb_interval,
                ev: AppEvent::HeartbeatTick,
            });
        }
        if !cold {
            ctx.app.push(AppEffect::Schedule {
                at: ctx.now + self.config.rejoin_retry,
                ev: AppEvent::RejoinTick,
            });
        }
        if self.config.membership_repair {
            ctx.app.push(AppEffect::Schedule {
                at: ctx.now + self.config.repair_probe_interval,
                ev: AppEvent::ProbeTick,
            });
        }
        if self.digest_active() {
            ctx.app.push(AppEffect::Schedule {
                at: ctx.now + self.config.digest_interval,
                ev: AppEvent::DigestTick,
            });
        }
    }

    /// Pre-populates this node's cache and cluster directory so
    /// experiments start in the steady state (skipping the multi-minute
    /// cold-cache warm-up). `assignment[f]` is the node caching file `f`.
    pub fn prewarm<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, assignment: &[NodeId]) {
        for (f, &holder) in assignment.iter().enumerate() {
            let file = f as FileId;
            self.directory.add(file, holder);
            if holder == self.id {
                self.cache.insert(file);
                if self.version.zero_copy() {
                    // Zero-copy requires every cached file pinned. At
                    // prewarm the ceiling must accommodate the full
                    // cache; failures here would be a config error.
                    ctx.sub
                        .register_pages(ctx.now, self.config.pages_per_file(), ctx.fx)
                        .expect("prewarm must fit under the pinning ceiling");
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Sending helpers
    // ------------------------------------------------------------------

    fn make_msg(&self, body: MsgBody) -> PressMsg {
        PressMsg {
            load: self.open_requests,
            body,
        }
    }

    /// Sends one message; on WouldBlock the node freezes with the
    /// message stalled. Returns `false` if the message could not be
    /// handed over at all (connection gone / EFAULT).
    fn send_to<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, peer: NodeId, body: MsgBody) -> bool {
        let msg = self.make_msg(body);
        let class = msg.class();
        let bytes = msg.wire_bytes(self.config.file_bytes);
        let params = ctx.interposer.mangle(ctx.now, class, CallParams::default());
        match ctx.sub.send(ctx.now, peer, class, msg.clone(), bytes, params, ctx.fx) {
            SendStatus::Accepted => true,
            SendStatus::WouldBlock => {
                if self.attr && self.stalled.is_none() {
                    ctx.fx.push(transport::Effect::Attr(telemetry::AttrEvent::StallBegin));
                }
                self.stalled = Some(Stalled {
                    msg,
                    remaining: VecDeque::from([peer]),
                });
                false
            }
            SendStatus::SyncError => {
                self.stats.efault_drops += 1;
                false
            }
            SendStatus::NotConnected => false,
        }
    }

    /// Best-effort control send: never blocks the node (a full queue
    /// just delays/drops the control message — heartbeats may be late).
    fn send_control<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, peer: NodeId, body: MsgBody) -> SendStatus {
        let msg = self.make_msg(body);
        let class = msg.class();
        let bytes = msg.wire_bytes(self.config.file_bytes);
        let params = ctx.interposer.mangle(ctx.now, class, CallParams::default());
        ctx.sub.send(ctx.now, peer, class, msg, bytes, params, ctx.fx)
    }

    /// Broadcasts `body` to all other members, freezing on WouldBlock.
    fn broadcast<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, body: MsgBody) {
        let msg = self.make_msg(body);
        let class = msg.class();
        let bytes = msg.wire_bytes(self.config.file_bytes);
        let targets: VecDeque<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|p| *p != self.id)
            .collect();
        let mut remaining = targets;
        while let Some(&peer) = remaining.front() {
            let params = ctx.interposer.mangle(ctx.now, class, CallParams::default());
            match ctx
                .sub
                .send(ctx.now, peer, class, msg.clone(), bytes, params, ctx.fx)
            {
                SendStatus::WouldBlock => {
                    if self.attr && self.stalled.is_none() {
                        ctx.fx.push(transport::Effect::Attr(telemetry::AttrEvent::StallBegin));
                    }
                    self.stalled = Some(Stalled { msg, remaining });
                    return;
                }
                SendStatus::SyncError => {
                    self.stats.efault_drops += 1;
                    remaining.pop_front();
                }
                SendStatus::Accepted | SendStatus::NotConnected => {
                    remaining.pop_front();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Client path
    // ------------------------------------------------------------------

    /// A client request arrives (this node is its *initial node*).
    pub fn client_request<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, req: Request) -> ClientAccept {
        if self.is_blocked() {
            if self.deferred.len() < self.config.deferred_cap {
                if self.attr {
                    ctx.fx.push(transport::Effect::Attr(telemetry::AttrEvent::Deferred {
                        req_id: req.id,
                    }));
                }
                self.deferred.push_back(Deferred::Client(req));
                return ClientAccept::Accepted;
            }
            self.stats.dropped_deferred += 1;
            return ClientAccept::Dropped(DropReason::DeferOverflow);
        }
        if ctx.cpu.backlog(ctx.now) > self.config.admission_backlog {
            self.stats.dropped_admission += 1;
            return ClientAccept::Dropped(DropReason::Admission);
        }
        self.open_requests += 1;
        let done = ctx.cpu.charge(ctx.now, self.config.accept_parse_cost);
        ctx.app.push(AppEffect::Schedule {
            at: done,
            ev: AppEvent::Parsed(req),
        });
        ClientAccept::Accepted
    }

    fn route<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, req: Request) {
        ctx.cpu.charge(ctx.now, self.config.route_cost);
        if self.cache.contains(req.file) {
            self.cache.touch(req.file);
            self.stats.served_local += 1;
            self.finish_serve(ctx, req.id);
            return;
        }
        // Pick the least-loaded live holder.
        let holder = self
            .directory
            .holders(req.file)
            .iter()
            .copied()
            .filter(|n| *n != self.id && self.members.contains(n) && ctx.sub.is_connected(*n))
            .min_by_key(|n| self.load_map[n.0]);
        match holder {
            Some(service) => {
                self.stats.served_remote += 1;
                if self.attr {
                    ctx.fx.push(transport::Effect::Attr(telemetry::AttrEvent::Forwarded {
                        req_id: req.id,
                        peer: service.0 as u32,
                    }));
                }
                self.pending_remote.insert(req.id, (req, service));
                ctx.app.push(AppEffect::ScheduleMonotone {
                    at: ctx.now + simnet::SimDuration::from_secs(6),
                    ev: AppEvent::PendingTimeout(req.id),
                });
                self.send_to(
                    ctx,
                    service,
                    MsgBody::Forward {
                        req_id: req.id,
                        file: req.file,
                    },
                );
            }
            None => {
                // Cached nowhere (or its holder left): serve from the
                // local disk and start caching it (§3).
                self.stats.served_disk += 1;
                let done = self.disk_read(ctx.now);
                ctx.app.push(AppEffect::Schedule {
                    at: done,
                    ev: AppEvent::DiskDone(DiskJob::Local(req)),
                });
            }
        }
    }

    fn finish_serve<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, req_id: u64) {
        let done = ctx
            .cpu
            .charge(ctx.now, self.config.cache_read_cost + self.config.client_reply_cost);
        self.open_requests = self.open_requests.saturating_sub(1);
        ctx.app.push(AppEffect::Reply { req_id, at: done });
    }

    fn disk_read(&mut self, now: SimTime) -> SimTime {
        let disk = self
            .disks
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("node has at least one disk");
        let start = self.disks[disk].max(now);
        let done = start + self.config.disk_service;
        self.disks[disk] = done;
        done
    }

    /// Announces one caching action to the other members. Eager mode
    /// broadcasts immediately — O(members) frames, freezing the node on
    /// WouldBlock (§5.4). Digest mode records the delta for the next
    /// flush and never blocks; a file cached and evicted between
    /// flushes coalesces to a single (idempotent) evict.
    fn cache_sync_action<S: Substrate<PressMsg> + ?Sized>(
        &mut self,
        ctx: &mut NodeCtx<'_, S>,
        file: FileId,
        cached: bool,
    ) {
        if self.digest_active() {
            self.digest_gen += 1;
            self.digest_log.insert(file, (cached, self.digest_gen));
            self.stats.digest_deltas += 1;
            return;
        }
        self.stats.cache_sync_frames += self.members.len().saturating_sub(1) as u64;
        let body = if cached {
            MsgBody::CacheAdd { file }
        } else {
            MsgBody::CacheEvict { file }
        };
        self.broadcast(ctx, body);
    }

    /// Inserts `file` into the cache (pinning it for zero-copy versions)
    /// and announces the caching actions. Under pinnable-memory
    /// exhaustion VIA-PRESS-5 sheds cache entries to free pinned pages,
    /// and serves without caching if that is not enough (§5.4).
    fn cache_insert<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, file: FileId) {
        if self.cache.contains(file) {
            return;
        }
        let pages = self.config.pages_per_file();
        if self.version.zero_copy() {
            let mut pinned = ctx.sub.register_pages(ctx.now, pages, ctx.fx).is_ok();
            if !pinned {
                // Drop cached files (and their pins) to make room.
                for _ in 0..2 {
                    let Some(victim) = self.cache.pop_lru() else {
                        break;
                    };
                    ctx.sub.deregister_pages(ctx.now, pages, ctx.fx);
                    self.directory.remove(victim, self.id);
                    self.cache_sync_action(ctx, victim, false);
                    if self.is_blocked() {
                        break;
                    }
                    if ctx.sub.register_pages(ctx.now, pages, ctx.fx).is_ok() {
                        pinned = true;
                        break;
                    }
                }
            }
            if !pinned {
                self.stats.pin_cache_skips += 1;
                return; // serve the data, but do not cache it
            }
        }
        let evicted = self.cache.insert(file);
        self.directory.add(file, self.id);
        if let Some(victim) = evicted {
            if self.version.zero_copy() {
                ctx.sub.deregister_pages(ctx.now, pages, ctx.fx);
            }
            self.directory.remove(victim, self.id);
            self.cache_sync_action(ctx, victim, false);
            if self.is_blocked() {
                return;
            }
        }
        self.cache_sync_action(ctx, file, true);
    }

    /// One digest period: flush pending deltas to the next
    /// `digest_fanout` peers round-robin, garbage-collect deltas every
    /// current peer has seen, and re-arm. Digests ride the best-effort
    /// control path, so a flush never freezes the node; a refused send
    /// keeps the peer's watermark in place and retries next turn.
    /// Until a delta lands, the receiver's directory is merely stale —
    /// stale entries only cost disk fallbacks, never correctness, and
    /// the rejoin / merge `CacheInfo` summaries resync in full.
    fn digest_tick<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>) {
        if !self.digest_active() {
            return;
        }
        let peers: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|p| *p != self.id)
            .collect();
        if !peers.is_empty() && !self.digest_log.is_empty() {
            let fanout = self.config.digest_fanout.clamp(1, peers.len());
            for _ in 0..fanout {
                self.digest_cursor %= peers.len();
                let peer = peers[self.digest_cursor];
                self.digest_cursor += 1;
                self.flush_digest_to(ctx, peer);
            }
            let floor = self.peer_digest_floor();
            self.digest_log.retain(|_, (_, gen)| *gen > floor);
        }
        ctx.app.push(AppEffect::Schedule {
            at: ctx.now + self.config.digest_interval,
            ev: AppEvent::DigestTick,
        });
    }

    /// Sends `peer` every delta it has not seen yet as one
    /// `CacheDigest` frame (nothing if it is already caught up).
    fn flush_digest_to<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, peer: NodeId) {
        let seen = self.peer_digest_gen.get(&peer).copied().unwrap_or(0);
        let mut adds: Vec<FileId> = Vec::new();
        let mut evicts: Vec<FileId> = Vec::new();
        for (&file, &(cached, gen)) in &self.digest_log {
            if gen > seen {
                if cached {
                    adds.push(file);
                } else {
                    evicts.push(file);
                }
            }
        }
        if adds.is_empty() && evicts.is_empty() {
            // Nothing newer than the watermark; advancing it is free.
            self.peer_digest_gen.insert(peer, self.digest_gen);
            return;
        }
        let gen_at_send = self.digest_gen;
        let status = self.send_control(
            ctx,
            peer,
            MsgBody::CacheDigest {
                adds: adds.into(),
                evicts: evicts.into(),
            },
        );
        // The watermark advances only when the transport took the
        // frame: a refused digest retries in full on this peer's next
        // round-robin turn, so transient congestion or an unreachable
        // peer can delay convergence but never silently lose deltas.
        if status == SendStatus::Accepted {
            self.peer_digest_gen.insert(peer, gen_at_send);
            self.stats.cache_sync_frames += 1;
            self.stats.digest_flushes += 1;
        } else {
            self.stats.digest_retries += 1;
        }
    }

    // ------------------------------------------------------------------
    // App events
    // ------------------------------------------------------------------

    /// Handles one of this node's scheduled continuations.
    pub fn on_app_event<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, ev: AppEvent) {
        match ev {
            AppEvent::HeartbeatTick => self.heartbeat_tick(ctx),
            AppEvent::GossipTick => self.gossip_tick(ctx),
            AppEvent::RejoinTick => self.rejoin_tick(ctx),
            AppEvent::ProbeTick => self.probe_tick(ctx),
            // Flushes ride the non-blocking control path, so the tick
            // runs even while the data path is frozen on a send.
            AppEvent::DigestTick => self.digest_tick(ctx),
            AppEvent::PendingTimeout(req_id) => {
                if self.pending_remote.remove(&req_id).is_some() {
                    self.stats.forward_timeouts += 1;
                    self.open_requests = self.open_requests.saturating_sub(1);
                    if self.attr {
                        ctx.fx.push(transport::Effect::Attr(
                            telemetry::AttrEvent::ForwardTimeout { req_id },
                        ));
                    }
                }
            }
            ev if self.is_blocked() => self.defer(Deferred::Event(ev)),
            AppEvent::Parsed(req) => self.route(ctx, req),
            AppEvent::DiskDone(job) => match job {
                DiskJob::Local(req) => {
                    self.cache_insert(ctx, req.file);
                    self.finish_serve(ctx, req.id);
                }
                DiskJob::Remote { req_id, file, from } => {
                    self.cache_insert(ctx, file);
                    if !self.is_blocked() {
                        self.send_to(ctx, from, MsgBody::FileResp { req_id, file });
                    }
                }
            },
        }
    }

    fn defer(&mut self, item: Deferred) {
        if self.deferred.len() < self.config.deferred_cap {
            self.deferred.push_back(item);
        } else {
            self.stats.dropped_deferred += 1;
        }
    }

    fn heartbeat_tick<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>) {
        if !self.version.heartbeats() {
            return;
        }
        // Send to the ring successor (best effort; a full queue delays
        // the beat, which is precisely the HB false-positive risk).
        if let Some(succ) = self.ring_successor() {
            self.hb_seq += 1;
            let seq = self.hb_seq;
            if self.trace {
                ctx.fx.push(transport::Effect::Trace(
                    telemetry::TraceEvent::instant("hb.beat", "press", self.id.0 as u32, ctx.now)
                        .arg_u64("seq", seq)
                        .arg_u64("succ", succ.0 as u64),
                ));
            }
            self.send_control(ctx, succ, MsgBody::Heartbeat { seq });
        }
        // Check the predecessor.
        if let Some(pred) = self.ring_predecessor() {
            let last = self.last_hb.get(&pred).copied().unwrap_or(ctx.now);
            if ctx.now.saturating_since(last) >= self.config.hb_detect_threshold() {
                self.exclude(ctx, pred, false);
            }
        }
        ctx.app.push(AppEffect::Schedule {
            at: ctx.now + self.config.hb_interval,
            ev: AppEvent::HeartbeatTick,
        });
    }

    /// One SWIM protocol period: advance suspicions, escalate stale
    /// probes, probe the next cycle peer, and carry out whatever the
    /// state machine asks for. Control-plane like the heartbeats: never
    /// blocks on the data path.
    fn gossip_tick<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>) {
        if !self.gossip_active() {
            return;
        }
        let mut cmds = Vec::new();
        if let Some(swim) = self.swim.as_mut() {
            swim.tick(&mut cmds);
        }
        self.apply_gossip_commands(ctx, cmds);
        ctx.app.push(AppEffect::Schedule {
            at: ctx.now + self.config.gossip.probe_interval,
            ev: AppEvent::GossipTick,
        });
    }

    /// Executes the detector's commands: sends become wire messages,
    /// confirms become exclusions, suspicion transitions become trace
    /// spans.
    fn apply_gossip_commands<S: Substrate<PressMsg> + ?Sized>(
        &mut self,
        ctx: &mut NodeCtx<'_, S>,
        cmds: Vec<gossip::Command>,
    ) {
        for cmd in cmds {
            match cmd {
                gossip::Command::Send { to, msg } => {
                    if self.trace {
                        // Probes are the front of the detection path:
                        // direct pings and their indirect escalations
                        // both land on the prober's lane.
                        let name = match &msg {
                            gossip::GossipMsg::Ping { .. } => Some("gossip.probe"),
                            gossip::GossipMsg::PingReq { .. } => Some("gossip.probe_indirect"),
                            gossip::GossipMsg::Ack { .. } => None,
                        };
                        if let Some(name) = name {
                            ctx.fx.push(transport::Effect::Trace(
                                telemetry::TraceEvent::instant(
                                    name,
                                    "press",
                                    self.id.0 as u32,
                                    ctx.now,
                                )
                                .arg_u64("peer", to.0 as u64),
                            ));
                        }
                    }
                    self.send_control(ctx, to, MsgBody::Gossip(msg));
                }
                gossip::Command::Suspect { node } => {
                    self.suspect_since.entry(node).or_insert(ctx.now);
                    if self.trace {
                        ctx.fx.push(transport::Effect::Trace(
                            telemetry::TraceEvent::instant(
                                "gossip.suspect",
                                "press",
                                self.id.0 as u32,
                                ctx.now,
                            )
                            .arg_u64("peer", node.0 as u64),
                        ));
                    }
                }
                gossip::Command::ClearSuspect { node } => {
                    self.end_suspicion_span(ctx, node, "cleared");
                }
                gossip::Command::Confirm { node } => {
                    self.end_suspicion_span(ctx, node, "confirmed");
                    self.exclude(ctx, node, false);
                }
                gossip::Command::Refute { incarnation } => {
                    if self.trace {
                        ctx.fx.push(transport::Effect::Trace(
                            telemetry::TraceEvent::instant(
                                "gossip.refute",
                                "press",
                                self.id.0 as u32,
                                ctx.now,
                            )
                            .arg_u64("incarnation", incarnation),
                        ));
                    }
                }
            }
        }
    }

    /// Closes an open suspicion as a trace span covering its lifetime.
    fn end_suspicion_span<S: Substrate<PressMsg> + ?Sized>(
        &mut self,
        ctx: &mut NodeCtx<'_, S>,
        node: NodeId,
        outcome: &'static str,
    ) {
        let Some(start) = self.suspect_since.remove(&node) else {
            return;
        };
        if self.trace {
            ctx.fx.push(transport::Effect::Trace(
                telemetry::TraceEvent::span(
                    "gossip.suspicion",
                    "press",
                    self.id.0 as u32,
                    start,
                    ctx.now.saturating_since(start),
                )
                .arg_u64("peer", node.0 as u64)
                .arg_str("outcome", outcome),
            ));
        }
    }

    fn rejoin_tick<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>) {
        if !self.rejoining {
            return;
        }
        self.rejoin_tries += 1;
        if self.rejoin_tries > self.config.rejoin_attempts {
            // Give up: serve standalone (§5.3).
            self.rejoining = false;
            self.joined = true;
            return;
        }
        for n in 0..self.config.nodes {
            let peer = NodeId(n);
            if peer == self.id {
                continue;
            }
            if ctx.sub.is_connected(peer) {
                self.send_control(ctx, peer, MsgBody::RejoinRequest);
            } else {
                ctx.sub.open(ctx.now, peer, ctx.fx);
            }
        }
        ctx.app.push(AppEffect::Schedule {
            at: ctx.now + self.config.rejoin_retry,
            ev: AppEvent::RejoinTick,
        });
    }

    /// Membership-repair extension: periodically try to reach every
    /// node we currently exclude and, once reachable, merge the
    /// sub-clusters (§6.2: the "rigorous membership algorithm" the
    /// paper says heartbeats need).
    fn probe_tick<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>) {
        if !self.config.membership_repair {
            return;
        }
        if self.joined && !self.rejoining {
            for n in 0..self.config.nodes {
                let peer = NodeId(n);
                if peer == self.id || self.members.contains(&peer) {
                    continue;
                }
                if ctx.sub.is_connected(peer) {
                    self.send_control(ctx, peer, MsgBody::MergeRequest);
                } else {
                    ctx.sub.open(ctx.now, peer, ctx.fx);
                }
            }
        }
        ctx.app.push(AppEffect::Schedule {
            at: ctx.now + self.config.repair_probe_interval,
            ev: AppEvent::ProbeTick,
        });
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    fn sorted_members(&self) -> Vec<NodeId> {
        self.members.iter().copied().collect()
    }

    /// The node this node sends heartbeats to.
    pub fn ring_successor(&self) -> Option<NodeId> {
        let m = self.sorted_members();
        if m.len() < 2 {
            return None;
        }
        let i = m.iter().position(|n| *n == self.id)?;
        Some(m[(i + 1) % m.len()])
    }

    /// The node this node expects heartbeats from.
    pub fn ring_predecessor(&self) -> Option<NodeId> {
        let m = self.sorted_members();
        if m.len() < 2 {
            return None;
        }
        let i = m.iter().position(|n| *n == self.id)?;
        Some(m[(i + m.len() - 1) % m.len()])
    }

    /// Removes `peer` from the membership. `abort` says how the failure
    /// was established: `true` for a transport-level connection break
    /// (reset/abort), `false` for a failure-detector verdict — the
    /// distinction feeds root-cause attribution of flushed forwards.
    fn exclude<S: Substrate<PressMsg> + ?Sized>(
        &mut self,
        ctx: &mut NodeCtx<'_, S>,
        peer: NodeId,
        abort: bool,
    ) {
        if peer == self.id || !self.members.remove(&peer) {
            return;
        }
        self.stats.exclusions += 1;
        // Tombstone the peer in the detector so stale gossip cannot
        // resurrect it; the suspicion span (if any) is over.
        if let Some(swim) = self.swim.as_mut() {
            swim.remove(peer);
        }
        self.suspect_since.remove(&peer);
        if self.trace {
            ctx.fx.push(transport::Effect::Trace(
                telemetry::TraceEvent::instant(
                    "membership.exclude",
                    "press",
                    self.id.0 as u32,
                    ctx.now,
                )
                .arg_u64("peer", peer.0 as u64)
                .arg_u64("members_left", self.members.len() as u64),
            ));
        }
        self.directory.drop_node(peer);
        ctx.sub.close(peer);
        // Forwarded requests to the departed node will never answer.
        let dead: Vec<u64> = self
            .pending_remote
            .iter()
            .filter(|(_, (_, s))| *s == peer)
            .map(|(id, _)| *id)
            .collect();
        for id in dead {
            self.pending_remote.remove(&id);
            self.stats.forward_timeouts += 1;
            self.open_requests = self.open_requests.saturating_sub(1);
            if self.attr {
                ctx.fx.push(transport::Effect::Attr(telemetry::AttrEvent::ForwardFlushed {
                    req_id: id,
                    abort,
                }));
            }
        }
        // Reset the heartbeat view of the (possibly new) predecessor so
        // a ring change does not trigger an instant cascade.
        if let Some(pred) = self.ring_predecessor() {
            self.last_hb.insert(pred, ctx.now);
        }
        // Unfreeze anything stalled towards the departed node.
        let mut unblocked = false;
        if let Some(stalled) = &mut self.stalled {
            stalled.remaining.retain(|n| *n != peer);
            if stalled.remaining.is_empty() {
                self.stalled = None;
                unblocked = true;
                if self.attr {
                    ctx.fx.push(transport::Effect::Attr(telemetry::AttrEvent::StallEnd));
                }
            }
        }
        // Propagate the reconfiguration (§3: the ring structure is
        // modified on every fault).
        self.broadcast(ctx, MsgBody::MemberDown { node: peer });
        if unblocked && !self.is_blocked() {
            self.drain(ctx);
        }
    }

    fn admit_member<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, peer: NodeId) {
        self.members.insert(peer);
        self.last_hb.insert(peer, ctx.now);
        // Re-arm the detector at a fresh incarnation so assertions from
        // the peer's previous life cannot immediately re-kill it.
        if let Some(swim) = self.swim.as_mut() {
            swim.readmit(peer);
        }
        if let Some(pred) = self.ring_predecessor() {
            self.last_hb.entry(pred).or_insert(ctx.now);
            let e = self.last_hb.get_mut(&pred).expect("just inserted");
            *e = (*e).max(ctx.now);
        }
    }

    // ------------------------------------------------------------------
    // Upcalls
    // ------------------------------------------------------------------

    /// Handles a transport upcall.
    pub fn on_upcall<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, upcall: Upcall<PressMsg>) {
        match upcall {
            Upcall::Deliver { peer, msg, .. } => self.on_deliver(ctx, peer, msg),
            Upcall::Writable { peer } => self.on_writable(ctx, peer),
            Upcall::Connected { peer } => {
                // A restarted process identifies itself on every
                // connection it (re)establishes; peers that still think
                // it never left simply disregard the announcement.
                if self.rejoining || self.announce_on_connect {
                    self.send_control(ctx, peer, MsgBody::RejoinRequest);
                }
            }
            Upcall::ConnBroken { peer, reason } => self.on_conn_broken(ctx, peer, reason),
            Upcall::CompletionError { .. } => {
                // VIA reports bad parameters as fatal descriptor errors;
                // PRESS fail-fasts (§5.5). (TCP never emits these.)
                ctx.app.push(AppEffect::ProcessExit {
                    reason: "fatal communication descriptor error",
                });
            }
        }
    }

    fn on_conn_broken<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, peer: NodeId, reason: BreakReason) {
        if reason == BreakReason::StreamCorrupt {
            // The byte stream lost framing: the process cannot trust any
            // further input on it and terminates (restarted clean).
            ctx.app.push(AppEffect::ProcessExit {
                reason: "intra-cluster byte stream corrupted",
            });
            return;
        }
        if self.members.contains(&peer) {
            // The rigorous-membership extension verifies liveness before
            // excluding: if another healthy socket to the peer exists,
            // only a stale connection died, not the node. Anything
            // stalled on the dead socket can go out on the live one.
            if self.config.membership_repair && ctx.sub.is_connected(peer) {
                self.on_writable(ctx, peer);
                return;
            }
            // PRESS's failure detector: a broken connection means the
            // peer died (§3).
            self.exclude(ctx, peer, true);
        }
    }

    fn on_writable<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, peer: NodeId) {
        let Some(stalled) = &self.stalled else {
            return;
        };
        if stalled.remaining.front() != Some(&peer) {
            return;
        }
        // Retry the stalled transmission(s).
        let Stalled { msg, mut remaining } = self.stalled.take().expect("checked");
        let class = msg.class();
        let bytes = msg.wire_bytes(self.config.file_bytes);
        while let Some(&target) = remaining.front() {
            if !self.members.contains(&target) {
                remaining.pop_front();
                continue;
            }
            let params = ctx.interposer.mangle(ctx.now, class, CallParams::default());
            match ctx
                .sub
                .send(ctx.now, target, class, msg.clone(), bytes, params, ctx.fx)
            {
                SendStatus::WouldBlock => {
                    // The same logical stall continues; no new window.
                    self.stalled = Some(Stalled { msg, remaining });
                    return;
                }
                SendStatus::SyncError => {
                    self.stats.efault_drops += 1;
                    remaining.pop_front();
                }
                SendStatus::Accepted | SendStatus::NotConnected => {
                    remaining.pop_front();
                }
            }
        }
        if self.attr {
            ctx.fx.push(transport::Effect::Attr(telemetry::AttrEvent::StallEnd));
        }
        self.drain(ctx);
    }

    /// Replays deferred work after an unfreeze, stopping if the node
    /// re-freezes.
    fn drain<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>) {
        while !self.is_blocked() {
            let Some(item) = self.deferred.pop_front() else {
                return;
            };
            match item {
                Deferred::Client(req) => {
                    // Stale requests have already timed out at the
                    // client; processing them would be wasted work.
                    if ctx.now.saturating_since(req.issued)
                        < simnet::SimDuration::from_secs(6)
                    {
                        self.open_requests += 1;
                        let done = ctx.cpu.charge(ctx.now, self.config.accept_parse_cost);
                        ctx.app.push(AppEffect::Schedule {
                            at: done,
                            ev: AppEvent::Parsed(req),
                        });
                    } else {
                        self.stats.dropped_deferred += 1;
                    }
                }
                Deferred::Event(ev) => self.on_app_event(ctx, ev),
                Deferred::Deliver { peer, msg } => self.on_deliver(ctx, peer, msg),
            }
        }
    }

    fn on_deliver<S: Substrate<PressMsg> + ?Sized>(&mut self, ctx: &mut NodeCtx<'_, S>, peer: NodeId, msg: PressMsg) {
        // Load information piggybacks on every message (§3).
        if peer.0 < self.load_map.len() {
            self.load_map[peer.0] = msg.load;
        }
        // Control-plane traffic is handled even while the data path is
        // frozen; data-plane traffic is deferred. `CacheDigest` counts
        // as control: applying one only mutates the directory (no
        // sends, no CPU charge), and deferring it would let a frozen,
        // overloaded node drop digests its peers believe delivered.
        // The eager per-action broadcasts stay deferrable — that is
        // the paper's §5.4 behaviour.
        let is_control = matches!(
            msg.body,
            MsgBody::Heartbeat { .. }
                | MsgBody::Gossip(_)
                | MsgBody::RejoinRequest
                | MsgBody::RejoinInfo { .. }
                | MsgBody::CacheInfo { .. }
                | MsgBody::CacheDigest { .. }
                | MsgBody::MemberDown { .. }
                | MsgBody::MergeRequest
                | MsgBody::MergeAccept { .. }
                | MsgBody::MemberUp { .. }
        );
        if self.is_blocked() && !is_control {
            self.defer(Deferred::Deliver { peer, msg });
            return;
        }
        match msg.body {
            MsgBody::Heartbeat { .. } => {
                self.last_hb.insert(peer, ctx.now);
            }
            MsgBody::Gossip(g) => {
                if !self.gossip_active() {
                    return;
                }
                if !self.members.contains(&peer) {
                    // An excluded (or not-yet-admitted) peer's gossip is
                    // disregarded; re-entry goes through the rejoin
                    // protocol, not the detector.
                    self.stats.ignored_foreign += 1;
                    return;
                }
                let mut cmds = Vec::new();
                if let Some(swim) = self.swim.as_mut() {
                    swim.on_message(peer, &g, &mut cmds);
                }
                self.apply_gossip_commands(ctx, cmds);
            }
            MsgBody::MemberDown { node } => {
                if self.members.contains(&peer) && node != self.id {
                    self.exclude(ctx, node, false);
                }
            }
            MsgBody::RejoinRequest => {
                if self.members.contains(&peer) {
                    // We still believe the peer is alive: a duplicate or
                    // stale join — disregard (§5.3, the TCP-PRESS rejoin
                    // failure).
                    self.stats.rejoins_disregarded += 1;
                    return;
                }
                if !self.joined {
                    return; // we are not in a position to admit anyone
                }
                self.admit_member(ctx, peer);
                let members = self.sorted_members().into();
                self.send_control(ctx, peer, MsgBody::RejoinInfo { members });
                let files = self.cached_files().into();
                self.send_control(ctx, peer, MsgBody::CacheInfo { files });
            }
            MsgBody::RejoinInfo { members } => {
                if !self.rejoining {
                    return;
                }
                for m in members.iter().copied() {
                    if m != self.id {
                        self.admit_member(ctx, m);
                    }
                }
                self.rejoining = false;
                self.joined = true;
                self.stats.rejoined += 1;
                if self.trace {
                    ctx.fx.push(transport::Effect::Trace(
                        telemetry::TraceEvent::instant(
                            "press.rejoined",
                            "press",
                            self.id.0 as u32,
                            ctx.now,
                        )
                        .arg_u64("via_peer", peer.0 as u64)
                        .arg_u64("members", members.len() as u64),
                    ));
                }
                // With the configuration in hand, reestablish with every
                // member (§3): announce ourselves so each of them admits
                // us and sends its caching information.
                let others: Vec<NodeId> = self
                    .members
                    .iter()
                    .copied()
                    .filter(|m| *m != self.id && *m != peer)
                    .collect();
                for m in others {
                    if ctx.sub.is_connected(m) {
                        self.send_control(ctx, m, MsgBody::RejoinRequest);
                    } else {
                        ctx.sub.open(ctx.now, m, ctx.fx);
                    }
                }
            }
            MsgBody::CacheInfo { files } => {
                for f in files.iter().copied() {
                    self.directory.add(f, peer);
                }
            }
            MsgBody::MergeRequest => {
                if !self.config.membership_repair || !self.joined {
                    return;
                }
                if !self.members.contains(&peer) {
                    self.admit_member(ctx, peer);
                    self.broadcast(ctx, MsgBody::MemberUp { node: peer });
                }
                let members = self.sorted_members().into();
                self.send_control(ctx, peer, MsgBody::MergeAccept { members });
                let files = self.cached_files().into();
                self.send_control(ctx, peer, MsgBody::CacheInfo { files });
            }
            MsgBody::MergeAccept { members } => {
                if !self.config.membership_repair {
                    return;
                }
                let mut grew = false;
                for m in members.iter().copied() {
                    if m != self.id && !self.members.contains(&m) {
                        self.admit_member(ctx, m);
                        if !ctx.sub.is_connected(m) {
                            ctx.sub.open(ctx.now, m, ctx.fx);
                        }
                        grew = true;
                    }
                }
                if grew {
                    self.stats.merges += 1;
                    if self.trace {
                        ctx.fx.push(transport::Effect::Trace(
                            telemetry::TraceEvent::instant(
                                "press.merge",
                                "press",
                                self.id.0 as u32,
                                ctx.now,
                            )
                            .arg_u64("via_peer", peer.0 as u64)
                            .arg_u64("members", self.members.len() as u64),
                        ));
                    }
                    // Share caching information with the whole merged
                    // cluster so routing recovers immediately; the Arc'd
                    // summary is built once and shared by every copy.
                    let files: std::sync::Arc<[FileId]> = self.cached_files().into();
                    let members = self.sorted_members();
                    for m in members {
                        if m != self.id {
                            self.send_control(ctx, m, MsgBody::CacheInfo { files: files.clone() });
                        }
                    }
                }
            }
            MsgBody::MemberUp { node } => {
                if self.config.membership_repair
                    && self.members.contains(&peer)
                    && node != self.id
                    && !self.members.contains(&node)
                {
                    self.admit_member(ctx, node);
                    if ctx.sub.is_connected(node) {
                        let files = self.cached_files().into();
                        self.send_control(ctx, node, MsgBody::CacheInfo { files });
                    } else {
                        ctx.sub.open(ctx.now, node, ctx.fx);
                    }
                }
            }
            MsgBody::Forward { req_id, file } => {
                if !self.members.contains(&peer) {
                    self.stats.ignored_foreign += 1;
                    return;
                }
                if self.cache.contains(file) {
                    self.cache.touch(file);
                    ctx.cpu.charge(ctx.now, self.config.cache_read_cost);
                    self.send_to(ctx, peer, MsgBody::FileResp { req_id, file });
                } else {
                    // Stale directory at the initial node: fall back to
                    // our disk (every file is replicated on all disks).
                    let done = self.disk_read(ctx.now);
                    ctx.app.push(AppEffect::Schedule {
                        at: done,
                        ev: AppEvent::DiskDone(DiskJob::Remote {
                            req_id,
                            file,
                            from: peer,
                        }),
                    });
                }
            }
            MsgBody::FileResp { req_id, .. } => {
                if self.pending_remote.remove(&req_id).is_some() {
                    let done = ctx.cpu.charge(ctx.now, self.config.client_reply_cost);
                    self.open_requests = self.open_requests.saturating_sub(1);
                    ctx.app.push(AppEffect::Reply { req_id, at: done });
                }
            }
            MsgBody::CacheAdd { file } => {
                if self.members.contains(&peer) {
                    self.directory.add(file, peer);
                }
            }
            MsgBody::CacheEvict { file } => {
                if self.members.contains(&peer) {
                    self.directory.remove(file, peer);
                }
            }
            MsgBody::CacheDigest { adds, evicts } => {
                if self.members.contains(&peer) {
                    for f in adds.iter().copied() {
                        self.directory.add(f, peer);
                    }
                    for f in evicts.iter().copied() {
                        self.directory.remove(f, peer);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transport::api::CleanInterposer;
    use transport::PinFailed;

    /// A scriptable substrate: records sends, lets tests block peers or
    /// fail pin requests, and never touches a network.
    #[derive(Debug, Default)]
    struct MockSub {
        node: usize,
        connected: std::collections::BTreeSet<usize>,
        sent: Vec<(NodeId, PressMsg)>,
        opened: Vec<NodeId>,
        closed: Vec<NodeId>,
        block_to: std::collections::BTreeSet<usize>,
        pin_ok: bool,
        pinned: u32,
    }

    impl MockSub {
        fn new(node: usize) -> Self {
            MockSub {
                node,
                connected: (0..4).filter(|n| *n != node).collect(),
                pin_ok: true,
                ..MockSub::default()
            }
        }

        fn sent_to(&self, peer: usize) -> Vec<&MsgBody> {
            self.sent
                .iter()
                .filter(|(p, _)| p.0 == peer)
                .map(|(_, m)| &m.body)
                .collect()
        }
    }

    impl Substrate<PressMsg> for MockSub {
        fn node(&self) -> NodeId {
            NodeId(self.node)
        }
        fn open(&mut self, _now: SimTime, peer: NodeId, _out: &mut Effects<PressMsg>) {
            self.opened.push(peer);
        }
        fn close(&mut self, peer: NodeId) {
            self.closed.push(peer);
            self.connected.remove(&peer.0);
        }
        fn is_connected(&self, peer: NodeId) -> bool {
            self.connected.contains(&peer.0)
        }
        fn set_app_receiving(
            &mut self,
            _now: SimTime,
            _receiving: bool,
            _out: &mut Effects<PressMsg>,
        ) {
        }
        fn send(
            &mut self,
            _now: SimTime,
            peer: NodeId,
            _class: transport::MsgClass,
            msg: PressMsg,
            _bytes: u32,
            params: CallParams,
            _out: &mut Effects<PressMsg>,
        ) -> SendStatus {
            if params.ptr == transport::PtrParam::Null {
                return SendStatus::SyncError;
            }
            if self.block_to.contains(&peer.0) {
                return SendStatus::WouldBlock;
            }
            if !self.connected.contains(&peer.0) {
                return SendStatus::NotConnected;
            }
            self.sent.push((peer, msg));
            SendStatus::Accepted
        }
        fn frame_arrived(
            &mut self,
            _now: SimTime,
            _frame: simnet::fabric::Frame<transport::WirePayload<PressMsg>>,
            _out: &mut Effects<PressMsg>,
        ) {
        }
        fn transmit_failed(
            &mut self,
            _now: SimTime,
            _peer: NodeId,
            _reason: simnet::fabric::LossReason,
            _out: &mut Effects<PressMsg>,
        ) {
        }
        fn timer_fired(&mut self, _now: SimTime, _key: transport::TimerKey, _out: &mut Effects<PressMsg>) {}
        fn register_pages(
            &mut self,
            _now: SimTime,
            pages: u32,
            _out: &mut Effects<PressMsg>,
        ) -> Result<(), PinFailed> {
            if self.pin_ok {
                self.pinned += pages;
                Ok(())
            } else {
                Err(PinFailed)
            }
        }
        fn deregister_pages(&mut self, _now: SimTime, pages: u32, _out: &mut Effects<PressMsg>) {
            self.pinned = self.pinned.saturating_sub(pages);
        }
        fn set_alloc_fail(&mut self, _failing: bool) {}
        fn set_pin_fail(&mut self, failing: bool) {
            self.pin_ok = !failing;
        }
        fn restart(&mut self, _now: SimTime) {
            self.sent.clear();
        }
    }

    struct Rig {
        node: PressNode,
        sub: MockSub,
        cpu: CpuMeter,
        interposer: CleanInterposer,
        fx: Effects<PressMsg>,
        app: Vec<AppEffect>,
    }

    impl Rig {
        fn new(version: PressVersion) -> Self {
            let mut config = PressConfig::paper_testbed();
            config.files = 100;
            config.cache_bytes = 30 * u64::from(config.file_bytes);
            Rig {
                node: PressNode::new(NodeId(0), version, config),
                sub: MockSub::new(0),
                cpu: CpuMeter::new(),
                interposer: CleanInterposer,
                fx: Vec::new(),
                app: Vec::new(),
            }
        }

        fn with<R>(&mut self, f: impl FnOnce(&mut PressNode, &mut NodeCtx<'_>) -> R) -> R {
            self.with_at(SimTime::from_secs(1), f)
        }

        fn with_at<R>(
            &mut self,
            now: SimTime,
            f: impl FnOnce(&mut PressNode, &mut NodeCtx<'_>) -> R,
        ) -> R {
            let mut ctx = NodeCtx {
                now,
                cpu: &mut self.cpu,
                // Coerce to the dyn-substrate form of `NodeCtx`: the test
                // rig exercises the trait-object path the generic default
                // exists for.
                sub: &mut self.sub as &mut dyn Substrate<PressMsg>,
                interposer: &mut self.interposer,
                fx: &mut self.fx,
                app: &mut self.app,
            };
            f(&mut self.node, &mut ctx)
        }

        fn start_cold(&mut self) {
            self.with(|n, ctx| n.start(ctx, true));
            self.app.clear();
        }

        fn replies(&self) -> Vec<u64> {
            self.app
                .iter()
                .filter_map(|a| match a {
                    AppEffect::Reply { req_id, .. } => Some(*req_id),
                    _ => None,
                })
                .collect()
        }

        fn scheduled(&self) -> Vec<&AppEvent> {
            self.app
                .iter()
                .filter_map(|a| match a {
                    AppEffect::Schedule { ev, .. } => Some(ev),
                    _ => None,
                })
                .collect()
        }
    }

    fn req(id: u64, file: FileId) -> Request {
        Request {
            id,
            file,
            issued: SimTime::from_secs(1),
        }
    }

    #[test]
    fn cold_start_assumes_full_membership_and_opens_connections() {
        let mut rig = Rig::new(PressVersion::Tcp);
        rig.start_cold();
        assert_eq!(rig.node.members().len(), 4);
        assert_eq!(rig.sub.opened.len(), 3);
        assert!(rig.node.is_cooperating());
    }

    #[test]
    fn local_hit_serves_without_messaging() {
        let mut rig = Rig::new(PressVersion::Tcp);
        rig.start_cold();
        let assignment: Vec<NodeId> = (0..100).map(|f| NodeId((f % 4) as usize)).collect();
        rig.with(|n, ctx| n.prewarm(ctx, &assignment));
        // File 0 is cached locally at node 0.
        rig.with(|n, ctx| {
            assert_eq!(n.client_request(ctx, req(1, 0)), ClientAccept::Accepted);
        });
        let parsed = rig.scheduled().last().map(|e| (*e).clone());
        let Some(AppEvent::Parsed(r)) = parsed else {
            panic!("expected Parsed, got {:?}", rig.app)
        };
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::Parsed(r)));
        assert_eq!(rig.replies(), vec![1]);
        assert!(rig.sub.sent.is_empty(), "local hits send nothing");
        assert_eq!(rig.node.stats().served_local, 1);
    }

    #[test]
    fn remote_hit_forwards_to_the_holder() {
        let mut rig = Rig::new(PressVersion::Via3);
        rig.start_cold();
        let assignment: Vec<NodeId> = (0..100).map(|f| NodeId((f % 4) as usize)).collect();
        rig.with(|n, ctx| n.prewarm(ctx, &assignment));
        // File 1 lives on node 1.
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::Parsed(req(2, 1))));
        let fwds = rig.sub.sent_to(1);
        assert!(
            matches!(fwds.as_slice(), [MsgBody::Forward { req_id: 2, file: 1 }]),
            "{fwds:?}"
        );
        assert_eq!(rig.node.stats().served_remote, 1);
        // The answer completes the request.
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::Deliver {
                    peer: NodeId(1),
                    msg: PressMsg {
                        load: 5,
                        body: MsgBody::FileResp { req_id: 2, file: 1 },
                    },
                    class: transport::MsgClass::FileData,
                    bytes: 8192,
                },
            )
        });
        assert_eq!(rig.replies(), vec![2]);
    }

    #[test]
    fn uncached_file_goes_to_disk_then_broadcasts_cache_add() {
        let mut rig = Rig::new(PressVersion::Tcp);
        rig.start_cold();
        // Nothing prewarmed: directory empty.
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::Parsed(req(3, 42))));
        let disk = rig
            .scheduled()
            .iter()
            .any(|e| matches!(e, AppEvent::DiskDone(DiskJob::Local(_))));
        assert!(disk, "miss must schedule a disk read: {:?}", rig.app);
        rig.with(|n, ctx| {
            n.on_app_event(ctx, AppEvent::DiskDone(DiskJob::Local(req(3, 42))))
        });
        assert_eq!(rig.replies(), vec![3]);
        // CacheAdd broadcast to all three peers.
        for peer in 1..4 {
            assert!(
                rig.sub
                    .sent_to(peer)
                    .iter()
                    .any(|b| matches!(b, MsgBody::CacheAdd { file: 42 })),
                "peer {peer} missing CacheAdd"
            );
        }
        assert_eq!(rig.node.stats().served_disk, 1);
    }

    #[test]
    fn blocked_send_freezes_and_writable_drains() {
        let mut rig = Rig::new(PressVersion::Tcp);
        rig.start_cold();
        let assignment: Vec<NodeId> = (0..100).map(|f| NodeId((f % 4) as usize)).collect();
        rig.with(|n, ctx| n.prewarm(ctx, &assignment));
        rig.sub.block_to.insert(1);
        // Forward to node 1 blocks -> node freezes.
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::Parsed(req(4, 1))));
        assert!(rig.node.is_blocked());
        // New work is deferred, not processed.
        rig.with(|n, ctx| {
            assert_eq!(n.client_request(ctx, req(5, 0)), ClientAccept::Accepted);
        });
        assert_eq!(rig.node.stats().served_local, 0);
        // The path clears: Writable retries the stalled send and drains.
        rig.sub.block_to.clear();
        rig.with(|n, ctx| n.on_upcall(ctx, Upcall::Writable { peer: NodeId(1) }));
        assert!(!rig.node.is_blocked());
        assert!(rig
            .sub
            .sent_to(1)
            .iter()
            .any(|b| matches!(b, MsgBody::Forward { req_id: 4, .. })));
    }

    #[test]
    fn conn_break_excludes_peer_and_propagates() {
        let mut rig = Rig::new(PressVersion::Via0);
        rig.start_cold();
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::ConnBroken {
                    peer: NodeId(2),
                    reason: transport::BreakReason::NicError(
                        simnet::fabric::LossReason::DstLinkDown,
                    ),
                },
            )
        });
        assert!(!rig.node.members().contains(&NodeId(2)));
        assert!(rig.sub.closed.contains(&NodeId(2)));
        for peer in [1usize, 3] {
            assert!(
                rig.sub
                    .sent_to(peer)
                    .iter()
                    .any(|b| matches!(b, MsgBody::MemberDown { node: NodeId(2) })),
                "peer {peer} not told about the exclusion"
            );
        }
        assert_eq!(rig.node.stats().exclusions, 1);
    }

    #[test]
    fn stream_corruption_fail_fasts() {
        let mut rig = Rig::new(PressVersion::Tcp);
        rig.start_cold();
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::ConnBroken {
                    peer: NodeId(1),
                    reason: transport::BreakReason::StreamCorrupt,
                },
            )
        });
        assert!(rig
            .app
            .iter()
            .any(|a| matches!(a, AppEffect::ProcessExit { .. })));
    }

    #[test]
    fn completion_error_fail_fasts() {
        let mut rig = Rig::new(PressVersion::Via5);
        rig.start_cold();
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::CompletionError {
                    peer: NodeId(1),
                    site: transport::ErrorSite::Remote,
                    cause: "descriptor length mismatch",
                },
            )
        });
        assert!(rig
            .app
            .iter()
            .any(|a| matches!(a, AppEffect::ProcessExit { .. })));
    }

    #[test]
    fn heartbeats_go_to_the_successor_and_catch_a_silent_predecessor() {
        let mut rig = Rig::new(PressVersion::TcpHb);
        rig.start_cold();
        assert_eq!(rig.node.ring_successor(), Some(NodeId(1)));
        assert_eq!(rig.node.ring_predecessor(), Some(NodeId(3)));
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::HeartbeatTick));
        assert!(rig
            .sub
            .sent_to(1)
            .iter()
            .any(|b| matches!(b, MsgBody::Heartbeat { .. })));
        // 20 simulated seconds later (> 15 s threshold) with no beat from
        // node 3: excluded.
        rig.with_at(SimTime::from_secs(21), |n, ctx| {
            n.on_app_event(ctx, AppEvent::HeartbeatTick)
        });
        assert!(!rig.node.members().contains(&NodeId(3)));
    }

    #[test]
    fn heartbeat_delivery_resets_the_deadline() {
        let mut rig = Rig::new(PressVersion::TcpHb);
        rig.start_cold();
        rig.with_at(SimTime::from_secs(14), |n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::Deliver {
                    peer: NodeId(3),
                    msg: PressMsg {
                        load: 0,
                        body: MsgBody::Heartbeat { seq: 1 },
                    },
                    class: transport::MsgClass::Heartbeat,
                    bytes: 32,
                },
            )
        });
        rig.with_at(SimTime::from_secs(21), |n, ctx| {
            n.on_app_event(ctx, AppEvent::HeartbeatTick)
        });
        assert!(rig.node.members().contains(&NodeId(3)), "beat at 14s keeps node 3 in");
    }

    #[test]
    fn rejoin_request_from_a_live_member_is_disregarded() {
        let mut rig = Rig::new(PressVersion::Tcp);
        rig.start_cold();
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::Deliver {
                    peer: NodeId(3),
                    msg: PressMsg {
                        load: 0,
                        body: MsgBody::RejoinRequest,
                    },
                    class: transport::MsgClass::Control,
                    bytes: 32,
                },
            )
        });
        assert_eq!(rig.node.stats().rejoins_disregarded, 1);
        assert!(rig.sub.sent_to(3).is_empty(), "no RejoinInfo for a live member");
    }

    #[test]
    fn rejoin_request_after_exclusion_is_admitted_with_cache_info() {
        let mut rig = Rig::new(PressVersion::Via3);
        rig.start_cold();
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::ConnBroken {
                    peer: NodeId(3),
                    reason: transport::BreakReason::PeerReset,
                },
            )
        });
        rig.sub.sent.clear();
        rig.sub.connected.insert(3);
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::Deliver {
                    peer: NodeId(3),
                    msg: PressMsg {
                        load: 0,
                        body: MsgBody::RejoinRequest,
                    },
                    class: transport::MsgClass::Control,
                    bytes: 32,
                },
            )
        });
        assert!(rig.node.members().contains(&NodeId(3)));
        let to3 = rig.sub.sent_to(3);
        assert!(to3.iter().any(|b| matches!(b, MsgBody::RejoinInfo { .. })));
        assert!(to3.iter().any(|b| matches!(b, MsgBody::CacheInfo { .. })));
    }

    #[test]
    fn zero_copy_cache_insert_pins_and_sheds_on_pin_failure() {
        let mut rig = Rig::new(PressVersion::Via5);
        rig.start_cold();
        // Fill the cache (20 entries), pinning as we go.
        for f in 0..20u32 {
            rig.with(|n, ctx| {
                n.on_app_event(ctx, AppEvent::DiskDone(DiskJob::Local(req(100 + u64::from(f), f))))
            });
        }
        assert_eq!(rig.sub.pinned, 40, "2 pages per 8 KB file");
        // Pinning stops working: the node sheds cache entries to make
        // room, and the insert still eventually succeeds or is skipped.
        rig.sub.pin_ok = false;
        rig.with(|n, ctx| {
            n.on_app_event(ctx, AppEvent::DiskDone(DiskJob::Local(req(200, 99))))
        });
        assert!(
            rig.node.stats().pin_cache_skips >= 1 || rig.sub.pinned < 40,
            "pin failure must shed or skip"
        );
    }

    #[test]
    fn admission_control_drops_when_cpu_is_saturated() {
        let mut rig = Rig::new(PressVersion::Tcp);
        rig.start_cold();
        // Pile 2 s of backlog onto the CPU.
        rig.cpu.charge(SimTime::from_secs(1), simnet::SimDuration::from_secs(2));
        rig.with(|n, ctx| {
            assert_eq!(
                n.client_request(ctx, req(9, 0)),
                ClientAccept::Dropped(DropReason::Admission)
            );
        });
        assert_eq!(rig.node.stats().dropped_admission, 1);
    }

    #[test]
    fn pending_timeout_releases_the_slot() {
        let mut rig = Rig::new(PressVersion::Tcp);
        rig.start_cold();
        let assignment: Vec<NodeId> = (0..100).map(|f| NodeId((f % 4) as usize)).collect();
        rig.with(|n, ctx| n.prewarm(ctx, &assignment));
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::Parsed(req(7, 1))));
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::PendingTimeout(7)));
        assert_eq!(rig.node.stats().forward_timeouts, 1);
        // A late response is ignored.
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::Deliver {
                    peer: NodeId(1),
                    msg: PressMsg {
                        load: 0,
                        body: MsgBody::FileResp { req_id: 7, file: 1 },
                    },
                    class: transport::MsgClass::FileData,
                    bytes: 8192,
                },
            )
        });
        assert!(rig.replies().is_empty());
    }

    #[test]
    fn load_piggyback_updates_the_load_map_and_routing() {
        let mut rig = Rig::new(PressVersion::Via0);
        rig.start_cold();
        // Both node 1 and node 2 cache file 5; node 2 is less loaded.
        rig.with(|n, ctx| {
            for (peer, load) in [(1usize, 50u32), (2, 2)] {
                n.on_upcall(
                    ctx,
                    Upcall::Deliver {
                        peer: NodeId(peer),
                        msg: PressMsg {
                            load,
                            body: MsgBody::CacheAdd { file: 5 },
                        },
                        class: transport::MsgClass::CacheUpdate,
                        bytes: 32,
                    },
                );
            }
        });
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::Parsed(req(8, 5))));
        assert!(
            rig.sub
                .sent_to(2)
                .iter()
                .any(|b| matches!(b, MsgBody::Forward { req_id: 8, .. })),
            "must pick the least-loaded holder; sent: {:?}",
            rig.sub.sent
        );
        assert!(rig.sub.sent_to(1).is_empty());
    }

    #[test]
    fn merge_probe_readmits_an_excluded_peer() {
        let mut rig = Rig::new(PressVersion::TcpHb);
        rig.node.config.membership_repair = true;
        rig.start_cold();
        rig.sub.connected.remove(&3); // the node is really gone
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::ConnBroken {
                    peer: NodeId(3),
                    reason: transport::BreakReason::PeerReset,
                },
            )
        });
        assert!(!rig.node.members().contains(&NodeId(3)));
        rig.sub.sent.clear();
        // The probe fires: a MergeRequest goes to the excluded node.
        rig.sub.connected.insert(3);
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::ProbeTick));
        assert!(rig
            .sub
            .sent_to(3)
            .iter()
            .any(|b| matches!(b, MsgBody::MergeRequest)));
        // The peer accepts: full membership restored, caches shared.
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::Deliver {
                    peer: NodeId(3),
                    msg: PressMsg {
                        load: 0,
                        body: MsgBody::MergeAccept {
                            members: vec![NodeId(3)].into(),
                        },
                    },
                    class: transport::MsgClass::Control,
                    bytes: 36,
                },
            )
        });
        assert!(rig.node.members().contains(&NodeId(3)));
        assert_eq!(rig.node.stats().merges, 1);
        assert!(rig
            .sub
            .sent_to(3)
            .iter()
            .any(|b| matches!(b, MsgBody::CacheInfo { .. })));
    }

    #[test]
    fn merge_request_is_ignored_without_the_extension() {
        let mut rig = Rig::new(PressVersion::Via5);
        rig.start_cold();
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::ConnBroken {
                    peer: NodeId(3),
                    reason: transport::BreakReason::PeerReset,
                },
            )
        });
        rig.sub.sent.clear();
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::Deliver {
                    peer: NodeId(3),
                    msg: PressMsg {
                        load: 0,
                        body: MsgBody::MergeRequest,
                    },
                    class: transport::MsgClass::Control,
                    bytes: 32,
                },
            )
        });
        assert!(!rig.node.members().contains(&NodeId(3)), "paper PRESS never merges");
        assert!(rig.sub.sent.is_empty());
    }

    #[test]
    fn liveness_check_suppresses_stale_socket_breaks() {
        let mut rig = Rig::new(PressVersion::TcpHb);
        rig.node.config.membership_repair = true;
        rig.start_cold();
        // Peer 1 is still connected (a fresh socket exists); a stale
        // socket's reset must not trigger an exclusion.
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::ConnBroken {
                    peer: NodeId(1),
                    reason: transport::BreakReason::PeerReset,
                },
            )
        });
        assert!(rig.node.members().contains(&NodeId(1)));
        assert_eq!(rig.node.stats().exclusions, 0);
        // Without a live socket the exclusion proceeds as usual.
        rig.sub.connected.remove(&1);
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::ConnBroken {
                    peer: NodeId(1),
                    reason: transport::BreakReason::PeerReset,
                },
            )
        });
        assert!(!rig.node.members().contains(&NodeId(1)));
    }

    #[test]
    fn forwards_from_non_members_are_ignored() {
        let mut rig = Rig::new(PressVersion::Via3);
        rig.start_cold();
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::ConnBroken {
                    peer: NodeId(1),
                    reason: transport::BreakReason::PeerReset,
                },
            )
        });
        rig.sub.sent.clear();
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::Deliver {
                    peer: NodeId(1),
                    msg: PressMsg {
                        load: 0,
                        body: MsgBody::Forward { req_id: 11, file: 2 },
                    },
                    class: transport::MsgClass::Forward,
                    bytes: 64,
                },
            )
        });
        assert_eq!(rig.node.stats().ignored_foreign, 1);
        assert!(rig.sub.sent.is_empty());
    }

    // ------------------------------------------------------------------
    // Epidemic membership (MembershipImpl::Gossip)
    // ------------------------------------------------------------------

    fn gossip_rig() -> Rig {
        let mut rig = Rig::new(PressVersion::TcpHb);
        let mut config = PressConfig::paper_testbed();
        config.files = 100;
        config.cache_bytes = 30 * u64::from(config.file_bytes);
        config.membership = MembershipImpl::Gossip;
        config.gossip.seed = 7;
        rig.node = PressNode::new(NodeId(0), PressVersion::TcpHb, config);
        rig
    }

    /// Runs one gossip tick at `t` seconds and returns the sim time used.
    fn gossip_tick_at(rig: &mut Rig, t: u64) -> SimTime {
        let now = SimTime::from_secs(t);
        rig.with_at(now, |n, ctx| n.on_app_event(ctx, AppEvent::GossipTick));
        now
    }

    #[test]
    fn gossip_replaces_the_heartbeat_timer() {
        let mut rig = gossip_rig();
        rig.with(|n, ctx| n.start(ctx, true));
        let evs = rig.scheduled();
        assert!(evs.iter().any(|e| matches!(e, AppEvent::GossipTick)));
        assert!(
            !evs.iter().any(|e| matches!(e, AppEvent::HeartbeatTick)),
            "gossip must supplant the ring timer: {evs:?}"
        );
    }

    #[test]
    fn silent_peers_are_suspected_then_excluded() {
        let mut rig = gossip_rig();
        rig.start_cold();
        // Nobody ever answers a ping: every peer eventually runs through
        // ping → ping-req → suspect → confirm and is excluded.
        for t in 1..40 {
            gossip_tick_at(&mut rig, t);
        }
        assert_eq!(rig.node.members().len(), 1, "all silent peers excluded");
        assert_eq!(rig.node.stats().exclusions, 3);
        // Each exclusion was propagated as a reconfiguration notice.
        let downs = rig
            .sub
            .sent
            .iter()
            .filter(|(_, m)| matches!(m.body, MsgBody::MemberDown { .. }))
            .count();
        assert!(downs >= 3, "MemberDown broadcasts expected, got {downs}");
    }

    #[test]
    fn answering_peers_stay_members() {
        let mut rig = gossip_rig();
        rig.start_cold();
        for t in 1..40 {
            let now = gossip_tick_at(&mut rig, t);
            // Ack every ping the node just sent.
            let pings: Vec<(NodeId, u64)> = rig
                .sub
                .sent
                .iter()
                .filter_map(|(p, m)| match &m.body {
                    MsgBody::Gossip(gossip::GossipMsg::Ping { seq, .. }) => Some((*p, *seq)),
                    _ => None,
                })
                .collect();
            rig.sub.sent.clear();
            for (peer, seq) in pings {
                rig.with_at(now, |n, ctx| {
                    n.on_upcall(
                        ctx,
                        Upcall::Deliver {
                            peer,
                            msg: PressMsg {
                                load: 0,
                                body: MsgBody::Gossip(gossip::GossipMsg::Ack {
                                    seq,
                                    target: peer,
                                    updates: std::sync::Arc::from(&[][..]),
                                }),
                            },
                            class: transport::MsgClass::Heartbeat,
                            bytes: 32,
                        },
                    )
                });
            }
        }
        assert_eq!(rig.node.members().len(), 4, "acked peers must stay");
        assert_eq!(rig.node.stats().exclusions, 0);
        let stats = rig.node.swim_stats().expect("gossip active");
        assert!(stats.pings > 0 && stats.suspects == 0);
    }

    #[test]
    fn gossip_from_excluded_peers_is_disregarded() {
        let mut rig = gossip_rig();
        rig.start_cold();
        rig.with(|n, ctx| n.on_upcall(ctx, Upcall::ConnBroken {
            peer: NodeId(1),
            reason: transport::BreakReason::PeerReset,
        }));
        assert!(!rig.node.members().contains(&NodeId(1)));
        rig.with(|n, ctx| {
            n.on_upcall(
                ctx,
                Upcall::Deliver {
                    peer: NodeId(1),
                    msg: PressMsg {
                        load: 0,
                        body: MsgBody::Gossip(gossip::GossipMsg::Ping {
                            seq: 1,
                            updates: std::sync::Arc::from(&[][..]),
                        }),
                    },
                    class: transport::MsgClass::Heartbeat,
                    bytes: 32,
                },
            )
        });
        assert_eq!(rig.node.stats().ignored_foreign, 1);
        // No ack went back: the detector never saw the message.
        assert!(rig.sub.sent_to(1).is_empty());
    }

    fn digest_rig(fanout: usize) -> Rig {
        let mut rig = Rig::new(PressVersion::Tcp);
        let mut config = PressConfig::paper_testbed();
        config.files = 100;
        config.cache_bytes = 30 * u64::from(config.file_bytes);
        config.cache_sync = CacheSyncImpl::Digest;
        config.digest_fanout = fanout;
        rig.node = PressNode::new(NodeId(0), PressVersion::Tcp, config);
        rig
    }

    /// Disk-serves `file` at node 0 so it enters the cache.
    fn disk_serve(rig: &mut Rig, id: u64, file: FileId) {
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::DiskDone(DiskJob::Local(req(id, file)))));
    }

    #[test]
    fn digest_mode_defers_caching_broadcasts_to_the_tick() {
        let mut rig = digest_rig(2);
        rig.start_cold();
        assert!(
            rig.scheduled().is_empty(),
            "start_cold clears the app queue"
        );
        disk_serve(&mut rig, 1, 42);
        assert!(
            rig.sub.sent.is_empty(),
            "digest mode must not broadcast per caching action"
        );
        assert_eq!(rig.node.stats().cache_sync_frames, 0);
        assert_eq!(rig.node.stats().digest_deltas, 1);
        assert_eq!(rig.node.digest_pending(), vec![42]);
    }

    #[test]
    fn digest_tick_flushes_round_robin_until_all_peers_caught_up() {
        let mut rig = digest_rig(2);
        rig.start_cold();
        disk_serve(&mut rig, 1, 42);
        // First tick: the first two peers (round-robin from n1).
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::DigestTick));
        let digest_to = |rig: &Rig, peer: usize| {
            rig.sub
                .sent_to(peer)
                .iter()
                .any(|b| matches!(b, MsgBody::CacheDigest { adds, .. } if adds.as_ref() == [42]))
        };
        assert!(digest_to(&rig, 1) && digest_to(&rig, 2));
        assert!(!digest_to(&rig, 3), "fanout 2 reaches two peers per tick");
        assert_eq!(rig.node.stats().digest_flushes, 2);
        assert_eq!(rig.node.digest_pending(), vec![42], "n3 still behind");
        // Second tick: n3's turn; afterwards the log is drained.
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::DigestTick));
        assert!(digest_to(&rig, 3));
        assert!(rig.node.digest_pending().is_empty());
        rig.sub.sent.clear();
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::DigestTick));
        assert!(rig.sub.sent.is_empty(), "nothing new to flush");
        assert_eq!(rig.node.stats().digest_flushes, 3);
        assert_eq!(rig.node.stats().cache_sync_frames, 3);
    }

    #[test]
    fn digest_coalesces_add_then_evict_into_one_entry() {
        let mut rig = digest_rig(4);
        rig.start_cold();
        // Fill the 30-entry cache, then one more: file 0 is evicted.
        for f in 0..31 {
            disk_serve(&mut rig, u64::from(f), f);
        }
        rig.with(|n, ctx| n.on_app_event(ctx, AppEvent::DigestTick));
        let to1 = rig.sub.sent_to(1);
        let Some(MsgBody::CacheDigest { adds, evicts }) = to1.first() else {
            panic!("expected a digest, got {to1:?}");
        };
        // File 0 was added then evicted between flushes: one evict
        // entry, not an add + evict pair.
        assert!(!adds.contains(&0) && evicts.as_ref() == [0]);
        assert_eq!(adds.len(), 30);
        assert_eq!(
            rig.node.stats().digest_deltas,
            32,
            "31 adds + 1 evict recorded"
        );
    }

    #[test]
    fn cache_digest_applies_to_the_directory_members_only() {
        let mut rig = Rig::new(PressVersion::Tcp);
        rig.start_cold();
        let deliver = |rig: &mut Rig, peer: usize| {
            rig.with(|n, ctx| {
                n.on_upcall(
                    ctx,
                    Upcall::Deliver {
                        peer: NodeId(peer),
                        msg: PressMsg {
                            load: 0,
                            body: MsgBody::CacheDigest {
                                adds: std::sync::Arc::from([7, 8].as_slice()),
                                evicts: std::sync::Arc::from([9].as_slice()),
                            },
                        },
                        class: transport::MsgClass::CacheUpdate,
                        bytes: 44,
                    },
                )
            });
        };
        rig.node.directory.add(9, NodeId(1));
        deliver(&mut rig, 1);
        assert_eq!(rig.node.directory().holders(7), &[NodeId(1)]);
        assert_eq!(rig.node.directory().holders(8), &[NodeId(1)]);
        assert!(rig.node.directory().holders(9).is_empty());
        // A digest from a non-member is ignored.
        rig.with(|n, ctx| n.exclude(ctx, NodeId(2), false));
        deliver(&mut rig, 2);
        assert!(rig.node.directory().holders(7).contains(&NodeId(1)));
        assert!(!rig.node.directory().holders(7).contains(&NodeId(2)));
    }

    #[test]
    fn eager_mode_counts_cache_sync_frames_per_peer() {
        let mut rig = Rig::new(PressVersion::Tcp);
        rig.start_cold();
        disk_serve(&mut rig, 1, 42);
        // One CacheAdd to each of the three peers.
        assert_eq!(rig.node.stats().cache_sync_frames, 3);
        assert_eq!(rig.node.stats().digest_deltas, 0);
        assert!(rig.node.digest_pending().is_empty());
    }
}
