//! Benchmarks of PRESS's cooperative-caching data structures and the
//! workload generator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use press::cache::{Directory, LruCache};
use simnet::fabric::NodeId;
use simnet::SimRng;
use std::hint::black_box;
use workload::Zipf;

fn lru_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert_churn_16k", |b| {
        let mut cache = LruCache::new(16_384);
        for f in 0..16_384 {
            cache.insert(f);
        }
        let mut f = 16_384u32;
        b.iter(|| {
            f = f.wrapping_add(1) % 60_000;
            black_box(cache.insert(f))
        })
    });
    group.bench_function("touch_hot", |b| {
        let mut cache = LruCache::new(16_384);
        for f in 0..16_384 {
            cache.insert(f);
        }
        let mut f = 0u32;
        b.iter(|| {
            f = (f + 37) % 16_384;
            black_box(cache.touch(f))
        })
    });
    group.finish();
}

fn directory_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("directory");
    group.bench_function("add_remove", |b| {
        let mut d = Directory::new(60_000);
        let mut f = 0u32;
        b.iter(|| {
            f = (f + 101) % 60_000;
            d.add(f, NodeId((f % 4) as usize));
            d.remove(f, NodeId((f % 4) as usize));
        })
    });
    group.bench_function("drop_node_60k_files", |b| {
        b.iter_batched(
            || {
                let mut d = Directory::new(60_000);
                for f in 0..60_000 {
                    d.add(f, NodeId((f % 4) as usize));
                }
                d
            },
            |mut d| {
                d.drop_node(NodeId(3));
                black_box(d.entries())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn zipf_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf");
    group.throughput(Throughput::Elements(1));
    for n in [6_000u32, 60_000] {
        group.bench_function(format!("sample_{n}"), |b| {
            let z = Zipf::new(n, 0.8);
            let mut rng = SimRng::seed_from(1);
            b.iter(|| black_box(z.sample(&mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, lru_ops, directory_ops, zipf_sampling);
criterion_main!(benches);
