//! Microbenchmarks of the discrete-event engine and the seeded RNG —
//! the substrate every experiment's wall-clock time hangs on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use simnet::{Engine, SimDuration, SimRng, SimTime};
use std::hint::black_box;

fn engine_schedule_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for n in [1_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_function(format!("schedule_pop_{n}"), |b| {
            b.iter_batched(
                Engine::new,
                |mut engine| {
                    // Interleaved schedule/pop with a pseudo-random time
                    // pattern, like a live simulation.
                    let mut t = 0u64;
                    for i in 0..n {
                        t = t.wrapping_mul(6364136223846793005).wrapping_add(i) % 1_000_000_000;
                        engine.schedule_at(
                            SimTime::from_nanos(engine.now().as_nanos() + t),
                            i,
                        );
                        if i % 2 == 0 {
                            black_box(engine.pop());
                        }
                    }
                    while let Some(ev) = engine.pop() {
                        black_box(ev);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn engine_dense_same_time(c: &mut Criterion) {
    c.bench_function("engine/fifo_ties_10k", |b| {
        b.iter_batched(
            Engine::new,
            |mut engine| {
                let t = SimTime::from_secs(1);
                for i in 0..10_000 {
                    engine.schedule_at(t, i);
                }
                while let Some(ev) = engine.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn rng_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1));
    group.bench_function("exponential", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| black_box(rng.exponential(5_000.0)))
    });
    group.bench_function("uniform", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| black_box(rng.uniform()))
    });
    group.finish();
}

fn throughput_recorder(c: &mut Criterion) {
    c.bench_function("stats/record_100k", |b| {
        b.iter_batched(
            || simnet::ThroughputRecorder::new(SimDuration::from_secs(1)),
            |mut rec| {
                for i in 0..100_000u64 {
                    rec.record(SimTime::from_nanos(i * 3_000));
                }
                black_box(rec.total())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    engine_schedule_pop,
    engine_dense_same_time,
    rng_sampling,
    throughput_recorder
);
criterion_main!(benches);
