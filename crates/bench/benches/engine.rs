//! Microbenchmarks of the discrete-event engine and the seeded RNG —
//! the substrate every experiment's wall-clock time hangs on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use simnet::{Engine, SimDuration, SimRng, SimTime};
use std::hint::black_box;

fn engine_schedule_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for n in [1_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_function(format!("schedule_pop_{n}"), |b| {
            b.iter_batched(
                Engine::new,
                |mut engine| {
                    // Interleaved schedule/pop with a pseudo-random time
                    // pattern, like a live simulation.
                    let mut t = 0u64;
                    for i in 0..n {
                        t = t.wrapping_mul(6364136223846793005).wrapping_add(i) % 1_000_000_000;
                        engine.schedule_at(
                            SimTime::from_nanos(engine.now().as_nanos() + t),
                            i,
                        );
                        if i % 2 == 0 {
                            black_box(engine.pop());
                        }
                    }
                    while let Some(ev) = engine.pop() {
                        black_box(ev);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn engine_pop_batch(c: &mut Criterion) {
    // Same-instant bursts drained the way `ClusterSim::run_until` does:
    // one `pop_batch` call per instant instead of one `pop` per event.
    let mut group = c.benchmark_group("engine");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("pop_batch_100k", |b| {
        b.iter_batched(
            || {
                let mut engine = Engine::with_capacity(n as usize);
                for i in 0..n {
                    // Ten events per instant, like a frame burst.
                    engine.schedule_at(SimTime::from_nanos((i / 10) * 1_000), i);
                }
                engine
            },
            |mut engine| {
                let mut burst = Vec::with_capacity(16);
                while engine.pop_batch(&mut burst).is_some() {
                    for ev in burst.drain(..) {
                        black_box(ev);
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn engine_timeout_stream(c: &mut Criterion) {
    // A constant-offset timeout stream (request deadlines, forward
    // watchdogs: always `now + T`) in steady state — the workload the
    // monotone O(1) lane exists for, benched against the general heap.
    let mut group = c.benchmark_group("engine");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    for (name, fifo) in [("timeout_stream_heap", false), ("timeout_stream_fifo", true)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut engine = Engine::with_capacity(2048);
                    for i in 0..1_000u64 {
                        engine.schedule_at(SimTime::from_nanos(i * 1_000), i);
                    }
                    engine
                },
                |mut engine| {
                    for _ in 0..n {
                        let (t, v) = engine.pop().expect("steady state");
                        let at = t + SimDuration::from_secs(6);
                        if fifo {
                            engine.schedule_fifo(at, v);
                        } else {
                            engine.schedule_at(at, v);
                        }
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn engine_cancel(c: &mut Criterion) {
    // Schedule cancellable timers and cancel half before they fire —
    // the retransmit-supersession pattern the timer index produces.
    let mut group = c.benchmark_group("engine");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("schedule_cancel_pop_100k", |b| {
        b.iter_batched(
            || Engine::<u64>::with_capacity(n as usize),
            |mut engine| {
                let mut last = None;
                for i in 0..n {
                    let tok = engine
                        .schedule_cancellable(SimTime::from_nanos(1_000_000 + i * 100), i);
                    // Each new timer supersedes the previous one.
                    if let Some(prev) = last.replace(tok) {
                        engine.cancel(prev);
                    }
                }
                while let Some(ev) = engine.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn engine_dense_same_time(c: &mut Criterion) {
    c.bench_function("engine/fifo_ties_10k", |b| {
        b.iter_batched(
            Engine::new,
            |mut engine| {
                let t = SimTime::from_secs(1);
                for i in 0..10_000 {
                    engine.schedule_at(t, i);
                }
                while let Some(ev) = engine.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn rng_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1));
    group.bench_function("exponential", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| black_box(rng.exponential(5_000.0)))
    });
    group.bench_function("uniform", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| black_box(rng.uniform()))
    });
    group.finish();
}

fn throughput_recorder(c: &mut Criterion) {
    c.bench_function("stats/record_100k", |b| {
        b.iter_batched(
            || simnet::ThroughputRecorder::new(SimDuration::from_secs(1)),
            |mut rec| {
                for i in 0..100_000u64 {
                    rec.record(SimTime::from_nanos(i * 3_000));
                }
                black_box(rec.total())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    engine_schedule_pop,
    engine_pop_batch,
    engine_timeout_stream,
    engine_cancel,
    engine_dense_same_time,
    rng_sampling,
    throughput_recorder
);
criterion_main!(benches);
