//! Microbenchmarks for the conservative-parallel window engine.
//!
//! Three questions, measured separately so a regression points at one
//! layer:
//!
//! 1. `window_sync` — what does draining the queue in lookahead-sized
//!    windows (`pop_window` + replay accounting) cost over the
//!    sequential `pop_batch_before` burst loop, before any threads or
//!    shard state enter the picture?
//! 2. `cross_shard_mailbox` — how fast can events be fanned out to
//!    per-shard inboxes and merged back into one `(time, seq)`-ordered
//!    stream (the facade's replay merge)?
//! 3. `table1_sim_threads` — the end-to-end number: one simulated
//!    second of the fault-free table-1 workload at 1, 2, and 4 sim
//!    threads. On a single-core host the >1 rows price the
//!    coordination overhead; on a multi-core host they show the
//!    speedup.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use experiments::{ClusterConfig, ClusterSim};
use press::PressVersion;
use simnet::{Engine, SimDuration, SimTime};

/// Events per iteration for the synthetic queue benchmarks.
const N: u64 = 100_000;

/// A self-rescheduling workload: every popped event re-queues itself a
/// fixed fabric-like latency later, alternating heap and FIFO lanes, so
/// both drain strategies process exactly `N` events over identical
/// queue shapes.
fn seed_engine() -> Engine<u64> {
    let mut e = Engine::with_capacity(1024);
    for i in 0..512u64 {
        e.schedule_at(SimTime::from_nanos(100 + i * 37), i);
    }
    e
}

fn resched(e: &mut Engine<u64>, t: SimTime, v: u64) {
    if v.is_multiple_of(2) {
        e.schedule_at(t + SimDuration::from_micros(29), v);
    } else {
        e.schedule_fifo(t + SimDuration::from_micros(40), v);
    }
}

fn window_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_sync");
    group.throughput(Throughput::Elements(N));

    // Baseline: the sequential burst loop exactly as `run_until` runs it.
    group.bench_function("sequential_pop_batch", |b| {
        b.iter_batched(
            seed_engine,
            |mut e| {
                let mut batch = Vec::new();
                let mut left = N;
                'outer: while let Some(t) = e.pop_batch_before(SimTime::MAX, &mut batch) {
                    for v in batch.drain(..) {
                        resched(&mut e, t, v);
                        left -= 1;
                        if left == 0 {
                            break 'outer;
                        }
                    }
                }
                black_box(e.dispatched())
            },
            BatchSize::SmallInput,
        )
    });

    // Windowed: drain in 20us windows (a fabric-lookahead-sized slice
    // of this workload) through `pop_window`, with the driver-side
    // clock and dispatch accounting the replay loop performs.
    group.bench_function("windowed_pop_window", |b| {
        b.iter_batched(
            seed_engine,
            |mut e| {
                let window = SimDuration::from_micros(20);
                let mut out: Vec<(SimTime, u64, u64)> = Vec::new();
                let mut left = N;
                'outer: loop {
                    let bound = e.now() + window;
                    e.pop_window(bound, &mut out);
                    for (t, _seq, v) in out.drain(..) {
                        resched(&mut e, t, v);
                        e.note_dispatched(1);
                        left -= 1;
                        if left == 0 {
                            break 'outer;
                        }
                    }
                    e.advance_now(bound);
                }
                black_box(e.dispatched())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn cross_shard_mailbox(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_shard_mailbox");
    group.throughput(Throughput::Elements(N));
    for shards in [2usize, 4, 8] {
        group.bench_function(format!("fanout_merge_{shards}_shards"), |b| {
            b.iter_batched(
                || vec![Vec::<(SimTime, u64, u64)>::new(); shards],
                |mut inboxes| {
                    // Fan-out: the facade distributing a drained window
                    // to shard inboxes in global order.
                    for i in 0..N {
                        let t = SimTime::from_nanos(1 + i * 13);
                        inboxes[(i as usize) % shards].push((t, i, i));
                    }
                    // Merge-back: the replay's (time, seq)-ordered
                    // k-way merge over shard outputs.
                    let mut heap: BinaryHeap<Reverse<(SimTime, u64, usize, usize)>> =
                        BinaryHeap::with_capacity(shards);
                    for (s, inbox) in inboxes.iter().enumerate() {
                        if let Some(&(t, seq, _)) = inbox.first() {
                            heap.push(Reverse((t, seq, s, 0)));
                        }
                    }
                    let mut sum = 0u64;
                    while let Some(Reverse((_, seq, s, i))) = heap.pop() {
                        sum = sum.wrapping_add(seq);
                        if let Some(&(t, seq, _)) = inboxes[s].get(i + 1) {
                            heap.push(Reverse((t, seq, s, i + 1)));
                        }
                    }
                    for inbox in &mut inboxes {
                        inbox.clear();
                    }
                    black_box(sum)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn table1_sim_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_sim_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        for version in [PressVersion::Tcp, PressVersion::Via5] {
            group.bench_function(format!("{}_t{threads}", version.name()), |b| {
                b.iter_batched(
                    || {
                        let mut config = ClusterConfig::small(version);
                        config.sim_threads = threads;
                        let mut sim = ClusterSim::new(config, 1);
                        sim.run_until(SimTime::from_secs(2)); // warm
                        sim
                    },
                    |mut sim| {
                        let until = sim.now() + SimDuration::from_secs(1);
                        sim.run_until(until);
                        black_box(sim.events_dispatched())
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, window_sync, cross_shard_mailbox, table1_sim_threads);
criterion_main!(benches);
