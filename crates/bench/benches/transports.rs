//! Benchmarks of the TCP and VIA protocol state machines: messages per
//! second through a connected pair, without an event loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simnet::fabric::NodeId;
use simnet::SimTime;
use std::hint::black_box;
use transport::tcp::{TcpConfig, TcpStack};
use transport::via::{ViaConfig, ViaNic};
use transport::{CallParams, CostModel, Effect, MsgClass, Substrate};

/// Ferries frames between two substrates until quiescent.
fn pump<M: Clone>(
    now: SimTime,
    a: &mut dyn Substrate<M>,
    b: &mut dyn Substrate<M>,
    mut effects: Vec<Effect<M>>,
) -> usize {
    let mut delivered = 0;
    while let Some(e) = effects.pop() {
        match e {
            Effect::Transmit(frame) => {
                let mut out = Vec::new();
                if frame.dst == b.node() {
                    b.frame_arrived(now, frame, &mut out);
                } else {
                    a.frame_arrived(now, frame, &mut out);
                }
                effects.extend(out);
            }
            Effect::Upcall(transport::Upcall::Deliver { .. }) => delivered += 1,
            _ => {}
        }
    }
    delivered
}

fn tcp_pair() -> (TcpStack<u64>, TcpStack<u64>) {
    let mut a = TcpStack::new(NodeId(0), TcpConfig::default(), CostModel::tcp());
    let mut b = TcpStack::new(NodeId(1), TcpConfig::default(), CostModel::tcp());
    let mut out = Vec::new();
    a.open(SimTime::ZERO, NodeId(1), &mut out);
    pump(SimTime::ZERO, &mut a, &mut b, out);
    (a, b)
}

fn via_pair() -> (ViaNic<u64>, ViaNic<u64>) {
    let mut a = ViaNic::new(NodeId(0), ViaConfig::remote_write(), CostModel::via5());
    let mut b = ViaNic::new(NodeId(1), ViaConfig::remote_write(), CostModel::via5());
    let mut out = Vec::new();
    a.open(SimTime::ZERO, NodeId(1), &mut out);
    pump(SimTime::ZERO, &mut a, &mut b, out);
    (a, b)
}

fn message_round_trips(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_msgs");
    group.throughput(Throughput::Elements(1));

    group.bench_function("tcp_8k_file", |b| {
        let (mut s, mut r) = tcp_pair();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut out = Vec::new();
            s.send(
                SimTime::ZERO,
                NodeId(1),
                MsgClass::FileData,
                i,
                8192,
                CallParams::default(),
                &mut out,
            );
            black_box(pump(SimTime::ZERO, &mut s, &mut r, out))
        })
    });

    group.bench_function("via_8k_file", |b| {
        let (mut s, mut r) = via_pair();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut out = Vec::new();
            s.send(
                SimTime::ZERO,
                NodeId(1),
                MsgClass::FileData,
                i,
                8192,
                CallParams::default(),
                &mut out,
            );
            black_box(pump(SimTime::ZERO, &mut s, &mut r, out))
        })
    });

    group.bench_function("via_64b_control", |b| {
        let (mut s, mut r) = via_pair();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut out = Vec::new();
            s.send(
                SimTime::ZERO,
                NodeId(1),
                MsgClass::Forward,
                i,
                64,
                CallParams::default(),
                &mut out,
            );
            black_box(pump(SimTime::ZERO, &mut s, &mut r, out))
        })
    });
    group.finish();
}

fn connection_churn(c: &mut Criterion) {
    c.bench_function("transport/tcp_connect_teardown", |b| {
        b.iter(|| {
            let (mut s, mut r) = tcp_pair();
            s.restart(SimTime::ZERO);
            let mut out = Vec::new();
            s.open(SimTime::ZERO, NodeId(1), &mut out);
            black_box(pump(SimTime::ZERO, &mut s, &mut r, out))
        })
    });
}

criterion_group!(benches, message_round_trips, connection_churn);
criterion_main!(benches);
