//! Whole-cluster benchmarks: how fast the simulation itself runs. One
//! simulated second of the shrunk test-bed per iteration, for each
//! PRESS version — the macro number that bounds every experiment's
//! wall-clock time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use experiments::{ClusterConfig, ClusterSim};
use press::PressVersion;
use simnet::{SimDuration, SimTime};
use std::hint::black_box;

fn cluster_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sim_second");
    group.sample_size(10);
    for version in [PressVersion::Tcp, PressVersion::Via0, PressVersion::Via5] {
        group.bench_function(version.name(), |b| {
            b.iter_batched(
                || {
                    let mut sim = ClusterSim::new(ClusterConfig::small(version), 1);
                    sim.run_until(SimTime::from_secs(2)); // warm
                    sim
                },
                |mut sim| {
                    let until = sim.now() + SimDuration::from_secs(1);
                    sim.run_until(until);
                    black_box(sim.report().availability.attempts)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn cluster_boot(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_boot");
    group.sample_size(10);
    group.bench_function("build_and_prewarm", |b| {
        b.iter(|| black_box(ClusterSim::new(ClusterConfig::small(PressVersion::Via5), 1)))
    });
    group.finish();
}

criterion_group!(benches, cluster_second, cluster_boot);
criterion_main!(benches);
