//! Whole-cluster benchmarks: how fast the simulation itself runs. One
//! simulated second of the shrunk test-bed per iteration, for each
//! PRESS version — the macro number that bounds every experiment's
//! wall-clock time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use experiments::{ClusterConfig, ClusterSim};
use press::PressVersion;
use simnet::{Engine, SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation in the process so the steady-state hot
/// path can be *measured* for allocation-freedom, not just eyeballed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Not a timing benchmark: hard verification that the event loop is
/// allocation-free in steady state. Panics (failing the bench run) if
/// the engine allocates at all once warm, or if the whole-cluster
/// `handle`/`drain_work` path exceeds a small residual per event
/// (transports legitimately allocate a little: TCP retained-stream
/// nodes and segment payload clones).
fn allocation_counter(_c: &mut Criterion) {
    // Engine steady state: push/pop/schedule_fifo must be zero-alloc
    // once the queues are warm.
    let mut engine = Engine::with_capacity(4096);
    for i in 0..1_024u64 {
        engine.schedule_at(SimTime::from_nanos(i * 1_000), i);
    }
    for _ in 0..8_192u64 {
        // Warm both lanes and the slab free lists.
        let (t, v) = engine.pop().expect("steady state");
        if v % 2 == 0 {
            engine.schedule_fifo(t + SimDuration::from_secs(6), v);
        } else {
            engine.schedule_at(t + SimDuration::from_millis(1), v);
        }
    }
    let before = allocs();
    for _ in 0..100_000u64 {
        let (t, v) = engine.pop().expect("steady state");
        if v % 2 == 0 {
            engine.schedule_fifo(t + SimDuration::from_secs(6), v);
        } else {
            engine.schedule_at(t + SimDuration::from_millis(1), v);
        }
    }
    let engine_allocs = allocs() - before;
    assert_eq!(
        engine_allocs, 0,
        "warm engine allocated {engine_allocs} times over 100k push/pop pairs"
    );
    println!("alloc-counter: engine steady state: 0 allocations / 100k push+pop");

    // Whole-cluster steady state: one simulated second after warm-up.
    // The loop machinery (work queue, fx/app scratch, Effects pool,
    // batch buffer, engine lanes) is allocation-free; what remains is
    // transport-internal bookkeeping — TCP's retained-stream B-tree
    // node churn and the per-data-segment payload `Vec` — so the bound
    // is a calibrated residual, not zero. Before the scratch-reuse
    // rework the loop alone cost 3+ allocations per event.
    // VIA's bound is tighter: no retained-stream churn — the same
    // kernel-overhead asymmetry the paper measures.
    for (version, bound) in [(PressVersion::Tcp, 0.5), (PressVersion::Via5, 0.1)] {
        let mut sim = ClusterSim::new(ClusterConfig::small(version), 1);
        sim.run_until(SimTime::from_secs(3));
        let (a0, e0) = (allocs(), sim.events_dispatched());
        sim.run_until(SimTime::from_secs(4));
        let delta_allocs = allocs() - a0;
        let delta_events = sim.events_dispatched() - e0;
        let per_event = delta_allocs as f64 / delta_events as f64;
        println!(
            "alloc-counter: {} steady state: {delta_allocs} allocations / \
             {delta_events} events = {per_event:.4} per event",
            version.name()
        );
        assert!(
            per_event < bound,
            "{}: {per_event:.4} allocations per event exceeds the \
             {bound}/event residual budget — the loop itself must stay \
             allocation-free",
            version.name()
        );
    }
}

fn cluster_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sim_second");
    group.sample_size(10);
    for version in [PressVersion::Tcp, PressVersion::Via0, PressVersion::Via5] {
        group.bench_function(version.name(), |b| {
            b.iter_batched(
                || {
                    let mut sim = ClusterSim::new(ClusterConfig::small(version), 1);
                    sim.run_until(SimTime::from_secs(2)); // warm
                    sim
                },
                |mut sim| {
                    let until = sim.now() + SimDuration::from_secs(1);
                    sim.run_until(until);
                    black_box(sim.report().availability.attempts)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn drain_work_hot_path(c: &mut Criterion) {
    // 100 simulated milliseconds of a warm cluster per iteration: short
    // enough to sample the handle/drain_work scratch path tightly,
    // without boot or prewarm noise.
    let mut group = c.benchmark_group("drain_work_100ms");
    for version in [PressVersion::Tcp, PressVersion::Via5] {
        group.bench_function(version.name(), |b| {
            b.iter_batched(
                || {
                    let mut sim = ClusterSim::new(ClusterConfig::small(version), 1);
                    sim.run_until(SimTime::from_secs(2)); // warm
                    sim
                },
                |mut sim| {
                    let until = sim.now() + SimDuration::from_millis(100);
                    sim.run_until(until);
                    black_box(sim.events_dispatched())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn cluster_boot(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_boot");
    group.sample_size(10);
    group.bench_function("build_and_prewarm", |b| {
        b.iter(|| black_box(ClusterSim::new(ClusterConfig::small(PressVersion::Via5), 1)))
    });
    group.finish();
}

criterion_group!(
    benches,
    allocation_counter,
    cluster_second,
    drain_work_hot_path,
    cluster_boot
);
criterion_main!(benches);
