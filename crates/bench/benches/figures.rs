//! One benchmark per reproduced table/figure, on the shrunk test-bed:
//! regenerating each artifact end-to-end (simulation + extraction +
//! analytics). These are the "can we rebuild the paper" macro numbers;
//! the full-scale regeneration lives in `repro -- all`.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figures::{fig2, fig3, fig4, fig5, table1};
use experiments::phase2::{version_profile, RunScale};
use experiments::evaluate;
use performability::fault_load::{paper_fault_load, DAY};
use press::PressVersion;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("repro");
    group.sample_size(10);
    group.bench_function("table1", |b| {
        b.iter(|| black_box(table1(RunScale::Small, 1, 1).1))
    });
    group.finish();
}

fn bench_timeline_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("repro_figures");
    group.sample_size(10);
    group.bench_function("fig2_link_fault", |b| {
        b.iter(|| black_box(fig2(RunScale::Small, 1, 1).len()))
    });
    group.bench_function("fig3_node_crash", |b| {
        b.iter(|| black_box(fig3(RunScale::Small, 1, 1).len()))
    });
    group.bench_function("fig4_memory", |b| {
        b.iter(|| black_box(fig4(RunScale::Small, 1, 1).len()))
    });
    group.bench_function("fig5_null_pointer", |b| {
        b.iter(|| black_box(fig5(RunScale::Small, 1, 1).len()))
    });
    group.finish();
}

fn bench_phase2(c: &mut Criterion) {
    let mut group = c.benchmark_group("repro_phase2");
    group.sample_size(10);
    // Phase 1 once; then benchmark the analytic model on top of it.
    let profile = version_profile(PressVersion::Via5, RunScale::Small, 1);
    let load = paper_fault_load(DAY);
    group.bench_function("evaluate_model", |b| {
        b.iter(|| black_box(evaluate(&profile, &load).performability))
    });
    group.bench_function("profile_via5", |b| {
        b.iter(|| black_box(version_profile(PressVersion::Via5, RunScale::Small, 1).tn))
    });
    group.finish();
}

criterion_group!(benches, bench_tables, bench_timeline_figures, bench_phase2);
criterion_main!(benches);
