//! Benchmark and reproduction harness for the paper's tables and
//! figures.
//!
//! * `src/bin/repro.rs` — regenerates every table and figure as text:
//!   `cargo run --release -p bench --bin repro -- all`.
//! * `benches/` — Criterion micro- and macro-benchmarks of the engine,
//!   the transports, the PRESS cache, whole-cluster stepping, and the
//!   per-figure reproduction runs.
