//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin repro -- <target> [--small] [--seed N] [--jobs N] [--timing]
//! ```
//!
//! where `<target>` is one of `table1`, `table2`, `table3`, `fig2`,
//! `fig3`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`, `fig9`, `fig10`,
//! `offbyn`, `crossover`, `ablation-membership`, `ablation-heartbeat`,
//! or `all`. `--small` runs on the shrunk
//! test-bed (fast, for smoke-testing the harness; numbers will differ
//! from the paper's scale).
//!
//! `--jobs N` fans the independent simulations of each target across N
//! workers (`--jobs 0` = all cores, `--jobs 1` = sequential, the
//! default). Every run takes an explicit seed, so stdout is
//! byte-identical for any job count.
//!
//! `--timing` reports wall-clock, events dispatched, and events/second
//! per target on stderr and writes `BENCH_repro.json` at the repo root
//! (appending a compact history entry per run); stdout is unchanged.
//!
//! `--trace <out.json>` (timeline targets `fig2`–`fig5` only) reruns
//! the target with structured tracing on and writes a Chrome-trace JSON
//! file loadable in Perfetto / `chrome://tracing`; the file is
//! byte-identical for a given seed, independent of `--jobs`.
//! `--trace-jsonl <out.jsonl>` writes the same events as a JSONL event
//! log. `--metrics` prints each traced run's metrics summary to stdout
//! after the figure text.

use std::env;
use std::fmt::Write as _;
use std::time::Instant;

use experiments::figures::{
    ablation_heartbeat, ablation_membership, build_profiles, crossover, fig10, fig2, fig3, fig4,
    fig5, fig6, fig7, fig8, fig9, off_by_n_summary, table1, table2, table3, traced_timeline,
    REPRO_SEED,
};
use experiments::phase2::RunScale;
use experiments::{effective_jobs, events_dispatched_total};
use performability::fault_load::DAY;

/// One timed target for the `--timing` report.
struct Timing {
    name: String,
    wall_s: f64,
    events: u64,
}

impl Timing {
    fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Pulls the one-line entries out of an existing `"history": [...]`
/// array (string-level: the file is our own output, no JSON parser in
/// the tree).
fn extract_history(old: &str) -> Vec<String> {
    let Some(start) = old.find("\"history\": [") else {
        return Vec::new();
    };
    let rest = &old[start + "\"history\": [".len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{'))
        .map(|l| l.trim_end_matches(',').to_string())
        .collect()
}

fn write_bench_json(path: &str, scale: RunScale, seed: u64, jobs: usize, timings: &[Timing]) {
    let total_wall: f64 = timings.iter().map(|t| t.wall_s).sum();
    let total_events: u64 = timings.iter().map(|t| t.events).sum();
    let mut history = std::fs::read_to_string(path)
        .map(|old| extract_history(&old))
        .unwrap_or_default();
    history.push(format!(
        "{{\"scale\": \"{}\", \"seed\": {seed}, \"jobs\": {jobs}, \"targets\": {}, \"total_wall_s\": {total_wall:.3}, \"total_events\": {total_events}}}",
        match scale {
            RunScale::Paper => "paper",
            RunScale::Small => "small",
        },
        timings.len(),
    ));
    // Keep the file bounded: the last 20 runs are plenty of history.
    if history.len() > 20 {
        let drop = history.len() - 20;
        history.drain(..drop);
    }
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        match scale {
            RunScale::Paper => "paper",
            RunScale::Small => "small",
        }
    );
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"total_wall_s\": {total_wall:.3},");
    let _ = writeln!(json, "  \"total_events\": {total_events},");
    json.push_str("  \"targets\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"wall_s\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}}}",
            t.name,
            t.wall_s,
            t.events,
            t.events_per_sec()
        );
        json.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"history\": [\n");
    for (i, h) in history.iter().enumerate() {
        json.push_str("    ");
        json.push_str(h);
        json.push_str(if i + 1 < history.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut target = String::from("all");
    let mut scale = RunScale::Paper;
    let mut seed = REPRO_SEED;
    let mut jobs_arg = 1usize;
    let mut timing = false;
    let mut trace_path: Option<String> = None;
    let mut jsonl_path: Option<String> = None;
    let mut metrics = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => scale = RunScale::Small,
            "--trace" => {
                trace_path = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--trace needs an output path");
                        std::process::exit(2);
                    }
                };
            }
            "--trace-jsonl" => {
                jsonl_path = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--trace-jsonl needs an output path");
                        std::process::exit(2);
                    }
                };
            }
            "--metrics" => metrics = true,
            "--seed" => {
                seed = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    }
                };
            }
            "--jobs" => {
                jobs_arg = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--jobs needs an integer (0 = all cores)");
                        std::process::exit(2);
                    }
                };
            }
            "--timing" => timing = true,
            t if !t.starts_with('-') => target = t.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let jobs = if jobs_arg == 1 { 1 } else { effective_jobs(jobs_arg) };

    // Traced mode: rerun the target with the sink on and export.
    if trace_path.is_some() || jsonl_path.is_some() || metrics {
        match traced_timeline(&target, scale, seed, jobs) {
            Some((text, runs)) => {
                println!("{text}");
                if let Some(p) = &trace_path {
                    let json = telemetry::chrome_trace_json(&runs);
                    match std::fs::write(p, &json) {
                        Ok(()) => eprintln!(
                            "wrote {p}: {} events across {} runs (open in Perfetto or chrome://tracing)",
                            runs.iter().map(|r| r.events.len()).sum::<usize>(),
                            runs.len()
                        ),
                        Err(e) => {
                            eprintln!("could not write {p}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                if let Some(p) = &jsonl_path {
                    if let Err(e) = std::fs::write(p, telemetry::jsonl_log(&runs)) {
                        eprintln!("could not write {p}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {p}");
                }
                if metrics {
                    for r in &runs {
                        println!("{}", r.metrics.text_summary(&r.label));
                    }
                }
                return;
            }
            None => {
                eprintln!(
                    "warning: --trace/--metrics only applies to the timeline targets \
                     fig2..fig5; running {target} untraced"
                );
            }
        }
    }

    let mut timings: Vec<Timing> = Vec::new();
    let mut timed = |name: &str, f: &mut dyn FnMut()| {
        let ev0 = events_dispatched_total();
        let start = Instant::now();
        f();
        let wall_s = start.elapsed().as_secs_f64();
        let events = events_dispatched_total() - ev0;
        timings.push(Timing {
            name: name.to_string(),
            wall_s,
            events,
        });
    };

    let needs_profiles = matches!(
        target.as_str(),
        "fig6" | "fig7" | "fig8" | "fig9" | "fig10" | "crossover" | "all"
    );
    let mut profiles = None;
    if needs_profiles {
        eprintln!("building per-version fault profiles (phase 1: 11 faults x 5 versions)...");
        timed("profiles", &mut || {
            profiles = Some(build_profiles(scale, seed, jobs));
        });
    }
    let profiles = profiles.as_deref();

    let run = |name: &str| match name {
        "table1" => println!("{}", table1(scale, seed, jobs).0),
        "table2" => println!("{}", table2()),
        "table3" => println!("{}", table3(DAY)),
        "fig2" => println!("{}", fig2(scale, seed, jobs)),
        "fig3" => println!("{}", fig3(scale, seed, jobs)),
        "fig4" => println!("{}", fig4(scale, seed, jobs)),
        "fig5" => println!("{}", fig5(scale, seed, jobs)),
        "fig6" => println!("{}", fig6(profiles.expect("profiles built"))),
        "fig7" => println!("{}", fig7(profiles.expect("profiles built"))),
        "fig8" => println!("{}", fig8(profiles.expect("profiles built"))),
        "fig9" => println!("{}", fig9(profiles.expect("profiles built"))),
        "fig10" => println!("{}", fig10(profiles.expect("profiles built"))),
        "offbyn" => println!("{}", off_by_n_summary(scale, seed, jobs)),
        "ablation-membership" => println!("{}", ablation_membership(scale, seed, jobs)),
        "ablation-heartbeat" => println!("{}", ablation_heartbeat(scale, seed, jobs)),
        "crossover" => println!("{}", crossover(profiles.expect("profiles built"))),
        other => {
            eprintln!("unknown target {other}");
            std::process::exit(2);
        }
    };

    if target == "all" {
        for name in [
            "table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "offbyn", "fig6",
            "fig7", "fig8", "fig9", "fig10", "crossover", "ablation-membership",
            "ablation-heartbeat",
        ] {
            println!("==============================================================");
            timed(name, &mut || run(name));
        }
    } else {
        timed(&target, &mut || run(&target));
    }

    if timing {

        let total_wall: f64 = timings.iter().map(|t| t.wall_s).sum();
        let total_events: u64 = timings.iter().map(|t| t.events).sum();
        eprintln!("\n--- timing (jobs = {jobs}) ---");
        for t in &timings {
            eprintln!(
                "{:<22} {:>8.3} s  {:>12} events  {:>12.0} events/s",
                t.name,
                t.wall_s,
                t.events,
                t.events_per_sec()
            );
        }
        eprintln!(
            "{:<22} {:>8.3} s  {:>12} events  {:>12.0} events/s",
            "total",
            total_wall,
            total_events,
            if total_wall > 0.0 {
                total_events as f64 / total_wall
            } else {
                0.0
            }
        );
        // The harness lives two levels below the repo root.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repro.json");
        write_bench_json(path, scale, seed, jobs, &timings);
        eprintln!("wrote {path}");
    }
}
