//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin repro -- <target> [--small] [--seed N] [--jobs N] [--sim-threads N] [--timing]
//! ```
//!
//! where `<target>` is one of `table1`, `table2`, `table3`, `fig2`,
//! `fig3`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`, `fig9`, `fig10`,
//! `offbyn`, `crossover`, `ablation-membership`, `ablation-heartbeat`,
//! `membership`, `scale`, `scalebench`, `audit`, `montecarlo`, or
//! `all`. `--small` runs on the shrunk test-bed (fast, for
//! smoke-testing the harness; numbers will differ from the paper's
//! scale).
//!
//! `membership` sweeps cluster sizes N ∈ {4, 8, 16, 32} with
//! TCP-PRESS-HB under both failure detectors — the paper's heartbeat
//! ring and the SWIM epidemic detector (`crates/gossip`) — and prints
//! the detection-latency crossover table (rack-crash detection,
//! availability/throughput, gray-fault false exclusions, rejoin
//! latency). With `--metrics` it also prints the sweep's gauges and the
//! gossip runs' node-level metric snapshots. Like `montecarlo`, it goes
//! beyond the paper's tables and is not part of `all`.
//!
//! `scale` sweeps cluster sizes N ∈ {4, 16, 64} ({4, 16} with
//! `--small`) on a radix-8 fat-tree fabric, comparing the paper's
//! eager cache-action broadcast against batched cache digests
//! (`PressConfig::cache_sync`) under both detectors, and prints
//! Tn/AT/AA/P plus cluster-wide control-frame counts per point. With
//! `--metrics` it also prints the sweep's gauges and the digest runs'
//! node-level metric snapshots. `scalebench` times the single heaviest
//! point (the largest-N digest-mode TCP-PRESS-HB run) — the intended
//! workload for `--sim-threads` benchmarking. Like `montecarlo`, both
//! go beyond the paper's tables and are not part of `all`.
//!
//! `montecarlo` estimates performability empirically over generated
//! fault timelines — correlated fault groups, gray faults, and
//! overlapping arrivals the closed-form model cannot express — and
//! cross-checks a single-fault-class load against the closed-form AA.
//! It is not part of `all` (its fault universe goes beyond the paper's
//! tables); `--report <out.html>` works for it like for the timeline
//! targets.
//!
//! `--jobs N` fans the independent simulations of each target across N
//! workers (`--jobs 0` = all cores, `--jobs 1` = sequential, the
//! default). Every run takes an explicit seed, so stdout is
//! byte-identical for any job count.
//!
//! `--sim-threads N` shards *each individual simulation* across N
//! worker threads using the conservative lookahead-window engine
//! (`--sim-threads 1` = the sequential event loop, the default).
//! Output is byte-identical for any thread count; the two axes
//! compose (`--jobs` parallelises across runs, `--sim-threads`
//! within one run).
//!
//! `--timing` reports wall-clock, events dispatched, events/second,
//! and each target's share of the total wall time on stderr, and
//! writes `BENCH_repro.json` at the repo root (appending a compact
//! history entry per run); stdout is unchanged. With `all` this is the
//! per-phase wall-clock summary for the whole reproduction.
//!
//! `--trace <out.json>` (timeline targets `fig2`–`fig5` only) reruns
//! the target with structured tracing on and writes a Chrome-trace JSON
//! file loadable in Perfetto / `chrome://tracing`; the file is
//! byte-identical for a given seed, independent of `--jobs`.
//! `--trace-jsonl <out.jsonl>` writes the same events as a JSONL event
//! log. `--metrics` prints each traced run's metrics summary to stdout
//! after the figure text (for `table1`, it prints the per-version
//! workload metrics instead).
//!
//! `--attribution` (timeline targets `fig2`–`fig5`, plus `scale`)
//! reruns the target with causal root-cause attribution on: every lost
//! or deadline-missing request is classified into exactly one root
//! cause (fault-window kill, retransmit/abort stall, broadcast freeze,
//! detection lag, gray-link loss, overload queueing) and each run's
//! text output is followed by the Pareto table, the conservation
//! verdict (attributed losses sum exactly to the scored failures;
//! attributed unavailable seconds to (1−AA)·T), the per-stage loss
//! split, and the critical-path percentiles. Combine with `--report`
//! to add a stacked root-cause-lane section per run to the HTML
//! dashboard. Output is byte-identical across `--jobs` and
//! `--sim-threads`.
//!
//! `--report <out.html>` (timeline targets `fig2`–`fig5` only) also
//! writes a single-file HTML dashboard for the target: throughput
//! timelines with stage bands and the blind-fit overlay, per-stage
//! latency percentiles, the phase-2 projection, and the audit verdict.
//! The file is byte-identical for a fixed seed, independent of
//! `--jobs`.
//!
//! The `audit` target runs the blind stage-segmentation audit over all
//! 11 measured faults × 5 versions and exits non-zero if any run's
//! blind change-point fit disagrees with its log-derived markers.

use std::env;
use std::time::Instant;

use experiments::figures::{
    ablation_heartbeat, ablation_membership, build_profiles, crossover, fig10, fig2, fig3, fig4,
    fig5, fig6, fig7, fig8, fig9, off_by_n_summary, table1, table1_metrics, table2, table3,
    timeline_results, traced_timeline, REPRO_SEED,
};
use experiments::phase2::{profile_fault_runs, RunScale};
use experiments::{effective_jobs, events_dispatched_total, montecarlo_results};
use performability::fault_load::DAY;
use press::PressVersion;
use telemetry::json::JsonValue;

/// One timed target for the `--timing` report.
struct Timing {
    name: String,
    wall_s: f64,
    events: u64,
}

impl Timing {
    fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

fn scale_name(scale: RunScale) -> &'static str {
    match scale {
        RunScale::Paper => "paper",
        RunScale::Small => "small",
    }
}

/// Builds a JSON object from string keys (sorted on output by the
/// [`JsonValue`] printer).
fn jobj(pairs: &[(&str, JsonValue)]) -> JsonValue {
    JsonValue::Object(
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

/// Rounds to 3 decimals so wall-clock floats stay short in the file.
fn ms3(v: f64) -> JsonValue {
    JsonValue::Float((v * 1000.0).round() / 1000.0)
}

/// Whether a history entry carries the full expected schema. Entries
/// from older/foreign formats are dropped rather than propagated.
fn history_entry_valid(e: &JsonValue) -> bool {
    e.get("scale").and_then(JsonValue::as_str).is_some()
        && e.get("seed").and_then(JsonValue::as_i64).is_some()
        && e.get("jobs").and_then(JsonValue::as_i64).is_some()
        && e.get("sim_threads").and_then(JsonValue::as_i64).is_some()
        && e.get("targets").and_then(JsonValue::as_i64).is_some()
        && e.get("total_wall_s").and_then(JsonValue::as_f64).is_some()
        && e.get("total_events").and_then(JsonValue::as_i64).is_some()
}

fn write_bench_json(
    path: &str,
    scale: RunScale,
    seed: u64,
    jobs: usize,
    sim_threads: usize,
    timings: &[Timing],
) {
    let total_wall: f64 = timings.iter().map(|t| t.wall_s).sum();
    let total_events: u64 = timings.iter().map(|t| t.events).sum();

    // Carry forward the existing history (schema-validated entries
    // only), then append this run and keep the last 20.
    let mut history: Vec<JsonValue> = std::fs::read_to_string(path)
        .ok()
        .and_then(|old| telemetry::json::parse(&old).ok())
        .and_then(|doc| {
            doc.get("history")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::to_vec)
        })
        .unwrap_or_default()
        .into_iter()
        .filter(history_entry_valid)
        .collect();
    history.push(jobj(&[
        ("scale", JsonValue::Str(scale_name(scale).to_string())),
        ("seed", JsonValue::Int(seed as i64)),
        ("jobs", JsonValue::Int(jobs as i64)),
        ("sim_threads", JsonValue::Int(sim_threads as i64)),
        ("targets", JsonValue::Int(timings.len() as i64)),
        ("total_wall_s", ms3(total_wall)),
        ("total_events", JsonValue::Int(total_events as i64)),
    ]));
    if history.len() > 20 {
        let drop = history.len() - 20;
        history.drain(..drop);
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let targets = timings
        .iter()
        .map(|t| {
            let share = if total_wall > 0.0 {
                t.wall_s / total_wall * 100.0
            } else {
                0.0
            };
            jobj(&[
                ("name", JsonValue::Str(t.name.clone())),
                ("wall_s", ms3(t.wall_s)),
                ("wall_share_pct", JsonValue::Float((share * 10.0).round() / 10.0)),
                ("events", JsonValue::Int(t.events as i64)),
                ("events_per_sec", JsonValue::Int(t.events_per_sec().round() as i64)),
                ("sim_threads", JsonValue::Int(sim_threads as i64)),
            ])
        })
        .collect();
    let doc = jobj(&[
        ("scale", JsonValue::Str(scale_name(scale).to_string())),
        ("seed", JsonValue::Int(seed as i64)),
        ("jobs", JsonValue::Int(jobs as i64)),
        ("sim_threads", JsonValue::Int(sim_threads as i64)),
        ("host_cores", JsonValue::Int(cores as i64)),
        ("total_wall_s", ms3(total_wall)),
        ("total_events", JsonValue::Int(total_events as i64)),
        ("targets", JsonValue::Array(targets)),
        ("history", JsonValue::Array(history)),
    ]);
    if let Err(e) = std::fs::write(path, doc.to_pretty()) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// Shared dashboard inputs: the meta block (titled from the figure
/// text's first line) and the wall-time history from `BENCH_repro.json`
/// if one exists next to the workspace root.
fn report_inputs(
    target: &str,
    figure_text: &str,
    scale: RunScale,
    seed: u64,
) -> (report::ReportMeta, Vec<report::BenchHistoryPoint>) {
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repro.json");
    let history = std::fs::read_to_string(bench_path)
        .map(|text| report::parse_bench_history(&text))
        .unwrap_or_default();
    let meta = report::ReportMeta {
        target: target.to_string(),
        title: figure_text
            .lines()
            .next()
            .unwrap_or(target)
            .trim()
            .to_string(),
        scale: scale_name(scale).to_string(),
        seed,
    };
    (meta, history)
}

/// Builds the HTML dashboard for a timeline target from its already-run
/// results.
fn build_report(
    target: &str,
    figure_text: &str,
    runs: &[experiments::phase1::FaultRunResult],
    scale: RunScale,
    seed: u64,
) -> String {
    let (meta, history) = report_inputs(target, figure_text, scale, seed);
    report::render_report(&meta, runs, &history)
}

/// The `audit` target: blind stage segmentation vs the run log for all
/// 11 measured faults × 5 versions. Returns the process exit code.
fn run_audit(scale: RunScale, seed: u64, jobs: usize) -> i32 {
    eprintln!("auditing stage segmentation (11 faults x 5 versions)...");
    let runs = profile_fault_runs(&PressVersion::ALL, scale, seed, jobs);
    let audits: Vec<report::RunAudit> = runs.iter().map(report::audit_run).collect();
    println!(
        "== blind stage-segmentation audit (scale {}, seed {seed}, {} runs) ==",
        scale_name(scale),
        audits.len()
    );
    let mut failed = 0usize;
    for a in &audits {
        let verdict = if a.pass() { "agree" } else { "DISAGREE" };
        println!(
            "{:<46} {:>2} segments  {verdict}",
            a.label,
            a.segments.len()
        );
        for f in &a.findings {
            println!("    {}: {}", f.kind, f.describe());
        }
        if !a.pass() {
            failed += 1;
        }
    }
    if failed == 0 {
        println!("audit: all {} runs agree with the blind fit", audits.len());
        0
    } else {
        println!(
            "audit: {failed}/{} runs disagree with the blind fit",
            audits.len()
        );
        1
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut target = String::from("all");
    let mut scale = RunScale::Paper;
    let mut seed = REPRO_SEED;
    let mut jobs_arg = 1usize;
    let mut sim_threads = 1usize;
    let mut timing = false;
    let mut trace_path: Option<String> = None;
    let mut jsonl_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut metrics = false;
    let mut attribution = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => scale = RunScale::Small,
            "--report" => {
                report_path = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--report needs an output path");
                        std::process::exit(2);
                    }
                };
            }
            "--trace" => {
                trace_path = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--trace needs an output path");
                        std::process::exit(2);
                    }
                };
            }
            "--trace-jsonl" => {
                jsonl_path = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--trace-jsonl needs an output path");
                        std::process::exit(2);
                    }
                };
            }
            "--metrics" => metrics = true,
            "--attribution" => attribution = true,
            "--seed" => {
                seed = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    }
                };
            }
            "--jobs" => {
                jobs_arg = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--jobs needs an integer (0 = all cores)");
                        std::process::exit(2);
                    }
                };
            }
            "--sim-threads" => {
                sim_threads = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--sim-threads needs an integer >= 1");
                        std::process::exit(2);
                    }
                };
            }
            "--timing" => timing = true,
            t if !t.starts_with('-') => target = t.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let jobs = if jobs_arg == 1 { 1 } else { effective_jobs(jobs_arg) };
    experiments::set_default_sim_threads(sim_threads);

    // The audit target has its own exit semantics: non-zero when any
    // run's blind segmentation disagrees with its log-derived markers.
    if target == "audit" {
        std::process::exit(run_audit(scale, seed, jobs));
    }

    // `table1 --metrics`: the per-version workload metrics summaries
    // (including the latency percentiles), golden-gated in verify.sh.
    if metrics && target == "table1" {
        println!("{}", table1_metrics(scale, seed, jobs));
        return;
    }

    // `membership [--metrics]`: the ring-vs-gossip detector sweep; with
    // --metrics, the membership.* gauges and gossip node snapshots too.
    if target == "membership" {
        if metrics {
            println!("{}", experiments::membership_metrics(scale, seed, jobs));
        } else {
            println!("{}", experiments::membership::membership(scale, seed, jobs));
        }
        return;
    }

    // `--attribution`: rerun the target with the causal root-cause
    // recorder on. Every lost/deadline-missing request lands in exactly
    // one cause bucket; each run's figure text is followed by the
    // Pareto table and the conservation verdict. `scale` attributes all
    // sweep points; fig2..fig5 attribute their three timeline runs and
    // compose with --report.
    if attribution {
        if target == "scale" {
            println!("{}", experiments::scale_attributed(scale, seed, jobs));
            return;
        }
        let Some((text, runs)) =
            experiments::figures::attributed_timeline(&target, scale, seed, jobs)
        else {
            eprintln!("--attribution applies to the timeline targets fig2..fig5 and scale");
            std::process::exit(2);
        };
        println!("{text}");
        if let Some(out) = &report_path {
            let (meta, history) = report_inputs(&target, &text, scale, seed);
            let html = report::render_report_attributed(&meta, &runs, &history);
            if let Err(e) = std::fs::write(out, &html) {
                eprintln!("could not write {out}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {out} ({} bytes)", html.len());
        }
        return;
    }

    // `scale [--metrics]`: the eager-vs-digest cluster-size sweep; with
    // --metrics, the scale.* gauges and digest node snapshots too.
    if target == "scale" {
        if metrics {
            println!("{}", experiments::scale_metrics(scale, seed, jobs));
        } else {
            println!("{}", experiments::scale::scale(scale, seed, jobs));
        }
        return;
    }

    // Report mode: run the target once, print its text, and write the
    // HTML dashboard from the same runs (no re-simulation).
    if let Some(out) = &report_path {
        if target == "montecarlo" {
            let (text, run) = montecarlo_results(scale, seed, jobs);
            println!("{text}");
            let meta = report::ReportMeta {
                target: target.clone(),
                title: "Monte-Carlo performability".to_string(),
                scale: scale_name(scale).to_string(),
                seed,
            };
            let html = report::render_mc_report(&meta, &run);
            if let Err(e) = std::fs::write(out, &html) {
                eprintln!("could not write {out}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {out} ({} bytes)", html.len());
            return;
        }
        let Some((text, runs)) = timeline_results(&target, scale, seed, jobs) else {
            eprintln!("--report only applies to the timeline targets fig2..fig5 and montecarlo");
            std::process::exit(2);
        };
        println!("{text}");
        let html = build_report(&target, &text, &runs, scale, seed);
        if let Err(e) = std::fs::write(out, &html) {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {out} ({} bytes)", html.len());
        return;
    }

    // Traced mode: rerun the target with the sink on and export.
    if trace_path.is_some() || jsonl_path.is_some() || metrics {
        match traced_timeline(&target, scale, seed, jobs) {
            Some((text, runs)) => {
                println!("{text}");
                if let Some(p) = &trace_path {
                    let json = telemetry::chrome_trace_json(&runs);
                    match std::fs::write(p, &json) {
                        Ok(()) => eprintln!(
                            "wrote {p}: {} events across {} runs (open in Perfetto or chrome://tracing)",
                            runs.iter().map(|r| r.events.len()).sum::<usize>(),
                            runs.len()
                        ),
                        Err(e) => {
                            eprintln!("could not write {p}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                if let Some(p) = &jsonl_path {
                    if let Err(e) = std::fs::write(p, telemetry::jsonl_log(&runs)) {
                        eprintln!("could not write {p}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {p}");
                }
                if metrics {
                    for r in &runs {
                        println!("{}", r.metrics.text_summary(&r.label));
                    }
                }
                return;
            }
            None => {
                eprintln!(
                    "warning: --trace/--metrics only applies to the timeline targets \
                     fig2..fig5; running {target} untraced"
                );
            }
        }
    }

    let mut timings: Vec<Timing> = Vec::new();
    let mut timed = |name: &str, f: &mut dyn FnMut()| {
        let ev0 = events_dispatched_total();
        let start = Instant::now();
        f();
        let wall_s = start.elapsed().as_secs_f64();
        let events = events_dispatched_total() - ev0;
        timings.push(Timing {
            name: name.to_string(),
            wall_s,
            events,
        });
    };

    let needs_profiles = matches!(
        target.as_str(),
        "fig6" | "fig7" | "fig8" | "fig9" | "fig10" | "crossover" | "all"
    );
    let mut profiles = None;
    if needs_profiles {
        eprintln!("building per-version fault profiles (phase 1: 11 faults x 5 versions)...");
        timed("profiles", &mut || {
            profiles = Some(build_profiles(scale, seed, jobs));
        });
    }
    let profiles = profiles.as_deref();

    let run = |name: &str| match name {
        "table1" => println!("{}", table1(scale, seed, jobs).0),
        "table2" => println!("{}", table2()),
        "table3" => println!("{}", table3(DAY)),
        "fig2" => println!("{}", fig2(scale, seed, jobs)),
        "fig3" => println!("{}", fig3(scale, seed, jobs)),
        "fig4" => println!("{}", fig4(scale, seed, jobs)),
        "fig5" => println!("{}", fig5(scale, seed, jobs)),
        "fig6" => println!("{}", fig6(profiles.expect("profiles built"))),
        "fig7" => println!("{}", fig7(profiles.expect("profiles built"))),
        "fig8" => println!("{}", fig8(profiles.expect("profiles built"))),
        "fig9" => println!("{}", fig9(profiles.expect("profiles built"))),
        "fig10" => println!("{}", fig10(profiles.expect("profiles built"))),
        "offbyn" => println!("{}", off_by_n_summary(scale, seed, jobs)),
        "ablation-membership" => println!("{}", ablation_membership(scale, seed, jobs)),
        "ablation-heartbeat" => println!("{}", ablation_heartbeat(scale, seed, jobs)),
        "crossover" => println!("{}", crossover(profiles.expect("profiles built"))),
        "montecarlo" => println!("{}", montecarlo_results(scale, seed, jobs).0),
        "scalebench" => println!("{}", experiments::scale::scalebench(scale, seed)),
        other => {
            eprintln!("unknown target {other}");
            std::process::exit(2);
        }
    };

    if target == "all" {
        for name in [
            "table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "offbyn", "fig6",
            "fig7", "fig8", "fig9", "fig10", "crossover", "ablation-membership",
            "ablation-heartbeat",
        ] {
            println!("==============================================================");
            timed(name, &mut || run(name));
        }
    } else {
        timed(&target, &mut || run(&target));
    }

    if timing {

        let total_wall: f64 = timings.iter().map(|t| t.wall_s).sum();
        let total_events: u64 = timings.iter().map(|t| t.events).sum();
        eprintln!("\n--- timing (jobs = {jobs}, sim-threads = {sim_threads}) ---");
        for t in &timings {
            eprintln!(
                "{:<22} {:>8.3} s  {:>12} events  {:>12.0} events/s  {:>5.1}%",
                t.name,
                t.wall_s,
                t.events,
                t.events_per_sec(),
                if total_wall > 0.0 {
                    t.wall_s / total_wall * 100.0
                } else {
                    0.0
                }
            );
        }
        eprintln!(
            "{:<22} {:>8.3} s  {:>12} events  {:>12.0} events/s  {:>5.1}%",
            "total",
            total_wall,
            total_events,
            if total_wall > 0.0 {
                total_events as f64 / total_wall
            } else {
                0.0
            },
            if total_wall > 0.0 { 100.0 } else { 0.0 }
        );
        // The harness lives two levels below the repo root.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repro.json");
        write_bench_json(path, scale, seed, jobs, sim_threads, &timings);
        eprintln!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_entries_are_schema_validated() {
        let good = telemetry::json::parse(
            r#"{"scale":"paper","seed":2003,"jobs":2,"sim_threads":4,"targets":16,
                "total_wall_s":475.368,"total_events":1000}"#,
        )
        .unwrap();
        assert!(history_entry_valid(&good));
        let missing = telemetry::json::parse(r#"{"scale":"paper","seed":2003}"#).unwrap();
        assert!(!history_entry_valid(&missing));
        // Pre-sim_threads entries are old-format and dropped.
        let old_format = telemetry::json::parse(
            r#"{"scale":"paper","seed":2003,"jobs":2,"targets":16,
                "total_wall_s":475.368,"total_events":1000}"#,
        )
        .unwrap();
        assert!(!history_entry_valid(&old_format));
        let wrong_type =
            telemetry::json::parse(r#"{"scale":3,"seed":2003,"jobs":2,"sim_threads":4,
                "targets":16,"total_wall_s":475.368,"total_events":1000}"#)
                .unwrap();
        assert!(!history_entry_valid(&wrong_type));
    }

    #[test]
    fn bench_json_round_trips_and_appends_history() {
        let dir = std::env::temp_dir().join("repro-bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_repro.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        let timings = [Timing {
            name: "fig2".to_string(),
            wall_s: 1.2345,
            events: 1000,
        }];
        write_bench_json(path, RunScale::Small, 7, 2, 1, &timings);
        write_bench_json(path, RunScale::Small, 7, 2, 4, &timings);
        let doc = telemetry::json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        let history = doc.get("history").and_then(JsonValue::as_array).unwrap();
        assert_eq!(history.len(), 2, "each write appends one entry");
        assert!(history.iter().all(history_entry_valid));
        assert_eq!(
            doc.get("sim_threads").and_then(JsonValue::as_i64),
            Some(4),
            "top level records the run's sim_threads"
        );
        let targets = doc.get("targets").and_then(JsonValue::as_array).unwrap();
        assert_eq!(targets.len(), 1);
        assert_eq!(
            targets[0].get("sim_threads").and_then(JsonValue::as_i64),
            Some(4),
            "each target records the sim_threads it ran under"
        );
        // Keys are emitted sorted: the document is stable under
        // parse → print.
        let pretty = doc.to_pretty();
        assert_eq!(
            telemetry::json::parse(&pretty).unwrap().to_pretty(),
            pretty
        );
        let _ = std::fs::remove_file(path);
    }
}
