//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin repro -- <target> [--small] [--seed N]
//! ```
//!
//! where `<target>` is one of `table1`, `table2`, `table3`, `fig2`,
//! `fig3`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`, `fig9`, `fig10`,
//! `offbyn`, `crossover`, `ablation-membership`, `ablation-heartbeat`,
//! or `all`. `--small` runs on the shrunk
//! test-bed (fast, for smoke-testing the harness; numbers will differ
//! from the paper's scale).

use std::env;

use experiments::figures::{
    ablation_heartbeat, ablation_membership, build_profiles, crossover, fig10, fig2, fig3, fig4,
    fig5, fig6, fig7, fig8, fig9, off_by_n_summary, table1, table2, table3, REPRO_SEED,
};
use experiments::phase2::RunScale;
use performability::fault_load::DAY;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut target = String::from("all");
    let mut scale = RunScale::Paper;
    let mut seed = REPRO_SEED;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => scale = RunScale::Small,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
            }
            t if !t.starts_with('-') => target = t.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let needs_profiles = matches!(
        target.as_str(),
        "fig6" | "fig7" | "fig8" | "fig9" | "fig10" | "crossover" | "all"
    );
    let profiles = if needs_profiles {
        eprintln!("building per-version fault profiles (phase 1: 11 faults x 5 versions)...");
        Some(build_profiles(scale, seed))
    } else {
        None
    };
    let profiles = profiles.as_deref();

    let run = |name: &str| match name {
        "table1" => println!("{}", table1(scale, seed).0),
        "table2" => println!("{}", table2()),
        "table3" => println!("{}", table3(DAY)),
        "fig2" => println!("{}", fig2(scale, seed)),
        "fig3" => println!("{}", fig3(scale, seed)),
        "fig4" => println!("{}", fig4(scale, seed)),
        "fig5" => println!("{}", fig5(scale, seed)),
        "fig6" => println!("{}", fig6(profiles.expect("profiles built"))),
        "fig7" => println!("{}", fig7(profiles.expect("profiles built"))),
        "fig8" => println!("{}", fig8(profiles.expect("profiles built"))),
        "fig9" => println!("{}", fig9(profiles.expect("profiles built"))),
        "fig10" => println!("{}", fig10(profiles.expect("profiles built"))),
        "offbyn" => println!("{}", off_by_n_summary(scale, seed)),
        "ablation-membership" => println!("{}", ablation_membership(scale, seed)),
        "ablation-heartbeat" => println!("{}", ablation_heartbeat(scale, seed)),
        "crossover" => println!("{}", crossover(profiles.expect("profiles built"))),
        other => {
            eprintln!("unknown target {other}");
            std::process::exit(2);
        }
    };

    if target == "all" {
        for name in [
            "table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "offbyn", "fig6",
            "fig7", "fig8", "fig9", "fig10", "crossover", "ablation-membership",
            "ablation-heartbeat",
        ] {
            println!("==============================================================");
            run(name);
        }
    } else {
        run(&target);
    }
}
