//! Fault loads: fault classes with MTTF/MTTR (Table 3) and instance
//! counts.

/// Seconds in a day.
pub const DAY: f64 = 86_400.0;
/// Seconds in a week.
pub const WEEK: f64 = 7.0 * DAY;
/// Seconds in a 30-day month.
pub const MONTH: f64 = 30.0 * DAY;
/// Seconds in a 365-day year.
pub const YEAR: f64 = 365.0 * DAY;
/// The paper's application-fault repair time: 3 minutes to restart the
/// application in a clean state.
pub const THREE_MINUTES: f64 = 180.0;

/// The fault classes of the phase-2 model: Table 3 plus the three
/// classes added by the §6.3 sensitivity scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelFault {
    /// A node's link goes down.
    LinkDown,
    /// The switch goes down.
    SwitchDown,
    /// Node crash (hard reboot).
    NodeCrash,
    /// Node freeze.
    NodeFreeze,
    /// Memory pinning failure.
    MemPin,
    /// Kernel memory allocation failure.
    MemAlloc,
    /// Application process crash.
    ProcessCrash,
    /// Application process hang.
    ProcessHang,
    /// Bad parameters: NULL pointer.
    BadNull,
    /// Bad parameters: off-by-N data pointer.
    BadOffPtr,
    /// Bad parameters: off-by-N size.
    BadOffSize,
    /// §6.3: transient packet drop, VIA only (behaves like a process
    /// crash because the error report makes the process terminate).
    ViaPacketDrop,
    /// §6.3: extra application bugs from VIA's harder programming model
    /// (behaves like a process crash).
    ViaExtraBug,
    /// §6.3: system crash from immature VIA hardware/firmware (modeled
    /// as a switch crash).
    ViaSystemCrash,
}

impl ModelFault {
    /// Table 3's name for the fault.
    pub fn name(self) -> &'static str {
        match self {
            ModelFault::LinkDown => "Link down",
            ModelFault::SwitchDown => "Switch down",
            ModelFault::NodeCrash => "Node crash",
            ModelFault::NodeFreeze => "Node freeze",
            ModelFault::MemPin => "Memory pinning failure",
            ModelFault::MemAlloc => "Memory allocation failure",
            ModelFault::ProcessCrash => "Process crash",
            ModelFault::ProcessHang => "Process hang",
            ModelFault::BadNull => "Bad parameters - null pointer",
            ModelFault::BadOffPtr => "Bad parameters - off-by-N data pointer",
            ModelFault::BadOffSize => "Bad parameters - off-by-N size",
            ModelFault::ViaPacketDrop => "Transient packet drop (VIA)",
            ModelFault::ViaExtraBug => "Extra application bugs (VIA)",
            ModelFault::ViaSystemCrash => "System crash, immature substrate (VIA)",
        }
    }

    /// Which measured fault behaviour this class reuses. The sensitivity
    /// classes borrow existing phase-1 measurements: packet drops and
    /// extra bugs manifest as process crashes, substrate system crashes
    /// as switch crashes (§6.3).
    pub fn behaves_like(self) -> ModelFault {
        match self {
            ModelFault::ViaPacketDrop | ModelFault::ViaExtraBug => ModelFault::ProcessCrash,
            ModelFault::ViaSystemCrash => ModelFault::SwitchDown,
            other => other,
        }
    }

    /// Whether the §6 "pessimistic VIA" multiplier applies to this
    /// class (§9: "faults in a VIA-based server, such as switch, link,
    /// and application errors").
    pub fn scales_for_via_pessimism(self) -> bool {
        matches!(
            self,
            ModelFault::LinkDown
                | ModelFault::SwitchDown
                | ModelFault::ProcessCrash
                | ModelFault::ProcessHang
                | ModelFault::BadNull
                | ModelFault::BadOffPtr
                | ModelFault::BadOffSize
        )
    }
}

impl std::fmt::Display for ModelFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of the fault load: a class, its per-instance MTTF/MTTR, and
/// how many independent instances exist (4 links, 1 switch, 4
/// processes, ...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEntry {
    /// Fault class.
    pub fault: ModelFault,
    /// Mean time to failure of one instance, seconds.
    pub mttf: f64,
    /// Mean time to repair, seconds.
    pub mttr: f64,
    /// Independent component instances.
    pub instances: u32,
}

impl FaultEntry {
    /// Cluster-wide fault arrival rate (faults per second).
    pub fn cluster_rate(&self) -> f64 {
        f64::from(self.instances) / self.mttf
    }

    /// Returns a copy with the MTTF divided by `factor` (i.e. faults
    /// `factor`× as often) — the sensitivity-analysis knob.
    pub fn scaled_rate(&self, factor: f64) -> FaultEntry {
        assert!(factor > 0.0, "rate factor must be positive");
        FaultEntry {
            mttf: self.mttf / factor,
            ..*self
        }
    }
}

/// Table 3, with the application fault rate expressed as a per-process
/// MTTF (`app_mttf` seconds; the paper sweeps one per day to one per
/// month) and divided between the application fault classes in the
/// proportions of the field-failure study the paper cites: process
/// crash 40%, process hang 40%, null pointer 8%, off-by-N data pointer
/// 9%, off-by-N size 2% (§6.1; the remaining 1% is folded into the
/// crash class to keep the split exhaustive).
pub fn paper_fault_load(app_mttf: f64) -> Vec<FaultEntry> {
    assert!(app_mttf > 0.0, "application MTTF must be positive");
    let nodes = 4;
    let app = |fault, share: f64| FaultEntry {
        fault,
        mttf: app_mttf / share,
        mttr: THREE_MINUTES,
        instances: nodes,
    };
    vec![
        FaultEntry {
            fault: ModelFault::LinkDown,
            mttf: 6.0 * MONTH,
            mttr: THREE_MINUTES,
            instances: nodes,
        },
        FaultEntry {
            fault: ModelFault::SwitchDown,
            mttf: YEAR,
            mttr: 3_600.0,
            instances: 1,
        },
        FaultEntry {
            fault: ModelFault::NodeCrash,
            mttf: 2.0 * WEEK,
            mttr: THREE_MINUTES,
            instances: nodes,
        },
        FaultEntry {
            fault: ModelFault::NodeFreeze,
            mttf: 2.0 * WEEK,
            mttr: THREE_MINUTES,
            instances: nodes,
        },
        FaultEntry {
            fault: ModelFault::MemPin,
            mttf: 61.0 * DAY,
            mttr: THREE_MINUTES,
            instances: nodes,
        },
        FaultEntry {
            fault: ModelFault::MemAlloc,
            mttf: 61.0 * DAY,
            mttr: THREE_MINUTES,
            instances: nodes,
        },
        app(ModelFault::ProcessCrash, 0.41),
        app(ModelFault::ProcessHang, 0.40),
        app(ModelFault::BadNull, 0.08),
        app(ModelFault::BadOffPtr, 0.09),
        app(ModelFault::BadOffSize, 0.02),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_3_rows_are_present() {
        let load = paper_fault_load(DAY);
        assert_eq!(load.len(), 11);
        let link = load.iter().find(|e| e.fault == ModelFault::LinkDown).unwrap();
        assert_eq!(link.mttf, 6.0 * MONTH);
        assert_eq!(link.mttr, THREE_MINUTES);
        let switch = load.iter().find(|e| e.fault == ModelFault::SwitchDown).unwrap();
        assert_eq!(switch.mttr, 3_600.0);
        assert_eq!(switch.instances, 1);
    }

    #[test]
    fn app_fault_split_totals_one_app_rate() {
        let load = paper_fault_load(DAY);
        let app_rate: f64 = load
            .iter()
            .filter(|e| {
                matches!(
                    e.fault,
                    ModelFault::ProcessCrash
                        | ModelFault::ProcessHang
                        | ModelFault::BadNull
                        | ModelFault::BadOffPtr
                        | ModelFault::BadOffSize
                )
            })
            .map(|e| 1.0 / e.mttf)
            .sum();
        // Per process: one fault per day split across the classes.
        assert!((app_rate - 1.0 / DAY).abs() < 1e-12);
    }

    #[test]
    fn cluster_rate_multiplies_instances() {
        let e = FaultEntry {
            fault: ModelFault::NodeCrash,
            mttf: 100.0,
            mttr: 1.0,
            instances: 4,
        };
        assert!((e.cluster_rate() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn scaled_rate_shortens_mttf() {
        let e = paper_fault_load(DAY)[0];
        let s = e.scaled_rate(4.0);
        assert!((s.mttf - e.mttf / 4.0).abs() < 1e-9);
        assert_eq!(s.mttr, e.mttr);
    }

    #[test]
    fn sensitivity_classes_borrow_behaviour() {
        assert_eq!(ModelFault::ViaPacketDrop.behaves_like(), ModelFault::ProcessCrash);
        assert_eq!(ModelFault::ViaExtraBug.behaves_like(), ModelFault::ProcessCrash);
        assert_eq!(ModelFault::ViaSystemCrash.behaves_like(), ModelFault::SwitchDown);
        assert_eq!(ModelFault::LinkDown.behaves_like(), ModelFault::LinkDown);
    }

    #[test]
    fn pessimism_scaling_targets_the_papers_classes() {
        assert!(ModelFault::LinkDown.scales_for_via_pessimism());
        assert!(ModelFault::ProcessCrash.scales_for_via_pessimism());
        assert!(!ModelFault::NodeCrash.scales_for_via_pessimism());
        assert!(!ModelFault::MemAlloc.scales_for_via_pessimism());
    }
}
