//! Monte-Carlo performability estimation.
//!
//! The closed-form model (see [`crate::model`]) assumes faults arrive
//! one at a time and each follows its seven-stage response in
//! isolation. Correlated groups, gray faults, and overlapping arrivals
//! break both assumptions, so the estimator goes empirical instead:
//! *measure* average throughput over many independently-seeded fault
//! timelines and report the sample mean with a confidence interval —
//! the approximate-evaluation style of the large-scale Beowulf
//! performability studies.
//!
//! This module holds the architecture-independent statistics; the
//! `experiments` crate drives the simulations that produce the samples.

/// The aggregate of one Monte-Carlo estimate: sample mean, spread, and
/// a 95% confidence interval under the normal approximation.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloEstimate {
    /// Number of samples (replications).
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std_dev: f64,
    /// Standard error of the mean (0 for n < 2).
    pub std_err: f64,
    /// Half-width of the 95% confidence interval (`1.96 · std_err`).
    pub ci95: f64,
}

impl MonteCarloEstimate {
    /// Estimates from a sample set.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or any sample is non-finite.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "an estimate needs at least one sample");
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "samples must be finite"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let (std_dev, std_err) = if n < 2 {
            (0.0, 0.0)
        } else {
            let var =
                samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
            let sd = var.sqrt();
            (sd, sd / (n as f64).sqrt())
        };
        MonteCarloEstimate {
            n,
            mean,
            std_dev,
            std_err,
            ci95: 1.96 * std_err,
        }
    }

    /// The confidence interval as `(low, high)`.
    pub fn interval(&self) -> (f64, f64) {
        (self.mean - self.ci95, self.mean + self.ci95)
    }

    /// Whether `value` falls inside the 95% interval widened by
    /// `tolerance` on each side — the cross-check gate between a
    /// closed-form prediction and its Monte-Carlo measurement.
    pub fn covers(&self, value: f64, tolerance: f64) -> bool {
        let (lo, hi) = self.interval();
        value >= lo - tolerance && value <= hi + tolerance
    }
}

/// One replication's measured outcome: the inputs to the performability
/// estimate, kept together so reports can show per-replication rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Replication {
    /// Seed that generated this replication's fault trace.
    pub seed: u64,
    /// Measured average throughput over the whole timeline (req/s).
    pub throughput: f64,
    /// Fraction of requests that succeeded.
    pub availability: f64,
    /// Number of faults injected by the generated trace.
    pub faults: usize,
    /// Maximum number of concurrently active faults.
    pub max_concurrent: usize,
}

/// A full Monte-Carlo performability result: throughput and
/// availability estimates over a set of replications, plus the
/// baseline they normalize against.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    /// Fault-free baseline throughput Tn (req/s).
    pub tn: f64,
    /// Per-replication outcomes, in seed order.
    pub replications: Vec<Replication>,
    /// Estimate of average throughput AT (req/s).
    pub at: MonteCarloEstimate,
    /// Estimate of average availability AA = AT / Tn.
    pub aa: MonteCarloEstimate,
}

impl MonteCarloResult {
    /// Builds the AT and AA estimates from per-replication outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `replications` is empty or `tn` is not positive.
    pub fn new(tn: f64, replications: Vec<Replication>) -> Self {
        assert!(tn > 0.0, "baseline throughput must be positive");
        let at_samples: Vec<f64> = replications.iter().map(|r| r.throughput).collect();
        let aa_samples: Vec<f64> = at_samples.iter().map(|t| t / tn).collect();
        MonteCarloResult {
            tn,
            at: MonteCarloEstimate::from_samples(&at_samples),
            aa: MonteCarloEstimate::from_samples(&aa_samples),
            replications,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_matches_hand_computation() {
        let e = MonteCarloEstimate::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(e.n, 8);
        assert!((e.mean - 5.0).abs() < 1e-12);
        // Sample variance with Bessel's correction: 32/7.
        assert!((e.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((e.std_err - e.std_dev / 8.0f64.sqrt()).abs() < 1e-12);
        assert!((e.ci95 - 1.96 * e.std_err).abs() < 1e-12);
        let (lo, hi) = e.interval();
        assert!(lo < 5.0 && hi > 5.0);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let e = MonteCarloEstimate::from_samples(&[3.5]);
        assert_eq!(e.mean, 3.5);
        assert_eq!(e.std_dev, 0.0);
        assert_eq!(e.ci95, 0.0);
        assert_eq!(e.interval(), (3.5, 3.5));
    }

    #[test]
    fn covers_widens_by_the_tolerance() {
        let e = MonteCarloEstimate::from_samples(&[1.0, 1.0, 1.0]);
        assert!(e.covers(1.0, 0.0));
        assert!(!e.covers(1.1, 0.05));
        assert!(e.covers(1.1, 0.2));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_are_rejected() {
        MonteCarloEstimate::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_samples_are_rejected() {
        MonteCarloEstimate::from_samples(&[1.0, f64::NAN]);
    }

    fn rep(seed: u64, thr: f64) -> Replication {
        Replication {
            seed,
            throughput: thr,
            availability: 0.9,
            faults: 3,
            max_concurrent: 2,
        }
    }

    #[test]
    fn result_normalizes_aa_against_tn() {
        let r = MonteCarloResult::new(100.0, vec![rep(1, 80.0), rep(2, 90.0)]);
        assert!((r.at.mean - 85.0).abs() < 1e-12);
        assert!((r.aa.mean - 0.85).abs() < 1e-12);
        assert_eq!(r.replications.len(), 2);
        // AA's spread is AT's spread scaled by 1/Tn.
        assert!((r.aa.std_err - r.at.std_err / 100.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_baseline_is_rejected() {
        MonteCarloResult::new(0.0, vec![rep(1, 1.0)]);
    }
}
