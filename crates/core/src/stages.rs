//! The 7-stage piece-wise linear model (Figure 1 of the paper).
//!
//! | Stage | Meaning |
//! |---|---|
//! | A | degraded throughput from fault occurrence to detection |
//! | B | transient while the system reconfigures |
//! | C | stable degraded regime until the component is repaired |
//! | D | transient after the component recovers |
//! | E | stable regime after recovery (may remain degraded) |
//! | F | operator reset |
//! | G | transient after the reset |
//!
//! Missing stages get duration 0 (§2.1).

use simnet::TimeSeries;

/// Stage labels A–G.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Fault occurrence → detection.
    A,
    /// Reconfiguration transient.
    B,
    /// Stable degraded regime until repair.
    C,
    /// Post-recovery transient.
    D,
    /// Stable post-recovery regime.
    E,
    /// Operator reset.
    F,
    /// Post-reset transient.
    G,
}

impl Stage {
    /// All stages in order.
    pub const ALL: [Stage; 7] = [
        Stage::A,
        Stage::B,
        Stage::C,
        Stage::D,
        Stage::E,
        Stage::F,
        Stage::G,
    ];

    fn index(self) -> usize {
        match self {
            Stage::A => 0,
            Stage::B => 1,
            Stage::C => 2,
            Stage::D => 3,
            Stage::E => 4,
            Stage::F => 5,
            Stage::G => 6,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One stage's parameters: how long, and the average throughput while in
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StagePoint {
    /// Stage length in seconds.
    pub duration: f64,
    /// Average throughput during the stage, requests per second.
    pub throughput: f64,
}

/// The per-fault 7-stage behaviour of a server version.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SevenStage {
    points: [StagePoint; 7],
}

impl SevenStage {
    /// All stages absent (duration 0).
    pub fn zeroed() -> Self {
        SevenStage::default()
    }

    /// Sets one stage.
    ///
    /// # Panics
    ///
    /// Panics on negative duration or throughput.
    pub fn set(&mut self, stage: Stage, duration: f64, throughput: f64) {
        assert!(duration >= 0.0, "negative stage duration");
        assert!(throughput >= 0.0, "negative stage throughput");
        self.points[stage.index()] = StagePoint {
            duration,
            throughput,
        };
    }

    /// Reads one stage.
    pub fn get(&self, stage: Stage) -> StagePoint {
        self.points[stage.index()]
    }

    /// Iterates `(stage, point)` in order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, StagePoint)> + '_ {
        Stage::ALL.iter().map(move |s| (*s, self.points[s.index()]))
    }

    /// Total time the system spends off the normal regime per fault.
    pub fn total_duration(&self) -> f64 {
        self.points.iter().map(|p| p.duration).sum()
    }

    /// Rescales the repair-dependent stage C so the fault's duration in
    /// the *model* matches the fault load's MTTR instead of however long
    /// the experimenter kept the fault injected: stages A and B consume
    /// their measured time, and C fills the rest of the repair interval.
    pub fn scaled_to_repair(&self, mttr_secs: f64) -> SevenStage {
        let mut out = self.clone();
        let a = self.get(Stage::A).duration;
        let b = self.get(Stage::B).duration;
        let c = (mttr_secs - a - b).max(0.0);
        out.points[Stage::C.index()].duration = c;
        out
    }

    /// Extracts stage parameters from a measured throughput timeline and
    /// the experiment's event markers. Intervals the markers leave empty
    /// become missing stages (duration 0); `tn` fills in the mean when a
    /// non-empty interval holds no samples.
    pub fn from_series(series: &TimeSeries, markers: &StageMarkers, tn: f64) -> SevenStage {
        let mut out = SevenStage::zeroed();
        for (stage, t0, t1) in markers.intervals() {
            let duration = (t1 - t0).max(0.0);
            if duration == 0.0 {
                continue;
            }
            let mean = series.mean_between(t0, t1).unwrap_or(tn);
            out.set(stage, duration, mean.max(0.0));
        }
        out
    }
}

/// Timestamps (seconds) of the experiment events that delimit the
/// stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageMarkers {
    /// Fault injection.
    pub fault: f64,
    /// When the system detected the fault (None: never detected).
    pub detected: Option<f64>,
    /// When post-detection throughput stabilized.
    pub stabilized: Option<f64>,
    /// When the faulty component recovered.
    pub recovered: f64,
    /// When post-recovery throughput stabilized.
    pub restabilized: Option<f64>,
    /// Operator reset start (None: no reset was needed).
    pub reset: Option<f64>,
    /// Operator reset end.
    pub reset_done: Option<f64>,
    /// End of the measurement.
    pub end: f64,
}

impl StageMarkers {
    /// The `(stage, start, end)` intervals the markers delimit, in
    /// stage order. Every A–E interval is present (possibly empty, with
    /// `end <= start`); F and G appear only when an operator reset
    /// happened. Absent markers collapse onto the surrounding ones the
    /// same way [`SevenStage::from_series`] treats them, so the spans
    /// here are exactly the ones the model parameters are extracted
    /// from.
    pub fn intervals(&self) -> Vec<(Stage, f64, f64)> {
        let mut edges: Vec<(Stage, f64, f64)> = Vec::with_capacity(7);
        let detected = self.detected.unwrap_or(self.recovered);
        let stabilized = self.stabilized.unwrap_or(detected);
        let restabilized = self.restabilized.unwrap_or(self.recovered);
        edges.push((Stage::A, self.fault, detected.min(self.recovered)));
        edges.push((Stage::B, detected.min(self.recovered), stabilized.min(self.recovered)));
        edges.push((Stage::C, stabilized.min(self.recovered), self.recovered));
        edges.push((Stage::D, self.recovered, restabilized));
        let e_end = self.reset.unwrap_or(self.end);
        edges.push((Stage::E, restabilized, e_end));
        if let Some(reset) = self.reset {
            let reset_done = self.reset_done.unwrap_or(reset);
            edges.push((Stage::F, reset, reset_done));
            edges.push((Stage::G, reset_done, self.end));
        }
        edges
    }
}

/// Finds the first time at or after `from` (seconds) where the series
/// stays within `tolerance × target` of `target` for `hold` consecutive
/// samples — the "system stabilizes" detector used to place the B→C and
/// D→E boundaries.
pub fn stabilization_time(
    series: &TimeSeries,
    from: f64,
    target: f64,
    tolerance: f64,
    hold: usize,
) -> Option<f64> {
    let start = series.index_at(from);
    let pts = &series.points[start..];
    let ok = |v: f64| (v - target).abs() <= tolerance * target.max(1.0);
    let mut run = 0;
    for (i, &(t, v)) in pts.iter().enumerate() {
        if ok(v) {
            run += 1;
            if run >= hold {
                return Some(pts[i + 1 - run].0.max(t - (run as f64)));
            }
        } else {
            run = 0;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_series(segments: &[(f64, f64, f64)]) -> TimeSeries {
        // segments of (t0, t1, value) sampled each second at t+0.5
        let mut pts = Vec::new();
        for &(t0, t1, v) in segments {
            let mut t = t0 + 0.5;
            while t < t1 {
                pts.push((t, v));
                t += 1.0;
            }
        }
        TimeSeries::new(pts)
    }

    #[test]
    fn zeroed_has_no_time_anywhere() {
        let s = SevenStage::zeroed();
        assert_eq!(s.total_duration(), 0.0);
        for (_, p) in s.iter() {
            assert_eq!(p.duration, 0.0);
        }
    }

    #[test]
    fn extraction_recovers_a_simple_fault_profile() {
        // Normal 100 until fault at 30; zero until detection at 45;
        // degraded 75 until recovery at 120; back to normal after.
        let series = flat_series(&[
            (0.0, 30.0, 100.0),
            (30.0, 45.0, 0.0),
            (45.0, 120.0, 75.0),
            (120.0, 200.0, 100.0),
        ]);
        let markers = StageMarkers {
            fault: 30.0,
            detected: Some(45.0),
            stabilized: Some(45.0),
            recovered: 120.0,
            restabilized: Some(120.0),
            reset: None,
            reset_done: None,
            end: 200.0,
        };
        let st = SevenStage::from_series(&series, &markers, 100.0);
        assert_eq!(st.get(Stage::A).duration, 15.0);
        assert!(st.get(Stage::A).throughput < 1.0);
        assert_eq!(st.get(Stage::B).duration, 0.0);
        assert_eq!(st.get(Stage::C).duration, 75.0);
        assert!((st.get(Stage::C).throughput - 75.0).abs() < 1.0);
        assert_eq!(st.get(Stage::D).duration, 0.0);
        assert_eq!(st.get(Stage::E).duration, 80.0);
        assert!((st.get(Stage::E).throughput - 100.0).abs() < 1.0);
        assert_eq!(st.get(Stage::F).duration, 0.0);
    }

    #[test]
    fn extraction_with_reset_produces_f_and_g() {
        let series = flat_series(&[
            (0.0, 50.0, 80.0),  // degraded E
            (50.0, 60.0, 0.0),  // reset F
            (60.0, 70.0, 90.0), // warmup G
        ]);
        let markers = StageMarkers {
            fault: 0.0,
            detected: Some(0.0),
            stabilized: Some(0.0),
            recovered: 0.0,
            restabilized: Some(0.0),
            reset: Some(50.0),
            reset_done: Some(60.0),
            end: 70.0,
        };
        let st = SevenStage::from_series(&series, &markers, 100.0);
        assert_eq!(st.get(Stage::E).duration, 50.0);
        assert_eq!(st.get(Stage::F).duration, 10.0);
        assert!(st.get(Stage::F).throughput < 1.0);
        assert_eq!(st.get(Stage::G).duration, 10.0);
    }

    #[test]
    fn undetected_fault_spans_stage_a() {
        // TCP-PRESS under a short link fault: never detects, stalls
        // through the whole fault.
        let markers = StageMarkers {
            fault: 10.0,
            detected: None,
            stabilized: None,
            recovered: 100.0,
            restabilized: Some(110.0),
            reset: None,
            reset_done: None,
            end: 150.0,
        };
        let series = flat_series(&[(0.0, 150.0, 50.0)]);
        let st = SevenStage::from_series(&series, &markers, 50.0);
        assert_eq!(st.get(Stage::A).duration, 90.0);
        assert_eq!(st.get(Stage::B).duration, 0.0);
        assert_eq!(st.get(Stage::C).duration, 0.0);
        assert_eq!(st.get(Stage::D).duration, 10.0);
    }

    #[test]
    fn scaled_to_repair_fills_stage_c() {
        let mut st = SevenStage::zeroed();
        st.set(Stage::A, 15.0, 0.0);
        st.set(Stage::B, 5.0, 50.0);
        st.set(Stage::C, 70.0, 80.0);
        let scaled = st.scaled_to_repair(180.0);
        assert_eq!(scaled.get(Stage::C).duration, 160.0);
        assert_eq!(scaled.get(Stage::C).throughput, 80.0);
        // A repair faster than detection leaves no stage C.
        let fast = st.scaled_to_repair(10.0);
        assert_eq!(fast.get(Stage::C).duration, 0.0);
    }

    #[test]
    fn stabilization_detector_finds_the_plateau() {
        let series = flat_series(&[(0.0, 20.0, 10.0), (20.0, 60.0, 100.0)]);
        let t = stabilization_time(&series, 0.0, 100.0, 0.05, 3).expect("stabilizes");
        assert!((20.0..23.0).contains(&t), "stabilized at {t}");
        assert_eq!(stabilization_time(&series, 0.0, 500.0, 0.05, 3), None);
    }

    #[test]
    fn intervals_cover_the_run_without_gaps() {
        let markers = StageMarkers {
            fault: 30.0,
            detected: Some(45.0),
            stabilized: Some(50.0),
            recovered: 120.0,
            restabilized: Some(130.0),
            reset: Some(160.0),
            reset_done: Some(170.0),
            end: 200.0,
        };
        let spans = markers.intervals();
        assert_eq!(spans.len(), 7);
        assert_eq!(spans[0], (Stage::A, 30.0, 45.0));
        assert_eq!(spans.last().unwrap(), &(Stage::G, 170.0, 200.0));
        // Contiguous: each interval starts where the previous ended.
        for w in spans.windows(2) {
            assert_eq!(w[0].2, w[1].1, "gap between {:?} and {:?}", w[0].0, w[1].0);
        }
        // No reset → only A..E, ending at `end`.
        let no_reset = StageMarkers {
            reset: None,
            reset_done: None,
            ..markers
        };
        let spans = no_reset.intervals();
        assert_eq!(spans.len(), 5);
        assert_eq!(spans.last().unwrap(), &(Stage::E, 130.0, 200.0));
    }

    #[test]
    #[should_panic(expected = "negative stage duration")]
    fn negative_durations_are_rejected() {
        SevenStage::zeroed().set(Stage::A, -1.0, 0.0);
    }
}
