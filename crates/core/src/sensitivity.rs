//! Sensitivity analysis: fault-rate sweeps and the TCP/VIA crossover
//! solver (§6.3, §9).

use crate::fault_load::ModelFault;
use crate::metric::performability;
use crate::model::{average_availability, FaultBehavior};

/// Result of solving for the fault-rate multiplier at which a VIA
/// version's performability drops to a TCP version's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossoverResult {
    /// The multiplier applied to the scaled fault classes.
    pub multiplier: f64,
    /// VIA performability at the crossover.
    pub via_performability: f64,
    /// The (fixed) TCP performability being matched.
    pub tcp_performability: f64,
}

/// Performability of a configuration after multiplying the rates of the
/// fault classes selected by `scales` by `factor`.
pub fn performability_at(
    tn: f64,
    behaviors: &[FaultBehavior],
    factor: f64,
    ideal: f64,
    scales: impl Fn(ModelFault) -> bool,
) -> f64 {
    let scaled: Vec<FaultBehavior> = behaviors
        .iter()
        .map(|b| {
            if scales(b.entry.fault) {
                FaultBehavior {
                    entry: b.entry.scaled_rate(factor),
                    stages: b.stages.clone(),
                }
            } else {
                b.clone()
            }
        })
        .collect();
    let aa = average_availability(tn, &scaled);
    performability(tn, aa, ideal)
}

/// Finds, by bisection, the multiplier on the VIA version's
/// `scales`-selected fault classes at which its performability equals
/// the TCP version's. This reproduces the paper's headline "≈4×"
/// result (§9).
///
/// Returns `None` if even `max_factor` leaves VIA ahead (no crossover
/// in range), or if VIA is already behind at 1×.
pub fn crossover_multiplier(
    via_tn: f64,
    via_behaviors: &[FaultBehavior],
    tcp_performability: f64,
    ideal: f64,
    max_factor: f64,
    scales: impl Fn(ModelFault) -> bool + Copy,
) -> Option<CrossoverResult> {
    let p_at = |m: f64| performability_at(via_tn, via_behaviors, m, ideal, scales);
    if p_at(1.0) <= tcp_performability {
        return None; // VIA never led
    }
    if p_at(max_factor) > tcp_performability {
        return None; // no crossover within range
    }
    let (mut lo, mut hi) = (1.0, max_factor);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if p_at(mid) > tcp_performability {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let multiplier = 0.5 * (lo + hi);
    Some(CrossoverResult {
        multiplier,
        via_performability: p_at(multiplier),
        tcp_performability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_load::{FaultEntry, DAY};
    use crate::metric::IDEAL_AVAILABILITY;
    use crate::stages::{SevenStage, Stage};

    fn behavior(mttf: f64, downtime: f64) -> FaultBehavior {
        let mut stages = SevenStage::zeroed();
        stages.set(Stage::A, downtime, 0.0);
        FaultBehavior {
            entry: FaultEntry {
                fault: ModelFault::ProcessCrash,
                mttf,
                mttr: 180.0,
                instances: 4,
            },
            stages,
        }
    }

    #[test]
    fn scaling_rates_reduces_performability_monotonically() {
        let b = vec![behavior(DAY, 60.0)];
        let p1 = performability_at(6000.0, &b, 1.0, IDEAL_AVAILABILITY, |_| true);
        let p2 = performability_at(6000.0, &b, 2.0, IDEAL_AVAILABILITY, |_| true);
        let p4 = performability_at(6000.0, &b, 4.0, IDEAL_AVAILABILITY, |_| true);
        assert!(p1 > p2 && p2 > p4);
    }

    #[test]
    fn unscaled_classes_are_untouched() {
        let b = vec![behavior(DAY, 60.0)];
        let p1 = performability_at(6000.0, &b, 1.0, IDEAL_AVAILABILITY, |_| false);
        let p9 = performability_at(6000.0, &b, 9.0, IDEAL_AVAILABILITY, |_| false);
        assert!((p1 - p9).abs() < 1e-9);
    }

    #[test]
    fn crossover_finds_the_equalizing_multiplier() {
        // VIA: faster (6000 vs 5000) but same fault behaviour; scaling
        // its faults must eventually hand TCP the lead.
        let via = vec![behavior(DAY, 60.0)];
        let tcp = vec![behavior(DAY, 60.0)];
        let tcp_p = performability_at(5000.0, &tcp, 1.0, IDEAL_AVAILABILITY, |_| true);
        let result = crossover_multiplier(6000.0, &via, tcp_p, IDEAL_AVAILABILITY, 100.0, |_| true)
            .expect("crossover exists");
        assert!(result.multiplier > 1.0);
        // At the solution, performabilities agree.
        let via_p = performability_at(
            6000.0,
            &via,
            result.multiplier,
            IDEAL_AVAILABILITY,
            |_| true,
        );
        assert!((via_p - tcp_p).abs() / tcp_p < 1e-6);
    }

    #[test]
    fn no_crossover_when_via_never_led() {
        let via = vec![behavior(DAY, 600.0)];
        let tcp = vec![behavior(DAY, 6.0)];
        let tcp_p = performability_at(5000.0, &tcp, 1.0, IDEAL_AVAILABILITY, |_| true);
        assert!(
            crossover_multiplier(5000.0, &via, tcp_p, IDEAL_AVAILABILITY, 100.0, |_| true)
                .is_none()
        );
    }

    #[test]
    fn no_crossover_when_range_too_small() {
        let via = vec![behavior(DAY, 1.0)]; // VIA barely dented by faults
        let tcp = vec![behavior(DAY, 60.0)];
        let tcp_p = performability_at(5000.0, &tcp, 1.0, IDEAL_AVAILABILITY, |_| true);
        assert!(
            crossover_multiplier(50_000.0, &via, tcp_p, IDEAL_AVAILABILITY, 2.0, |_| true)
                .is_none()
        );
    }
}
