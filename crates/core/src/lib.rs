//! The paper's primary contribution as a library: the two-phase
//! performability evaluation methodology (§2).
//!
//! * [`stages`] — the 7-stage piece-wise linear model of a service's
//!   response to a single fault (Figure 1), plus extraction of stage
//!   parameters from measured throughput timelines.
//! * [`fault_load`] — fault classes with MTTF/MTTR (Table 3) including
//!   the application-fault split observed in the field-failure study the
//!   paper cites (process crash 40%, hang 40%, NULL pointer 8%,
//!   off-by-N pointer 9%, off-by-N size 2%).
//! * [`model`] — phase 2: combining per-fault behaviour with the fault
//!   load into average throughput (AT), average availability (AA) and
//!   per-fault unavailability contributions.
//! * [`metric`] — the performability metric
//!   `P = Tn · log(A_I) / log(AA)`.
//! * [`montecarlo`] — the empirical alternative to the closed-form
//!   model for fault loads it cannot express (correlated groups, gray
//!   faults, overlapping arrivals): average measured throughput over
//!   generated fault timelines, with confidence intervals.
//! * [`sensitivity`] — fault-rate sweeps and the crossover solver that
//!   reproduces the paper's "VIA fault rates must be ≈4× TCP's before
//!   performabilities equalize" result.
//!
//! # Example
//!
//! ```
//! use performability::fault_load::{paper_fault_load, DAY};
//! use performability::metric::performability;
//! use performability::model::{average_availability, FaultBehavior};
//! use performability::stages::SevenStage;
//!
//! let tn = 4965.0;
//! // A fault the server rides out at half throughput for its 3-minute
//! // repair time, with 15s detection at zero throughput:
//! let mut stages = SevenStage::zeroed();
//! stages.set(performability::stages::Stage::A, 15.0, 0.0);
//! stages.set(performability::stages::Stage::C, 165.0, tn / 2.0);
//! let behaviors: Vec<FaultBehavior> = paper_fault_load(DAY)
//!     .into_iter()
//!     .map(|entry| FaultBehavior { entry, stages: stages.clone() })
//!     .collect();
//! let aa = average_availability(tn, &behaviors);
//! assert!(aa > 0.9 && aa < 1.0);
//! let p = performability(tn, aa, 0.99999);
//! assert!(p > 0.0 && p < tn);
//! ```

pub mod fault_load;
pub mod metric;
pub mod model;
pub mod montecarlo;
pub mod sensitivity;
pub mod stages;

pub use fault_load::{paper_fault_load, FaultEntry, ModelFault};
pub use metric::performability;
pub use montecarlo::{MonteCarloEstimate, MonteCarloResult, Replication};
pub use model::{average_availability, average_throughput, unavailability_breakdown, FaultBehavior};
pub use sensitivity::{crossover_multiplier, CrossoverResult};
pub use stages::{SevenStage, Stage, StageMarkers, StagePoint};
