//! Phase 2: combining per-fault behaviour with the fault load (§2.2).
//!
//! With `Tn` the normal-operation throughput, `c` ranging over faults,
//! `T_c^s`/`D_c^s` the stage throughputs and durations, and
//! `W_c = Σ_s D_c^s / MTTF_c`:
//!
//! ```text
//! AT = (1 - Σ_c W_c)·Tn + Σ_c Σ_s (D_c^s / MTTF_c)·T_c^s
//! AA = AT / Tn
//! ```
//!
//! The denominator of `W_c` is `MTTF_c` (not `MTTF_c + MTTR_c`); the
//! methodology TR discusses why this is the correct normalization. Each
//! fault class contributes `instances / MTTF` arrivals per second.

use crate::fault_load::FaultEntry;
use crate::stages::SevenStage;

/// A fault class paired with the measured 7-stage behaviour of the
/// server under it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultBehavior {
    /// The fault class and its rates.
    pub entry: FaultEntry,
    /// The server's response (phase-1 measurement, with stage C scaled
    /// to the class MTTR).
    pub stages: SevenStage,
}

impl FaultBehavior {
    /// Fraction of time the system spends off-normal due to this fault
    /// class (the `W_c` term, times instances).
    pub fn degraded_fraction(&self) -> f64 {
        self.stages.total_duration() * self.entry.cluster_rate()
    }

    /// This fault class's contribution to unavailability:
    /// `Σ_s D^s (Tn − T^s) / (MTTF · Tn)`, summed over instances.
    pub fn unavailability(&self, tn: f64) -> f64 {
        assert!(tn > 0.0, "normal throughput must be positive");
        let lost: f64 = self
            .stages
            .iter()
            .map(|(_, p)| p.duration * (tn - p.throughput.min(tn)))
            .sum();
        lost * self.entry.cluster_rate() / tn
    }
}

/// Average throughput `AT` under the fault load.
///
/// # Panics
///
/// Panics if `tn <= 0` or the fault load is so heavy the single-fault
/// queueing assumption collapses (`Σ W_c >= 1`).
pub fn average_throughput(tn: f64, behaviors: &[FaultBehavior]) -> f64 {
    assert!(tn > 0.0, "normal throughput must be positive");
    let w: f64 = behaviors.iter().map(FaultBehavior::degraded_fraction).sum();
    assert!(
        w < 1.0,
        "fault load leaves no normal-operation time (sum of W_c = {w}); \
         the single-fault queueing assumption does not hold"
    );
    let degraded: f64 = behaviors
        .iter()
        .map(|b| {
            let rate = b.entry.cluster_rate();
            b.stages
                .iter()
                // Measured transients can overshoot Tn (cache-warm
                // bursts); the model caps stage throughput at Tn so a
                // fault can never *add* capacity.
                .map(|(_, p)| p.duration * p.throughput.min(tn) * rate)
                .sum::<f64>()
        })
        .sum();
    (1.0 - w) * tn + degraded
}

/// Average availability `AA = AT / Tn`.
pub fn average_availability(tn: f64, behaviors: &[FaultBehavior]) -> f64 {
    average_throughput(tn, behaviors) / tn
}

/// Per-fault-class unavailability contributions (the stacking in
/// Figure 6(a)), in the order given.
pub fn unavailability_breakdown(tn: f64, behaviors: &[FaultBehavior]) -> Vec<(FaultEntry, f64)> {
    behaviors
        .iter()
        .map(|b| (b.entry, b.unavailability(tn)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_load::ModelFault;
    use crate::stages::Stage;

    fn entry(mttf: f64, instances: u32) -> FaultEntry {
        FaultEntry {
            fault: ModelFault::NodeCrash,
            mttf,
            mttr: 180.0,
            instances,
        }
    }

    #[test]
    fn no_faults_means_full_availability() {
        assert_eq!(average_availability(1000.0, &[]), 1.0);
        assert_eq!(average_throughput(1000.0, &[]), 1000.0);
    }

    #[test]
    fn hand_computed_single_fault() {
        // One fault class: 1 instance, MTTF 1000s; down 10s at zero
        // throughput per fault.
        let mut stages = SevenStage::zeroed();
        stages.set(Stage::A, 10.0, 0.0);
        let b = FaultBehavior {
            entry: entry(1000.0, 1),
            stages,
        };
        let tn = 500.0;
        // W = 10/1000 = 0.01 → AT = 0.99·500 = 495, AA = 0.99.
        assert!((average_throughput(tn, std::slice::from_ref(&b)) - 495.0).abs() < 1e-9);
        assert!((average_availability(tn, std::slice::from_ref(&b)) - 0.99).abs() < 1e-12);
        assert!((b.unavailability(tn) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn degraded_stages_recover_partial_throughput() {
        let mut stages = SevenStage::zeroed();
        stages.set(Stage::C, 10.0, 250.0); // half throughput
        let b = FaultBehavior {
            entry: entry(1000.0, 1),
            stages,
        };
        let tn = 500.0;
        // AT = 0.99·500 + (10/1000)·250 = 495 + 2.5
        assert!((average_throughput(tn, std::slice::from_ref(&b)) - 497.5).abs() < 1e-9);
        assert!((b.unavailability(tn) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn instances_scale_linearly() {
        let mut stages = SevenStage::zeroed();
        stages.set(Stage::A, 10.0, 0.0);
        let one = FaultBehavior {
            entry: entry(1000.0, 1),
            stages: stages.clone(),
        };
        let four = FaultBehavior {
            entry: entry(1000.0, 4),
            stages,
        };
        let u1 = one.unavailability(500.0);
        let u4 = four.unavailability(500.0);
        assert!((u4 - 4.0 * u1).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums_to_total_unavailability() {
        let mut s1 = SevenStage::zeroed();
        s1.set(Stage::A, 15.0, 0.0);
        s1.set(Stage::C, 165.0, 300.0);
        let mut s2 = SevenStage::zeroed();
        s2.set(Stage::A, 60.0, 100.0);
        let behaviors = vec![
            FaultBehavior {
                entry: entry(50_000.0, 4),
                stages: s1,
            },
            FaultBehavior {
                entry: entry(200_000.0, 1),
                stages: s2,
            },
        ];
        let tn = 500.0;
        let total = 1.0 - average_availability(tn, &behaviors);
        let sum: f64 = unavailability_breakdown(tn, &behaviors)
            .iter()
            .map(|(_, u)| u)
            .sum();
        assert!((total - sum).abs() < 1e-12, "total {total} vs sum {sum}");
    }

    #[test]
    fn throughput_above_tn_cannot_create_negative_unavailability() {
        // A warmup overshoot above Tn must not make the fault "help".
        let mut stages = SevenStage::zeroed();
        stages.set(Stage::D, 10.0, 1_000.0);
        let b = FaultBehavior {
            entry: entry(1000.0, 1),
            stages,
        };
        assert!(b.unavailability(500.0) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "single-fault")]
    fn impossible_fault_load_is_rejected() {
        let mut stages = SevenStage::zeroed();
        stages.set(Stage::A, 2_000.0, 0.0);
        let b = FaultBehavior {
            entry: entry(1000.0, 1),
            stages,
        };
        average_throughput(100.0, &[b]);
    }
}
