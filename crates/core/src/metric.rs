//! The performability metric (§2.3).
//!
//! `P = Tn · log(A_I) / log(AA)` with `A_I` an ideal availability
//! (0.99999 in the paper). The metric scales linearly with throughput
//! and inversely with unavailability: halving the unavailability
//! roughly doubles `P`, because `log(1 − u) ≈ −u` for small `u`.

/// The ideal availability the paper uses ("five nines").
pub const IDEAL_AVAILABILITY: f64 = 0.99999;

/// Computes the performability `P`.
///
/// A perfectly available system (`aa >= 1`) has unbounded
/// performability under this metric; the value is clamped at
/// `aa = 1 − 1e-15` to stay finite.
///
/// # Panics
///
/// Panics unless `tn > 0`, `0 < aa`, and `0 < ideal < 1`.
pub fn performability(tn: f64, aa: f64, ideal: f64) -> f64 {
    assert!(tn > 0.0, "normal throughput must be positive");
    assert!(aa > 0.0, "availability must be positive");
    assert!(ideal > 0.0 && ideal < 1.0, "ideal availability must be in (0,1)");
    let aa = aa.min(1.0 - 1e-15);
    tn * ideal.ln() / aa.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_throughput_doubles_performability() {
        let p1 = performability(1000.0, 0.999, IDEAL_AVAILABILITY);
        let p2 = performability(2000.0, 0.999, IDEAL_AVAILABILITY);
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn halving_unavailability_roughly_doubles_performability() {
        let p1 = performability(1000.0, 1.0 - 0.002, IDEAL_AVAILABILITY);
        let p2 = performability(1000.0, 1.0 - 0.001, IDEAL_AVAILABILITY);
        let ratio = p2 / p1;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn ideal_availability_recovers_tn() {
        let p = performability(5000.0, IDEAL_AVAILABILITY, IDEAL_AVAILABILITY);
        assert!((p - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_availability_is_finite() {
        let p = performability(5000.0, 1.0, IDEAL_AVAILABILITY);
        assert!(p.is_finite());
        assert!(p > 5000.0);
    }

    #[test]
    fn worse_availability_means_lower_performability() {
        let good = performability(5000.0, 0.9999, IDEAL_AVAILABILITY);
        let bad = performability(5000.0, 0.99, IDEAL_AVAILABILITY);
        assert!(good > bad);
    }
}
