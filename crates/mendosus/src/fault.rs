//! The fault catalogue (Table 2 of the paper) and fault specifications.

use simnet::fabric::NodeId;
use simnet::{SimDuration, SimTime};
use transport::MsgClass;

/// Every fault class the study injects — Table 2 verbatim — plus the
/// gray (degraded-but-alive) extensions. Table 2 lists fail-stop and
/// fail-fast classes only; real clusters also see components that keep
/// answering health checks while performing badly, so the catalogue
/// grows three gray classes (listed in [`FaultKind::GRAY`], kept out of
/// [`FaultKind::ALL`] to preserve the Table 2 correspondence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// A node's link to the switch fails (fail-stop).
    LinkDown,
    /// The switch fails (fail-stop): total intra-cluster partition.
    SwitchDown,
    /// Hard reboot: the node's NIC and memory contents are lost.
    NodeCrash,
    /// The node freezes (and later resumes where it left off).
    NodeHang,
    /// Kernel skbuf allocation fails for intra-cluster communication.
    KernelAllocFail,
    /// Memory-locking (pinning) requests fail.
    MemPinFail,
    /// The application process receives SIGSTOP (later SIGCONT).
    AppHang,
    /// The application process is killed (the daemon restarts it).
    AppCrash,
    /// A NULL data pointer is passed to a send call.
    BadParamNull,
    /// The data pointer passed to a send call is off by N bytes.
    BadParamOffPtr,
    /// The size passed to a send call is off by N bytes.
    BadParamOffSize,
    /// Gray: the node's link stays up but runs degraded — every frame
    /// crossing it picks up extra latency and a periodic silent drop.
    /// No NIC error is ever raised, so TCP and VIA both believe the
    /// link is healthy.
    LinkDegraded,
    /// Gray: the node runs slow-but-alive — every CPU charge is
    /// multiplied, so heartbeats still answer while service throughput
    /// collapses.
    CpuThrottle,
    /// Gray: the switch silently refuses to forward between one pair of
    /// nodes (both of whose links stay up), so the two halves of the
    /// pair disagree with the rest of the cluster about who is alive.
    PartialPartition,
}

impl FaultKind {
    /// All catalogue entries, in Table 2 order.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::LinkDown,
        FaultKind::SwitchDown,
        FaultKind::NodeCrash,
        FaultKind::NodeHang,
        FaultKind::KernelAllocFail,
        FaultKind::MemPinFail,
        FaultKind::AppHang,
        FaultKind::AppCrash,
        FaultKind::BadParamNull,
        FaultKind::BadParamOffPtr,
        FaultKind::BadParamOffSize,
    ];

    /// The gray extensions: degraded-but-alive faults with
    /// transport-visible effects but no fail-stop signal.
    pub const GRAY: [FaultKind; 3] = [
        FaultKind::LinkDegraded,
        FaultKind::CpuThrottle,
        FaultKind::PartialPartition,
    ];

    /// The fault category column of Table 2 ("Gray" for the
    /// degraded-but-alive extensions, which Table 2 does not cover).
    pub fn category(self) -> &'static str {
        match self {
            FaultKind::LinkDown | FaultKind::SwitchDown => "Network hardware",
            FaultKind::NodeCrash | FaultKind::NodeHang => "Node",
            FaultKind::KernelAllocFail | FaultKind::MemPinFail => "Resource exhaustion",
            FaultKind::LinkDegraded | FaultKind::CpuThrottle | FaultKind::PartialPartition => {
                "Gray"
            }
            _ => "Application",
        }
    }

    /// Whether this is a gray (degraded-but-alive) fault: the component
    /// misbehaves without ever raising a fail-stop signal, so substrate
    /// error paths (TCP connection breaks, VIA teardown) never fire and
    /// only end-to-end observation can notice.
    pub fn is_gray(self) -> bool {
        matches!(
            self,
            FaultKind::LinkDegraded | FaultKind::CpuThrottle | FaultKind::PartialPartition
        )
    }

    /// The fault name used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::LinkDown => "Link fault",
            FaultKind::SwitchDown => "Switch fault",
            FaultKind::NodeCrash => "Node crash",
            FaultKind::NodeHang => "Node hang",
            FaultKind::KernelAllocFail => "Kernel memory allocation fault",
            FaultKind::MemPinFail => "Memory locking",
            FaultKind::AppHang => "Application hang",
            FaultKind::AppCrash => "Application crash",
            FaultKind::BadParamNull => "Bad parameters: NULL pointer",
            FaultKind::BadParamOffPtr => "Bad parameters: off-by-N data pointer",
            FaultKind::BadParamOffSize => "Bad parameters: off-by-N size",
            FaultKind::LinkDegraded => "Link degradation (gray)",
            FaultKind::CpuThrottle => "CPU throttle (gray)",
            FaultKind::PartialPartition => "Partial partition (gray)",
        }
    }

    /// Example error sources, from Table 2.
    pub fn example_sources(self) -> &'static str {
        match self {
            FaultKind::LinkDown => "faulty cable, accidental unplugging, mis-configuration",
            FaultKind::SwitchDown => "power failure, software bug, mis-configuration",
            FaultKind::NodeCrash => "operator error, OS bug, hardware fault, power failure",
            FaultKind::NodeHang => "OS bug, OS recovering after killing faulty process",
            FaultKind::KernelAllocFail => {
                "system low on (kernel) memory / out of virtual address space"
            }
            FaultKind::MemPinFail => "out of pinnable physical memory",
            FaultKind::AppHang => "application bugs, paging effects",
            FaultKind::AppCrash => "application bugs, operator mis-termination",
            FaultKind::BadParamNull | FaultKind::BadParamOffPtr | FaultKind::BadParamOffSize => {
                "uninitialized pointers, logical error, pointer corruption, stale memory handle (RDMA)"
            }
            FaultKind::LinkDegraded => "failing cable/transceiver, duplex mismatch, CRC retries",
            FaultKind::CpuThrottle => "thermal throttling, noisy neighbor, memory pressure paging",
            FaultKind::PartialPartition => "switch TCAM corruption, asymmetric routing, VLAN mis-configuration",
        }
    }

    /// How the injector realizes the fault in the simulated cluster.
    pub fn mechanism(self) -> &'static str {
        match self {
            FaultKind::LinkDown => "fabric: mark the target node's link down",
            FaultKind::SwitchDown => "fabric: mark the switch down",
            FaultKind::NodeCrash => "fabric + process: NIC dead, process and memory lost, reboot on recovery",
            FaultKind::NodeHang => "freeze the whole node; resume in place on recovery",
            FaultKind::KernelAllocFail => "transport: skbuf allocation calls return errors",
            FaultKind::MemPinFail => "transport: memory-locking threshold drops to the current usage",
            FaultKind::AppHang => "daemon sends SIGSTOP; SIGCONT on recovery",
            FaultKind::AppCrash => "daemon kills the process; restart on recovery",
            FaultKind::BadParamNull | FaultKind::BadParamOffPtr | FaultKind::BadParamOffSize => {
                "interposition layer corrupts the next matching send call"
            }
            FaultKind::LinkDegraded => {
                "fabric: add per-hop latency and periodic silent loss on the node's link"
            }
            FaultKind::CpuThrottle => "cpu: multiply every charged cost on the node",
            FaultKind::PartialPartition => {
                "fabric: switch silently refuses to forward between the node pair"
            }
        }
    }

    /// Whether the fault is a one-shot event (bad parameters) rather
    /// than a condition with a duration.
    pub fn is_one_shot(self) -> bool {
        matches!(
            self,
            FaultKind::BadParamNull | FaultKind::BadParamOffPtr | FaultKind::BadParamOffSize
        )
    }

    /// Whether the fault targets a specific node (everything except the
    /// switch fault).
    pub fn targets_node(self) -> bool {
        self != FaultKind::SwitchDown
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fault to inject: what, where, when, and for how long.
///
/// The derived `Ord` (field declaration order: kind, node, at,
/// duration, class, off_n, peer) gives specs a total order; the
/// campaign layer uses it as the final tie-break so same-instant
/// actions replay in one documented, deterministic order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultSpec {
    /// The fault class.
    pub kind: FaultKind,
    /// The target node (ignored for [`FaultKind::SwitchDown`]).
    pub node: NodeId,
    /// Injection time.
    pub at: SimTime,
    /// Duration for transient faults; `None` means permanent (no
    /// recovery within the run).
    pub duration: Option<SimDuration>,
    /// For bad-parameter faults: the call class to corrupt.
    pub class: MsgClass,
    /// For off-by-N faults: the offset N in bytes (paper: 0..=100).
    pub off_n: u32,
    /// For [`FaultKind::PartialPartition`]: the other end of the
    /// blocked pair. `None` for every other kind.
    pub peer: Option<NodeId>,
}

impl FaultSpec {
    /// A transient fault of `kind` on `node`, active `[at, at+duration)`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a one-shot bad-parameter fault (use
    /// [`FaultSpec::bad_param`]) or a partial partition (use
    /// [`FaultSpec::partial_partition`], which names both ends).
    pub fn transient(kind: FaultKind, node: NodeId, at: SimTime, duration: SimDuration) -> Self {
        assert!(
            !kind.is_one_shot(),
            "{kind} is a one-shot fault; use FaultSpec::bad_param"
        );
        assert!(
            kind != FaultKind::PartialPartition,
            "partial partitions need a peer; use FaultSpec::partial_partition"
        );
        FaultSpec {
            kind,
            node,
            at,
            duration: Some(duration),
            class: MsgClass::FileData,
            off_n: 0,
            peer: None,
        }
    }

    /// A permanent fault of `kind` on `node` starting at `at`.
    pub fn permanent(kind: FaultKind, node: NodeId, at: SimTime) -> Self {
        assert!(!kind.is_one_shot(), "{kind} is a one-shot fault");
        assert!(
            kind != FaultKind::PartialPartition,
            "partial partitions need a peer; use FaultSpec::partial_partition"
        );
        FaultSpec {
            kind,
            node,
            at,
            duration: None,
            class: MsgClass::FileData,
            off_n: 0,
            peer: None,
        }
    }

    /// A transient gray partition: the switch silently stops forwarding
    /// between `a` and `b` for `[at, at+duration)`. Both links stay up
    /// and no error is raised anywhere.
    ///
    /// The pair is normalized (lower node id becomes the target) so two
    /// specs naming the same pair in either order compare equal.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn partial_partition(a: NodeId, b: NodeId, at: SimTime, duration: SimDuration) -> Self {
        assert!(a != b, "a partition needs two distinct nodes");
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        FaultSpec {
            kind: FaultKind::PartialPartition,
            node: lo,
            at,
            duration: Some(duration),
            class: MsgClass::FileData,
            off_n: 0,
            peer: Some(hi),
        }
    }

    /// A one-shot bad-parameter fault corrupting the next `class` send
    /// on `node` at or after `at`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a bad-parameter fault, or if `off_n`
    /// exceeds 100 (the observed dominant range per §4.3).
    pub fn bad_param(kind: FaultKind, node: NodeId, at: SimTime, class: MsgClass, off_n: u32) -> Self {
        assert!(kind.is_one_shot(), "{kind} is not a bad-parameter fault");
        assert!(off_n <= 100, "off-by-N offsets are 0..=100 bytes");
        FaultSpec {
            kind,
            node,
            at,
            duration: None,
            class,
            off_n,
            peer: None,
        }
    }

    /// When the faulty component recovers, if the fault is transient.
    pub fn recovery_at(&self) -> Option<SimTime> {
        self.duration.map(|d| self.at + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_table_2() {
        assert_eq!(FaultKind::ALL.len(), 11);
        let categories: Vec<&str> = FaultKind::ALL.iter().map(|k| k.category()).collect();
        assert_eq!(categories.iter().filter(|c| **c == "Network hardware").count(), 2);
        assert_eq!(categories.iter().filter(|c| **c == "Node").count(), 2);
        assert_eq!(
            categories.iter().filter(|c| **c == "Resource exhaustion").count(),
            2
        );
        assert_eq!(categories.iter().filter(|c| **c == "Application").count(), 5);
    }

    #[test]
    fn every_kind_has_prose() {
        for k in FaultKind::ALL {
            assert!(!k.name().is_empty());
            assert!(!k.example_sources().is_empty());
            assert!(!k.mechanism().is_empty());
            assert_eq!(k.to_string(), k.name());
        }
    }

    #[test]
    fn transient_fault_has_a_recovery_time() {
        let f = FaultSpec::transient(
            FaultKind::LinkDown,
            NodeId(2),
            SimTime::from_secs(30),
            SimDuration::from_secs(90),
        );
        assert_eq!(f.recovery_at(), Some(SimTime::from_secs(120)));
    }

    #[test]
    fn permanent_fault_never_recovers() {
        let f = FaultSpec::permanent(FaultKind::SwitchDown, NodeId(0), SimTime::from_secs(5));
        assert_eq!(f.recovery_at(), None);
    }

    #[test]
    #[should_panic(expected = "not a bad-parameter fault")]
    fn bad_param_rejects_condition_faults() {
        FaultSpec::bad_param(
            FaultKind::LinkDown,
            NodeId(0),
            SimTime::ZERO,
            MsgClass::FileData,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "one-shot")]
    fn transient_rejects_one_shot_faults() {
        FaultSpec::transient(
            FaultKind::BadParamNull,
            NodeId(0),
            SimTime::ZERO,
            SimDuration::from_secs(1),
        );
    }

    #[test]
    #[should_panic(expected = "0..=100")]
    fn off_n_range_is_validated() {
        FaultSpec::bad_param(
            FaultKind::BadParamOffPtr,
            NodeId(0),
            SimTime::ZERO,
            MsgClass::FileData,
            101,
        );
    }

    #[test]
    fn only_switch_fault_is_nodeless() {
        for k in FaultKind::ALL {
            assert_eq!(k.targets_node(), k != FaultKind::SwitchDown);
        }
    }

    #[test]
    fn gray_catalogue_is_disjoint_from_table_2() {
        assert_eq!(FaultKind::GRAY.len(), 3);
        for k in FaultKind::GRAY {
            assert!(k.is_gray());
            assert!(!FaultKind::ALL.contains(&k));
            assert_eq!(k.category(), "Gray");
            assert!(!k.name().is_empty());
            assert!(!k.example_sources().is_empty());
            assert!(!k.mechanism().is_empty());
            assert!(!k.is_one_shot());
        }
        for k in FaultKind::ALL {
            assert!(!k.is_gray());
        }
    }

    #[test]
    fn partial_partition_normalizes_the_pair() {
        let fwd = FaultSpec::partial_partition(
            NodeId(3),
            NodeId(1),
            SimTime::from_secs(5),
            SimDuration::from_secs(10),
        );
        let rev = FaultSpec::partial_partition(
            NodeId(1),
            NodeId(3),
            SimTime::from_secs(5),
            SimDuration::from_secs(10),
        );
        assert_eq!(fwd, rev);
        assert_eq!(fwd.node, NodeId(1));
        assert_eq!(fwd.peer, Some(NodeId(3)));
        assert_eq!(fwd.recovery_at(), Some(SimTime::from_secs(15)));
    }

    #[test]
    #[should_panic(expected = "two distinct nodes")]
    fn partition_rejects_self_pairs() {
        FaultSpec::partial_partition(
            NodeId(2),
            NodeId(2),
            SimTime::ZERO,
            SimDuration::from_secs(1),
        );
    }

    #[test]
    #[should_panic(expected = "need a peer")]
    fn transient_rejects_peerless_partitions() {
        FaultSpec::transient(
            FaultKind::PartialPartition,
            NodeId(0),
            SimTime::ZERO,
            SimDuration::from_secs(1),
        );
    }

    #[test]
    fn specs_have_a_total_order_for_tie_breaking() {
        let t = SimTime::from_secs(1);
        let d = SimDuration::from_secs(5);
        let a = FaultSpec::transient(FaultKind::LinkDown, NodeId(0), t, d);
        let b = FaultSpec::transient(FaultKind::LinkDown, NodeId(1), t, d);
        let c = FaultSpec::transient(FaultKind::NodeCrash, NodeId(0), t, d);
        assert!(a < b, "same kind orders by node");
        assert!(b < c, "kind dominates node (declaration order)");
        let mut v = vec![c.clone(), b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }
}
