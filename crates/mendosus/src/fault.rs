//! The fault catalogue (Table 2 of the paper) and fault specifications.

use simnet::fabric::NodeId;
use simnet::{SimDuration, SimTime};
use transport::MsgClass;

/// Every fault class the study injects — Table 2 verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// A node's link to the switch fails (fail-stop).
    LinkDown,
    /// The switch fails (fail-stop): total intra-cluster partition.
    SwitchDown,
    /// Hard reboot: the node's NIC and memory contents are lost.
    NodeCrash,
    /// The node freezes (and later resumes where it left off).
    NodeHang,
    /// Kernel skbuf allocation fails for intra-cluster communication.
    KernelAllocFail,
    /// Memory-locking (pinning) requests fail.
    MemPinFail,
    /// The application process receives SIGSTOP (later SIGCONT).
    AppHang,
    /// The application process is killed (the daemon restarts it).
    AppCrash,
    /// A NULL data pointer is passed to a send call.
    BadParamNull,
    /// The data pointer passed to a send call is off by N bytes.
    BadParamOffPtr,
    /// The size passed to a send call is off by N bytes.
    BadParamOffSize,
}

impl FaultKind {
    /// All catalogue entries, in Table 2 order.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::LinkDown,
        FaultKind::SwitchDown,
        FaultKind::NodeCrash,
        FaultKind::NodeHang,
        FaultKind::KernelAllocFail,
        FaultKind::MemPinFail,
        FaultKind::AppHang,
        FaultKind::AppCrash,
        FaultKind::BadParamNull,
        FaultKind::BadParamOffPtr,
        FaultKind::BadParamOffSize,
    ];

    /// The fault category column of Table 2.
    pub fn category(self) -> &'static str {
        match self {
            FaultKind::LinkDown | FaultKind::SwitchDown => "Network hardware",
            FaultKind::NodeCrash | FaultKind::NodeHang => "Node",
            FaultKind::KernelAllocFail | FaultKind::MemPinFail => "Resource exhaustion",
            _ => "Application",
        }
    }

    /// The fault name used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::LinkDown => "Link fault",
            FaultKind::SwitchDown => "Switch fault",
            FaultKind::NodeCrash => "Node crash",
            FaultKind::NodeHang => "Node hang",
            FaultKind::KernelAllocFail => "Kernel memory allocation fault",
            FaultKind::MemPinFail => "Memory locking",
            FaultKind::AppHang => "Application hang",
            FaultKind::AppCrash => "Application crash",
            FaultKind::BadParamNull => "Bad parameters: NULL pointer",
            FaultKind::BadParamOffPtr => "Bad parameters: off-by-N data pointer",
            FaultKind::BadParamOffSize => "Bad parameters: off-by-N size",
        }
    }

    /// Example error sources, from Table 2.
    pub fn example_sources(self) -> &'static str {
        match self {
            FaultKind::LinkDown => "faulty cable, accidental unplugging, mis-configuration",
            FaultKind::SwitchDown => "power failure, software bug, mis-configuration",
            FaultKind::NodeCrash => "operator error, OS bug, hardware fault, power failure",
            FaultKind::NodeHang => "OS bug, OS recovering after killing faulty process",
            FaultKind::KernelAllocFail => {
                "system low on (kernel) memory / out of virtual address space"
            }
            FaultKind::MemPinFail => "out of pinnable physical memory",
            FaultKind::AppHang => "application bugs, paging effects",
            FaultKind::AppCrash => "application bugs, operator mis-termination",
            FaultKind::BadParamNull | FaultKind::BadParamOffPtr | FaultKind::BadParamOffSize => {
                "uninitialized pointers, logical error, pointer corruption, stale memory handle (RDMA)"
            }
        }
    }

    /// How the injector realizes the fault in the simulated cluster.
    pub fn mechanism(self) -> &'static str {
        match self {
            FaultKind::LinkDown => "fabric: mark the target node's link down",
            FaultKind::SwitchDown => "fabric: mark the switch down",
            FaultKind::NodeCrash => "fabric + process: NIC dead, process and memory lost, reboot on recovery",
            FaultKind::NodeHang => "freeze the whole node; resume in place on recovery",
            FaultKind::KernelAllocFail => "transport: skbuf allocation calls return errors",
            FaultKind::MemPinFail => "transport: memory-locking threshold drops to the current usage",
            FaultKind::AppHang => "daemon sends SIGSTOP; SIGCONT on recovery",
            FaultKind::AppCrash => "daemon kills the process; restart on recovery",
            FaultKind::BadParamNull | FaultKind::BadParamOffPtr | FaultKind::BadParamOffSize => {
                "interposition layer corrupts the next matching send call"
            }
        }
    }

    /// Whether the fault is a one-shot event (bad parameters) rather
    /// than a condition with a duration.
    pub fn is_one_shot(self) -> bool {
        matches!(
            self,
            FaultKind::BadParamNull | FaultKind::BadParamOffPtr | FaultKind::BadParamOffSize
        )
    }

    /// Whether the fault targets a specific node (everything except the
    /// switch fault).
    pub fn targets_node(self) -> bool {
        self != FaultKind::SwitchDown
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fault to inject: what, where, when, and for how long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The fault class.
    pub kind: FaultKind,
    /// The target node (ignored for [`FaultKind::SwitchDown`]).
    pub node: NodeId,
    /// Injection time.
    pub at: SimTime,
    /// Duration for transient faults; `None` means permanent (no
    /// recovery within the run).
    pub duration: Option<SimDuration>,
    /// For bad-parameter faults: the call class to corrupt.
    pub class: MsgClass,
    /// For off-by-N faults: the offset N in bytes (paper: 0..=100).
    pub off_n: u32,
}

impl FaultSpec {
    /// A transient fault of `kind` on `node`, active `[at, at+duration)`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a one-shot bad-parameter fault — use
    /// [`FaultSpec::bad_param`] for those.
    pub fn transient(kind: FaultKind, node: NodeId, at: SimTime, duration: SimDuration) -> Self {
        assert!(
            !kind.is_one_shot(),
            "{kind} is a one-shot fault; use FaultSpec::bad_param"
        );
        FaultSpec {
            kind,
            node,
            at,
            duration: Some(duration),
            class: MsgClass::FileData,
            off_n: 0,
        }
    }

    /// A permanent fault of `kind` on `node` starting at `at`.
    pub fn permanent(kind: FaultKind, node: NodeId, at: SimTime) -> Self {
        assert!(!kind.is_one_shot(), "{kind} is a one-shot fault");
        FaultSpec {
            kind,
            node,
            at,
            duration: None,
            class: MsgClass::FileData,
            off_n: 0,
        }
    }

    /// A one-shot bad-parameter fault corrupting the next `class` send
    /// on `node` at or after `at`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a bad-parameter fault, or if `off_n`
    /// exceeds 100 (the observed dominant range per §4.3).
    pub fn bad_param(kind: FaultKind, node: NodeId, at: SimTime, class: MsgClass, off_n: u32) -> Self {
        assert!(kind.is_one_shot(), "{kind} is not a bad-parameter fault");
        assert!(off_n <= 100, "off-by-N offsets are 0..=100 bytes");
        FaultSpec {
            kind,
            node,
            at,
            duration: None,
            class,
            off_n,
        }
    }

    /// When the faulty component recovers, if the fault is transient.
    pub fn recovery_at(&self) -> Option<SimTime> {
        self.duration.map(|d| self.at + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_table_2() {
        assert_eq!(FaultKind::ALL.len(), 11);
        let categories: Vec<&str> = FaultKind::ALL.iter().map(|k| k.category()).collect();
        assert_eq!(categories.iter().filter(|c| **c == "Network hardware").count(), 2);
        assert_eq!(categories.iter().filter(|c| **c == "Node").count(), 2);
        assert_eq!(
            categories.iter().filter(|c| **c == "Resource exhaustion").count(),
            2
        );
        assert_eq!(categories.iter().filter(|c| **c == "Application").count(), 5);
    }

    #[test]
    fn every_kind_has_prose() {
        for k in FaultKind::ALL {
            assert!(!k.name().is_empty());
            assert!(!k.example_sources().is_empty());
            assert!(!k.mechanism().is_empty());
            assert_eq!(k.to_string(), k.name());
        }
    }

    #[test]
    fn transient_fault_has_a_recovery_time() {
        let f = FaultSpec::transient(
            FaultKind::LinkDown,
            NodeId(2),
            SimTime::from_secs(30),
            SimDuration::from_secs(90),
        );
        assert_eq!(f.recovery_at(), Some(SimTime::from_secs(120)));
    }

    #[test]
    fn permanent_fault_never_recovers() {
        let f = FaultSpec::permanent(FaultKind::SwitchDown, NodeId(0), SimTime::from_secs(5));
        assert_eq!(f.recovery_at(), None);
    }

    #[test]
    #[should_panic(expected = "not a bad-parameter fault")]
    fn bad_param_rejects_condition_faults() {
        FaultSpec::bad_param(
            FaultKind::LinkDown,
            NodeId(0),
            SimTime::ZERO,
            MsgClass::FileData,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "one-shot")]
    fn transient_rejects_one_shot_faults() {
        FaultSpec::transient(
            FaultKind::BadParamNull,
            NodeId(0),
            SimTime::ZERO,
            SimDuration::from_secs(1),
        );
    }

    #[test]
    #[should_panic(expected = "0..=100")]
    fn off_n_range_is_validated() {
        FaultSpec::bad_param(
            FaultKind::BadParamOffPtr,
            NodeId(0),
            SimTime::ZERO,
            MsgClass::FileData,
            101,
        );
    }

    #[test]
    fn only_switch_fault_is_nodeless() {
        for k in FaultKind::ALL {
            assert_eq!(k.targets_node(), k != FaultKind::SwitchDown);
        }
    }
}
