//! Seeded fault-arrival traces: Poisson processes per fault class.
//!
//! The paper's phase 1 replays each Table-2 fault once, in isolation.
//! To study overlapping faults we instead *generate* a campaign: each
//! [`ArrivalClass`] is an independent Poisson process (exponential
//! inter-arrival times) over a horizon, targets drawn uniformly over
//! the nodes. Everything flows from one `u64` seed through the
//! simulator's own xoshiro256++ shim, so a trace is a pure function of
//! `(classes, horizon, nodes, seed)` and replays byte-identically —
//! the property every Monte-Carlo estimate in this repo leans on.
//!
//! Each class forks its own RNG stream from the root seed, so adding
//! or reordering classes perturbs only the class concerned — not every
//! other class's arrivals.

use simnet::fabric::NodeId;
use simnet::{SimDuration, SimRng, SimTime};

use crate::campaign::Campaign;
use crate::fault::{FaultKind, FaultSpec};

/// One Poisson fault class in an arrival trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalClass {
    /// The fault to inject at each arrival. One-shot bad-parameter
    /// kinds are not supported (they have no duration to overlap).
    pub kind: FaultKind,
    /// Mean time between arrivals (the exponential's mean, i.e. the
    /// class MTTF across the whole cluster).
    pub mean_between: SimDuration,
    /// How long each injected fault lasts (the class MTTR).
    pub duration: SimDuration,
}

impl ArrivalClass {
    /// A class injecting transient `kind` faults with the given mean
    /// inter-arrival time and per-fault duration.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is one-shot, or either time is zero.
    pub fn new(kind: FaultKind, mean_between: SimDuration, duration: SimDuration) -> Self {
        assert!(!kind.is_one_shot(), "{kind} is one-shot; arrival traces need transients");
        assert!(mean_between > SimDuration::ZERO, "mean inter-arrival must be positive");
        assert!(duration > SimDuration::ZERO, "fault duration must be positive");
        ArrivalClass {
            kind,
            mean_between,
            duration,
        }
    }
}

/// Generates a campaign of overlapping transient faults: each class in
/// `classes` contributes a Poisson arrival stream over
/// `[start, start + horizon)`, targets drawn uniformly from
/// `0..nodes` (partial partitions additionally draw a distinct peer).
/// Arrivals landing so late their fault would not begin before the
/// horizon are dropped; durations may extend past it (the run clips
/// them via [`Campaign::active_intervals`]).
///
/// The result is deterministic in `(classes, start, horizon, nodes,
/// seed)` and always passes [`Campaign::validate`] — in the
/// vanishingly unlikely event two draws collide into identical specs,
/// the duplicate is dropped.
///
/// # Panics
///
/// Panics if `nodes == 0`, or `nodes < 2` while a class injects
/// partial partitions.
pub fn generate_trace(
    classes: &[ArrivalClass],
    start: SimTime,
    horizon: SimDuration,
    nodes: usize,
    seed: u64,
) -> Campaign {
    assert!(nodes > 0, "arrival traces need at least one node");
    let end = start + horizon;
    let mut root = SimRng::seed_from(seed);
    let mut faults: Vec<FaultSpec> = Vec::new();
    for class in classes {
        // Each class gets its own forked stream: stable under changes
        // to sibling classes' draw counts.
        let mut rng = root.fork();
        let rate = 1.0 / class.mean_between.as_secs_f64();
        let mut at = start;
        loop {
            let gap = rng.exponential(rate);
            at += SimDuration::from_nanos((gap * 1e9) as u64);
            if at >= end {
                break;
            }
            let node = NodeId(rng.below(nodes as u64) as usize);
            let spec = if class.kind == FaultKind::PartialPartition {
                assert!(nodes >= 2, "partial partitions need two nodes");
                // Draw a peer from the remaining nodes, skipping past
                // the target so the pair is always distinct.
                let raw = rng.below(nodes as u64 - 1) as usize;
                let peer = NodeId(if raw >= node.0 { raw + 1 } else { raw });
                FaultSpec::partial_partition(node, peer, at, class.duration)
            } else {
                FaultSpec::transient(class.kind, node, at, class.duration)
            };
            if !faults.contains(&spec) {
                faults.push(spec);
            }
        }
    }
    Campaign::new(faults)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> Vec<ArrivalClass> {
        vec![
            ArrivalClass::new(
                FaultKind::NodeCrash,
                SimDuration::from_secs(120),
                SimDuration::from_secs(30),
            ),
            ArrivalClass::new(
                FaultKind::LinkDegraded,
                SimDuration::from_secs(90),
                SimDuration::from_secs(45),
            ),
            ArrivalClass::new(
                FaultKind::PartialPartition,
                SimDuration::from_secs(150),
                SimDuration::from_secs(40),
            ),
        ]
    }

    #[test]
    fn traces_are_deterministic_in_the_seed() {
        let horizon = SimDuration::from_secs(3600);
        let a = generate_trace(&classes(), SimTime::from_secs(10), horizon, 4, 7);
        let b = generate_trace(&classes(), SimTime::from_secs(10), horizon, 4, 7);
        assert_eq!(a, b);
        let c = generate_trace(&classes(), SimTime::from_secs(10), horizon, 4, 8);
        assert_ne!(a, c, "a different seed must change the trace");
        assert!(!a.is_empty());
        assert_eq!(a.validate(), Ok(()));
    }

    #[test]
    fn arrivals_stay_inside_the_window_and_target_valid_nodes() {
        let start = SimTime::from_secs(5);
        let horizon = SimDuration::from_secs(1800);
        let trace = generate_trace(&classes(), start, horizon, 4, 2003);
        for f in trace.faults() {
            assert!(f.at >= start && f.at < start + horizon);
            assert!(f.node.0 < 4);
            if let Some(peer) = f.peer {
                assert!(peer.0 < 4);
                assert_ne!(peer, f.node);
            }
            assert!(f.duration.is_some(), "arrival traces inject transients");
        }
    }

    #[test]
    fn arrival_counts_follow_the_class_rates() {
        // Over a long horizon the per-class arrival count concentrates
        // around horizon/mean_between.
        let horizon = SimDuration::from_secs(200_000);
        let trace = generate_trace(
            &[ArrivalClass::new(
                FaultKind::NodeHang,
                SimDuration::from_secs(100),
                SimDuration::from_secs(10),
            )],
            SimTime::ZERO,
            horizon,
            4,
            42,
        );
        let n = trace.faults().len() as f64;
        let expected = 2000.0;
        assert!(
            (n - expected).abs() < 150.0,
            "expected ~{expected} arrivals, got {n}"
        );
    }

    #[test]
    fn class_streams_are_independent() {
        // Dropping the second class must not perturb the first class's
        // arrivals.
        let horizon = SimDuration::from_secs(3600);
        let both = generate_trace(&classes(), SimTime::ZERO, horizon, 4, 9);
        let first_only = generate_trace(&classes()[..1], SimTime::ZERO, horizon, 4, 9);
        let crashes: Vec<&FaultSpec> = both
            .faults()
            .iter()
            .filter(|f| f.kind == FaultKind::NodeCrash)
            .collect();
        assert_eq!(crashes.len(), first_only.faults().len());
        for (a, b) in crashes.iter().zip(first_only.faults()) {
            assert_eq!(**a, *b);
        }
    }

    #[test]
    fn generated_traces_overlap() {
        // Dense rates on a small cluster must produce at least one
        // instant with two concurrently active faults — the whole point
        // of the generator.
        let trace = generate_trace(
            &[
                ArrivalClass::new(
                    FaultKind::NodeCrash,
                    SimDuration::from_secs(60),
                    SimDuration::from_secs(40),
                ),
                ArrivalClass::new(
                    FaultKind::LinkDegraded,
                    SimDuration::from_secs(60),
                    SimDuration::from_secs(40),
                ),
            ],
            SimTime::ZERO,
            SimDuration::from_secs(1200),
            4,
            1,
        );
        let horizon = SimTime::from_secs(1200);
        let intervals = trace.active_intervals(horizon);
        let overlaps = intervals.windows(2).any(|w| w[1].start < w[0].end);
        assert!(overlaps, "expected at least one overlapping pair");
    }

    #[test]
    #[should_panic(expected = "one-shot")]
    fn one_shot_kinds_are_rejected() {
        ArrivalClass::new(
            FaultKind::BadParamNull,
            SimDuration::from_secs(10),
            SimDuration::from_secs(1),
        );
    }
}
