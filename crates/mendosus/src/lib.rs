//! Software fault injection modeled on **Mendosus**, the SAN-based
//! fault-injection test-bed the paper uses (§4).
//!
//! The crate provides:
//!
//! * [`FaultKind`] — the fault catalogue of Table 2: network hardware
//!   (link, switch), node (crash, hang), resource exhaustion (kernel
//!   memory allocation, memory locking) and application faults (hang,
//!   crash, bad parameters).
//! * [`FaultSpec`] / [`Campaign`] — a schedule of faults to inject into
//!   a running simulation, each transient (with a duration) or
//!   permanent.
//! * [`Mangler`] — the call-interposition layer for bad-parameter
//!   faults: it sits between PRESS and the communication library and
//!   corrupts one `send`/`VipPostSend` call (NULL pointer, off-by-N data
//!   pointer, off-by-N size with N ∈ [0, 100], per the field study the
//!   paper cites in §4.3).
//! * [`CorrelationRule`] — declarative correlated fault groups: a root
//!   fault (switch failure, rack power event) expands into its
//!   consequent faults with one shared injection instant.
//! * [`ArrivalClass`] / [`generate_trace`] — seeded Poisson fault
//!   arrivals per class, producing overlapping multi-fault campaigns
//!   that are a pure function of the seed.
//!
//! Beyond Table 2, [`FaultKind::GRAY`] adds gray (degraded-but-alive)
//! classes: degraded links, throttled CPUs, and partial partitions,
//! which misbehave without ever raising a fail-stop signal.
//!
//! Mendosus itself only *schedules and describes* faults; the
//! composition layer (the `experiments` crate) applies each
//! [`FaultAction`] to the fabric, transports, and server processes, just
//! as the real Mendosus drives kernel modules and user-level daemons.

pub mod arrivals;
pub mod campaign;
pub mod correlate;
pub mod fault;
pub mod interpose;

pub use arrivals::{generate_trace, ArrivalClass};
pub use campaign::{Campaign, CampaignError, FaultAction, FaultInterval, FaultPhase};
pub use correlate::{Consequence, CorrelationRule};
pub use fault::{FaultKind, FaultSpec};
pub use interpose::{BadParam, Mangler, PlannedMangle};
