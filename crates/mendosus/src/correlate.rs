//! Correlated fault groups: declarative rules that expand a root fault
//! into its consequent faults.
//!
//! Single-fault replay (phase 1) treats every fault as independent;
//! real clusters see correlated failures — a dying switch takes its
//! attached links with it, a rack power event crashes every node on
//! the rack. A [`CorrelationRule`] describes one such dependency:
//! *when a root fault of this kind (optionally on this node) fires,
//! these consequences fire with it*, sharing the root's injection time
//! and duration. [`Campaign::expand`](crate::Campaign) applies a rule
//! set to every fault in a campaign.
//!
//! Expansion is **one level deep**: consequents do not re-trigger
//! rules. This keeps expansion total (no cycles) and the consequence
//! set auditable — a rule says exactly what it adds.

use simnet::fabric::NodeId;

use crate::campaign::Campaign;
use crate::fault::{FaultKind, FaultSpec};

/// What a triggered rule adds alongside the root fault. Every
/// consequent shares the root's injection time and duration (permanent
/// roots yield permanent consequents).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Consequence {
    /// The named nodes' links go down (fail-stop, sender-observable).
    LinksDown(Vec<NodeId>),
    /// The named nodes crash (fail-stop reboot).
    NodeCrashes(Vec<NodeId>),
    /// The named nodes' links degrade (gray: latency + silent loss).
    LinksDegraded(Vec<NodeId>),
}

/// One correlation rule: a trigger pattern plus the consequences it
/// adds. Purely declarative — rules carry no code, so a campaign's
/// expansion is a function of (faults, rules) alone and replays
/// deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrelationRule {
    /// Human-readable rule name (appears in reports and logs).
    pub name: String,
    /// The fault kind that triggers this rule.
    pub trigger: FaultKind,
    /// Restrict the trigger to roots on this node (`None` = any node;
    /// ignored for nodeless kinds like [`FaultKind::SwitchDown`]).
    pub node: Option<NodeId>,
    /// What to add when the rule fires.
    pub consequences: Vec<Consequence>,
}

impl CorrelationRule {
    /// Whether `root` triggers this rule.
    pub fn matches(&self, root: &FaultSpec) -> bool {
        root.kind == self.trigger
            && (!root.kind.targets_node()
                || self.node.is_none()
                || self.node == Some(root.node))
    }

    /// The consequent faults for `root`, or empty when the rule does
    /// not match. A consequent that would restate the root itself (the
    /// same kind on the root's own node) is skipped — a crashing node
    /// does not additionally "crash".
    pub fn expand(&self, root: &FaultSpec) -> Vec<FaultSpec> {
        if !self.matches(root) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for consequence in &self.consequences {
            let (kind, nodes) = match consequence {
                Consequence::LinksDown(nodes) => (FaultKind::LinkDown, nodes),
                Consequence::NodeCrashes(nodes) => (FaultKind::NodeCrash, nodes),
                Consequence::LinksDegraded(nodes) => (FaultKind::LinkDegraded, nodes),
            };
            for &node in nodes {
                if root.kind.targets_node() && node == root.node && kind == root.kind {
                    continue;
                }
                out.push(match root.duration {
                    Some(d) => FaultSpec::transient(kind, node, root.at, d),
                    None => FaultSpec::permanent(kind, node, root.at),
                });
            }
        }
        out
    }

    /// The classic correlated group: a failing switch takes the links
    /// of every attached node down with it (a powered-off switch leaves
    /// every NIC seeing no carrier).
    pub fn switch_takes_links(nodes: usize) -> Self {
        CorrelationRule {
            name: "switch failure takes attached links".to_string(),
            trigger: FaultKind::SwitchDown,
            node: None,
            consequences: vec![Consequence::LinksDown(
                (0..nodes).map(NodeId).collect(),
            )],
        }
    }

    /// A rack power event: a crash of `head` crashes every other node
    /// in `rack` at the same instant.
    pub fn rack_power(head: NodeId, rack: &[NodeId]) -> Self {
        CorrelationRule {
            name: format!("rack power event at node {}", head.0),
            trigger: FaultKind::NodeCrash,
            node: Some(head),
            consequences: vec![Consequence::NodeCrashes(
                rack.iter().copied().filter(|n| *n != head).collect(),
            )],
        }
    }
}

impl Campaign {
    /// Expands every fault through `rules`, returning a new campaign
    /// holding the roots plus all consequents. Expansion is one level
    /// deep (consequents do not re-trigger rules) and idempotent in
    /// effect: a consequent identical to an existing or already-added
    /// spec is skipped, so the result always passes the duplicate check
    /// of [`Campaign::validate`] if the input did.
    pub fn expand(&self, rules: &[CorrelationRule]) -> Campaign {
        let mut out: Vec<FaultSpec> = self.faults().to_vec();
        for root in self.faults() {
            for rule in rules {
                for consequent in rule.expand(root) {
                    if !out.contains(&consequent) {
                        out.push(consequent);
                    }
                }
            }
        }
        Campaign::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimDuration, SimTime};

    #[test]
    fn switch_failure_takes_every_link() {
        let rule = CorrelationRule::switch_takes_links(4);
        let root = FaultSpec::transient(
            FaultKind::SwitchDown,
            NodeId(0),
            SimTime::from_secs(30),
            SimDuration::from_secs(60),
        );
        let consequents = rule.expand(&root);
        assert_eq!(consequents.len(), 4);
        for (i, c) in consequents.iter().enumerate() {
            assert_eq!(c.kind, FaultKind::LinkDown);
            assert_eq!(c.node, NodeId(i));
            assert_eq!(c.at, root.at);
            assert_eq!(c.duration, root.duration);
        }
    }

    #[test]
    fn rack_power_crashes_the_rest_of_the_rack() {
        let rack: Vec<NodeId> = (0..3).map(NodeId).collect();
        let rule = CorrelationRule::rack_power(NodeId(1), &rack);
        let root = FaultSpec::transient(
            FaultKind::NodeCrash,
            NodeId(1),
            SimTime::from_secs(10),
            SimDuration::from_secs(45),
        );
        let consequents = rule.expand(&root);
        let nodes: Vec<usize> = consequents.iter().map(|c| c.node.0).collect();
        assert_eq!(nodes, [0, 2], "the head's own crash is the root, not a consequent");

        // A crash elsewhere does not trigger the rack rule.
        let other = FaultSpec::transient(
            FaultKind::NodeCrash,
            NodeId(2),
            SimTime::from_secs(10),
            SimDuration::from_secs(45),
        );
        assert!(rule.expand(&other).is_empty());
    }

    #[test]
    fn permanent_roots_yield_permanent_consequents() {
        let rule = CorrelationRule::switch_takes_links(2);
        let root = FaultSpec::permanent(FaultKind::SwitchDown, NodeId(0), SimTime::from_secs(5));
        for c in rule.expand(&root) {
            assert_eq!(c.duration, None);
        }
    }

    #[test]
    fn campaign_expansion_is_deduplicated_and_validates() {
        let rules = [CorrelationRule::switch_takes_links(4)];
        let explicit_link = FaultSpec::transient(
            FaultKind::LinkDown,
            NodeId(2),
            SimTime::from_secs(30),
            SimDuration::from_secs(60),
        );
        let campaign = Campaign::new([
            FaultSpec::transient(
                FaultKind::SwitchDown,
                NodeId(0),
                SimTime::from_secs(30),
                SimDuration::from_secs(60),
            ),
            // Already present: the expansion must not duplicate it.
            explicit_link.clone(),
        ]);
        let expanded = campaign.expand(&rules);
        assert_eq!(expanded.faults().len(), 2 + 3, "4 links minus the explicit one");
        assert_eq!(expanded.validate(), Ok(()));
        assert_eq!(
            expanded
                .faults()
                .iter()
                .filter(|f| **f == explicit_link)
                .count(),
            1
        );
    }

    #[test]
    fn gray_consequences_expand_too() {
        let rule = CorrelationRule {
            name: "overheating switch degrades its ports".to_string(),
            trigger: FaultKind::SwitchDown,
            node: None,
            consequences: vec![Consequence::LinksDegraded(vec![NodeId(0), NodeId(1)])],
        };
        let root = FaultSpec::transient(
            FaultKind::SwitchDown,
            NodeId(0),
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
        );
        let consequents = rule.expand(&root);
        assert_eq!(consequents.len(), 2);
        assert!(consequents.iter().all(|c| c.kind == FaultKind::LinkDegraded));
    }
}
