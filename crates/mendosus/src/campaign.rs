//! Fault campaigns: ordered schedules of injections and recoveries.
//!
//! Phase 1 of the methodology injects faults "(and the subsequent
//! recovery) one at a time into a running system" (§2). A [`Campaign`]
//! turns a set of [`FaultSpec`]s into a time-ordered action list the
//! composition layer replays against the simulation.

use simnet::SimTime;

use crate::fault::FaultSpec;

/// Whether an action starts or ends a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// The fault is injected.
    Inject,
    /// The faulty component recovers.
    Recover,
}

/// One scheduled action: apply `phase` of `spec` at `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultAction {
    /// When to act.
    pub at: SimTime,
    /// Inject or recover.
    pub phase: FaultPhase,
    /// The fault concerned.
    pub spec: FaultSpec,
}

/// An ordered set of faults to inject into one experiment run.
///
/// # Example
///
/// ```
/// use mendosus::{Campaign, FaultKind, FaultSpec};
/// use simnet::fabric::NodeId;
/// use simnet::{SimDuration, SimTime};
///
/// let campaign = Campaign::single(FaultSpec::transient(
///     FaultKind::NodeCrash,
///     NodeId(3),
///     SimTime::from_secs(60),
///     SimDuration::from_secs(90),
/// ));
/// let actions = campaign.actions();
/// assert_eq!(actions.len(), 2); // inject + recover
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Campaign {
    faults: Vec<FaultSpec>,
}

impl Campaign {
    /// An empty campaign (fault-free baseline run).
    pub fn none() -> Self {
        Campaign::default()
    }

    /// A campaign with exactly one fault — the single-fault loads of
    /// phase 1.
    pub fn single(spec: FaultSpec) -> Self {
        Campaign { faults: vec![spec] }
    }

    /// Builds a campaign from any number of faults.
    pub fn new<I: IntoIterator<Item = FaultSpec>>(faults: I) -> Self {
        Campaign {
            faults: faults.into_iter().collect(),
        }
    }

    /// Adds a fault.
    pub fn push(&mut self, spec: FaultSpec) {
        self.faults.push(spec);
    }

    /// The faults in the campaign.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// `true` when the campaign injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The time-ordered list of inject/recover actions. Recoveries of
    /// earlier faults interleave correctly with later injections.
    pub fn actions(&self) -> Vec<FaultAction> {
        let mut actions = Vec::with_capacity(self.faults.len() * 2);
        for spec in &self.faults {
            actions.push(FaultAction {
                at: spec.at,
                phase: FaultPhase::Inject,
                spec: spec.clone(),
            });
            if let Some(end) = spec.recovery_at() {
                actions.push(FaultAction {
                    at: end,
                    phase: FaultPhase::Recover,
                    spec: spec.clone(),
                });
            }
        }
        actions.sort_by_key(|a| (a.at, a.phase == FaultPhase::Recover));
        actions
    }
}

impl FromIterator<FaultSpec> for Campaign {
    fn from_iter<I: IntoIterator<Item = FaultSpec>>(iter: I) -> Self {
        Campaign::new(iter)
    }
}

impl Extend<FaultSpec> for Campaign {
    fn extend<I: IntoIterator<Item = FaultSpec>>(&mut self, iter: I) {
        self.faults.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use simnet::fabric::NodeId;
    use simnet::SimDuration;

    #[test]
    fn actions_are_time_ordered() {
        let campaign = Campaign::new([
            FaultSpec::transient(
                FaultKind::LinkDown,
                NodeId(1),
                SimTime::from_secs(100),
                SimDuration::from_secs(50),
            ),
            FaultSpec::transient(
                FaultKind::NodeHang,
                NodeId(2),
                SimTime::from_secs(10),
                SimDuration::from_secs(200),
            ),
        ]);
        let acts = campaign.actions();
        let times: Vec<u64> = acts.iter().map(|a| a.at.as_nanos() / 1_000_000_000).collect();
        assert_eq!(times, [10, 100, 150, 210]);
        assert_eq!(acts[0].phase, FaultPhase::Inject);
        assert_eq!(acts[2].phase, FaultPhase::Recover);
    }

    #[test]
    fn permanent_faults_have_no_recovery_action() {
        let campaign = Campaign::single(FaultSpec::permanent(
            FaultKind::SwitchDown,
            NodeId(0),
            SimTime::from_secs(1),
        ));
        assert_eq!(campaign.actions().len(), 1);
    }

    #[test]
    fn inject_sorts_before_recover_at_the_same_instant() {
        let campaign = Campaign::new([
            FaultSpec::transient(
                FaultKind::AppHang,
                NodeId(0),
                SimTime::from_secs(0),
                SimDuration::from_secs(10),
            ),
            FaultSpec::transient(
                FaultKind::AppCrash,
                NodeId(1),
                SimTime::from_secs(10),
                SimDuration::from_secs(10),
            ),
        ]);
        let acts = campaign.actions();
        assert_eq!(acts[1].phase, FaultPhase::Inject);
        assert_eq!(acts[2].phase, FaultPhase::Recover);
    }

    #[test]
    fn collects_from_iterator() {
        let c: Campaign = (0..3)
            .map(|i| {
                FaultSpec::transient(
                    FaultKind::NodeCrash,
                    NodeId(i),
                    SimTime::from_secs(i as u64 * 10),
                    SimDuration::from_secs(5),
                )
            })
            .collect();
        assert_eq!(c.faults().len(), 3);
        assert!(!c.is_empty());
        assert!(Campaign::none().is_empty());
    }
}
