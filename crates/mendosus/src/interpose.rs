//! Call interposition for bad-parameter faults.
//!
//! §4.3: "We implement the injection of these faults by interposing a
//! software layer between the application and the normal communication
//! library. Our layer traps specific calls, modifies one or more
//! parameters, and then passes the call to the communication library."
//!
//! [`Mangler`] is that layer. PRESS routes every send's [`CallParams`]
//! through its interposer; a planned mangle fires on the first matching
//! call at or after its scheduled time, then disarms.

use simnet::SimTime;
use transport::{CallParams, MsgClass, PtrParam, SendInterposer};

/// The three corruption shapes of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BadParam {
    /// Replace the data pointer with NULL.
    NullPtr,
    /// Offset the data pointer by `n` bytes (0..=100).
    OffByPtr(u32),
    /// Grow the size argument by `n` bytes (0..=100).
    OffBySize(u32),
}

impl BadParam {
    fn apply(self, mut params: CallParams) -> CallParams {
        match self {
            BadParam::NullPtr => params.ptr = PtrParam::Null,
            BadParam::OffByPtr(n) => params.ptr = PtrParam::OffBy(n as i32),
            BadParam::OffBySize(n) => params.size_delta = n as i32,
        }
        params
    }
}

/// One scheduled corruption: the first `class` send at or after `at`
/// gets `bad` applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedMangle {
    /// Earliest time the mangle may fire.
    pub at: SimTime,
    /// Which call class to trap.
    pub class: MsgClass,
    /// The corruption to apply.
    pub bad: BadParam,
}

/// The interposition layer: a queue of planned one-shot corruptions.
///
/// # Example
///
/// ```
/// use mendosus::{BadParam, Mangler, PlannedMangle};
/// use simnet::SimTime;
/// use transport::{CallParams, MsgClass, PtrParam, SendInterposer};
///
/// let mut m = Mangler::new();
/// m.plan(PlannedMangle {
///     at: SimTime::from_secs(10),
///     class: MsgClass::FileData,
///     bad: BadParam::NullPtr,
/// });
/// // Too early: passes through clean.
/// let p = m.mangle(SimTime::from_secs(5), MsgClass::FileData, CallParams::default());
/// assert!(p.is_clean());
/// // First matching call after the trigger time is corrupted.
/// let p = m.mangle(SimTime::from_secs(10), MsgClass::FileData, CallParams::default());
/// assert_eq!(p.ptr, PtrParam::Null);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Mangler {
    planned: Vec<PlannedMangle>,
    fired: u64,
}

impl Mangler {
    /// An interposer with nothing planned.
    pub fn new() -> Self {
        Mangler::default()
    }

    /// Schedules a corruption.
    pub fn plan(&mut self, mangle: PlannedMangle) {
        self.planned.push(mangle);
    }

    /// Number of corruptions applied so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Number of corruptions still armed.
    pub fn armed(&self) -> usize {
        self.planned.len()
    }
}

impl SendInterposer for Mangler {
    fn mangle(&mut self, now: SimTime, class: MsgClass, params: CallParams) -> CallParams {
        let hit = self
            .planned
            .iter()
            .position(|p| p.class == class && now >= p.at);
        match hit {
            Some(i) => {
                let p = self.planned.remove(i);
                self.fired += 1;
                p.bad.apply(params)
            }
            None => params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mangle_fires_once_and_disarms() {
        let mut m = Mangler::new();
        m.plan(PlannedMangle {
            at: SimTime::ZERO,
            class: MsgClass::Forward,
            bad: BadParam::OffByPtr(42),
        });
        let p1 = m.mangle(SimTime::from_secs(1), MsgClass::Forward, CallParams::default());
        assert_eq!(p1.ptr, PtrParam::OffBy(42));
        let p2 = m.mangle(SimTime::from_secs(1), MsgClass::Forward, CallParams::default());
        assert!(p2.is_clean());
        assert_eq!(m.fired(), 1);
        assert_eq!(m.armed(), 0);
    }

    #[test]
    fn class_filter_is_respected() {
        let mut m = Mangler::new();
        m.plan(PlannedMangle {
            at: SimTime::ZERO,
            class: MsgClass::FileData,
            bad: BadParam::OffBySize(7),
        });
        // A Forward call does not trip a FileData mangle.
        let p = m.mangle(SimTime::from_secs(1), MsgClass::Forward, CallParams::default());
        assert!(p.is_clean());
        let p = m.mangle(SimTime::from_secs(1), MsgClass::FileData, CallParams::default());
        assert_eq!(p.size_delta, 7);
    }

    #[test]
    fn multiple_mangles_fire_independently() {
        let mut m = Mangler::new();
        m.plan(PlannedMangle {
            at: SimTime::ZERO,
            class: MsgClass::Forward,
            bad: BadParam::NullPtr,
        });
        m.plan(PlannedMangle {
            at: SimTime::from_secs(100),
            class: MsgClass::Forward,
            bad: BadParam::OffBySize(3),
        });
        let p = m.mangle(SimTime::from_secs(1), MsgClass::Forward, CallParams::default());
        assert_eq!(p.ptr, PtrParam::Null);
        // Second is still waiting for its time.
        let p = m.mangle(SimTime::from_secs(1), MsgClass::Forward, CallParams::default());
        assert!(p.is_clean());
        let p = m.mangle(SimTime::from_secs(200), MsgClass::Forward, CallParams::default());
        assert_eq!(p.size_delta, 3);
        assert_eq!(m.fired(), 2);
    }

    #[test]
    fn existing_params_fields_are_preserved() {
        // A size mangle must not clear an (unlikely but possible)
        // pointer corruption already present, and vice versa.
        let mut m = Mangler::new();
        m.plan(PlannedMangle {
            at: SimTime::ZERO,
            class: MsgClass::Forward,
            bad: BadParam::OffBySize(9),
        });
        let dirty = CallParams {
            ptr: PtrParam::OffBy(1),
            size_delta: 0,
        };
        let p = m.mangle(SimTime::ZERO, MsgClass::Forward, dirty);
        assert_eq!(p.ptr, PtrParam::OffBy(1));
        assert_eq!(p.size_delta, 9);
    }
}
