//! A deterministic SWIM-style epidemic membership protocol
//! (Das/Gupta/Motivala's *Scalable Weakly-consistent Infection-style
//! Process Group Membership*), packaged as a pure state machine the
//! PRESS node drives as a pluggable alternative to its heartbeat ring.
//!
//! Per protocol period each member probes one peer chosen from a
//! shuffled cycle; a missing ack escalates to an indirect `ping-req`
//! through `k` proxies, then to *suspicion*; suspicion that survives
//! its timeout becomes a *confirm* (the peer is declared dead).
//! Members refute suspicion about themselves by bumping their
//! incarnation number, and every message piggybacks recent membership
//! updates so state spreads epidemically.
//!
//! # Determinism
//!
//! The machine consumes no wall clock and no global randomness: time
//! enters only as tick calls (the host schedules them on sim-time
//! timers), and all randomness comes from a [`SimRng`] seeded from
//! `SwimConfig::seed` mixed with the owner's node id. Two machines
//! built with the same config and fed the same call sequence emit the
//! same command sequence, byte for byte — which is what keeps cluster
//! runs identical across `--sim-threads` × `--jobs`.
//!
//! # Division of labour with the host
//!
//! [`Swim`] decides *who is alive*; the host owns the transport and the
//! authoritative member list. The machine emits [`Command`]s (send a
//! message, confirm a death, note a suspicion) and the host applies
//! them: sends become wire messages, confirms become exclusions. The
//! host mirrors its own membership decisions back via
//! [`Swim::remove`] / [`Swim::readmit`], so an exclusion learned
//! out-of-band (a broken connection, a view message) tombstones the
//! peer here too instead of racing the protocol.

use std::collections::BTreeMap;
use std::sync::Arc;

use simnet::fabric::NodeId;
use simnet::SimRng;

/// What a member believes about one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PeerState {
    /// Responding (directly or through proxies).
    Alive,
    /// Failed a probe round; the suspicion clock is running.
    Suspect,
    /// Confirmed dead (tombstone; only the host readmits).
    Dead,
}

/// One piggybacked membership assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Update {
    /// The peer the assertion is about.
    pub node: NodeId,
    /// The incarnation the assertion applies to.
    pub incarnation: u64,
    /// The asserted state.
    pub state: PeerState,
}

/// Wire messages. The host embeds these in its own message type; the
/// machine never touches a transport.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipMsg {
    /// Direct probe: "are you alive?".
    Ping {
        /// Prober-local sequence number echoed by the ack.
        seq: u64,
        /// Piggybacked dissemination.
        updates: Arc<[Update]>,
    },
    /// Indirect probe: "please ping `target` for me".
    PingReq {
        /// Origin-local sequence number for the relayed ack.
        seq: u64,
        /// The peer the origin could not reach directly.
        target: NodeId,
        /// Piggybacked dissemination.
        updates: Arc<[Update]>,
    },
    /// Liveness answer, possibly relayed by a proxy.
    Ack {
        /// The sequence number being answered.
        seq: u64,
        /// The peer whose liveness this attests.
        target: NodeId,
        /// Piggybacked dissemination.
        updates: Arc<[Update]>,
    },
}

impl GossipMsg {
    /// The piggybacked updates, whichever variant carries them.
    pub fn updates(&self) -> &[Update] {
        match self {
            GossipMsg::Ping { updates, .. }
            | GossipMsg::PingReq { updates, .. }
            | GossipMsg::Ack { updates, .. } => updates,
        }
    }
}

/// What the host must do for the machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Transmit `msg` to `to` (best-effort; losses are the point).
    Send {
        /// Destination peer.
        to: NodeId,
        /// The message.
        msg: GossipMsg,
    },
    /// `node` failed direct and indirect probes; suspicion started.
    Suspect {
        /// The suspected peer.
        node: NodeId,
    },
    /// Suspicion about `node` was cleared by liveness evidence.
    ClearSuspect {
        /// The reprieved peer.
        node: NodeId,
    },
    /// Suspicion survived its timeout: declare `node` dead. The host
    /// should exclude it from the cooperating membership.
    Confirm {
        /// The confirmed-dead peer.
        node: NodeId,
    },
    /// This member learned it was suspected and bumped its incarnation
    /// to `incarnation` (an Alive refutation is already queued).
    Refute {
        /// The new self-incarnation.
        incarnation: u64,
    },
}

/// Protocol parameters. All periods are expressed in *ticks* of the
/// host-scheduled `probe_interval`, so the machine never reads a clock.
#[derive(Debug, Clone, PartialEq)]
pub struct SwimConfig {
    /// One protocol period (the host schedules a tick at this rate).
    pub probe_interval: simnet::SimDuration,
    /// Proxies asked to ping an unresponsive peer indirectly.
    pub proxies: usize,
    /// Ticks a suspicion lasts before it becomes a confirm.
    pub suspect_ticks: u32,
    /// Maximum updates piggybacked per message.
    pub piggyback: usize,
    /// Times each update is retransmitted before it stops spreading.
    pub update_sends: u32,
    /// Run seed; each node's RNG stream is derived from this and its id.
    pub seed: u64,
}

impl Default for SwimConfig {
    /// Defaults calibrated so a *single* death is detected in roughly
    /// the ring's 15 s threshold at N = 4 (probe pickup ≈ 1–2 periods,
    /// plus the ping-req escalation, plus the suspicion timeout). The
    /// comparison is then apples-to-apples on false-positive
    /// robustness, and scaling does the rest: the ring unmasks k
    /// simultaneous adjacent deaths one 15 s threshold at a time,
    /// while these parameters detect them all in parallel.
    fn default() -> Self {
        SwimConfig {
            probe_interval: simnet::SimDuration::from_secs(2),
            proxies: 2,
            suspect_ticks: 4,
            piggyback: 6,
            update_sends: 8,
            seed: 0,
        }
    }
}

/// Fan-out and detection counters, exported by the host as metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwimStats {
    /// Protocol periods run.
    pub ticks: u64,
    /// Direct pings sent.
    pub pings: u64,
    /// Acks sent (direct answers, not relays).
    pub acks: u64,
    /// Ping-req fan-outs sent as the origin.
    pub ping_reqs: u64,
    /// Ping-reqs relayed as a proxy.
    pub relays: u64,
    /// Suspicions started locally or adopted from gossip.
    pub suspects: u64,
    /// Suspicions cleared by liveness evidence.
    pub clears: u64,
    /// Refutations issued about this member itself.
    pub refutations: u64,
    /// Deaths confirmed (locally or adopted from gossip).
    pub confirms: u64,
    /// Updates piggybacked onto outgoing messages.
    pub updates_sent: u64,
}

#[derive(Debug, Clone, Copy)]
struct Peer {
    incarnation: u64,
    state: PeerState,
    /// Ticks left before a suspicion confirms (meaningful iff Suspect).
    suspect_left: u32,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    target: NodeId,
    /// 0 = direct ping outstanding; 1 = ping-reqs outstanding.
    phase: u8,
}

#[derive(Debug, Clone, Copy)]
struct Relay {
    seq: u64,
    origin: NodeId,
    origin_seq: u64,
    target: NodeId,
    ttl: u32,
}

/// The per-member SWIM state machine.
#[derive(Debug)]
pub struct Swim {
    cfg: SwimConfig,
    me: NodeId,
    incarnation: u64,
    peers: BTreeMap<NodeId, Peer>,
    /// Updates still spreading: node → (assertion, sends left).
    updates: BTreeMap<NodeId, (Update, u32)>,
    rng: SimRng,
    seq: u64,
    /// Outstanding probes by sequence number (at most a few).
    outstanding: BTreeMap<u64, Pending>,
    /// Proxy duties awaiting the target's ack.
    relays: Vec<Relay>,
    /// Shuffled probe cycle (SWIM's round-robin randomization: every
    /// live peer is probed once per cycle, in an order reshuffled each
    /// pass, bounding worst-case first-probe time to one cycle).
    cycle: Vec<NodeId>,
    cycle_pos: usize,
    stats: SwimStats,
}

impl Swim {
    /// Builds the machine for `me` with an initial membership view
    /// (`members` may or may not include `me`; everyone starts Alive at
    /// incarnation 0).
    pub fn new(cfg: SwimConfig, me: NodeId, members: impl IntoIterator<Item = NodeId>) -> Self {
        // SplitMix-style mix so per-node streams are independent even
        // for adjacent seeds/ids.
        let mix = cfg
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(me.0 as u64 + 1));
        let rng = SimRng::seed_from(mix);
        let peers = members
            .into_iter()
            .filter(|n| *n != me)
            .map(|n| {
                (
                    n,
                    Peer {
                        incarnation: 0,
                        state: PeerState::Alive,
                        suspect_left: 0,
                    },
                )
            })
            .collect();
        Swim {
            cfg,
            me,
            incarnation: 0,
            peers,
            updates: BTreeMap::new(),
            rng,
            seq: 0,
            outstanding: BTreeMap::new(),
            relays: Vec::new(),
            cycle: Vec::new(),
            cycle_pos: 0,
            stats: SwimStats::default(),
        }
    }

    /// This member's current incarnation number.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Protocol counters.
    pub fn stats(&self) -> &SwimStats {
        &self.stats
    }

    /// What this member currently believes about `node`.
    pub fn peer_state(&self, node: NodeId) -> Option<(PeerState, u64)> {
        self.peers.get(&node).map(|p| (p.state, p.incarnation))
    }

    /// The host excluded `node` out-of-band (broken connection, view
    /// message): tombstone it so gossip cannot resurrect it; only
    /// [`Swim::readmit`] brings it back.
    pub fn remove(&mut self, node: NodeId) {
        if node == self.me {
            return;
        }
        let p = self.peers.entry(node).or_insert(Peer {
            incarnation: 0,
            state: PeerState::Dead,
            suspect_left: 0,
        });
        p.state = PeerState::Dead;
        self.outstanding.retain(|_, pend| pend.target != node);
        self.relays.retain(|r| r.target != node && r.origin != node);
    }

    /// The host readmitted `node` (rejoin/merge): mark it alive at a
    /// fresh incarnation so stale Suspect/Dead assertions still
    /// circulating cannot re-kill it, and start spreading the news.
    pub fn readmit(&mut self, node: NodeId) {
        if node == self.me {
            return;
        }
        let p = self.peers.entry(node).or_insert(Peer {
            incarnation: 0,
            state: PeerState::Dead,
            suspect_left: 0,
        });
        p.incarnation += 1;
        p.state = PeerState::Alive;
        p.suspect_left = 0;
        let inc = p.incarnation;
        self.queue_update(Update {
            node,
            incarnation: inc,
            state: PeerState::Alive,
        });
    }

    /// Runs one protocol period. The host calls this every
    /// `cfg.probe_interval` of simulated time.
    pub fn tick(&mut self, out: &mut Vec<Command>) {
        self.stats.ticks += 1;
        // Expire proxy duties whose target never answered.
        self.relays.retain_mut(|r| {
            r.ttl -= 1;
            r.ttl > 0
        });
        self.advance_suspicions(out);
        self.escalate_probes(out);
        self.start_probe(out);
    }

    /// Feeds one received message in; `from` is the wire-level sender.
    pub fn on_message(&mut self, from: NodeId, msg: &GossipMsg, out: &mut Vec<Command>) {
        for u in msg.updates() {
            self.apply_update(*u, out);
        }
        match *msg {
            GossipMsg::Ping { seq, .. } => {
                self.stats.acks += 1;
                let updates = self.piggyback();
                out.push(Command::Send {
                    to: from,
                    msg: GossipMsg::Ack {
                        seq,
                        target: self.me,
                        updates,
                    },
                });
            }
            GossipMsg::PingReq { seq, target, .. } => {
                self.stats.relays += 1;
                self.seq += 1;
                self.relays.push(Relay {
                    seq: self.seq,
                    origin: from,
                    origin_seq: seq,
                    target,
                    ttl: 2,
                });
                let updates = self.piggyback();
                out.push(Command::Send {
                    to: target,
                    msg: GossipMsg::Ping {
                        seq: self.seq,
                        updates,
                    },
                });
            }
            GossipMsg::Ack { seq, target, .. } => {
                // A proxy duty answered: relay the ack to the origin.
                if let Some(i) = self.relays.iter().position(|r| r.seq == seq) {
                    let r = self.relays.swap_remove(i);
                    let updates = self.piggyback();
                    out.push(Command::Send {
                        to: r.origin,
                        msg: GossipMsg::Ack {
                            seq: r.origin_seq,
                            target: r.target,
                            updates,
                        },
                    });
                }
                // One of our own probes answered: the target is alive.
                if let Some(pend) = self.outstanding.remove(&seq) {
                    if pend.target == target {
                        self.saw_alive(target, out);
                    }
                }
            }
        }
    }

    /// Live (non-tombstoned) peers, in id order.
    fn probe_candidates(&self) -> Vec<NodeId> {
        self.peers
            .iter()
            .filter(|(_, p)| p.state != PeerState::Dead)
            .map(|(n, _)| *n)
            .collect()
    }

    fn advance_suspicions(&mut self, out: &mut Vec<Command>) {
        let mut confirmed = Vec::new();
        for (&n, p) in self.peers.iter_mut() {
            if p.state == PeerState::Suspect {
                p.suspect_left = p.suspect_left.saturating_sub(1);
                if p.suspect_left == 0 {
                    p.state = PeerState::Dead;
                    confirmed.push((n, p.incarnation));
                }
            }
        }
        for (n, inc) in confirmed {
            self.stats.confirms += 1;
            self.queue_update(Update {
                node: n,
                incarnation: inc,
                state: PeerState::Dead,
            });
            out.push(Command::Confirm { node: n });
        }
    }

    fn escalate_probes(&mut self, out: &mut Vec<Command>) {
        let pending: Vec<(u64, Pending)> =
            self.outstanding.iter().map(|(s, p)| (*s, *p)).collect();
        for (seq, pend) in pending {
            let alive_target = self
                .peers
                .get(&pend.target)
                .is_some_and(|p| p.state != PeerState::Dead);
            if !alive_target {
                self.outstanding.remove(&seq);
                continue;
            }
            match pend.phase {
                0 => {
                    // Direct ping unanswered for a full period: ask k
                    // proxies to try from their vantage points.
                    let mut proxies: Vec<NodeId> = self
                        .probe_candidates()
                        .into_iter()
                        .filter(|n| *n != pend.target)
                        .collect();
                    if proxies.is_empty() {
                        // No proxy available: escalate straight to
                        // suspicion next period.
                        self.outstanding.insert(seq, Pending { phase: 1, ..pend });
                        continue;
                    }
                    let k = self.cfg.proxies.min(proxies.len());
                    for i in 0..k {
                        let j = i + self.rng.below((proxies.len() - i) as u64) as usize;
                        proxies.swap(i, j);
                        self.stats.ping_reqs += 1;
                        let updates = self.piggyback();
                        out.push(Command::Send {
                            to: proxies[i],
                            msg: GossipMsg::PingReq {
                                seq,
                                target: pend.target,
                                updates,
                            },
                        });
                    }
                    self.outstanding.insert(seq, Pending { phase: 1, ..pend });
                }
                _ => {
                    // Indirect round unanswered too: suspect.
                    self.outstanding.remove(&seq);
                    self.suspect(pend.target, out);
                }
            }
        }
    }

    fn start_probe(&mut self, out: &mut Vec<Command>) {
        // Walk the shuffled cycle to the next still-live peer,
        // reshuffling when a pass completes.
        let mut target = None;
        for _ in 0..2 {
            while self.cycle_pos < self.cycle.len() {
                let n = self.cycle[self.cycle_pos];
                self.cycle_pos += 1;
                if self
                    .peers
                    .get(&n)
                    .is_some_and(|p| p.state != PeerState::Dead)
                {
                    target = Some(n);
                    break;
                }
            }
            if target.is_some() {
                break;
            }
            self.cycle = self.probe_candidates();
            self.cycle_pos = 0;
            if self.cycle.is_empty() {
                return;
            }
            // Fisher–Yates on the deterministic per-node stream.
            for i in (1..self.cycle.len()).rev() {
                let j = self.rng.below((i + 1) as u64) as usize;
                self.cycle.swap(i, j);
            }
        }
        let Some(target) = target else { return };
        self.seq += 1;
        self.stats.pings += 1;
        self.outstanding.insert(self.seq, Pending { target, phase: 0 });
        let updates = self.piggyback();
        out.push(Command::Send {
            to: target,
            msg: GossipMsg::Ping {
                seq: self.seq,
                updates,
            },
        });
    }

    fn suspect(&mut self, node: NodeId, out: &mut Vec<Command>) {
        let Some(p) = self.peers.get_mut(&node) else {
            return;
        };
        if p.state != PeerState::Alive {
            return;
        }
        p.state = PeerState::Suspect;
        p.suspect_left = self.cfg.suspect_ticks;
        let inc = p.incarnation;
        self.stats.suspects += 1;
        self.queue_update(Update {
            node,
            incarnation: inc,
            state: PeerState::Suspect,
        });
        out.push(Command::Suspect { node });
    }

    /// Direct liveness evidence about `node` (an ack we solicited).
    fn saw_alive(&mut self, node: NodeId, out: &mut Vec<Command>) {
        let Some(p) = self.peers.get_mut(&node) else {
            return;
        };
        if p.state == PeerState::Suspect {
            // Local reprieve only: without a higher incarnation we
            // cannot overrule other members' suspicion — the target's
            // own refutation does that — but we will not confirm a
            // peer we just heard from.
            p.state = PeerState::Alive;
            p.suspect_left = 0;
            self.stats.clears += 1;
            out.push(Command::ClearSuspect { node });
        }
    }

    fn apply_update(&mut self, u: Update, out: &mut Vec<Command>) {
        if u.node == self.me {
            // Someone thinks we are suspect/dead: refute with a higher
            // incarnation (SWIM's alive-message precedence).
            if u.state != PeerState::Alive && u.incarnation >= self.incarnation {
                self.incarnation = u.incarnation + 1;
                self.stats.refutations += 1;
                let inc = self.incarnation;
                self.queue_update(Update {
                    node: self.me,
                    incarnation: inc,
                    state: PeerState::Alive,
                });
                out.push(Command::Refute { incarnation: inc });
            }
            return;
        }
        let Some(p) = self.peers.get_mut(&u.node) else {
            // Unknown peer: membership is host-governed; gossip alone
            // does not introduce members.
            return;
        };
        if p.state == PeerState::Dead {
            // Tombstones are final here; only the host's rejoin path
            // (readmit) resurrects a peer.
            return;
        }
        match u.state {
            PeerState::Alive => {
                // Alive{i} overrides Suspect{j}/Alive{j} iff i > j.
                if u.incarnation > p.incarnation {
                    let was_suspect = p.state == PeerState::Suspect;
                    p.incarnation = u.incarnation;
                    p.state = PeerState::Alive;
                    p.suspect_left = 0;
                    self.queue_update(u);
                    if was_suspect {
                        self.stats.clears += 1;
                        out.push(Command::ClearSuspect { node: u.node });
                    }
                }
            }
            PeerState::Suspect => {
                // Suspect{i} overrides Alive{j} iff i >= j, and
                // Suspect{j} iff i > j.
                let overrides = match p.state {
                    PeerState::Alive => u.incarnation >= p.incarnation,
                    PeerState::Suspect => u.incarnation > p.incarnation,
                    PeerState::Dead => false,
                };
                if overrides {
                    let was_alive = p.state == PeerState::Alive;
                    p.incarnation = u.incarnation;
                    if was_alive {
                        p.state = PeerState::Suspect;
                        p.suspect_left = self.cfg.suspect_ticks;
                        self.stats.suspects += 1;
                        out.push(Command::Suspect { node: u.node });
                    }
                    self.queue_update(u);
                }
            }
            PeerState::Dead => {
                // Confirm overrides everything.
                p.state = PeerState::Dead;
                p.incarnation = p.incarnation.max(u.incarnation);
                self.stats.confirms += 1;
                self.queue_update(u);
                out.push(Command::Confirm { node: u.node });
            }
        }
    }

    fn queue_update(&mut self, u: Update) {
        self.updates.insert(u.node, (u, self.cfg.update_sends));
    }

    /// Drains up to `cfg.piggyback` pending updates into a shareable
    /// slice, charging each one send from its budget.
    fn piggyback(&mut self) -> Arc<[Update]> {
        if self.updates.is_empty() {
            return Arc::from(&[][..]);
        }
        let mut picked = Vec::with_capacity(self.cfg.piggyback);
        let mut exhausted = Vec::new();
        for (&n, (u, left)) in self.updates.iter_mut() {
            if picked.len() >= self.cfg.piggyback {
                break;
            }
            picked.push(*u);
            *left -= 1;
            if *left == 0 {
                exhausted.push(n);
            }
        }
        for n in exhausted {
            self.updates.remove(&n);
        }
        self.stats.updates_sent += picked.len() as u64;
        picked.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SwimConfig {
        SwimConfig {
            seed: 42,
            ..SwimConfig::default()
        }
    }

    fn swim(me: usize, n: usize) -> Swim {
        Swim::new(cfg(), NodeId(me), (0..n).map(NodeId))
    }

    fn sends(cmds: &[Command]) -> Vec<(NodeId, &GossipMsg)> {
        cmds.iter()
            .filter_map(|c| match c {
                Command::Send { to, msg } => Some((*to, msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn probes_every_peer_once_per_cycle() {
        let mut s = swim(0, 4);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3 {
            let mut out = Vec::new();
            s.tick(&mut out);
            for (to, msg) in sends(&out) {
                if matches!(msg, GossipMsg::Ping { .. }) {
                    seen.insert(to);
                }
            }
            // Answer every ping so nothing escalates.
            for (to, msg) in sends(&out.clone()) {
                if let GossipMsg::Ping { seq, .. } = msg {
                    let ack = GossipMsg::Ack {
                        seq: *seq,
                        target: to,
                        updates: Arc::from(&[][..]),
                    };
                    let mut o2 = Vec::new();
                    s.on_message(to, &ack, &mut o2);
                    assert!(o2.is_empty(), "plain ack should be silent");
                }
            }
        }
        assert_eq!(seen.len(), 3, "one cycle probes all three peers");
    }

    #[test]
    fn unanswered_probe_escalates_to_ping_req_then_suspect_then_confirm() {
        let mut s = swim(0, 4);
        let mut out = Vec::new();
        s.tick(&mut out); // ping some target
        let target = match sends(&out)[0] {
            (to, GossipMsg::Ping { .. }) => to,
            other => panic!("expected ping, got {other:?}"),
        };
        out.clear();
        s.tick(&mut out); // escalate to ping-req
        let reqs: Vec<_> = sends(&out)
            .into_iter()
            .filter(|(_, m)| matches!(m, GossipMsg::PingReq { .. }))
            .collect();
        assert_eq!(reqs.len(), 2, "k = 2 proxies asked");
        for (to, msg) in &reqs {
            assert_ne!(*to, target);
            match msg {
                GossipMsg::PingReq { target: t, .. } => assert_eq!(*t, target),
                _ => unreachable!(),
            }
        }
        out.clear();
        s.tick(&mut out); // still nothing: suspect
        assert!(out.contains(&Command::Suspect { node: target }));
        assert_eq!(s.peer_state(target).unwrap().0, PeerState::Suspect);
        // Suspicion expires after suspect_ticks further periods.
        let mut confirmed = false;
        for _ in 0..cfg().suspect_ticks {
            out.clear();
            s.tick(&mut out);
            confirmed |= out.contains(&Command::Confirm { node: target });
        }
        assert!(confirmed, "suspicion must confirm after the timeout");
        assert_eq!(s.peer_state(target).unwrap().0, PeerState::Dead);
    }

    #[test]
    fn relayed_ack_through_a_proxy_averts_suspicion() {
        let mut a = swim(0, 4);
        let mut out = Vec::new();
        a.tick(&mut out);
        let (target, seq) = match sends(&out)[0] {
            (to, GossipMsg::Ping { seq, .. }) => (to, *seq),
            other => panic!("expected ping, got {other:?}"),
        };
        out.clear();
        a.tick(&mut out); // ping-reqs go out
        let (proxy, preq) = sends(&out)
            .into_iter()
            .find_map(|(to, m)| match m {
                GossipMsg::PingReq { .. } => Some((to, m.clone())),
                _ => None,
            })
            .expect("a ping-req");
        // The proxy pings the target, the target acks, the proxy
        // relays the ack back to the origin.
        let mut p = Swim::new(cfg(), proxy, (0..4).map(NodeId));
        let mut pout = Vec::new();
        p.on_message(NodeId(0), &preq, &mut pout);
        let (ping_to, proxy_ping) = match &sends(&pout)[0] {
            (to, m @ GossipMsg::Ping { .. }) => (*to, (*m).clone()),
            other => panic!("proxy must ping, got {other:?}"),
        };
        assert_eq!(ping_to, target);
        let mut t = Swim::new(cfg(), target, (0..4).map(NodeId));
        let mut tout = Vec::new();
        t.on_message(proxy, &proxy_ping, &mut tout);
        let ack = match &sends(&tout)[0] {
            (_, m @ GossipMsg::Ack { .. }) => (*m).clone(),
            other => panic!("target must ack, got {other:?}"),
        };
        pout.clear();
        p.on_message(target, &ack, &mut pout);
        let relayed = match &sends(&pout)[0] {
            (to, m @ GossipMsg::Ack { .. }) => {
                assert_eq!(*to, NodeId(0));
                (*m).clone()
            }
            other => panic!("proxy must relay the ack, got {other:?}"),
        };
        match &relayed {
            GossipMsg::Ack { seq: s2, target: t2, .. } => {
                assert_eq!(*s2, seq, "relay echoes the origin's seq");
                assert_eq!(*t2, target);
            }
            _ => unreachable!(),
        }
        out.clear();
        a.on_message(proxy, &relayed, &mut out);
        // No suspicion on the next tick.
        out.clear();
        a.tick(&mut out);
        assert!(
            !out.iter()
                .any(|c| matches!(c, Command::Suspect { node } if *node == target)),
            "relayed ack must avert suspicion: {out:?}"
        );
        assert_eq!(a.peer_state(target).unwrap().0, PeerState::Alive);
    }

    #[test]
    fn incarnation_precedence() {
        let mut s = swim(0, 4);
        let n = NodeId(1);
        let upd = |incarnation, state| Update {
            node: n,
            incarnation,
            state,
        };
        let mut out = Vec::new();
        // Suspect{0} overrides Alive{0} (>=).
        s.apply_update(upd(0, PeerState::Suspect), &mut out);
        assert_eq!(s.peer_state(n).unwrap(), (PeerState::Suspect, 0));
        // Alive{0} does NOT override Suspect{0} (needs >).
        s.apply_update(upd(0, PeerState::Alive), &mut out);
        assert_eq!(s.peer_state(n).unwrap().0, PeerState::Suspect);
        // Alive{1} clears Suspect{0}.
        out.clear();
        s.apply_update(upd(1, PeerState::Alive), &mut out);
        assert_eq!(s.peer_state(n).unwrap(), (PeerState::Alive, 1));
        assert!(out.contains(&Command::ClearSuspect { node: n }));
        // Suspect{0} is stale against Alive{1}.
        s.apply_update(upd(0, PeerState::Suspect), &mut out);
        assert_eq!(s.peer_state(n).unwrap().0, PeerState::Alive);
        // Dead overrides everything and is final.
        out.clear();
        s.apply_update(upd(0, PeerState::Dead), &mut out);
        assert_eq!(s.peer_state(n).unwrap().0, PeerState::Dead);
        assert!(out.contains(&Command::Confirm { node: n }));
        s.apply_update(upd(7, PeerState::Alive), &mut out);
        assert_eq!(s.peer_state(n).unwrap().0, PeerState::Dead);
    }

    #[test]
    fn suspicion_about_self_is_refuted() {
        let mut s = swim(0, 4);
        let mut out = Vec::new();
        s.apply_update(
            Update {
                node: NodeId(0),
                incarnation: 0,
                state: PeerState::Suspect,
            },
            &mut out,
        );
        assert_eq!(s.incarnation(), 1);
        assert!(out.contains(&Command::Refute { incarnation: 1 }));
        // The refutation spreads on the next message.
        let pig = s.piggyback();
        assert!(pig.iter().any(|u| u.node == NodeId(0)
            && u.incarnation == 1
            && u.state == PeerState::Alive));
        // The refuting Alive{1} clears suspicion at another member.
        let mut other = swim(1, 4);
        let mut o2 = Vec::new();
        other.apply_update(
            Update {
                node: NodeId(0),
                incarnation: 0,
                state: PeerState::Suspect,
            },
            &mut o2,
        );
        assert_eq!(other.peer_state(NodeId(0)).unwrap().0, PeerState::Suspect);
        other.apply_update(pig[0], &mut o2);
        assert_eq!(other.peer_state(NodeId(0)).unwrap().0, PeerState::Alive);
    }

    #[test]
    fn readmit_outruns_stale_tombstone_gossip() {
        let mut s = swim(0, 4);
        let n = NodeId(2);
        s.remove(n);
        assert_eq!(s.peer_state(n).unwrap().0, PeerState::Dead);
        // Stale gossip cannot resurrect a tombstone...
        let mut out = Vec::new();
        s.apply_update(
            Update {
                node: n,
                incarnation: 0,
                state: PeerState::Alive,
            },
            &mut out,
        );
        assert_eq!(s.peer_state(n).unwrap().0, PeerState::Dead);
        // ...only the host's readmit does, at a fresh incarnation that
        // beats the old Dead/Suspect assertions still circulating.
        s.readmit(n);
        let (state, inc) = s.peer_state(n).unwrap();
        assert_eq!(state, PeerState::Alive);
        assert_eq!(inc, 1);
        s.apply_update(
            Update {
                node: n,
                incarnation: 0,
                state: PeerState::Suspect,
            },
            &mut out,
        );
        assert_eq!(s.peer_state(n).unwrap().0, PeerState::Alive);
    }

    #[test]
    fn same_seed_same_command_stream() {
        let run = || {
            let mut s = swim(0, 8);
            let mut log = Vec::new();
            for _ in 0..20 {
                let mut out = Vec::new();
                s.tick(&mut out);
                log.extend(out);
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn piggyback_respects_budget_and_cap() {
        let mut s = swim(0, 4);
        s.queue_update(Update {
            node: NodeId(1),
            incarnation: 0,
            state: PeerState::Suspect,
        });
        for _ in 0..cfg().update_sends {
            let pig = s.piggyback();
            assert_eq!(pig.len(), 1);
        }
        assert!(s.piggyback().is_empty(), "budget exhausted");
    }
}
