//! Causal request attribution: why was each lost request lost?
//!
//! The tracing module records *what happened*; this module answers the
//! paper's real question — *which communication-architecture mechanism
//! ate the availability*. Every request the cluster scores as lost
//! (connection failure, refusal, or deadline miss) is classified into
//! exactly one [`RootCause`], using causal evidence carried through the
//! simulation as [`AttrEvent`]s: §5.4 broadcast-freeze windows, TCP
//! retransmit/abort activity, membership-exclusion flushes, gray-link
//! losses, fault windows, and admission backlog.
//!
//! The design mirrors the trace pipeline so the parallel driver stays
//! byte-identical: components emit `Effect::Attr(AttrEvent)` into
//! their ordinary effect buffers; the cluster facade applies them (and
//! its own lifecycle events) in exact `(time, seq)` order into one
//! [`AttrState`]. Nothing here consults wall clock or iterates a hash
//! map for output, so the same event order always yields the same
//! report.
//!
//! A conservation law makes the attribution trustworthy: the per-cause
//! loss counts must sum exactly to the run's scored failures, and the
//! per-cause unavailable seconds (plus the in-flight-at-end residual)
//! must sum to `(1 − AA) · T`. [`AttrReport::render_text`] checks both
//! and prints a machine-checkable verdict line.

use std::collections::HashMap;

use simnet::SimTime;

/// Number of root causes (the width of every per-cause array).
pub const NCAUSES: usize = 6;

/// The exclusive root cause assigned to one lost or late request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootCause {
    /// The request hit a node inside a machine/process fault window
    /// (crash, hang, kill): refused connections, vanished replies.
    FaultKill = 0,
    /// A TCP retransmission or abort stalled the request's path
    /// (go-back-N recovery, RTO backoff, connection abort).
    RetransmitStall = 1,
    /// The §5.4 broadcast freeze: the serving node was blocked on a
    /// stalled send/broadcast and the request sat in (or overflowed)
    /// the deferred queue.
    BroadcastFreeze = 2,
    /// Membership exclusion lag: the request was forwarded toward a
    /// peer that had failed but was not yet excluded, and died waiting
    /// for the detector.
    DetectionLag = 3,
    /// A gray link silently ate frames on the request's path (no
    /// fail-stop signal, so nothing upstream reacted).
    GrayLoss = 4,
    /// Plain overload queueing: admission backlog, no fault evidence.
    Overload = 5,
}

/// All causes, in index order (for iteration and tables).
pub const CAUSES: [RootCause; NCAUSES] = [
    RootCause::FaultKill,
    RootCause::RetransmitStall,
    RootCause::BroadcastFreeze,
    RootCause::DetectionLag,
    RootCause::GrayLoss,
    RootCause::Overload,
];

impl RootCause {
    /// Human label used in tables and goldens.
    pub fn label(self) -> &'static str {
        match self {
            RootCause::FaultKill => "fault-window kill",
            RootCause::RetransmitStall => "retransmit/abort stall",
            RootCause::BroadcastFreeze => "broadcast freeze",
            RootCause::DetectionLag => "detection lag",
            RootCause::GrayLoss => "gray-link loss",
            RootCause::Overload => "overload queueing",
        }
    }

    /// Short machine key (JSON/metrics friendly).
    pub fn key(self) -> &'static str {
        match self {
            RootCause::FaultKill => "fault_kill",
            RootCause::RetransmitStall => "retransmit_stall",
            RootCause::BroadcastFreeze => "broadcast_freeze",
            RootCause::DetectionLag => "detection_lag",
            RootCause::GrayLoss => "gray_loss",
            RootCause::Overload => "overload",
        }
    }
}

/// One causal evidence or lifecycle record, applied in event order.
///
/// Evidence variants are emitted by press/transport through their
/// effect buffers; lifecycle variants are recorded by the cluster
/// facade at the exact points where requests are scored, so per-cause
/// counts stay conserved against the client pool by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrEvent {
    /// A §5.4 freeze began on this node (send/broadcast would block).
    StallBegin,
    /// The freeze on this node cleared (writable again, or the blocked
    /// peer was excluded, or the process restarted).
    StallEnd,
    /// An accepted client request was parked in the deferred queue
    /// because the node was frozen.
    Deferred {
        /// The parked request.
        req_id: u64,
    },
    /// The request was forwarded to the peer owning its file.
    Forwarded {
        /// The forwarded request.
        req_id: u64,
        /// Service-owner peer node index.
        peer: u32,
    },
    /// The pending-forward timer expired before the peer replied.
    ForwardTimeout {
        /// The abandoned request.
        req_id: u64,
    },
    /// A pending forward was flushed because its peer was excluded
    /// from the membership.
    ForwardFlushed {
        /// The flushed request.
        req_id: u64,
        /// `true` when the exclusion came from a transport-level break
        /// (abort/reset); `false` when a failure detector excluded it.
        abort: bool,
    },
    /// The transport retransmitted on this node (RTO fired).
    Retransmit,
    /// The transport aborted a connection on this node.
    Abort,
    /// The fabric silently dropped a frame sent by this node (gray
    /// fault — no fail-stop signal).
    GrayLoss,
    /// A machine/process fault window opened on this node.
    FaultBegin,
    /// A machine/process fault window closed on this node.
    FaultEnd,
    /// The node accepted this request (scored by the client pool).
    Accepted {
        /// The accepted request.
        req_id: u64,
    },
    /// The request completed successfully.
    Completed {
        /// The finished request.
        req_id: u64,
    },
    /// The arrival was scored as a connection failure (node down or
    /// frozen at the listener).
    ConnFailed,
    /// The arrival was refused (process not running).
    Refused,
    /// The accept was dropped because the deferred queue overflowed
    /// during a freeze.
    DroppedOverflow,
    /// The accept was dropped by admission control (backlog bound).
    DroppedBacklog,
    /// The request's client-side deadline fired. Classifies and
    /// removes the request if it is still open; ignored otherwise.
    DeadlineMiss {
        /// The request whose deadline fired.
        req_id: u64,
    },
}

/// Request flags accumulated between accept and scoring.
const F_DEFERRED: u8 = 1;
const F_FWD_TIMEOUT: u8 = 2;
const F_FLUSH_ABORT: u8 = 4;
const F_FLUSH_DETECT: u8 = 8;

/// Sentinel for "no forward peer".
const NO_PEER: u32 = u32::MAX;

/// Causal record of one open (accepted, unresolved) request.
#[derive(Debug, Clone, Copy)]
struct ReqAttr {
    node: u32,
    issued: SimTime,
    fwd_peer: u32,
    deferred_at: Option<SimTime>,
    forwarded_at: Option<SimTime>,
    evidence_at: Option<SimTime>,
    flags: u8,
}

/// Per-node causal evidence, maintained in event order. Interval
/// evidence only ever needs "does any window overlap `[issued, now]`",
/// which reduces to *open now, or last closed end ≥ issued* — O(1)
/// space per node regardless of fault count.
#[derive(Debug, Clone, Default)]
struct NodeEvidence {
    fault_depth: u32,
    fault_last_end: Option<SimTime>,
    stall_depth: u32,
    stall_last_end: Option<SimTime>,
    last_retransmit: Option<SimTime>,
    last_abort: Option<SimTime>,
    last_gray: Option<SimTime>,
}

impl NodeEvidence {
    fn fault_overlaps(&self, since: SimTime) -> bool {
        self.fault_depth > 0 || self.fault_last_end.is_some_and(|e| e >= since)
    }

    fn stall_overlaps(&self, since: SimTime) -> bool {
        self.stall_depth > 0 || self.stall_last_end.is_some_and(|e| e >= since)
    }

    fn retransmit_since(&self, since: SimTime) -> bool {
        self.last_retransmit.is_some_and(|t| t >= since)
            || self.last_abort.is_some_and(|t| t >= since)
    }

    fn gray_since(&self, since: SimTime) -> bool {
        self.last_gray.is_some_and(|t| t >= since)
    }
}

/// Critical-path split of one deadline-missed request: time from issue
/// to the first causal transition (defer/forward), from there to the
/// decisive evidence (timeout/flush), and from the evidence to the
/// deadline. All in nanoseconds.
type StageSample = [u64; 3];

/// The run-wide attribution accumulator, owned by the cluster facade.
///
/// All mutation goes through [`AttrState::record`], called in the
/// exact `(time, seq)` order of the sequential event loop (the
/// parallel driver replays the same calls facade-side), so the final
/// state is byte-identical across `--jobs` and `--sim-threads`.
#[derive(Debug)]
pub struct AttrState {
    nodes: Vec<NodeEvidence>,
    open: HashMap<u64, ReqAttr>,
    counts: [u64; NCAUSES],
    /// Losses per whole simulated second, per cause.
    timeline: Vec<[u64; NCAUSES]>,
    /// Critical-path samples for deadline misses, per cause.
    samples: [Vec<StageSample>; NCAUSES],
}

impl AttrState {
    /// An empty accumulator for an `n`-node cluster.
    pub fn new(n: usize) -> AttrState {
        AttrState {
            nodes: vec![NodeEvidence::default(); n],
            open: HashMap::new(),
            counts: [0; NCAUSES],
            timeline: Vec::new(),
            samples: Default::default(),
        }
    }

    /// Applies one event observed on `node` at `now`.
    pub fn record(&mut self, now: SimTime, node: usize, ev: AttrEvent) {
        match ev {
            AttrEvent::StallBegin => self.nodes[node].stall_depth += 1,
            AttrEvent::StallEnd => {
                let ne = &mut self.nodes[node];
                ne.stall_depth = ne.stall_depth.saturating_sub(1);
                if ne.stall_depth == 0 {
                    ne.stall_last_end = Some(now);
                }
            }
            AttrEvent::Deferred { req_id } => {
                if let Some(r) = self.open.get_mut(&req_id) {
                    r.flags |= F_DEFERRED;
                    if r.deferred_at.is_none() {
                        r.deferred_at = Some(now);
                    }
                }
            }
            AttrEvent::Forwarded { req_id, peer } => {
                if let Some(r) = self.open.get_mut(&req_id) {
                    r.fwd_peer = peer;
                    if r.forwarded_at.is_none() {
                        r.forwarded_at = Some(now);
                    }
                }
            }
            AttrEvent::ForwardTimeout { req_id } => {
                if let Some(r) = self.open.get_mut(&req_id) {
                    r.flags |= F_FWD_TIMEOUT;
                    if r.evidence_at.is_none() {
                        r.evidence_at = Some(now);
                    }
                }
            }
            AttrEvent::ForwardFlushed { req_id, abort } => {
                if let Some(r) = self.open.get_mut(&req_id) {
                    r.flags |= if abort { F_FLUSH_ABORT } else { F_FLUSH_DETECT };
                    if r.evidence_at.is_none() {
                        r.evidence_at = Some(now);
                    }
                }
            }
            AttrEvent::Retransmit => self.nodes[node].last_retransmit = Some(now),
            AttrEvent::Abort => self.nodes[node].last_abort = Some(now),
            AttrEvent::GrayLoss => self.nodes[node].last_gray = Some(now),
            AttrEvent::FaultBegin => self.nodes[node].fault_depth += 1,
            AttrEvent::FaultEnd => {
                let ne = &mut self.nodes[node];
                ne.fault_depth = ne.fault_depth.saturating_sub(1);
                if ne.fault_depth == 0 {
                    ne.fault_last_end = Some(now);
                }
            }
            AttrEvent::Accepted { req_id } => {
                self.open.insert(
                    req_id,
                    ReqAttr {
                        node: node as u32,
                        issued: now,
                        fwd_peer: NO_PEER,
                        deferred_at: None,
                        forwarded_at: None,
                        evidence_at: None,
                        flags: 0,
                    },
                );
            }
            AttrEvent::Completed { req_id } => {
                self.open.remove(&req_id);
            }
            AttrEvent::ConnFailed | AttrEvent::Refused => {
                // Only a machine/process fault takes the listener away
                // (links dropping do not stop accepts), so both score
                // as fault-window kills.
                self.lose(now, RootCause::FaultKill);
            }
            AttrEvent::DroppedOverflow => self.lose(now, RootCause::BroadcastFreeze),
            AttrEvent::DroppedBacklog => self.lose(now, RootCause::Overload),
            AttrEvent::DeadlineMiss { req_id } => {
                if let Some(r) = self.open.remove(&req_id) {
                    let cause = self.classify(now, &r);
                    self.lose(now, cause);
                    self.sample(now, cause, &r);
                }
            }
        }
    }

    /// The exclusive-cause decision tree for a deadline miss, checked
    /// in order of causal specificity (direct fault evidence first,
    /// overload as the evidence-free fallback).
    fn classify(&self, now: SimTime, r: &ReqAttr) -> RootCause {
        let _ = now;
        let ne = &self.nodes[r.node as usize];
        let peer = (r.fwd_peer != NO_PEER).then(|| &self.nodes[r.fwd_peer as usize]);
        let since = r.issued;
        if ne.fault_overlaps(since) {
            return RootCause::FaultKill;
        }
        if r.flags & F_FLUSH_ABORT != 0 {
            return RootCause::RetransmitStall;
        }
        if r.flags & F_DEFERRED != 0 || ne.stall_overlaps(since) {
            return RootCause::BroadcastFreeze;
        }
        if ne.gray_since(since) || peer.is_some_and(|p| p.gray_since(since)) {
            return RootCause::GrayLoss;
        }
        if r.flags & (F_FWD_TIMEOUT | F_FLUSH_DETECT) != 0 {
            return RootCause::DetectionLag;
        }
        if peer.is_some_and(|p| p.fault_overlaps(since)) {
            return RootCause::DetectionLag;
        }
        if ne.retransmit_since(since) || peer.is_some_and(|p| p.retransmit_since(since)) {
            return RootCause::RetransmitStall;
        }
        RootCause::Overload
    }

    fn lose(&mut self, now: SimTime, cause: RootCause) {
        self.counts[cause as usize] += 1;
        let sec = (now.as_nanos() / 1_000_000_000) as usize;
        if self.timeline.len() <= sec {
            self.timeline.resize(sec + 1, [0; NCAUSES]);
        }
        self.timeline[sec][cause as usize] += 1;
    }

    fn sample(&mut self, now: SimTime, cause: RootCause, r: &ReqAttr) {
        let t1 = r
            .deferred_at
            .or(r.forwarded_at)
            .unwrap_or(now)
            .min(now);
        let t2 = r.evidence_at.unwrap_or(now).max(t1).min(now);
        let pre = t1.saturating_since(r.issued).as_nanos();
        let mid = t2.saturating_since(t1).as_nanos();
        let tail = now.saturating_since(t2).as_nanos();
        self.samples[cause as usize].push([pre, mid, tail]);
    }

    /// Requests still open (in flight) — the end-of-run residual.
    pub fn open_requests(&self) -> u64 {
        self.open.len() as u64
    }

    /// Freezes the accumulator into report data.
    pub fn finish(self) -> AttrReport {
        AttrReport {
            counts: self.counts,
            residual: self.open.len() as u64,
            timeline: self.timeline,
            samples: self.samples,
        }
    }
}

/// Client-pool totals the attribution is checked against.
#[derive(Debug, Clone, Copy)]
pub struct RunTotals {
    /// Requests issued.
    pub attempts: u64,
    /// Requests completed in time.
    pub successes: u64,
    /// Requests scored lost (connect failures + refusals + deadline
    /// misses) — the conservation target for the per-cause counts.
    pub failures: u64,
    /// Measured run length in seconds (the `T` of `(1 − AA) · T`).
    pub duration_s: f64,
}

/// Immutable per-run attribution result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrReport {
    /// Losses per root cause (index = `RootCause as usize`).
    pub counts: [u64; NCAUSES],
    /// Requests still in flight when the run ended.
    pub residual: u64,
    /// Losses per whole simulated second, per cause.
    pub timeline: Vec<[u64; NCAUSES]>,
    /// Critical-path samples (deadline misses), per cause.
    pub samples: [Vec<StageSample>; NCAUSES],
}

fn pctl(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl AttrReport {
    /// Total attributed losses across all causes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Checks both conservation laws against the pool totals:
    /// per-cause counts sum exactly to `failures`, and per-cause
    /// unavailable seconds (with the in-flight residual) sum to
    /// `(1 − AA) · T` within `1e-9`. Returns `(ok, detail)`.
    pub fn conservation(&self, t: &RunTotals) -> (bool, String) {
        let total = self.total();
        let count_ok = total == t.failures;
        let residual_ok = t.attempts == t.successes + t.failures + self.residual;
        let (time_ok, delta) = if t.attempts == 0 {
            (true, 0.0)
        } else {
            let per = |n: u64| n as f64 / t.attempts as f64 * t.duration_s;
            let sum: f64 = self.counts.iter().map(|&c| per(c)).sum::<f64>() + per(self.residual);
            let unavail = (1.0 - t.successes as f64 / t.attempts as f64) * t.duration_s;
            let delta = (sum - unavail).abs();
            (delta < 1e-9, delta)
        };
        let ok = count_ok && residual_ok && time_ok;
        let detail = format!(
            "losses {} == failures {} | attempts {} == successes {} + failures {} + in-flight {} \
             | time delta {delta:.3e}s < 1e-9",
            total, t.failures, t.attempts, t.successes, t.failures, self.residual,
        );
        (ok, detail)
    }

    /// Renders the full attribution section: Pareto table with
    /// unavailable-seconds shares, conservation verdicts, per-stage
    /// loss counts (when stage spans are known), and critical-path
    /// percentiles. Pure function of the report and inputs.
    pub fn render_text(
        &self,
        label: &str,
        totals: &RunTotals,
        stage_spans: &[(String, f64, f64)],
    ) -> String {
        let mut out = String::new();
        out.push_str(&format!("## Root-cause attribution — {label}\n\n"));
        let total = self.total();
        let per_sec = |n: u64| {
            if totals.attempts == 0 {
                0.0
            } else {
                n as f64 / totals.attempts as f64 * totals.duration_s
            }
        };

        // Pareto: causes by descending count, index order on ties.
        let mut order: Vec<usize> = (0..NCAUSES).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.counts[i]), i));
        out.push_str(&format!(
            "{:<24} {:>10} {:>8} {:>8} {:>14}\n",
            "cause", "lost", "share", "cum", "unavail_s"
        ));
        let mut cum = 0u64;
        for &i in &order {
            let c = self.counts[i];
            cum += c;
            let share = if total == 0 { 0.0 } else { c as f64 * 100.0 / total as f64 };
            let cshare = if total == 0 { 0.0 } else { cum as f64 * 100.0 / total as f64 };
            out.push_str(&format!(
                "{:<24} {:>10} {:>7.1}% {:>7.1}% {:>14.6}\n",
                CAUSES[i].label(),
                c,
                share,
                cshare,
                per_sec(c),
            ));
        }
        out.push_str(&format!(
            "{:<24} {:>10} {:>8} {:>8} {:>14.6}\n",
            "total attributed", total, "", "", per_sec(total)
        ));
        out.push_str(&format!(
            "{:<24} {:>10} {:>8} {:>8} {:>14.6}\n",
            "in-flight residual", self.residual, "", "", per_sec(self.residual)
        ));
        let unavail = if totals.attempts == 0 {
            0.0
        } else {
            (1.0 - totals.successes as f64 / totals.attempts as f64) * totals.duration_s
        };
        out.push_str(&format!("{:<24} {:>10} {:>8} {:>8} {:>14.6}\n", "(1-AA)*T", "", "", "", unavail));

        let (ok, detail) = self.conservation(totals);
        out.push_str(&format!(
            "conservation: {} ({})\n",
            if ok { "OK" } else { "FAIL" },
            detail
        ));

        if !stage_spans.is_empty() && !self.timeline.is_empty() {
            out.push_str(&format!("\n{:<24}", "losses by stage"));
            for (name, _, _) in stage_spans {
                out.push_str(&format!(" {name:>8}"));
            }
            out.push('\n');
            for (ci, cause) in CAUSES.iter().enumerate() {
                out.push_str(&format!("{:<24}", cause.label()));
                for (_, s, e) in stage_spans {
                    let mut n = 0u64;
                    for (sec, bucket) in self.timeline.iter().enumerate() {
                        let mid = sec as f64 + 0.5;
                        if mid >= *s && mid < *e {
                            n += bucket[ci];
                        }
                    }
                    out.push_str(&format!(" {n:>8}"));
                }
                out.push('\n');
            }
        }

        let any_samples = self.samples.iter().any(|s| !s.is_empty());
        if any_samples {
            out.push_str(&format!(
                "\ncritical path (deadline misses, ms)\n{:<24} {:>6} {:>24} {:>24} {:>24}\n",
                "cause", "n", "to-defer/forward", "to-evidence", "to-deadline"
            ));
            for (ci, cause) in CAUSES.iter().enumerate() {
                let s = &self.samples[ci];
                if s.is_empty() {
                    continue;
                }
                let mut cols: [Vec<u64>; 3] = Default::default();
                for v in s {
                    for (k, col) in cols.iter_mut().enumerate() {
                        col.push(v[k]);
                    }
                }
                for col in cols.iter_mut() {
                    col.sort_unstable();
                }
                let fmt_col = |col: &[u64]| {
                    format!(
                        "{:>7.1}/{:>7.1}/{:>7.1}",
                        ms(pctl(col, 50)),
                        ms(pctl(col, 95)),
                        ms(*col.last().unwrap_or(&0)),
                    )
                };
                out.push_str(&format!(
                    "{:<24} {:>6} {:>24} {:>24} {:>24}\n",
                    cause.label(),
                    s.len(),
                    fmt_col(&cols[0]),
                    fmt_col(&cols[1]),
                    fmt_col(&cols[2]),
                ));
            }
            out.push_str("(p50/p95/max per segment)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn deadline_in_fault_window_is_a_fault_kill() {
        let mut a = AttrState::new(2);
        a.record(t(1), 0, AttrEvent::Accepted { req_id: 7 });
        a.record(t(2), 0, AttrEvent::FaultBegin);
        a.record(t(7), 0, AttrEvent::DeadlineMiss { req_id: 7 });
        let r = a.finish();
        assert_eq!(r.counts[RootCause::FaultKill as usize], 1);
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn closed_fault_window_still_overlaps_older_requests() {
        let mut a = AttrState::new(1);
        a.record(t(1), 0, AttrEvent::Accepted { req_id: 1 });
        a.record(t(2), 0, AttrEvent::FaultBegin);
        a.record(t(3), 0, AttrEvent::FaultEnd);
        a.record(t(7), 0, AttrEvent::DeadlineMiss { req_id: 1 });
        // A request issued *after* the window closed is not blamed on it.
        a.record(t(4), 0, AttrEvent::Accepted { req_id: 2 });
        a.record(t(10), 0, AttrEvent::DeadlineMiss { req_id: 2 });
        let r = a.finish();
        assert_eq!(r.counts[RootCause::FaultKill as usize], 1);
        assert_eq!(r.counts[RootCause::Overload as usize], 1);
    }

    #[test]
    fn deferred_requests_blame_the_broadcast_freeze() {
        let mut a = AttrState::new(1);
        a.record(t(1), 0, AttrEvent::Accepted { req_id: 3 });
        a.record(t(1), 0, AttrEvent::StallBegin);
        a.record(t(1), 0, AttrEvent::Deferred { req_id: 3 });
        a.record(t(2), 0, AttrEvent::StallEnd);
        a.record(t(7), 0, AttrEvent::DeadlineMiss { req_id: 3 });
        let r = a.finish();
        assert_eq!(r.counts[RootCause::BroadcastFreeze as usize], 1);
    }

    #[test]
    fn forward_to_faulted_peer_is_detection_lag_but_abort_flush_is_retransmit() {
        let mut a = AttrState::new(3);
        // req 1: forwarded to peer 2 which is in a fault window, timer expires.
        a.record(t(1), 0, AttrEvent::Accepted { req_id: 1 });
        a.record(t(1), 0, AttrEvent::Forwarded { req_id: 1, peer: 2 });
        a.record(t(2), 2, AttrEvent::FaultBegin);
        a.record(t(5), 0, AttrEvent::ForwardTimeout { req_id: 1 });
        a.record(t(7), 0, AttrEvent::DeadlineMiss { req_id: 1 });
        // req 2: flushed by a transport abort.
        a.record(t(1), 1, AttrEvent::Accepted { req_id: 2 });
        a.record(t(1), 1, AttrEvent::Forwarded { req_id: 2, peer: 0 });
        a.record(t(4), 1, AttrEvent::ForwardFlushed { req_id: 2, abort: true });
        a.record(t(7), 1, AttrEvent::DeadlineMiss { req_id: 2 });
        let r = a.finish();
        assert_eq!(r.counts[RootCause::DetectionLag as usize], 1);
        assert_eq!(r.counts[RootCause::RetransmitStall as usize], 1);
    }

    #[test]
    fn gray_evidence_beats_retransmit_evidence() {
        let mut a = AttrState::new(2);
        a.record(t(1), 0, AttrEvent::Accepted { req_id: 9 });
        a.record(t(2), 0, AttrEvent::Retransmit);
        a.record(t(3), 0, AttrEvent::GrayLoss);
        a.record(t(7), 0, AttrEvent::DeadlineMiss { req_id: 9 });
        let r = a.finish();
        assert_eq!(r.counts[RootCause::GrayLoss as usize], 1);
    }

    #[test]
    fn completed_requests_are_never_classified() {
        let mut a = AttrState::new(1);
        a.record(t(1), 0, AttrEvent::Accepted { req_id: 4 });
        a.record(t(2), 0, AttrEvent::Completed { req_id: 4 });
        a.record(t(7), 0, AttrEvent::DeadlineMiss { req_id: 4 });
        assert_eq!(a.open_requests(), 0);
        assert_eq!(a.finish().total(), 0);
    }

    #[test]
    fn conservation_holds_and_detects_mismatch() {
        let mut a = AttrState::new(1);
        a.record(t(1), 0, AttrEvent::ConnFailed);
        a.record(t(2), 0, AttrEvent::Refused);
        a.record(t(3), 0, AttrEvent::DroppedBacklog);
        a.record(t(4), 0, AttrEvent::Accepted { req_id: 1 });
        let r = a.finish();
        assert_eq!(r.residual, 1);
        let good = RunTotals { attempts: 5, successes: 1, failures: 3, duration_s: 10.0 };
        assert!(r.conservation(&good).0, "{}", r.conservation(&good).1);
        let bad = RunTotals { attempts: 5, successes: 1, failures: 4, duration_s: 10.0 };
        assert!(!r.conservation(&bad).0);
    }

    #[test]
    fn render_text_is_deterministic_and_conserved() {
        let mut a = AttrState::new(2);
        a.record(t(1), 0, AttrEvent::Accepted { req_id: 1 });
        a.record(t(1), 0, AttrEvent::StallBegin);
        a.record(t(1), 0, AttrEvent::Deferred { req_id: 1 });
        a.record(t(7), 0, AttrEvent::DeadlineMiss { req_id: 1 });
        a.record(t(8), 0, AttrEvent::ConnFailed);
        let r = a.finish();
        let totals = RunTotals { attempts: 10, successes: 8, failures: 2, duration_s: 20.0 };
        let spans = vec![("A".to_string(), 0.0, 5.0), ("B".to_string(), 5.0, 20.0)];
        let s1 = r.render_text("test run", &totals, &spans);
        let s2 = r.render_text("test run", &totals, &spans);
        assert_eq!(s1, s2);
        assert!(s1.contains("conservation: OK"), "{s1}");
        assert!(s1.contains("broadcast freeze"));
        assert!(s1.contains("losses by stage"));
    }
}
