//! Sim-time observability for the cluster simulation.
//!
//! The paper's whole argument rests on *where time goes* inside the
//! cluster during a fault — detection latency, reconfiguration, stream
//! stalls — so this crate gives every layer of the stack a shared
//! vocabulary for saying so:
//!
//! * [`event`] — structured spans and instants stamped with
//!   **simulated** time (never wall-clock), carrying node / fault /
//!   version attributes. Because every timestamp comes from the
//!   discrete-event engine's clock, a trace is byte-identical for a
//!   given seed no matter how many worker threads produced it.
//! * [`sink`] — where events go while a run executes. The disabled
//!   sink is a unit enum variant, so a traced call site costs one
//!   predictable branch when tracing is off.
//! * [`metrics`] — a registry of named counters, gauges and
//!   log-bucketed histograms snapshotted once per run (retransmits,
//!   pin failures, cache hits, per-node CPU busy fraction, ...).
//! * [`export`] — Chrome-trace JSON (loadable in `chrome://tracing`
//!   or [Perfetto](https://ui.perfetto.dev), with sim-time mapped to
//!   trace microseconds), a JSONL event log, and a plain-text metrics
//!   summary. All exporters format through integer math and ordered
//!   maps so output bytes are reproducible.
//! * [`json`] — a dependency-free JSON value type (sorted-key,
//!   byte-deterministic writer + strict parser) shared by the bench
//!   harness (`BENCH_repro.json`) and the report generator.
//! * [`attr`] — causal root-cause attribution: every lost or late
//!   request is classified into exactly one communication-architecture
//!   cause (fault kill, retransmit stall, broadcast freeze, detection
//!   lag, gray loss, overload), conservation-checked against the
//!   client pool's scores.
//!
//! The crate depends only on `simnet` (for [`simnet::SimTime`]); the
//! transports, PRESS, and the composition layer all emit into it.

pub mod attr;
pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod sink;

pub use attr::{AttrEvent, AttrReport, AttrState, RootCause, RunTotals, CAUSES, NCAUSES};
pub use event::{Arg, ArgValue, EventKind, TraceEvent, TID_CLIENTS, TID_CLUSTER, TID_STAGES};
pub use export::{chrome_trace_json, jsonl_log, RunTrace, JSONL_SCHEMA, JSONL_VERSION};
pub use metrics::{Histogram, MetricsRegistry};
pub use sink::{TraceConfig, TraceSink};
