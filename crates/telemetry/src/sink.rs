//! Where events go while a run executes.
//!
//! The design constraint is the acceptance bar "near-free when
//! disabled": the fault-free hot path must not pay for tracing it is
//! not doing. [`TraceSink::Off`] is a unit variant, so the per-event
//! cost when disabled is one branch on a discriminant that the
//! emitting layer has already checked via [`TraceSink::enabled`] (or a
//! cached `bool`) *before* constructing the event at all.

use crate::event::TraceEvent;

/// Run-level tracing configuration, carried by the cluster config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When false no sink exists and no layer emits.
    pub enabled: bool,
    /// Trace every `request_sample`-th client request as a lifecycle
    /// span (arrival → reply). `0` disables request spans entirely.
    /// Sampling keeps paper-scale traces (millions of requests) at a
    /// size Perfetto can open while still showing the latency texture
    /// around a fault.
    pub request_sample: u64,
}

impl TraceConfig {
    /// Tracing off (the default; the fault-free benchmark path).
    pub const OFF: TraceConfig = TraceConfig {
        enabled: false,
        request_sample: 0,
    };

    /// The standard traced profile used by `repro -- <target> --trace`:
    /// everything on, request lifecycle sampled 1-in-128.
    pub const STANDARD: TraceConfig = TraceConfig {
        enabled: true,
        request_sample: 128,
    };
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::OFF
    }
}

/// The per-run event sink.
#[derive(Debug, Default)]
pub enum TraceSink {
    /// Tracing disabled: [`TraceSink::emit`] is a no-op.
    #[default]
    Off,
    /// Tracing enabled: events accumulate in order of emission. Boxed
    /// so the disabled variant stays pointer-sized inside `ClusterSim`.
    On(Box<Vec<TraceEvent>>),
}

impl TraceSink {
    /// A sink matching `config.enabled`.
    pub fn new(config: TraceConfig) -> Self {
        if config.enabled {
            TraceSink::On(Box::default())
        } else {
            TraceSink::Off
        }
    }

    /// Whether events will be kept. Emitting layers check this first
    /// so the disabled path never constructs an event.
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self, TraceSink::On(_))
    }

    /// Records one event (no-op when disabled).
    #[inline]
    pub fn emit(&mut self, ev: TraceEvent) {
        if let TraceSink::On(buf) = self {
            buf.push(ev);
        }
    }

    /// Records the event built by `f`, constructing it only when the
    /// sink is enabled — the disabled path pays one discriminant check.
    #[inline]
    pub fn emit_with(&mut self, f: impl FnOnce() -> TraceEvent) {
        if let TraceSink::On(buf) = self {
            buf.push(f());
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        match self {
            TraceSink::Off => 0,
            TraceSink::On(buf) => buf.len(),
        }
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the buffered events, leaving an enabled-but-empty sink
    /// (or `Off` untouched).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        match self {
            TraceSink::Off => Vec::new(),
            TraceSink::On(buf) => std::mem::take(buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimTime;

    #[test]
    fn off_sink_drops_events() {
        let mut sink = TraceSink::new(TraceConfig::OFF);
        assert!(!sink.enabled());
        sink.emit(TraceEvent::instant("x", "t", 0, SimTime::ZERO));
        assert!(sink.is_empty());
        assert!(sink.take().is_empty());
    }

    #[test]
    fn on_sink_keeps_emission_order() {
        let mut sink = TraceSink::new(TraceConfig::STANDARD);
        assert!(sink.enabled());
        sink.emit(TraceEvent::instant("a", "t", 0, SimTime::from_secs(2)));
        sink.emit(TraceEvent::instant("b", "t", 0, SimTime::from_secs(1)));
        let evs = sink.take();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "a");
        assert_eq!(evs[1].name, "b");
        // Still enabled after take.
        assert!(sink.enabled());
        assert!(sink.is_empty());
    }
}
