//! A per-run registry of named counters, gauges and histograms.
//!
//! Everything is stored in `BTreeMap`s keyed by name, so iteration —
//! and therefore every exported summary — is deterministically
//! ordered. Counters are integers, gauges are floats produced by
//! deterministic arithmetic (e.g. CPU busy fractions), histograms are
//! power-of-two log-bucketed integer distributions. None of it ever
//! reads the wall clock.

use std::collections::BTreeMap;

/// A log-bucketed distribution of `u64` samples (one bucket per bit
/// width, so 0, 1, 2–3, 4–7, ... 2^63–). Coarse, but enough to read
/// off tail behaviour, and merge- and order-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// sample (`q` in `[0, 1]`), or 0 when empty. Bucket resolution:
    /// the answer is exact to within a factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << (i - 1)).saturating_mul(2) - 1 };
            }
        }
        self.max
    }
}

/// The registry: every named metric one run produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `v` to the named counter (creating it at zero).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        if v != 0 || !self.counters.contains_key(name) {
            *self.counters.entry(name.to_string()).or_insert(0) += v;
        }
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records one sample into the named histogram.
    pub fn histogram_record(&mut self, name: &str, v: u64) {
        self.histograms.entry(name.to_string()).or_default().record(v);
    }

    /// Current value of a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the deterministic plain-text summary: counters, gauges,
    /// then histograms, each in name order.
    pub fn text_summary(&self, label: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== metrics: {label}");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} = {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge   {k} = {v:.4}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "hist    {k}: n={} min={} p50<={} p99<={} max={} mean={:.1}",
                h.count(),
                h.min(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max(),
                h.mean(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.counter("tcp.retransmissions"), 0);
        reg.counter_add("tcp.retransmissions", 2);
        reg.counter_add("tcp.retransmissions", 3);
        assert_eq!(reg.counter("tcp.retransmissions"), 5);
    }

    #[test]
    fn zero_counter_add_registers_the_name() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("via.pin_failures", 0);
        assert_eq!(reg.counters().count(), 1);
        assert_eq!(reg.counter("via.pin_failures"), 0);
    }

    #[test]
    fn histogram_tracks_extremes_and_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 4, 1000, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1015);
        // The median sample (4) lands in the 4–7 bucket.
        assert_eq!(h.quantile(0.5), 7);
        assert!(h.quantile(1.0) >= 1000);
    }

    #[test]
    fn summary_is_name_ordered() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("zeta", 1);
        reg.counter_add("alpha", 2);
        reg.gauge_set("cpu.node0", 0.25);
        reg.histogram_record("lat", 7);
        let s = reg.text_summary("test");
        let alpha = s.find("alpha").unwrap();
        let zeta = s.find("zeta").unwrap();
        assert!(alpha < zeta);
        assert!(s.contains("gauge   cpu.node0 = 0.2500"));
        assert!(s.contains("hist    lat: n=1"));
    }
}
