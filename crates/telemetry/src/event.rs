//! The trace event model: spans and instants on the simulated clock.
//!
//! Events are deliberately plain data — no interior mutability, no
//! global state — so a transport can hand one to the composition layer
//! through its ordinary effect buffer and equality/cloning keep
//! working in tests.

use std::borrow::Cow;

use simnet::{SimDuration, SimTime};

/// Pseudo-thread id for cluster-wide events (fault injection, process
/// lifecycle) that belong to no single node's lane.
pub const TID_CLUSTER: u32 = 90;
/// Pseudo-thread id for the client population's lane.
pub const TID_CLIENTS: u32 = 91;
/// Pseudo-thread id for the derived stage-A–G lane.
pub const TID_STAGES: u32 = 92;

/// Whether an event covers an interval or marks a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A closed interval `[start, start + dur]` — emitted once the end
    /// is known, so no begin/end pairing is ever needed downstream
    /// (Chrome's "complete" `ph: "X"` shape).
    Span {
        /// When the interval began.
        start: SimTime,
        /// How long it lasted.
        dur: SimDuration,
    },
    /// A point event (Chrome's `ph: "i"` instant).
    Instant {
        /// When it happened.
        at: SimTime,
    },
}

/// One attribute value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (counts, ids, sizes).
    U64(u64),
    /// Signed integer (deltas, offsets).
    I64(i64),
    /// Static or owned string (names, reasons).
    Str(Cow<'static, str>),
}

/// One `key: value` attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    /// Attribute name.
    pub key: &'static str,
    /// Attribute value.
    pub value: ArgValue,
}

/// One structured trace event, stamped with simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (Perfetto slice title).
    pub name: Cow<'static, str>,
    /// Category: `"tcp"`, `"via"`, `"press"`, `"fault"`, `"client"`,
    /// `"stage"` — Perfetto can filter on these.
    pub cat: &'static str,
    /// Lane: the node index for per-node events, or one of
    /// [`TID_CLUSTER`] / [`TID_CLIENTS`] / [`TID_STAGES`].
    pub tid: u32,
    /// Interval or point.
    pub kind: EventKind,
    /// Attributes (node, fault, version, ...).
    pub args: Vec<Arg>,
}

impl TraceEvent {
    /// A point event at `at`.
    pub fn instant(name: impl Into<Cow<'static, str>>, cat: &'static str, tid: u32, at: SimTime) -> Self {
        TraceEvent {
            name: name.into(),
            cat,
            tid,
            kind: EventKind::Instant { at },
            args: Vec::new(),
        }
    }

    /// A closed interval starting at `start` and lasting `dur`.
    pub fn span(
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        tid: u32,
        start: SimTime,
        dur: SimDuration,
    ) -> Self {
        TraceEvent {
            name: name.into(),
            cat,
            tid,
            kind: EventKind::Span { start, dur },
            args: Vec::new(),
        }
    }

    /// Adds an unsigned-integer attribute (builder style).
    #[must_use]
    pub fn arg_u64(mut self, key: &'static str, value: u64) -> Self {
        self.args.push(Arg {
            key,
            value: ArgValue::U64(value),
        });
        self
    }

    /// Adds a signed-integer attribute (builder style).
    #[must_use]
    pub fn arg_i64(mut self, key: &'static str, value: i64) -> Self {
        self.args.push(Arg {
            key,
            value: ArgValue::I64(value),
        });
        self
    }

    /// Adds a string attribute (builder style).
    #[must_use]
    pub fn arg_str(mut self, key: &'static str, value: impl Into<Cow<'static, str>>) -> Self {
        self.args.push(Arg {
            key,
            value: ArgValue::Str(value.into()),
        });
        self
    }

    /// The event's anchor time: span start or instant time. Exporters
    /// use this; it is also handy for asserting ordering in tests.
    pub fn at(&self) -> SimTime {
        match self.kind {
            EventKind::Span { start, .. } => start,
            EventKind::Instant { at } => at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_attaches_args_in_order() {
        let ev = TraceEvent::instant("tcp.retransmit", "tcp", 2, SimTime::from_nanos(5_000_000))
            .arg_u64("peer", 3)
            .arg_i64("delta", -1)
            .arg_str("why", "rto");
        assert_eq!(ev.args.len(), 3);
        assert_eq!(ev.args[0].key, "peer");
        assert_eq!(ev.args[0].value, ArgValue::U64(3));
        assert_eq!(ev.args[2].value, ArgValue::Str("rto".into()));
        assert_eq!(ev.at(), SimTime::from_nanos(5_000_000));
    }

    #[test]
    fn span_anchor_is_its_start() {
        let ev = TraceEvent::span(
            "request",
            "client",
            0,
            SimTime::from_secs(1),
            SimDuration::from_millis(30),
        );
        assert_eq!(ev.at(), SimTime::from_secs(1));
        assert_eq!(
            ev.kind,
            EventKind::Span {
                start: SimTime::from_secs(1),
                dur: SimDuration::from_millis(30)
            }
        );
    }
}
