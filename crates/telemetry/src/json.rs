//! A minimal JSON value type with a deterministic writer and a strict
//! parser.
//!
//! The repro harness persists `BENCH_repro.json` and the report
//! generator reads it back for the bench-history sparkline, so both
//! need the same guarantees the other exporters in this crate give:
//! **byte-reproducible output** (object keys are a [`BTreeMap`], so
//! they always serialize sorted; floats print via Rust's shortest
//! round-trip formatting) and **no external dependencies**. This is
//! not a general-purpose JSON library — numbers outside `i64`/`f64`
//! and lone surrogates are rejected rather than approximated.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent that fits an `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; `BTreeMap` so keys serialize in sorted order.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object's map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric value of either number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Serializes without any whitespace. Object keys come out sorted,
    /// so equal values always produce equal bytes.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation (and sorted keys).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let nl = |out: &mut String, depth: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', w * depth));
            }
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            JsonValue::Float(f) => write_float(out, *f),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    nl(out, depth);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !members.is_empty() {
                    nl(out, depth);
                }
                out.push('}');
            }
        }
    }
}

/// Floats print via Rust's shortest round-trip formatting, which is
/// deterministic; integral values keep a `.0` so they re-parse as
/// [`JsonValue::Float`]. Non-finite values have no JSON spelling and
/// serialize as `null`.
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 character (the input is a &str, so
                    // byte boundaries are already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // Surrogate pair: a low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xdc00..0xe000).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("lone surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(JsonValue::Float(f)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_bench_shape() {
        let text = r#"{
            "scale": "paper", "seed": 2003, "total_wall_s": 475.368,
            "targets": [{"name": "fig2", "wall_s": 0.000}],
            "history": []
        }"#;
        let v = parse(text).expect("parses");
        assert_eq!(v.get("scale").and_then(JsonValue::as_str), Some("paper"));
        assert_eq!(v.get("seed").and_then(JsonValue::as_i64), Some(2003));
        assert_eq!(
            v.get("total_wall_s").and_then(JsonValue::as_f64),
            Some(475.368)
        );
        let reparsed = parse(&v.to_pretty()).expect("round-trips");
        assert_eq!(reparsed, v);
        assert_eq!(parse(&v.to_compact()).expect("compact round-trips"), v);
    }

    #[test]
    fn object_keys_serialize_sorted() {
        let v = parse(r#"{"zeta": 1, "alpha": 2, "mid": 3}"#).expect("parses");
        assert_eq!(v.to_compact(), r#"{"alpha":2,"mid":3,"zeta":1}"#);
    }

    #[test]
    fn floats_keep_their_type_through_a_round_trip() {
        let v = JsonValue::Float(2.0);
        assert_eq!(v.to_compact(), "2.0");
        assert_eq!(parse("2.0").expect("parses"), v);
        assert_eq!(parse("2").expect("parses"), JsonValue::Int(2));
        // Non-finite floats serialize as null rather than panicking.
        assert_eq!(JsonValue::Float(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = JsonValue::Str("a\"b\\c\nd\te\u{1}é✓".to_string());
        assert_eq!(parse(&v.to_compact()).expect("parses"), v);
        assert_eq!(
            parse(r#""\ud83d\ude00""#).expect("surrogate pair"),
            JsonValue::Str("😀".to_string())
        );
    }

    #[test]
    fn malformed_documents_are_rejected_with_an_offset() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "nul", "\"\\u12\"", "1e999"] {
            let e = parse(bad).expect_err(bad);
            assert!(e.offset <= bad.len(), "{bad}: offset {}", e.offset);
        }
    }
}
