//! Exporters: Chrome-trace JSON, JSONL event log, text summary.
//!
//! All output is produced with integer math and ordered iteration so
//! that, for a given seed, the bytes are identical across runs and
//! across worker-thread counts. Sim-time nanoseconds map to Chrome's
//! microsecond `ts` field as `ns / 1000` with a three-digit fraction,
//! so nothing is rounded through floating point.

use std::fmt::Write as _;

use crate::event::{ArgValue, EventKind, TraceEvent};
use crate::metrics::MetricsRegistry;

/// Everything one simulation run contributed to a trace file.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// Run label — becomes the Chrome trace *process* name (e.g.
    /// `"fig3 TCP-PRESS node-crash"`).
    pub label: String,
    /// `(tid, name)` lane labels (node lanes plus the pseudo-lanes).
    pub threads: Vec<(u32, String)>,
    /// The events, in emission order.
    pub events: Vec<TraceEvent>,
    /// The run's metrics snapshot.
    pub metrics: MetricsRegistry,
}

/// Formats sim-time nanoseconds as Chrome-trace microseconds with a
/// fixed three-digit fraction (`1234567 ns` → `"1234.567"`).
fn write_us(out: &mut String, nanos: u64) {
    let _ = write!(out, "{}.{:03}", nanos / 1_000, nanos % 1_000);
}

/// Escapes a string for inclusion in a JSON string literal.
fn write_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_args(out: &mut String, ev: &TraceEvent) {
    out.push('{');
    for (i, a) in ev.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        write_escaped(out, a.key);
        out.push_str("\":");
        match &a.value {
            ArgValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::Str(s) => {
                out.push('"');
                write_escaped(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

fn write_meta(out: &mut String, pid: usize, tid: Option<u32>, kind: &str, name: &str) {
    let _ = write!(out, "{{\"ph\":\"M\",\"pid\":{pid},");
    if let Some(tid) = tid {
        let _ = write!(out, "\"tid\":{tid},");
    }
    let _ = write!(out, "\"name\":\"{kind}\",\"args\":{{\"name\":\"");
    write_escaped(out, name);
    out.push_str("\"}}");
}

/// Renders runs as a Chrome-trace JSON document (the `traceEvents`
/// array format), loadable in `chrome://tracing` and Perfetto. Each
/// run is one trace *process* (pid = run index); each node is a
/// *thread* within it.
pub fn chrome_trace_json(runs: &[RunTrace]) -> String {
    let total: usize = runs.iter().map(|r| r.events.len() + r.threads.len() + 1).sum();
    // ~96 bytes per serialized event is a comfortable overshoot.
    let mut out = String::with_capacity(total * 96 + 64);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };
    for (pid, run) in runs.iter().enumerate() {
        sep(&mut out, &mut first);
        write_meta(&mut out, pid, None, "process_name", &run.label);
        for (tid, name) in &run.threads {
            sep(&mut out, &mut first);
            write_meta(&mut out, pid, Some(*tid), "thread_name", name);
        }
        for ev in &run.events {
            sep(&mut out, &mut first);
            let _ = write!(out, "{{\"pid\":{pid},\"tid\":{},", ev.tid);
            match ev.kind {
                EventKind::Span { start, dur } => {
                    out.push_str("\"ph\":\"X\",\"ts\":");
                    write_us(&mut out, start.as_nanos());
                    out.push_str(",\"dur\":");
                    write_us(&mut out, dur.as_nanos());
                    out.push(',');
                }
                EventKind::Instant { at } => {
                    out.push_str("\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                    write_us(&mut out, at.as_nanos());
                    out.push(',');
                }
            }
            let _ = write!(out, "\"cat\":\"{}\",\"name\":\"", ev.cat);
            write_escaped(&mut out, &ev.name);
            out.push_str("\",\"args\":");
            write_args(&mut out, ev);
            out.push('}');
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// JSONL schema name, emitted in the leading header record.
pub const JSONL_SCHEMA: &str = "press-trace-jsonl";
/// JSONL schema version; bump when event-record fields change shape.
pub const JSONL_VERSION: u64 = 1;

/// Renders runs as a JSONL event log: one JSON object per line, in
/// run order then emission order. Easier to grep/post-process than the
/// Chrome document.
///
/// The first line is a header record identifying the schema and the
/// log's extent — `{"schema":"press-trace-jsonl","version":1,
/// "runs":R,"events":E}` — so consumers can validate what they are
/// reading (and how much of it) before touching any event line.
pub fn jsonl_log(runs: &[RunTrace]) -> String {
    let total: usize = runs.iter().map(|r| r.events.len()).sum();
    let mut out = String::with_capacity(total * 112 + 80);
    let _ = writeln!(
        out,
        "{{\"schema\":\"{JSONL_SCHEMA}\",\"version\":{JSONL_VERSION},\"runs\":{},\"events\":{total}}}",
        runs.len()
    );
    for run in runs {
        for ev in &run.events {
            out.push_str("{\"run\":\"");
            write_escaped(&mut out, &run.label);
            let _ = write!(out, "\",\"tid\":{},\"cat\":\"{}\",\"name\":\"", ev.tid, ev.cat);
            write_escaped(&mut out, &ev.name);
            out.push_str("\",\"ts_us\":");
            match ev.kind {
                EventKind::Span { start, dur } => {
                    write_us(&mut out, start.as_nanos());
                    out.push_str(",\"dur_us\":");
                    write_us(&mut out, dur.as_nanos());
                }
                EventKind::Instant { at } => {
                    write_us(&mut out, at.as_nanos());
                }
            }
            out.push_str(",\"args\":");
            write_args(&mut out, ev);
            out.push_str("}\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use simnet::{SimDuration, SimTime};

    fn sample_run() -> RunTrace {
        RunTrace {
            label: "test run".to_string(),
            threads: vec![(0, "node 0".to_string())],
            events: vec![
                TraceEvent::span(
                    "request",
                    "client",
                    0,
                    SimTime::from_nanos(1_234_567),
                    SimDuration::from_nanos(890),
                )
                .arg_u64("req", 42),
                TraceEvent::instant("fault \"quoted\"", "fault", 0, SimTime::from_secs(30))
                    .arg_str("kind", "node-crash"),
            ],
            metrics: MetricsRegistry::new(),
        }
    }

    #[test]
    fn chrome_export_maps_nanos_to_fractional_micros() {
        let json = chrome_trace_json(&[sample_run()]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("}"));
        assert!(json.contains("\"ts\":1234.567"), "{json}");
        assert!(json.contains("\"dur\":0.890"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        // Quotes in names are escaped.
        assert!(json.contains("fault \\\"quoted\\\""));
        // Balanced braces/brackets — a cheap structural validity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let log = jsonl_log(&[sample_run()]);
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 events");
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(log.contains("\"ts_us\":1234.567"));
    }

    #[test]
    fn jsonl_header_round_trips_through_the_parser() {
        let runs = [sample_run(), sample_run()];
        let log = jsonl_log(&runs);
        let header = crate::json::parse(log.lines().next().unwrap()).unwrap();
        assert_eq!(
            header.get("schema").and_then(crate::json::JsonValue::as_str),
            Some(JSONL_SCHEMA)
        );
        assert_eq!(
            header.get("version").and_then(crate::json::JsonValue::as_i64),
            Some(JSONL_VERSION as i64)
        );
        assert_eq!(
            header.get("runs").and_then(crate::json::JsonValue::as_i64),
            Some(2)
        );
        // The advertised extent matches the actual event-line count, so
        // a consumer can detect truncated logs.
        let events = header
            .get("events")
            .and_then(crate::json::JsonValue::as_i64)
            .unwrap();
        assert_eq!(events as usize, log.lines().count() - 1);
        // Every event line parses as a JSON object too.
        for line in log.lines().skip(1) {
            let ev = crate::json::parse(line).unwrap();
            assert!(ev.get("run").is_some() && ev.get("ts_us").is_some(), "{line}");
        }
    }

    #[test]
    fn export_is_reproducible() {
        let runs = [sample_run(), sample_run()];
        assert_eq!(chrome_trace_json(&runs), chrome_trace_json(&runs));
        assert_eq!(jsonl_log(&runs), jsonl_log(&runs));
    }
}
