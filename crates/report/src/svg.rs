//! Inline-SVG rendering for the report: the per-run throughput
//! timeline (stage bands, event annotations, measured curve, blind-fit
//! overlay, fault lane) and the bench-history sparkline.
//!
//! Everything routes through fixed-precision formatters so output is
//! byte-identical across runs and `--jobs` values; colors are CSS
//! custom properties from the page shell, so the charts follow the
//! light/dark theme with no extra markup.

use crate::audit::AuditSegment;
use crate::html::esc;
use performability::stages::StageMarkers;
use simnet::TimeSeries;

/// Inputs for one run's timeline chart.
pub struct TimelineChart<'a> {
    /// Measured throughput, one sample per bucket.
    pub series: &'a TimeSeries,
    /// Log-derived stage markers (bands + event annotations).
    pub markers: &'a StageMarkers,
    /// The blind piecewise-constant fit, drawn over the measurement.
    pub fit: &'a [AuditSegment],
    /// Normal throughput, drawn as a dashed reference line.
    pub tn: f64,
}

const W: f64 = 760.0;
const H: f64 = 268.0;
const L: f64 = 50.0; // left margin: y tick labels
const R: f64 = 14.0;
const T: f64 = 30.0; // top margin: event labels
const B: f64 = 50.0; // bottom margin: fault lane + x tick labels
const PLOT_W: f64 = W - L - R;
const PLOT_H: f64 = H - T - B;

/// Two-decimal coordinate formatting: enough for sub-pixel placement,
/// few enough digits to stay readable and deterministic.
fn c(v: f64) -> String {
    format!("{v:.2}")
}

/// A "nice" tick step (1/2/5 × 10^k) giving about `target` divisions.
fn nice_step(span: f64, target: usize) -> f64 {
    if span.is_nan() || span <= 0.0 {
        return 1.0;
    }
    let raw = span / target.max(1) as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let mult = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    mult * mag
}

/// Renders the throughput timeline for one run.
pub fn timeline_svg(chart: &TimelineChart<'_>, aria_label: &str) -> String {
    let end = chart.markers.end.max(1.0);
    let peak = chart.series.max().unwrap_or(0.0).max(chart.tn).max(1.0);
    let ymax = peak * 1.08;
    let x = |t: f64| L + (t / end).clamp(0.0, 1.0) * PLOT_W;
    let y = |v: f64| T + PLOT_H * (1.0 - (v / ymax).clamp(0.0, 1.0));

    let mut s = format!(
        "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" role=\"img\" \
         aria-label=\"{label}\" xmlns=\"http://www.w3.org/2000/svg\">\n",
        w = c(W),
        h = c(H),
        label = esc(aria_label),
    );

    // Stage bands: alternating ink washes with the stage letter on top.
    for (i, (stage, t0, t1)) in chart
        .markers
        .intervals()
        .into_iter()
        .filter(|&(_, t0, t1)| t1 > t0)
        .enumerate()
    {
        let (x0, x1) = (x(t0), x(t1));
        let opacity = if i % 2 == 0 { "0.05" } else { "0.10" };
        s.push_str(&format!(
            "<rect x=\"{x0}\" y=\"{y0}\" width=\"{w}\" height=\"{h}\" \
             style=\"fill:var(--text-primary);opacity:{opacity}\"/>\n",
            x0 = c(x0),
            y0 = c(T),
            w = c(x1 - x0),
            h = c(PLOT_H),
        ));
        if x1 - x0 >= 13.0 {
            s.push_str(&format!(
                "<text x=\"{x}\" y=\"{y}\" text-anchor=\"middle\" \
                 style=\"fill:var(--text-secondary)\">{stage}</text>\n",
                x = c((x0 + x1) / 2.0),
                y = c(T + 13.0),
            ));
        }
    }

    // Gridlines + y tick labels, with the x baseline on top of them.
    let ystep = nice_step(ymax, 4);
    let mut v = 0.0;
    while v <= ymax {
        s.push_str(&format!(
            "<line x1=\"{x0}\" y1=\"{yy}\" x2=\"{x1}\" y2=\"{yy}\" \
             style=\"stroke:var(--gridline);stroke-width:1\"/>\n\
             <text x=\"{lx}\" y=\"{ly}\" text-anchor=\"end\" \
             style=\"fill:var(--muted)\">{val:.0}</text>\n",
            x0 = c(L),
            x1 = c(W - R),
            yy = c(y(v)),
            lx = c(L - 6.0),
            ly = c(y(v) + 3.5),
            val = v,
        ));
        v += ystep;
    }
    let xstep = nice_step(end, 6);
    let mut t = 0.0;
    while t <= end {
        s.push_str(&format!(
            "<text x=\"{x}\" y=\"{y}\" text-anchor=\"middle\" \
             style=\"fill:var(--muted)\">{t:.0}s</text>\n",
            x = c(x(t)),
            y = c(H - 6.0),
        ));
        t += xstep;
    }
    s.push_str(&format!(
        "<line x1=\"{x0}\" y1=\"{yy}\" x2=\"{x1}\" y2=\"{yy}\" \
         style=\"stroke:var(--baseline);stroke-width:1\"/>\n",
        x0 = c(L),
        x1 = c(W - R),
        yy = c(T + PLOT_H),
    ));

    // Tn reference line.
    s.push_str(&format!(
        "<line x1=\"{x0}\" y1=\"{yy}\" x2=\"{x1}\" y2=\"{yy}\" \
         style=\"stroke:var(--text-secondary);stroke-width:1;stroke-dasharray:2 3\"/>\n\
         <text x=\"{lx}\" y=\"{ly}\" text-anchor=\"end\" \
         style=\"fill:var(--text-secondary)\">Tn</text>\n",
        x0 = c(L),
        x1 = c(W - R),
        yy = c(y(chart.tn)),
        lx = c(W - R - 2.0),
        ly = c(y(chart.tn) - 4.0),
    ));

    // Event annotations: dashed verticals with staggered labels above.
    let mut events: Vec<(f64, &str, &str)> = vec![(chart.markers.fault, "fault", "--status-critical")];
    if let Some(d) = chart.markers.detected {
        events.push((d, "detected", "--status-serious"));
    }
    events.push((chart.markers.recovered, "repaired", "--status-good"));
    if let Some(r) = chart.markers.reset {
        events.push((r, "reset", "--status-serious"));
    }
    for (i, (et, name, var)) in events.iter().enumerate() {
        let ex = x(*et);
        let ly = if i % 2 == 0 { 12.0 } else { 24.0 };
        s.push_str(&format!(
            "<line x1=\"{ex}\" y1=\"{y0}\" x2=\"{ex}\" y2=\"{y1}\" \
             style=\"stroke:var({var});stroke-width:1;stroke-dasharray:4 3\"/>\n\
             <text x=\"{lx}\" y=\"{ly}\" style=\"fill:var(--text-secondary)\">{name}</text>\n",
            ex = c(ex),
            y0 = c(T),
            y1 = c(T + PLOT_H),
            lx = c(ex + 3.0),
            ly = c(ly),
        ));
    }

    // Blind-fit overlay first (under the measured curve): a step path.
    if !chart.fit.is_empty() {
        let mut d = String::new();
        for (i, seg) in chart.fit.iter().enumerate() {
            if i == 0 {
                d.push_str(&format!("M{} {}", c(x(seg.t0)), c(y(seg.mean))));
            } else {
                d.push_str(&format!("V{}", c(y(seg.mean))));
            }
            d.push_str(&format!("H{}", c(x(seg.t1))));
        }
        s.push_str(&format!(
            "<path d=\"{d}\" style=\"stroke:var(--series-2);stroke-width:2;fill:none;opacity:0.9\"/>\n",
        ));
    }

    // Measured throughput.
    let pts: Vec<String> = chart
        .series
        .points
        .iter()
        .filter(|(pt, pv)| pt.is_finite() && pv.is_finite())
        .map(|&(pt, pv)| format!("{},{}", c(x(pt)), c(y(pv.max(0.0)))))
        .collect();
    if !pts.is_empty() {
        s.push_str(&format!(
            "<polyline points=\"{}\" style=\"stroke:var(--series-1);stroke-width:2;fill:none\"/>\n",
            pts.join(" "),
        ));
    }

    // Legend (two series): swatch + label, top right inside the margin.
    let legend_x = W - R - 196.0;
    s.push_str(&format!(
        "<rect x=\"{x1}\" y=\"6\" width=\"14\" height=\"3\" style=\"fill:var(--series-1)\"/>\n\
         <text x=\"{t1}\" y=\"12\" style=\"fill:var(--text-secondary)\">measured</text>\n\
         <rect x=\"{x2}\" y=\"6\" width=\"14\" height=\"3\" style=\"fill:var(--series-2)\"/>\n\
         <text x=\"{t2}\" y=\"12\" style=\"fill:var(--text-secondary)\">blind fit</text>\n",
        x1 = c(legend_x),
        t1 = c(legend_x + 18.0),
        x2 = c(legend_x + 90.0),
        t2 = c(legend_x + 108.0),
    ));

    // Fault-injection lane: when the injected fault was active.
    let lane_y = T + PLOT_H + 8.0;
    s.push_str(&format!(
        "<rect x=\"{x0}\" y=\"{ly}\" width=\"{w}\" height=\"7\" rx=\"2\" \
         style=\"fill:var(--status-critical);opacity:0.55\"/>\n\
         <text x=\"{tx}\" y=\"{ty}\" style=\"fill:var(--muted)\">fault active</text>\n",
        x0 = c(x(chart.markers.fault)),
        ly = c(lane_y),
        w = c((x(chart.markers.recovered) - x(chart.markers.fault)).max(1.0)),
        tx = c(L),
        ty = c(lane_y + 6.5),
    ));

    s.push_str("</svg>\n");
    s
}

/// One fault's active window on a Monte-Carlo timeline.
pub struct McBand {
    /// Injection time (seconds).
    pub t0: f64,
    /// Recovery time, clipped to the run end (seconds).
    pub t1: f64,
    /// Short label ("Node crash n2").
    pub label: String,
    /// Whether the fault is gray (degraded-but-alive) rather than
    /// fail-stop.
    pub gray: bool,
}

/// Renders one Monte-Carlo replication's timeline: the measured curve,
/// the Tn reference, the blind-fit overlay, a translucent wash over the
/// plot for every active-fault window, and a stacked lane per
/// concurrent fault below the axis (fail-stop in the critical color,
/// gray faults in the serious color). The SVG grows taller as lanes
/// stack, so arbitrarily overlapping campaigns stay readable.
pub fn mc_timeline_svg(
    series: &TimeSeries,
    fit: &[AuditSegment],
    tn: f64,
    end: f64,
    bands: &[McBand],
    aria_label: &str,
) -> String {
    let end = end.max(1.0);
    let peak = series.max().unwrap_or(0.0).max(tn).max(1.0);
    let ymax = peak * 1.08;
    let x = |t: f64| L + (t / end).clamp(0.0, 1.0) * PLOT_W;
    let y = |v: f64| T + PLOT_H * (1.0 - (v / ymax).clamp(0.0, 1.0));

    // Greedy first-fit lane assignment: bands arrive sorted by start,
    // each takes the first lane free at its start time.
    let mut lane_ends: Vec<f64> = Vec::new();
    let mut lanes: Vec<usize> = Vec::with_capacity(bands.len());
    for b in bands {
        let lane = lane_ends
            .iter()
            .position(|&e| e <= b.t0)
            .unwrap_or(lane_ends.len());
        if lane == lane_ends.len() {
            lane_ends.push(b.t1);
        } else {
            lane_ends[lane] = b.t1;
        }
        lanes.push(lane);
    }
    const LANE_H: f64 = 11.0;
    let lane_y0 = T + PLOT_H + 20.0;
    let h = lane_y0 + lane_ends.len() as f64 * LANE_H + 6.0;

    let mut s = format!(
        "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" role=\"img\" \
         aria-label=\"{label}\" xmlns=\"http://www.w3.org/2000/svg\">\n",
        w = c(W),
        h = c(h),
        label = esc(aria_label),
    );

    // Active-fault washes over the plot.
    for b in bands {
        let (x0, x1) = (x(b.t0), x(b.t1));
        let var = if b.gray { "--status-serious" } else { "--status-critical" };
        s.push_str(&format!(
            "<rect x=\"{x0}\" y=\"{y0}\" width=\"{w}\" height=\"{ph}\" \
             style=\"fill:var({var});opacity:0.05\"/>\n",
            x0 = c(x0),
            y0 = c(T),
            w = c((x1 - x0).max(0.5)),
            ph = c(PLOT_H),
        ));
    }

    // Gridlines + ticks + baseline, same recipe as the stage timeline.
    let ystep = nice_step(ymax, 4);
    let mut v = 0.0;
    while v <= ymax {
        s.push_str(&format!(
            "<line x1=\"{x0}\" y1=\"{yy}\" x2=\"{x1}\" y2=\"{yy}\" \
             style=\"stroke:var(--gridline);stroke-width:1\"/>\n\
             <text x=\"{lx}\" y=\"{ly}\" text-anchor=\"end\" \
             style=\"fill:var(--muted)\">{val:.0}</text>\n",
            x0 = c(L),
            x1 = c(W - R),
            yy = c(y(v)),
            lx = c(L - 6.0),
            ly = c(y(v) + 3.5),
            val = v,
        ));
        v += ystep;
    }
    let xstep = nice_step(end, 6);
    let mut t = 0.0;
    while t <= end {
        s.push_str(&format!(
            "<text x=\"{x}\" y=\"{y}\" text-anchor=\"middle\" \
             style=\"fill:var(--muted)\">{t:.0}s</text>\n",
            x = c(x(t)),
            y = c(T + PLOT_H + 14.0),
        ));
        t += xstep;
    }
    s.push_str(&format!(
        "<line x1=\"{x0}\" y1=\"{yy}\" x2=\"{x1}\" y2=\"{yy}\" \
         style=\"stroke:var(--baseline);stroke-width:1\"/>\n",
        x0 = c(L),
        x1 = c(W - R),
        yy = c(T + PLOT_H),
    ));

    // Tn reference line.
    s.push_str(&format!(
        "<line x1=\"{x0}\" y1=\"{yy}\" x2=\"{x1}\" y2=\"{yy}\" \
         style=\"stroke:var(--text-secondary);stroke-width:1;stroke-dasharray:2 3\"/>\n\
         <text x=\"{lx}\" y=\"{ly}\" text-anchor=\"end\" \
         style=\"fill:var(--text-secondary)\">Tn</text>\n",
        x0 = c(L),
        x1 = c(W - R),
        yy = c(y(tn)),
        lx = c(W - R - 2.0),
        ly = c(y(tn) - 4.0),
    ));

    // Blind-fit overlay under the measured curve.
    if !fit.is_empty() {
        let mut d = String::new();
        for (i, seg) in fit.iter().enumerate() {
            if i == 0 {
                d.push_str(&format!("M{} {}", c(x(seg.t0)), c(y(seg.mean))));
            } else {
                d.push_str(&format!("V{}", c(y(seg.mean))));
            }
            d.push_str(&format!("H{}", c(x(seg.t1))));
        }
        s.push_str(&format!(
            "<path d=\"{d}\" style=\"stroke:var(--series-2);stroke-width:2;fill:none;opacity:0.9\"/>\n",
        ));
    }

    // Measured throughput.
    let pts: Vec<String> = series
        .points
        .iter()
        .filter(|(pt, pv)| pt.is_finite() && pv.is_finite())
        .map(|&(pt, pv)| format!("{},{}", c(x(pt)), c(y(pv.max(0.0)))))
        .collect();
    if !pts.is_empty() {
        s.push_str(&format!(
            "<polyline points=\"{}\" style=\"stroke:var(--series-1);stroke-width:2;fill:none\"/>\n",
            pts.join(" "),
        ));
    }

    // Legend.
    let legend_x = W - R - 196.0;
    s.push_str(&format!(
        "<rect x=\"{x1}\" y=\"6\" width=\"14\" height=\"3\" style=\"fill:var(--series-1)\"/>\n\
         <text x=\"{t1}\" y=\"12\" style=\"fill:var(--text-secondary)\">measured</text>\n\
         <rect x=\"{x2}\" y=\"6\" width=\"14\" height=\"3\" style=\"fill:var(--series-2)\"/>\n\
         <text x=\"{t2}\" y=\"12\" style=\"fill:var(--text-secondary)\">blind fit</text>\n",
        x1 = c(legend_x),
        t1 = c(legend_x + 18.0),
        x2 = c(legend_x + 90.0),
        t2 = c(legend_x + 108.0),
    ));

    // Fault lanes below the axis.
    for (b, lane) in bands.iter().zip(&lanes) {
        let (x0, x1) = (x(b.t0), x(b.t1));
        let ly = lane_y0 + *lane as f64 * LANE_H;
        let var = if b.gray { "--status-serious" } else { "--status-critical" };
        s.push_str(&format!(
            "<rect x=\"{x0}\" y=\"{ly}\" width=\"{w}\" height=\"7\" rx=\"2\" \
             style=\"fill:var({var});opacity:0.55\"/>\n",
            x0 = c(x0),
            ly = c(ly),
            w = c((x1 - x0).max(1.0)),
        ));
        if x1 - x0 >= 56.0 {
            s.push_str(&format!(
                "<text x=\"{tx}\" y=\"{ty}\" style=\"fill:var(--muted)\">{label}</text>\n",
                tx = c(x0 + 2.0),
                ty = c(ly + 6.5),
                label = esc(&b.label),
            ));
        }
    }

    s.push_str("</svg>\n");
    s
}

/// Per-cause CSS color variables for the attribution chart, in
/// [`telemetry::RootCause`] index order.
const ATTR_COLORS: [&str; telemetry::NCAUSES] = [
    "--status-critical", // fault-window kill
    "--series-2",        // retransmit/abort stall
    "--series-1",        // broadcast freeze
    "--status-serious",  // detection lag
    "--muted",           // gray-link loss
    "--baseline",        // overload queueing
];

/// Renders one run's root-cause attribution timeline: a stacked bar per
/// simulated second (losses split by cause, in index order bottom-up)
/// over the plot, and one lane per cause below the axis marking the
/// seconds in which that cause took losses.
pub fn attr_svg(timeline: &[[u64; telemetry::NCAUSES]], end: f64, aria_label: &str) -> String {
    let end = end.max(timeline.len() as f64).max(1.0);
    let peak = timeline
        .iter()
        .map(|b| b.iter().sum::<u64>())
        .max()
        .unwrap_or(0)
        .max(1) as f64;
    let ymax = peak * 1.08;
    let x = |t: f64| L + (t / end).clamp(0.0, 1.0) * PLOT_W;
    let y = |v: f64| T + PLOT_H * (1.0 - (v / ymax).clamp(0.0, 1.0));

    const LANE_H: f64 = 11.0;
    let lane_y0 = T + PLOT_H + 20.0;
    let h = lane_y0 + telemetry::NCAUSES as f64 * LANE_H + 6.0;

    let mut s = format!(
        "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" role=\"img\" \
         aria-label=\"{label}\" xmlns=\"http://www.w3.org/2000/svg\">\n",
        w = c(W),
        h = c(h),
        label = esc(aria_label),
    );

    // Gridlines + ticks + baseline, same recipe as the other timelines.
    let ystep = nice_step(ymax, 4);
    let mut v = 0.0;
    while v <= ymax {
        s.push_str(&format!(
            "<line x1=\"{x0}\" y1=\"{yy}\" x2=\"{x1}\" y2=\"{yy}\" \
             style=\"stroke:var(--gridline);stroke-width:1\"/>\n\
             <text x=\"{lx}\" y=\"{ly}\" text-anchor=\"end\" \
             style=\"fill:var(--muted)\">{val:.0}</text>\n",
            x0 = c(L),
            x1 = c(W - R),
            yy = c(y(v)),
            lx = c(L - 6.0),
            ly = c(y(v) + 3.5),
            val = v,
        ));
        v += ystep;
    }
    let xstep = nice_step(end, 6);
    let mut t = 0.0;
    while t <= end {
        s.push_str(&format!(
            "<text x=\"{x}\" y=\"{y}\" text-anchor=\"middle\" \
             style=\"fill:var(--muted)\">{t:.0}s</text>\n",
            x = c(x(t)),
            y = c(T + PLOT_H + 14.0),
        ));
        t += xstep;
    }
    s.push_str(&format!(
        "<line x1=\"{x0}\" y1=\"{yy}\" x2=\"{x1}\" y2=\"{yy}\" \
         style=\"stroke:var(--baseline);stroke-width:1\"/>\n",
        x0 = c(L),
        x1 = c(W - R),
        yy = c(T + PLOT_H),
    ));

    // Stacked per-second bars, cause index order bottom-up.
    for (sec, bucket) in timeline.iter().enumerate() {
        let x0 = x(sec as f64);
        let w = (x(sec as f64 + 1.0) - x0).max(0.5);
        let mut cum = 0u64;
        for (ci, &n) in bucket.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let y1 = y((cum + n) as f64);
            let y0 = y(cum as f64);
            s.push_str(&format!(
                "<rect x=\"{x0}\" y=\"{y1}\" width=\"{w}\" height=\"{bh}\" \
                 style=\"fill:var({var});opacity:0.85\"/>\n",
                x0 = c(x0),
                y1 = c(y1),
                w = c(w),
                bh = c((y0 - y1).max(0.3)),
                var = ATTR_COLORS[ci],
            ));
            cum += n;
        }
    }

    // One lane per cause: a strip for every contiguous run of seconds
    // in which the cause took losses, labelled at the left edge.
    for (ci, cause) in telemetry::CAUSES.iter().enumerate() {
        let ly = lane_y0 + ci as f64 * LANE_H;
        let mut sec = 0usize;
        while sec < timeline.len() {
            if timeline[sec][ci] == 0 {
                sec += 1;
                continue;
            }
            let start = sec;
            while sec < timeline.len() && timeline[sec][ci] > 0 {
                sec += 1;
            }
            s.push_str(&format!(
                "<rect x=\"{x0}\" y=\"{ly}\" width=\"{w}\" height=\"7\" rx=\"2\" \
                 style=\"fill:var({var});opacity:0.75\"/>\n",
                x0 = c(x(start as f64)),
                ly = c(ly),
                w = c((x(sec as f64) - x(start as f64)).max(1.0)),
                var = ATTR_COLORS[ci],
            ));
        }
        // Label on top of the strips so it stays readable.
        s.push_str(&format!(
            "<text x=\"{tx}\" y=\"{ty}\" style=\"fill:var(--text-secondary)\">{label}</text>\n",
            tx = c(L + 2.0),
            ty = c(ly + 6.5),
            label = esc(cause.key()),
        ));
    }

    s.push_str("</svg>\n");
    s
}

/// A small single-series sparkline with first/last value labels — used
/// for the `repro -- all` wall-time history.
pub fn history_svg(values: &[f64], unit: &str, aria_label: &str) -> String {
    const HW: f64 = 420.0;
    const HH: f64 = 64.0;
    const HPAD: f64 = 8.0;
    let mut s = format!(
        "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" role=\"img\" \
         aria-label=\"{label}\" xmlns=\"http://www.w3.org/2000/svg\">\n",
        w = c(HW),
        h = c(HH),
        label = esc(aria_label),
    );
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        s.push_str(&format!(
            "<text x=\"{x}\" y=\"{y}\" style=\"fill:var(--muted)\">no history yet</text>\n",
            x = c(HPAD),
            y = c(HH / 2.0),
        ));
        s.push_str("</svg>\n");
        return s;
    }
    let max = finite.iter().fold(f64::MIN, |a, &b| a.max(b)).max(1e-9);
    let span = (finite.len() as f64 - 1.0).max(1.0);
    let x = |i: usize| HPAD + 56.0 + (i as f64 / span) * (HW - 2.0 * HPAD - 112.0);
    let y = |v: f64| HPAD + (HH - 2.0 * HPAD) * (1.0 - (v / max).clamp(0.0, 1.0));
    let pts: Vec<String> = finite
        .iter()
        .enumerate()
        .map(|(i, &v)| format!("{},{}", c(x(i)), c(y(v))))
        .collect();
    if pts.len() == 1 {
        s.push_str(&format!(
            "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"3\" style=\"fill:var(--series-1)\"/>\n",
            cx = c(x(0)),
            cy = c(y(finite[0])),
        ));
    } else {
        s.push_str(&format!(
            "<polyline points=\"{}\" style=\"stroke:var(--series-1);stroke-width:2;fill:none\"/>\n",
            pts.join(" "),
        ));
    }
    let first = finite[0];
    let last = *finite.last().expect("non-empty");
    s.push_str(&format!(
        "<text x=\"{fx}\" y=\"{fy}\" text-anchor=\"end\" style=\"fill:var(--muted)\">{first:.1}{unit}</text>\n\
         <text x=\"{lx}\" y=\"{ly2}\" style=\"fill:var(--text-primary)\">{last:.1}{unit}</text>\n",
        fx = c(HPAD + 50.0),
        fy = c(y(first) + 3.5),
        lx = c(HW - HPAD - 106.0),
        ly2 = c(y(last) + 3.5),
        unit = esc(unit),
    ));
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use performability::stages::StageMarkers;

    fn markers() -> StageMarkers {
        StageMarkers {
            fault: 30.0,
            detected: Some(40.0),
            stabilized: Some(40.0),
            recovered: 60.0,
            restabilized: Some(60.0),
            reset: None,
            reset_done: None,
            end: 90.0,
        }
    }

    #[test]
    fn timeline_contains_bands_events_and_both_series() {
        let series = TimeSeries::new((0..90).map(|i| (i as f64 + 0.5, 900.0)).collect());
        let fit = [AuditSegment {
            t0: 0.0,
            t1: 90.0,
            mean: 900.0,
        }];
        let svg = timeline_svg(
            &TimelineChart {
                series: &series,
                markers: &markers(),
                fit: &fit,
                tn: 1000.0,
            },
            "test chart",
        );
        for needle in [
            ">A<", ">C<", ">E<", "fault", "detected", "repaired", "measured", "blind fit",
            "polyline", "Tn", "fault active",
        ] {
            assert!(svg.contains(needle), "missing {needle:?} in svg");
        }
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn empty_series_still_renders_a_frame() {
        let svg = timeline_svg(
            &TimelineChart {
                series: &TimeSeries::new(Vec::new()),
                markers: &markers(),
                fit: &[],
                tn: 0.0,
            },
            "empty",
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn history_handles_empty_single_and_many() {
        assert!(history_svg(&[], "s", "hist").contains("no history yet"));
        assert!(history_svg(&[12.0], "s", "hist").contains("circle"));
        let multi = history_svg(&[10.0, 12.0, 9.5], "s", "hist");
        assert!(multi.contains("polyline"));
        assert!(multi.contains("9.5s"));
    }

    #[test]
    fn nice_steps_are_round() {
        assert_eq!(nice_step(90.0, 6), 20.0);
        assert_eq!(nice_step(240.0, 6), 50.0);
        assert_eq!(nice_step(1080.0, 4), 500.0);
        assert_eq!(nice_step(0.0, 4), 1.0);
    }
}
