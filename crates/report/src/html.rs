//! HTML scaffolding for the single-file report: escaping, tables, and
//! the page shell with the palette tokens inlined (light and dark),
//! so the file renders with no network access and no JavaScript.

/// Escapes text for an HTML (or inline-SVG) text context.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// A data table: first column left-aligned text, the rest right-aligned
/// tabular numerals. Cells are escaped here.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("<table>\n<thead><tr>");
    for h in headers {
        out.push_str(&format!("<th>{}</th>", esc(h)));
    }
    out.push_str("</tr></thead>\n<tbody>\n");
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        out.push_str("<tr>");
        for cell in row {
            out.push_str(&format!("<td>{}</td>", esc(cell)));
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</tbody>\n</table>\n");
    out
}

/// Wraps rendered body HTML in the full standalone page: one `<style>`
/// block carrying the design tokens (light values, with dark values
/// under both the OS media query and an explicit `data-theme` scope),
/// system font stack, and recessive table chrome.
pub fn page(title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
         <title>{title}</title>\n<style>\n{css}</style>\n</head>\n\
         <body class=\"viz-root\">\n<main>\n{body}</main>\n</body>\n</html>\n",
        title = esc(title),
        css = CSS,
    )
}

const CSS: &str = r#".viz-root {
  color-scheme: light;
  --page:            #f9f9f7;
  --surface-1:       #fcfcfb;
  --text-primary:    #0b0b0b;
  --text-secondary:  #52514e;
  --muted:           #898781;
  --gridline:        #e1e0d9;
  --baseline:        #c3c2b7;
  --border:          rgba(11, 11, 11, 0.10);
  --series-1:        #2a78d6;
  --series-2:        #eb6834;
  --status-good:     #0ca30c;
  --status-serious:  #ec835a;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page:            #0d0d0d;
    --surface-1:       #1a1a19;
    --text-primary:    #ffffff;
    --text-secondary:  #c3c2b7;
    --muted:           #898781;
    --gridline:        #2c2c2a;
    --baseline:        #383835;
    --border:          rgba(255, 255, 255, 0.10);
    --series-1:        #3987e5;
    --series-2:        #d95926;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page:            #0d0d0d;
  --surface-1:       #1a1a19;
  --text-primary:    #ffffff;
  --text-secondary:  #c3c2b7;
  --muted:           #898781;
  --gridline:        #2c2c2a;
  --baseline:        #383835;
  --border:          rgba(255, 255, 255, 0.10);
  --series-1:        #3987e5;
  --series-2:        #d95926;
}
body {
  margin: 0;
  background: var(--page);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 820px; margin: 0 auto; padding: 24px 16px 48px; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 17px; margin: 32px 0 8px; }
h3 { font-size: 14px; margin: 18px 0 6px; color: var(--text-secondary); }
p, li { color: var(--text-secondary); }
.meta { color: var(--muted); font-size: 12px; margin: 0 0 20px; }
section.run {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 14px 16px 16px;
  margin: 16px 0;
}
svg { display: block; max-width: 100%; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; }
table {
  border-collapse: collapse;
  font-size: 13px;
  margin: 6px 0 10px;
}
th, td { padding: 3px 10px 3px 0; text-align: right; font-variant-numeric: tabular-nums; }
th { color: var(--muted); font-weight: 500; border-bottom: 1px solid var(--baseline); }
td { border-bottom: 1px solid var(--gridline); color: var(--text-primary); }
th:first-child, td:first-child { text-align: left; padding-right: 16px; }
.badge {
  display: inline-block;
  font-size: 12px;
  border-radius: 10px;
  padding: 1px 9px;
  border: 1px solid var(--border);
  color: var(--text-primary);
}
.badge.pass::before { content: "✓ "; color: var(--status-good); }
.badge.fail::before { content: "✗ "; color: var(--status-critical); }
footer { margin-top: 28px; color: var(--muted); font-size: 12px; }
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_markup_characters() {
        assert_eq!(esc("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    #[test]
    fn page_is_self_contained() {
        let p = page("T & T", "<p>x</p>");
        assert!(p.starts_with("<!DOCTYPE html>"));
        assert!(p.contains("T &amp; T"));
        assert!(p.contains("prefers-color-scheme: dark"));
        assert!(!p.contains("<script"));
        assert!(!p.contains("http://") && !p.contains("https://"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn tables_reject_ragged_rows() {
        table(&["a", "b"], &[vec!["x".into()]]);
    }
}
