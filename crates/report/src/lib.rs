//! Single-file HTML performability dashboards and the blind
//! stage-segmentation audit.
//!
//! Two halves, both deterministic and dependency-free:
//!
//! - [`dashboard::render_report`] turns a repro target's
//!   [`experiments::phase1::FaultRunResult`]s into one standalone HTML
//!   page — inline-SVG throughput timelines with A–G stage bands and
//!   event annotations, per-stage response-time percentiles, the
//!   phase-2 AT/AA/P projection, Table 3's fault-load weights, and the
//!   `repro -- all` wall-time history. No JavaScript, no network: the
//!   file is the artifact.
//! - [`montecarlo::render_mc_report`] is the dashboard's Monte-Carlo
//!   counterpart: per-replication timelines with one band per
//!   active-fault interval (stacked into lanes when faults overlap)
//!   and the AT/AA confidence intervals.
//! - [`audit::audit_run`] re-derives each run's stage segmentation
//!   *blind* — an exact piecewise-constant change-point fit over the
//!   raw throughput series, which never sees the run log — and diffs it
//!   against the log-derived markers. Disagreements surface in the
//!   report and fail `repro -- audit`.
//!
//! Rendering does no file, clock, or randomness access, so report
//! bytes are identical across runs and `--jobs` values; the repro
//! harness diffs them in CI.

pub mod audit;
pub mod dashboard;
mod html;
pub mod montecarlo;
mod svg;

pub use audit::{audit_run, audit_series, AuditConfig, AuditSegment, Finding, FindingKind, RunAudit};
pub use dashboard::{
    parse_bench_history, render_report, render_report_attributed, BenchHistoryPoint, ReportMeta,
};
pub use montecarlo::render_mc_report;
