//! The Monte-Carlo performability dashboard: one page per
//! `repro -- montecarlo --report` invocation.
//!
//! Where the single-fault report draws A–G stage bands from the run
//! log, a Monte-Carlo timeline has no unique stage ladder — several
//! faults are active at once and gray faults never produce log events
//! at all. The generalization: one band per *active-fault interval*
//! (known exactly, since the campaign is generated), stacked into lanes
//! when faults overlap, with the blind change-point fit overlaid so the
//! reader can judge where the throughput regime actually shifted.
//! Rendering is pure and byte-deterministic for a fixed run.

use experiments::montecarlo::{McReplication, McRun};

use crate::audit::AuditSegment;
use crate::dashboard::ReportMeta;
use crate::html::{esc, page, table};
use crate::svg::{mc_timeline_svg, McBand};

/// Converts a replication's blind fit (sample indices) into run-time
/// coordinates, using the series' own bucket width.
fn fit_segments(rep: &McReplication) -> Vec<AuditSegment> {
    let bucket_s = if rep.series.points.len() >= 2 {
        (rep.series.points[1].0 - rep.series.points[0].0).max(1e-9)
    } else {
        1.0
    };
    rep.fit
        .iter()
        .map(|s| AuditSegment {
            t0: s.start as f64 * bucket_s,
            t1: s.end as f64 * bucket_s,
            mean: s.mean,
        })
        .collect()
}

/// One band per active-fault interval, labeled with the fault and its
/// target.
fn bands(rep: &McReplication) -> Vec<McBand> {
    rep.intervals
        .iter()
        .map(|iv| {
            let label = match iv.spec.peer {
                Some(peer) => format!("{} n{}-n{}", iv.spec.kind.name(), iv.spec.node.0, peer.0),
                None => format!("{} n{}", iv.spec.kind.name(), iv.spec.node.0),
            };
            McBand {
                t0: iv.start.as_secs_f64(),
                t1: iv.end.as_secs_f64(),
                label,
                gray: iv.spec.kind.is_gray(),
            }
        })
        .collect()
}

fn summary_section(run: &McRun) -> String {
    let at = &run.result.at;
    let aa = &run.result.aa;
    let (aa_lo, aa_hi) = aa.interval();
    let mut s = String::from("<h2>Estimate</h2>\n");
    s.push_str(&table(
        &["quantity", "value", "95% CI"],
        &[
            vec![
                "baseline Tn (req/s)".to_string(),
                format!("{:.1}", run.result.tn),
                "—".to_string(),
            ],
            vec![
                format!("average throughput AT (req/s, n = {})", at.n),
                format!("{:.1}", at.mean),
                format!("± {:.1}", at.ci95),
            ],
            vec![
                "average availability AA".to_string(),
                format!("{:.4}", aa.mean),
                format!("[{aa_lo:.4}, {aa_hi:.4}]"),
            ],
        ],
    ));
    s
}

fn setup_section(run: &McRun) -> String {
    let setup = &run.setup;
    let mut s = String::from("<h2>Fault universe</h2>\n");
    let rows: Vec<Vec<String>> = setup
        .classes
        .iter()
        .map(|class| {
            vec![
                class.kind.name().to_string(),
                if class.kind.is_gray() { "gray" } else { "fail-stop" }.to_string(),
                format!("{:.0}", class.mean_between.as_secs_f64()),
                format!("{:.0}", class.duration.as_secs_f64()),
            ]
        })
        .collect();
    s.push_str(&table(
        &["arrival class", "kind", "mean between (s)", "duration (s)"],
        &rows,
    ));
    if setup.rules.is_empty() {
        s.push_str("<p>No correlation rules.</p>\n");
    } else {
        s.push_str("<ul>\n");
        for rule in &setup.rules {
            s.push_str(&format!("<li>correlation rule: {}</li>\n", esc(&rule.name)));
        }
        s.push_str("</ul>\n");
    }
    s
}

fn replication_section(i: usize, rep: &McReplication, run: &McRun) -> String {
    let o = &rep.overlap;
    let mut s = format!(
        "<section class=\"run\">\n<h2>Replication {i} (seed {seed})</h2>\n",
        seed = rep.seed,
    );
    s.push_str(&format!(
        "<p>{faults} faults ({corr} correlated), max {max} concurrent; {multi:.1} s with \
         two or more active, {grayfs:.1} s with gray and fail-stop faults overlapping.</p>\n",
        faults = o.faults,
        corr = o.correlated,
        max = o.max_concurrent,
        multi = o.multi_fault_secs,
        grayfs = o.gray_failstop_secs,
    ));
    s.push_str(&mc_timeline_svg(
        &rep.series,
        &fit_segments(rep),
        run.result.tn,
        run.end.as_secs_f64(),
        &bands(rep),
        &format!("Monte-Carlo replication {i} throughput timeline"),
    ));
    let (matched, total) = rep.change_points_near_fault_edges(3.0);
    s.push_str(&format!(
        "<p>Blind fit: {segs} segments; {matched}/{total} change points within 3 s of a \
         fault injection or recovery.</p>\n",
        segs = rep.fit.len(),
    ));
    s.push_str("</section>\n");
    s
}

/// Renders the Monte-Carlo report page.
pub fn render_mc_report(meta: &ReportMeta, run: &McRun) -> String {
    let mut body = format!(
        "<h1>{title}</h1>\n<p class=\"meta\">target {target} · scale {scale} · seed {seed} · \
         {version} · {n} replications · measured [{t0:.0} s, {t1:.0} s) · deterministic \
         render (byte-identical for a fixed seed, any --jobs / --sim-threads)</p>\n",
        title = esc(&meta.title),
        target = esc(&meta.target),
        scale = esc(&meta.scale),
        seed = meta.seed,
        version = run.setup.version,
        n = run.reps.len(),
        t0 = run.measure_from.as_secs_f64(),
        t1 = run.end.as_secs_f64(),
    );
    body.push_str(&summary_section(run));
    body.push_str(&setup_section(run));
    for (i, rep) in run.reps.iter().enumerate() {
        body.push_str(&replication_section(i, rep, run));
    }
    body.push_str(&format!(
        "<footer>Fault bands are exact (the campaign is generated, not inferred); the blind \
         fit never sees them. Generated by <code>repro -- {target} --report</code>.</footer>\n",
        target = esc(&meta.target),
    ));
    page(
        &format!("{} — Monte-Carlo performability", meta.title),
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use experiments::montecarlo::{run_montecarlo, MonteCarloSetup};
    use experiments::phase2::RunScale;
    use press::PressVersion;

    fn tiny_run() -> McRun {
        let mut setup = MonteCarloSetup::showcase(PressVersion::TcpHb, RunScale::Small);
        setup.replications = 2;
        run_montecarlo(&setup, RunScale::Small, 2003, 2)
    }

    fn meta() -> ReportMeta {
        ReportMeta {
            target: "montecarlo".to_string(),
            title: "Monte-Carlo performability".to_string(),
            scale: "small".to_string(),
            seed: 2003,
        }
    }

    #[test]
    fn mc_report_renders_every_section() {
        let run = tiny_run();
        let html = render_mc_report(&meta(), &run);
        for needle in [
            "Monte-Carlo performability",
            "Estimate",
            "Fault universe",
            "Replication 0",
            "Replication 1",
            "average availability AA",
            "correlation rule",
            "<svg",
            "Blind fit",
        ] {
            assert!(html.contains(needle), "missing {needle:?}");
        }
        assert!(!html.contains("NaN"), "NaN leaked into the report");
    }

    #[test]
    fn mc_report_is_byte_deterministic() {
        let run = tiny_run();
        let a = render_mc_report(&meta(), &run);
        let b = render_mc_report(&meta(), &run);
        assert_eq!(a, b);
    }
}
