//! The blind stage-segmentation audit.
//!
//! Phase 2's availability and performability numbers all flow from the
//! stage durations and throughputs that phase 1 extracts — and those
//! boundaries come from the **run log** (membership changes, process
//! exits, recovery events). This module re-derives the segmentation
//! **blind**: an exact piecewise-constant change-point fit over the raw
//! throughput [`TimeSeries`] ([`TimeSeries::piecewise_fit`]), which
//! never sees the log. Where the log says the regime changed, the
//! curve must show a change; where the log says a stage held a level,
//! the blind fit must find the same level. Disagreements become
//! [`Finding`]s, surfaced in the HTML report and by `repro -- audit`
//! (non-zero exit).
//!
//! Transient stages (B, D, G) are ramps by definition, so the audit
//! only checks their *boundaries* where the local level jump is
//! material; the stable regions (pre-fault, C, E) also get the level
//! and plateau-onset checks. Stage A carries no stability claim — an
//! undetected fault decays gradually (TCP's connection backlog drains
//! over many seconds), so blind change points inside A are legitimate.

use experiments::phase1::FaultRunResult;
use performability::stages::{Stage, StageMarkers};
use simnet::TimeSeries;

/// Tolerances for the log-vs-blind comparison. The defaults implement
/// the repro harness's acceptance bar: boundary agreement within about
/// one throughput bucket and level agreement within 5% of Tn.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// A boundary's level jump must exceed this fraction of Tn to be
    /// blind-detectable at all; smaller steps are invisible in the
    /// noise and are not audited.
    pub material_jump_frac: f64,
    /// How far (in buckets) a blind change point may sit from the log
    /// boundary it explains. 1.5 buckets = the "within one bucket"
    /// criterion plus the half-bucket quantization of continuous marker
    /// times onto bucket edges.
    pub boundary_tolerance_buckets: f64,
    /// Allowed |blind level − log level| in a stable stage, as a
    /// fraction of Tn.
    pub level_tolerance_frac: f64,
    /// A stable stage shorter than this many buckets has no interior
    /// to compare levels over and is skipped.
    pub min_stable_buckets: usize,
    /// Everything before this time (seconds) is the client/cache ramp
    /// and is excluded — matching the phase-1 Tn measurement, which
    /// also skips the start of the run.
    pub startup_exclusion_s: f64,
    /// A shift inside a stable stage only counts as an unlogged regime
    /// change if the new level *persists*: when the fit returns to
    /// within `material_jump_frac` of the pre-shift level inside this
    /// many buckets, the departure is a transient excursion (retry
    /// resynchronization, cache churn) and is not flagged.
    pub max_excursion_buckets: usize,
    /// Most segments the fit may use.
    pub max_segments: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            material_jump_frac: 0.10,
            boundary_tolerance_buckets: 1.5,
            level_tolerance_frac: 0.05,
            min_stable_buckets: 3,
            startup_exclusion_s: 5.0,
            max_excursion_buckets: 6,
            max_segments: 12,
        }
    }
}

/// What kind of disagreement a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// The log claims a material regime change here, but no blind
    /// change point lands within tolerance.
    MissedBoundary,
    /// A stable stage's blind level disagrees with the log-derived
    /// level by more than the tolerance.
    LevelMismatch,
    /// The blind fit found a material throughput shift inside a stage
    /// the log calls stable, away from any log boundary.
    SpuriousShift,
}

impl std::fmt::Display for FindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FindingKind::MissedBoundary => "missed boundary",
            FindingKind::LevelMismatch => "level mismatch",
            FindingKind::SpuriousShift => "spurious shift",
        };
        write!(f, "{s}")
    }
}

/// One disagreement between the run log's segmentation and the blind
/// fit.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The kind of disagreement.
    pub kind: FindingKind,
    /// The stage the disagreement falls in (`None`: the pre-fault
    /// region).
    pub stage: Option<Stage>,
    /// Where (seconds into the run).
    pub at_s: f64,
    /// What the log-derived segmentation says (seconds or req/s,
    /// depending on `kind`).
    pub expected: f64,
    /// What the blind fit says.
    pub got: f64,
}

impl Finding {
    fn stage_name(&self) -> String {
        match self.stage {
            Some(s) => format!("stage {s}"),
            None => "pre-fault".to_string(),
        }
    }

    /// One-line human rendering.
    pub fn describe(&self) -> String {
        match self.kind {
            FindingKind::MissedBoundary => format!(
                "{} entry at {:.1}s: nearest blind change point at {:.1}s",
                self.stage_name(),
                self.expected,
                self.got
            ),
            FindingKind::LevelMismatch => format!(
                "{} level: log says {:.0} req/s, blind fit {:.0} req/s",
                self.stage_name(),
                self.expected,
                self.got
            ),
            FindingKind::SpuriousShift => format!(
                "unexplained {:+.0} req/s shift at {:.1}s inside {}",
                self.got - self.expected,
                self.at_s,
                self.stage_name()
            ),
        }
    }
}

/// One piece of the blind fit, in run-time coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditSegment {
    /// Segment start (seconds).
    pub t0: f64,
    /// Segment end (seconds).
    pub t1: f64,
    /// Fitted throughput level (req/s).
    pub mean: f64,
}

/// The audit verdict for one run.
#[derive(Debug, Clone)]
pub struct RunAudit {
    /// "VERSION fault" label for tables.
    pub label: String,
    /// Normal throughput the tolerances are relative to.
    pub tn: f64,
    /// Throughput bucket width (seconds).
    pub bucket_s: f64,
    /// The blind piecewise-constant fit.
    pub segments: Vec<AuditSegment>,
    /// Every disagreement found (empty = the segmentations agree).
    pub findings: Vec<Finding>,
}

impl RunAudit {
    /// `true` when the blind segmentation agrees with the run log.
    pub fn pass(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Audits one phase-1 run with the default tolerances.
pub fn audit_run(r: &FaultRunResult) -> RunAudit {
    audit_series(
        &r.series,
        &r.markers,
        r.tn,
        format!("{} {}", r.version.name(), r.fault.kind.name()),
        &AuditConfig::default(),
    )
}

/// One region of the log-derived segmentation, with the level the log
/// (via the series means the model extraction uses) assigns it.
struct LogRegion {
    stage: Option<Stage>,
    t0: f64,
    t1: f64,
    level: f64,
    /// Whether the region claims a stable level: the pre-fault steady
    /// state, and C/E, whose starts come from the stabilization
    /// detector. A/B/D/G may hold arbitrary transients.
    stable: bool,
}

/// Audits a throughput series against log-derived stage markers.
pub fn audit_series(
    series: &TimeSeries,
    markers: &StageMarkers,
    tn: f64,
    label: String,
    cfg: &AuditConfig,
) -> RunAudit {
    let bucket_s = bucket_width(series);
    let tol_s = cfg.boundary_tolerance_buckets * bucket_s;
    let segments = blind_fit(series, tn, bucket_s, cfg);
    let regions = log_regions(series, markers, tn, cfg);
    let mut findings = Vec::new();

    // Interior blind change points `(time, level before, level after)`.
    let cuts: Vec<(f64, f64, f64)> = segments
        .windows(2)
        .map(|w| (w[1].t0, w[0].mean, w[1].mean))
        .collect();

    // 1. Every log boundary the curve can see needs a nearby blind
    // change point. "Can see" is judged *locally* — the mean over a few
    // buckets on each side of the boundary — because a region's overall
    // mean says nothing about the boundary instant (TCP's stage-D entry
    // is 0 → 0: the link is back but retry backoff holds throughput
    // down, so the repair event has no curve signature at all).
    let jump_w = cfg.min_stable_buckets as f64 * bucket_s;
    for w in regions.windows(2) {
        let t = w[1].t0;
        let (before, after) = (
            series.mean_between(t - jump_w, t),
            series.mean_between(t, t + jump_w),
        );
        let (Some(before), Some(after)) = (before, after) else {
            continue;
        };
        if (after - before).abs() <= cfg.material_jump_frac * tn {
            continue;
        }
        let nearest = cuts
            .iter()
            .map(|&(c, _, _)| c)
            .min_by(|a, b| {
                let (da, db) = ((a - t).abs(), (b - t).abs());
                da.partial_cmp(&db).expect("finite times")
            })
            .unwrap_or(f64::NEG_INFINITY);
        if (nearest - t).abs() > tol_s {
            findings.push(Finding {
                kind: FindingKind::MissedBoundary,
                stage: w[1].stage,
                at_s: t,
                expected: t,
                got: nearest,
            });
        }
    }

    // 2. Stable regions: the blind level over the region interior must
    // match the log level within tolerance.
    for region in &regions {
        if !region.stable {
            continue;
        }
        let (t0, t1) = (region.t0 + bucket_s, region.t1 - bucket_s);
        if t1 - t0 < cfg.min_stable_buckets as f64 * bucket_s {
            continue;
        }
        if let Some(blind) = fitted_mean_between(&segments, t0, t1) {
            if (blind - region.level).abs() > cfg.level_tolerance_frac * tn {
                findings.push(Finding {
                    kind: FindingKind::LevelMismatch,
                    stage: region.stage,
                    at_s: t0,
                    expected: region.level,
                    got: blind,
                });
            }
        }
    }

    // 2b. C and E start where the stabilization detector saw the
    // plateau begin. The blind segment carrying most of the region must
    // not begin materially *after* that claim — a plateau that only
    // forms later means the marker fired while the level was still
    // moving. (Beginning earlier is fine: when the boundary has no
    // level change, the plateau legitimately extends back into the
    // previous stage.)
    for region in &regions {
        if !matches!(region.stage, Some(Stage::C) | Some(Stage::E)) {
            continue;
        }
        let (t0, t1) = (region.t0 + bucket_s, region.t1 - bucket_s);
        if t1 - t0 < cfg.min_stable_buckets as f64 * bucket_s {
            continue;
        }
        let overlap = |s: &AuditSegment| (s.t1.min(t1) - s.t0.max(t0)).max(0.0);
        let dominant = segments
            .iter()
            .max_by(|a, b| overlap(a).partial_cmp(&overlap(b)).expect("finite overlap"));
        if let Some(seg) = dominant {
            if overlap(seg) > 0.0 && seg.t0 > region.t0 + tol_s {
                findings.push(Finding {
                    kind: FindingKind::MissedBoundary,
                    stage: region.stage,
                    at_s: region.t0,
                    expected: region.t0,
                    got: seg.t0,
                });
            }
        }
    }

    // 3. Material blind change points inside a stable region's interior
    // must be explained by *some* log boundary — unless the departure is
    // a short-lived excursion. An unlogged event (a crash the log never
    // saw) moves the level and *leaves* it there; an oscillation inside
    // a healthy stage (retry resynchronization after recovery, cache
    // churn) swings out and returns. So a shift is only spurious when
    // the fit does not come back to within materiality of the pre-shift
    // level inside `max_excursion_buckets`.
    let log_edges: Vec<f64> = regions
        .iter()
        .map(|r| r.t0)
        .chain(regions.last().map(|r| r.t1))
        .collect();
    let material = cfg.material_jump_frac * tn;
    let excursion_s = cfg.max_excursion_buckets as f64 * bucket_s;
    let mut skip_until = f64::NEG_INFINITY;
    for &(c, before, after) in &cuts {
        if c <= skip_until || (after - before).abs() <= material {
            continue;
        }
        if log_edges.iter().any(|&e| (e - c).abs() <= tol_s) {
            continue;
        }
        let host = regions
            .iter()
            .find(|r| c >= r.t0 + tol_s && c <= r.t1 - tol_s && r.stable);
        let Some(region) = host else {
            continue;
        };
        if let Some(&(back, _, _)) = cuts
            .iter()
            .find(|&&(c2, _, after2)| c2 > c && c2 - c <= excursion_s && (after2 - before).abs() <= material)
        {
            // The level returns: one transient excursion. Its closing
            // cut(s) are part of the same swing, not fresh shifts.
            skip_until = back;
            continue;
        }
        findings.push(Finding {
            kind: FindingKind::SpuriousShift,
            stage: region.stage,
            at_s: c,
            expected: before,
            got: after,
        });
    }

    RunAudit {
        label,
        tn,
        bucket_s,
        segments,
        findings,
    }
}

/// The series' bucket width, inferred from its sample spacing.
fn bucket_width(series: &TimeSeries) -> f64 {
    if series.points.len() >= 2 {
        (series.points[1].0 - series.points[0].0).max(1e-9)
    } else {
        1.0
    }
}

/// Runs the change-point fit with a penalty scaled to the measured
/// noise: a split must buy more squared-error reduction than noise
/// alone would hand it. `2 ln n` per change point is the classic
/// (BIC-flavored) rate; the `(0.04·Tn)²` floor keeps pathologically
/// quiet series from splitting on invisible steps.
fn blind_fit(series: &TimeSeries, tn: f64, bucket_s: f64, cfg: &AuditConfig) -> Vec<AuditSegment> {
    let n = series.points.len();
    if n == 0 {
        return Vec::new();
    }
    let floor = (0.04 * tn).powi(2);
    let penalty = series.noise_variance().max(floor) * 2.0 * (n.max(2) as f64).ln();
    series
        .piecewise_fit(cfg.max_segments, penalty)
        .into_iter()
        .map(|s| AuditSegment {
            t0: s.start as f64 * bucket_s,
            t1: s.end as f64 * bucket_s,
            mean: s.mean,
        })
        .collect()
}

/// Splits the run into the log's regions: the pre-fault steady state,
/// then every non-empty marker interval, each with the level the model
/// extraction assigns it.
fn log_regions(
    series: &TimeSeries,
    markers: &StageMarkers,
    tn: f64,
    cfg: &AuditConfig,
) -> Vec<LogRegion> {
    let mut regions = Vec::new();
    let pre0 = cfg.startup_exclusion_s.min(markers.fault);
    if markers.fault > pre0 {
        regions.push(LogRegion {
            stage: None,
            t0: pre0,
            t1: markers.fault,
            level: series.mean_between(pre0, markers.fault).unwrap_or(tn),
            stable: true,
        });
    }
    for (stage, t0, t1) in markers.intervals() {
        if t1 - t0 <= 0.0 {
            continue;
        }
        regions.push(LogRegion {
            stage: Some(stage),
            t0,
            t1,
            level: series.mean_between(t0, t1).unwrap_or(tn),
            stable: matches!(stage, Stage::C | Stage::E),
        });
    }
    regions
}

/// Mean of the fitted model over `[t0, t1)`, weighted by overlap.
/// `None` when the window misses the fit entirely.
fn fitted_mean_between(segments: &[AuditSegment], t0: f64, t1: f64) -> Option<f64> {
    let mut weight = 0.0;
    let mut sum = 0.0;
    for s in segments {
        let lo = s.t0.max(t0);
        let hi = s.t1.min(t1);
        if hi > lo {
            weight += hi - lo;
            sum += (hi - lo) * s.mean;
        }
    }
    if weight > 0.0 {
        Some(sum / weight)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic run: 1 s buckets at mid-bucket timestamps, levels
    /// given per `[t0, t1)` span, like the real recorder produces.
    fn series(spans: &[(f64, f64, f64)]) -> TimeSeries {
        let mut pts = Vec::new();
        for &(t0, t1, v) in spans {
            let mut t = t0 + 0.5;
            while t < t1 {
                // A deterministic ±2% wobble so the fit sees realistic
                // (non-zero) noise.
                let wiggle = 1.0 + 0.02 * ((t as u64 % 2) as f64 * 2.0 - 1.0);
                pts.push((t, v * wiggle));
                t += 1.0;
            }
        }
        TimeSeries::new(pts)
    }

    fn crash_markers() -> StageMarkers {
        StageMarkers {
            fault: 30.0,
            detected: Some(40.0),
            stabilized: Some(40.0),
            recovered: 60.0,
            restabilized: Some(60.0),
            reset: None,
            reset_done: None,
            end: 90.0,
        }
    }

    fn crash_series() -> TimeSeries {
        // Tn 1000 until the fault, stall to 0 until detection, degraded
        // 750 until repair, back to normal after.
        series(&[
            (0.0, 30.0, 1000.0),
            (30.0, 40.0, 0.0),
            (40.0, 60.0, 750.0),
            (60.0, 90.0, 1000.0),
        ])
    }

    #[test]
    fn consistent_markers_pass() {
        let audit = audit_series(
            &crash_series(),
            &crash_markers(),
            1000.0,
            "test".into(),
            &AuditConfig::default(),
        );
        assert!(
            audit.pass(),
            "expected agreement, got: {:?}",
            audit.findings.iter().map(Finding::describe).collect::<Vec<_>>()
        );
        assert!(audit.segments.len() >= 4, "fit: {:?}", audit.segments);
    }

    #[test]
    fn shifted_detection_marker_is_caught() {
        let mut m = crash_markers();
        // Claim the system stabilized at 35 s when the curve still sits
        // at zero until 40: stage C's plateau only forms 5 s after the
        // marker says it did.
        m.detected = Some(35.0);
        m.stabilized = Some(35.0);
        let audit = audit_series(
            &crash_series(),
            &m,
            1000.0,
            "test".into(),
            &AuditConfig::default(),
        );
        assert!(!audit.pass(), "a shifted boundary must be flagged");
        assert!(audit
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::MissedBoundary));
    }

    #[test]
    fn shifted_recovery_marker_is_caught() {
        let mut m = crash_markers();
        // Claim the component recovered (the 750 → 1000 jump) 10 s
        // before the curve shows it.
        m.recovered = 50.0;
        m.restabilized = Some(50.0);
        let audit = audit_series(
            &crash_series(),
            &m,
            1000.0,
            "test".into(),
            &AuditConfig::default(),
        );
        assert!(audit
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::MissedBoundary));
    }

    #[test]
    fn a_coarse_fit_shows_up_as_level_mismatches() {
        // Cap the fit at one segment: every stable stage's level is now
        // polluted by its neighbours, which the level check must see.
        let cfg = AuditConfig {
            max_segments: 1,
            ..AuditConfig::default()
        };
        let audit = audit_series(&crash_series(), &crash_markers(), 1000.0, "test".into(), &cfg);
        assert!(audit
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::LevelMismatch));
    }

    #[test]
    fn unlogged_mid_stage_crash_is_a_spurious_shift() {
        // The curve collapses mid-stage-E with no marker anywhere near.
        let s = series(&[
            (0.0, 30.0, 1000.0),
            (30.0, 40.0, 0.0),
            (40.0, 60.0, 750.0),
            (60.0, 75.0, 1000.0),
            (75.0, 90.0, 200.0),
        ]);
        let audit = audit_series(
            &s,
            &crash_markers(),
            1000.0,
            "test".into(),
            &AuditConfig::default(),
        );
        assert!(audit
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::SpuriousShift && f.stage == Some(Stage::E)),
            "findings: {:?}",
            audit.findings.iter().map(Finding::describe).collect::<Vec<_>>()
        );
    }

    #[test]
    fn a_transient_excursion_is_not_spurious() {
        // A 4 s swing up and back mid-stage-E: the level returns, so
        // this is service-level oscillation, not an unlogged event.
        let s = series(&[
            (0.0, 30.0, 1000.0),
            (30.0, 40.0, 0.0),
            (40.0, 60.0, 750.0),
            (60.0, 72.0, 1000.0),
            (72.0, 76.0, 1300.0),
            (76.0, 90.0, 1000.0),
        ]);
        let audit = audit_series(
            &s,
            &crash_markers(),
            1000.0,
            "test".into(),
            &AuditConfig::default(),
        );
        assert!(
            audit.findings.iter().all(|f| f.kind != FindingKind::SpuriousShift),
            "excursion flagged: {:?}",
            audit.findings.iter().map(Finding::describe).collect::<Vec<_>>()
        );
    }

    #[test]
    fn immaterial_boundaries_are_not_audited() {
        // Detection barely moves the level (6% of Tn): blind fit cannot
        // see it and must not be required to.
        let s = series(&[
            (0.0, 30.0, 1000.0),
            (30.0, 60.0, 940.0),
            (60.0, 90.0, 1000.0),
        ]);
        let m = StageMarkers {
            fault: 30.0,
            detected: Some(45.0), // invisible A→B/C boundary
            stabilized: Some(45.0),
            recovered: 60.0,
            restabilized: Some(60.0),
            reset: None,
            reset_done: None,
            end: 90.0,
        };
        let audit = audit_series(&s, &m, 1000.0, "test".into(), &AuditConfig::default());
        assert!(
            audit.findings.iter().all(|f| f.kind != FindingKind::MissedBoundary),
            "immaterial boundary flagged: {:?}",
            audit.findings.iter().map(Finding::describe).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_series_audits_to_a_clean_slate() {
        let audit = audit_series(
            &TimeSeries::new(Vec::new()),
            &crash_markers(),
            1000.0,
            "empty".into(),
            &AuditConfig::default(),
        );
        // Nothing measured: no segments, but also no missed boundaries
        // claimed against a curve that does not exist.
        assert!(audit.segments.is_empty());
    }
}
