//! The audit and the report against real (small-scale) cluster runs:
//! the blind segmentation must agree with the run log on healthy runs,
//! must catch a falsified marker, and the rendered report bytes must be
//! reproducible.

use experiments::cluster::ClusterConfig;
use experiments::phase1::{run_fault_experiment, FaultRunResult, FaultScenario};
use mendosus::FaultKind;
use press::PressVersion;
use report::{audit_run, render_report, ReportMeta};
use simnet::fabric::NodeId;

fn quick(version: PressVersion, kind: FaultKind) -> FaultRunResult {
    run_fault_experiment(
        ClusterConfig::small(version),
        FaultScenario::quick(kind, NodeId(3)),
        11,
    )
}

#[test]
fn blind_audit_agrees_with_real_runs() {
    // Two contrasting behaviours: VIA detects a node crash fast and
    // reconfigures; TCP stalls blindly through a link fault.
    for (v, k) in [
        (PressVersion::Via5, FaultKind::NodeCrash),
        (PressVersion::Tcp, FaultKind::LinkDown),
    ] {
        let audit = audit_run(&quick(v, k));
        assert!(
            audit.pass(),
            "{}: {:?}",
            audit.label,
            audit
                .findings
                .iter()
                .map(|f| f.describe())
                .collect::<Vec<_>>()
        );
        assert!(!audit.segments.is_empty());
    }
}

#[test]
fn a_falsified_recovery_marker_fails_the_audit() {
    // TCP under a link fault collapses until the link returns (~40 s on
    // the quick profile). Claiming recovery 12 s early contradicts the
    // curve, and the blind fit must say so.
    let mut r = quick(PressVersion::Tcp, FaultKind::LinkDown);
    let honest = audit_run(&r);
    assert!(honest.pass(), "baseline must pass: {:?}", honest.findings);
    r.markers.recovered -= 12.0;
    r.markers.restabilized = Some(r.markers.recovered);
    let audit = audit_run(&r);
    assert!(
        !audit.pass(),
        "a recovery marker shifted 12 s early must be flagged"
    );
}

#[test]
fn report_bytes_are_reproducible() {
    let runs = vec![quick(PressVersion::Via5, FaultKind::NodeCrash)];
    let meta = ReportMeta {
        target: "fig3".to_string(),
        title: "Figure 3: node crash".to_string(),
        scale: "small".to_string(),
        seed: 11,
    };
    let a = render_report(&meta, &runs, &[]);
    let b = render_report(&meta, &runs, &[]);
    assert_eq!(a, b, "rendering must be byte-deterministic");
    assert!(a.contains("VIA-PRESS-5"));
}

