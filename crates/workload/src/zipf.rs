//! Zipf-distributed file popularity.

use simnet::SimRng;

/// A Zipf(α) sampler over `n` items (0-based ranks), using a
/// precomputed CDF and binary search. Web-trace popularity is classically
/// Zipf-like with α around 0.7–0.9.
///
/// # Example
///
/// ```
/// use simnet::SimRng;
/// use workload::Zipf;
///
/// let zipf = Zipf::new(1000, 0.8);
/// let mut rng = SimRng::seed_from(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative or not finite.
    pub fn new(n: u32, alpha: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!(alpha >= 0.0 && alpha.is_finite(), "bad zipf exponent {alpha}");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / f64::from(k).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` only for an impossible empty sampler (kept for API
    /// completeness; the constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws an item rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        let u = rng.uniform();
        self.cdf.partition_point(|&c| c < u) as u32
    }

    /// Probability mass of the `top` most popular items — used to
    /// reason about cache hit rates.
    pub fn mass_of_top(&self, top: usize) -> f64 {
        if top == 0 {
            0.0
        } else {
            self.cdf[(top - 1).min(self.cdf.len() - 1)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_range_and_skewed() {
        let z = Zipf::new(10_000, 0.8);
        let mut rng = SimRng::seed_from(7);
        let mut top_100 = 0;
        let n = 20_000;
        for _ in 0..n {
            let s = z.sample(&mut rng);
            assert!(s < 10_000);
            if s < 100 {
                top_100 += 1;
            }
        }
        let frac = top_100 as f64 / n as f64;
        let expected = z.mass_of_top(100);
        assert!(
            (frac - expected).abs() < 0.02,
            "top-100 mass {frac} vs expected {expected}"
        );
        // Zipf(0.8) over 10k items puts far more than 1% on the top 1%.
        assert!(expected > 0.15, "expected mass {expected}");
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(100, 0.0);
        assert!((z.mass_of_top(50) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let z = Zipf::new(1000, 1.1);
        assert!(z.cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(z.len(), 1000);
        assert!(!z.is_empty());
    }

    #[test]
    fn mass_of_top_saturates() {
        let z = Zipf::new(10, 0.8);
        assert_eq!(z.mass_of_top(0), 0.0);
        assert!((z.mass_of_top(10) - 1.0).abs() < 1e-12);
        assert!((z.mass_of_top(99) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_zipf_is_rejected() {
        Zipf::new(0, 0.8);
    }
}
