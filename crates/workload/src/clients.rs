//! The open-loop Poisson client pool.

use std::collections::HashMap;

use simnet::fabric::NodeId;
use simnet::{
    AvailabilityCounter, LatencyHistogram, SimDuration, SimRng, SimTime, ThroughputRecorder,
    TimeSeries,
};

use crate::zipf::Zipf;

/// Client-side parameters (§5.1).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Aggregate request rate over all clients, requests per second.
    pub rate: f64,
    /// Number of server nodes (round-robin DNS target set).
    pub nodes: usize,
    /// Distinct files.
    pub files: u32,
    /// Zipf popularity exponent.
    pub zipf_alpha: f64,
    /// Give up if the connection cannot be completed in this long.
    pub connect_timeout: SimDuration,
    /// Give up if the connected request is not answered in this long.
    pub request_timeout: SimDuration,
    /// Throughput-series bucket width.
    pub bucket: SimDuration,
}

impl ClientConfig {
    /// The paper's client setup, at the given aggregate rate.
    pub fn paper(rate: f64) -> Self {
        ClientConfig {
            rate,
            nodes: 4,
            files: 60_000,
            zipf_alpha: 0.8,
            connect_timeout: SimDuration::from_secs(2),
            request_timeout: SimDuration::from_secs(6),
            bucket: SimDuration::from_secs(1),
        }
    }
}

/// Events the composition layer schedules for the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientEvent {
    /// Issue the next request (and schedule the following arrival).
    Arrival,
    /// A request's completion deadline passed.
    Deadline(u64),
}

/// The aggregate client population: generates arrivals, tracks
/// outstanding requests, and scores outcomes.
///
/// Protocol with the composition layer:
///
/// 1. Schedule the time returned by [`ClientPool::first_arrival`].
/// 2. On [`ClientEvent::Arrival`], call [`ClientPool::arrive`]; hand the
///    request to the chosen node and report the outcome with
///    [`ClientPool::accepted`] / [`ClientPool::connect_failed`];
///    schedule the returned next arrival and (on accept) the deadline.
/// 3. When the server replies, call [`ClientPool::complete`].
/// 4. On [`ClientEvent::Deadline`], call [`ClientPool::deadline`].
#[derive(Debug)]
pub struct ClientPool {
    config: ClientConfig,
    zipf: Zipf,
    rng: SimRng,
    next_id: u64,
    next_node: usize,
    outstanding: HashMap<u64, (SimTime, SimTime)>,
    counter: AvailabilityCounter,
    recorder: ThroughputRecorder,
    latency: LatencyHistogram,
    /// Per-time-bucket response-time distributions (same buckets as the
    /// throughput series), so reports can merge them into per-stage
    /// percentiles after the stage boundaries are known.
    latency_buckets: Vec<LatencyHistogram>,
}

impl ClientPool {
    /// Creates the pool with its own random stream.
    pub fn new(config: ClientConfig, rng: SimRng) -> Self {
        let zipf = Zipf::new(config.files, config.zipf_alpha);
        let recorder = ThroughputRecorder::new(config.bucket);
        ClientPool {
            config,
            zipf,
            rng,
            next_id: 0,
            next_node: 0,
            outstanding: HashMap::new(),
            counter: AvailabilityCounter::new(),
            recorder,
            latency: LatencyHistogram::new(),
            latency_buckets: Vec::new(),
        }
    }

    /// The time of the first arrival.
    pub fn first_arrival(&mut self, now: SimTime) -> SimTime {
        now + self.inter_arrival()
    }

    fn inter_arrival(&mut self) -> SimDuration {
        SimDuration::from_secs_f64(self.rng.exponential(self.config.rate))
    }

    /// Issues a request: returns `(request, target node, next arrival)`.
    pub fn arrive(&mut self, now: SimTime) -> (press::Request, NodeId, SimTime) {
        self.next_id += 1;
        let file = self.zipf.sample(&mut self.rng);
        let req = press::Request {
            id: self.next_id,
            file,
            issued: now,
        };
        let node = NodeId(self.next_node);
        self.next_node = (self.next_node + 1) % self.config.nodes;
        self.counter.attempts += 1;
        (req, node, now + self.inter_arrival())
    }

    /// The server accepted `req`; returns the completion deadline the
    /// composition layer must schedule as [`ClientEvent::Deadline`].
    pub fn accepted(&mut self, now: SimTime, req_id: u64) -> SimTime {
        let deadline = now + self.config.request_timeout;
        self.outstanding.insert(req_id, (deadline, now));
        deadline
    }

    /// The connection attempt failed (node down or accept queue
    /// overflow): the client gives up after the connect timeout.
    pub fn connect_failed(&mut self) {
        self.counter.connect_timeouts += 1;
    }

    /// The connection was refused outright (machine up, server process
    /// dead): the client fails immediately.
    pub fn refused(&mut self) {
        self.counter.refused += 1;
    }

    /// The server's response left at `at`; scores a success if the
    /// client was still waiting. Returns `true` when the request was
    /// scored (closed): its pending deadline is now a guaranteed no-op,
    /// so the composition layer may cancel the deadline event instead
    /// of letting it transit the queue.
    pub fn complete(&mut self, at: SimTime, req_id: u64) -> bool {
        if let Some((deadline, issued)) = self.outstanding.get(&req_id).copied() {
            if at <= deadline {
                self.outstanding.remove(&req_id);
                self.counter.successes += 1;
                self.recorder.record(at);
                let secs = at.saturating_since(issued).as_secs_f64();
                self.latency.record(secs);
                let idx = (at.as_nanos() / self.config.bucket.as_nanos()) as usize;
                if idx >= self.latency_buckets.len() {
                    self.latency_buckets
                        .resize_with(idx + 1, LatencyHistogram::new);
                }
                self.latency_buckets[idx].record(secs);
                return true;
            }
            // A response after the deadline is scored by the deadline
            // event instead.
        }
        false
    }

    /// A deadline fired; scores a timeout if the request is still open.
    pub fn deadline(&mut self, req_id: u64) {
        if self.outstanding.remove(&req_id).is_some() {
            self.counter.request_timeouts += 1;
        }
    }

    /// Requests currently awaiting a response.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Outcome tallies so far.
    pub fn counter(&self) -> &AvailabilityCounter {
        &self.counter
    }

    /// Response-time distribution of successful requests.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Per-bucket response-time distributions over `[0, end)`, one
    /// histogram per throughput bucket (empty histograms where nothing
    /// completed). Like [`ClientPool::throughput`], the partial bucket
    /// containing `end` is dropped.
    pub fn latency_timeline(&self, end: SimTime) -> Vec<LatencyHistogram> {
        let n = (end.as_nanos() / self.config.bucket.as_nanos()) as usize;
        (0..n)
            .map(|i| {
                self.latency_buckets
                    .get(i)
                    .cloned()
                    .unwrap_or_default()
            })
            .collect()
    }

    /// The throughput timeline over `[0, end)`.
    pub fn throughput(&self, end: SimTime) -> TimeSeries {
        self.recorder.series(end)
    }

    /// Successful requests per second over the window `[t0, t1)`
    /// (seconds), for steady-state measurements.
    pub fn mean_throughput(&self, end: SimTime, t0: f64, t1: f64) -> f64 {
        self.throughput(end).mean_between(t0, t1).unwrap_or(0.0)
    }

    /// Dumps the pool's outcome tallies and response-time shape into a
    /// [`telemetry::MetricsRegistry`].
    pub fn export_metrics(&self, reg: &mut telemetry::MetricsRegistry) {
        let c = &self.counter;
        reg.counter_add("client.attempts", c.attempts);
        reg.counter_add("client.successes", c.successes);
        reg.counter_add("client.connect_timeouts", c.connect_timeouts);
        reg.counter_add("client.request_timeouts", c.request_timeouts);
        reg.counter_add("client.refused", c.refused);
        if self.latency.count() > 0 {
            reg.gauge_set("client.latency_mean_ms", self.latency.mean() * 1e3);
            reg.gauge_set("client.latency_p50_ms", self.latency.quantile(0.50) * 1e3);
            reg.gauge_set("client.latency_p95_ms", self.latency.quantile(0.95) * 1e3);
            reg.gauge_set("client.latency_p99_ms", self.latency.quantile(0.99) * 1e3);
            reg.gauge_set("client.latency_max_ms", self.latency.max() * 1e3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(rate: f64) -> ClientPool {
        ClientPool::new(ClientConfig::paper(rate), SimRng::seed_from(3))
    }

    #[test]
    fn arrivals_average_the_configured_rate() {
        let mut p = pool(1000.0);
        let mut t = p.first_arrival(SimTime::ZERO);
        let mut n = 0u64;
        while t < SimTime::from_secs(10) {
            let (_, _, next) = p.arrive(t);
            t = next;
            n += 1;
        }
        let rate = n as f64 / 10.0;
        assert!((rate - 1000.0).abs() < 50.0, "measured rate {rate}");
    }

    #[test]
    fn round_robin_dns_covers_all_nodes() {
        let mut p = pool(100.0);
        let mut seen = [0u32; 4];
        let mut t = SimTime::ZERO;
        for _ in 0..40 {
            let (_, node, next) = p.arrive(t);
            seen[node.0] += 1;
            t = next;
        }
        assert_eq!(seen, [10, 10, 10, 10]);
    }

    #[test]
    fn success_and_timeout_scoring() {
        let mut p = pool(100.0);
        let t0 = SimTime::from_secs(1);
        let (req, _, _) = p.arrive(t0);
        let deadline = p.accepted(t0, req.id);
        assert_eq!(deadline, t0 + SimDuration::from_secs(6));
        // Completed in time: success.
        p.complete(t0 + SimDuration::from_millis(5), req.id);
        p.deadline(req.id); // deadline later finds nothing
        assert_eq!(p.counter().successes, 1);
        assert_eq!(p.counter().request_timeouts, 0);

        // Second request times out.
        let (req2, _, _) = p.arrive(t0);
        p.accepted(t0, req2.id);
        p.deadline(req2.id);
        assert_eq!(p.counter().request_timeouts, 1);
        // A very late reply after the deadline fired is not a success.
        p.complete(t0 + SimDuration::from_secs(60), req2.id);
        assert_eq!(p.counter().successes, 1);
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn late_reply_before_deadline_event_is_rejected_by_timestamp() {
        let mut p = pool(100.0);
        let t0 = SimTime::ZERO;
        let (req, _, _) = p.arrive(t0);
        p.accepted(t0, req.id);
        // Reply timestamped past the deadline, arriving before the
        // deadline event processes: not a success.
        p.complete(t0 + SimDuration::from_secs(7), req.id);
        assert_eq!(p.counter().successes, 0);
        p.deadline(req.id);
        assert_eq!(p.counter().request_timeouts, 1);
    }

    #[test]
    fn connect_failures_count_against_availability() {
        let mut p = pool(100.0);
        let (_, _, _) = p.arrive(SimTime::ZERO);
        p.connect_failed();
        assert_eq!(p.counter().attempts, 1);
        assert_eq!(p.counter().failures(), 1);
        assert_eq!(p.counter().availability(), 0.0);
    }

    #[test]
    fn latency_timeline_buckets_match_the_aggregate() {
        let mut p = pool(100.0);
        // One fast completion in bucket 0, two slower ones in bucket 2.
        for (issue_ms, take_ms) in [(100u64, 5u64), (2_100, 50), (2_300, 200)] {
            let t = SimTime::from_nanos(issue_ms * 1_000_000);
            let (req, _, _) = p.arrive(t);
            p.accepted(t, req.id);
            p.complete(t + SimDuration::from_millis(take_ms), req.id);
        }
        let timeline = p.latency_timeline(SimTime::from_secs(4));
        assert_eq!(timeline.len(), 4);
        assert_eq!(timeline[0].count(), 1);
        assert_eq!(timeline[1].count(), 0);
        assert_eq!(timeline[2].count(), 2);
        assert_eq!(timeline[3].count(), 0);
        // Merging the buckets reproduces the aggregate histogram.
        let mut merged = LatencyHistogram::new();
        for h in &timeline {
            merged.merge(h);
        }
        assert_eq!(&merged, p.latency());
        // Metrics export includes the p50/p95/p99 ladder.
        let mut reg = telemetry::MetricsRegistry::new();
        p.export_metrics(&mut reg);
        for g in [
            "client.latency_p50_ms",
            "client.latency_p95_ms",
            "client.latency_p99_ms",
        ] {
            assert!(reg.gauge(g).is_some(), "missing {g}");
        }
    }

    #[test]
    fn throughput_series_reflects_completions() {
        let mut p = pool(100.0);
        for i in 0..10 {
            let t = SimTime::from_nanos(100_000_000 * i);
            let (req, _, _) = p.arrive(t);
            p.accepted(t, req.id);
            p.complete(t + SimDuration::from_millis(1), req.id);
        }
        let series = p.throughput(SimTime::from_secs(2));
        assert_eq!(series.points[0].1, 10.0);
        assert_eq!(series.points[1].1, 0.0);
    }
}
