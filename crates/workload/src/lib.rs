//! Client workload generation (§5.1 of the paper).
//!
//! Clients follow a trace with a Zipf-like popularity distribution over
//! a fixed-size document set (the paper normalizes all files to the
//! average size of its Rutgers trace). Load is open-loop: requests
//! arrive as a Poisson process at a configurable aggregate rate and are
//! spread over the cluster round-robin (the paper uses round-robin
//! DNS). Each request times out after 2 s if its connection cannot be
//! completed and 6 s if the completed connection does not produce a
//! response.

pub mod clients;
pub mod zipf;

pub use clients::{ClientConfig, ClientEvent, ClientPool};
pub use zipf::Zipf;
