//! The conservative-parallel engine must be invisible in every output:
//! for a fixed seed, each figure's rendered text is byte-identical
//! whatever the `--sim-threads` count, and the two parallelism axes
//! (`--jobs` across runs, `--sim-threads` within a run) compose
//! without perturbing a single byte.
//!
//! These tests mutate the process-global sim-threads default, so they
//! serialize on [`LOCK`] (the test harness otherwise runs them on
//! concurrent threads within this process).

use std::sync::Mutex;

use experiments::figures::{fig2, fig3, fig4, fig5};
use experiments::phase2::RunScale;
use experiments::set_default_sim_threads;

static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per (sim_threads, jobs) combination and asserts every
/// result equals the sequential single-job baseline.
fn sweep(label: &str, f: &dyn Fn(usize) -> String) {
    let _guard = LOCK.lock().unwrap();
    set_default_sim_threads(1);
    let base = f(1);
    assert!(!base.is_empty());
    for threads in [1usize, 2, 4] {
        for jobs in [1usize, 2] {
            if (threads, jobs) == (1, 1) {
                continue;
            }
            set_default_sim_threads(threads);
            let got = f(jobs);
            assert_eq!(
                base, got,
                "{label} diverged at sim-threads={threads} jobs={jobs}"
            );
        }
    }
    set_default_sim_threads(1);
}

#[test]
fn fig3_identical_across_sim_threads_and_jobs() {
    sweep("fig3", &|jobs| fig3(RunScale::Small, 2003, jobs));
}

#[test]
fn remaining_timeline_figures_identical_across_sim_threads() {
    // The full 3x2 sweep above already exercises axis composition;
    // the other timeline targets check the thread axis at both ends.
    let _guard = LOCK.lock().unwrap();
    for (label, f) in [
        ("fig2", fig2 as fn(RunScale, u64, usize) -> String),
        ("fig4", fig4),
        ("fig5", fig5),
    ] {
        set_default_sim_threads(1);
        let base = f(RunScale::Small, 2003, 1);
        set_default_sim_threads(4);
        let par = f(RunScale::Small, 2003, 2);
        set_default_sim_threads(1);
        assert_eq!(base, par, "{label} diverged at sim-threads=4 jobs=2");
    }
}

/// A reduced Monte-Carlo text render for the parity sweep: the full
/// showcase plus cross-check is verify.sh territory; two replications
/// exercise the same code paths (generated multi-fault campaigns,
/// correlated expansion, gray faults concurrent with fail-stop ones)
/// at a fraction of the wall time.
fn mc_text(setup: &experiments::MonteCarloSetup, jobs: usize) -> String {
    let run = experiments::run_montecarlo(setup, RunScale::Small, 2003, jobs);
    // Fold every numeric output into the parity fingerprint: the
    // estimate, each replication's measurements, and the campaigns.
    let mut s = format!("{:?} {:?}", run.result, run.measure_from);
    for rep in &run.reps {
        s.push_str(&format!(
            "\n{:x} {:?} {:?} {:?}",
            rep.seed, rep.overlap, rep.campaign, rep.series.points
        ));
    }
    s
}

#[test]
fn gossip_membership_identical_across_sim_threads_and_jobs() {
    // One N=4 column of the detector sweep — both detectors, all three
    // scenarios (rack crash, gray partition, rejoin). The gossip runs
    // carry the epidemic detector's randomized probe order, so this is
    // the direct check that SWIM's per-node RNG survives sharding: the
    // full Debug render of every point must match the sequential
    // single-job baseline bit for bit.
    sweep("membership-n4", &|jobs| {
        format!(
            "{:?}",
            experiments::membership::study_points(&[4], RunScale::Small, 2003, jobs, false)
        )
    });
}

#[test]
fn montecarlo_multi_fault_identical_across_sim_threads_and_jobs() {
    use press::PressVersion;
    let mut setup = experiments::MonteCarloSetup::showcase(PressVersion::TcpHb, RunScale::Small);
    setup.replications = 2;
    sweep("montecarlo-showcase", &|jobs| mc_text(&setup, jobs));
}

#[test]
fn montecarlo_gray_campaign_identical_across_sim_threads_and_jobs() {
    use mendosus::{ArrivalClass, FaultKind};
    use press::PressVersion;
    use simnet::SimDuration;
    // A gray-only universe: silent degradation, throttling, and partial
    // partitions with no fail-stop signal at all — the regime where the
    // sequential and sharded transports must still agree bit-for-bit.
    let mut setup = experiments::MonteCarloSetup::showcase(PressVersion::Via3, RunScale::Small);
    setup.classes = vec![
        ArrivalClass::new(
            FaultKind::LinkDegraded,
            SimDuration::from_secs(60),
            SimDuration::from_secs(40),
        ),
        ArrivalClass::new(
            FaultKind::CpuThrottle,
            SimDuration::from_secs(80),
            SimDuration::from_secs(35),
        ),
        ArrivalClass::new(
            FaultKind::PartialPartition,
            SimDuration::from_secs(100),
            SimDuration::from_secs(30),
        ),
    ];
    setup.rules.clear();
    setup.replications = 2;
    sweep("montecarlo-gray", &|jobs| mc_text(&setup, jobs));
}

#[test]
fn profile_sweep_identical_across_sim_threads() {
    use experiments::figures::{build_profiles, crossover, fig6};
    let _guard = LOCK.lock().unwrap();
    set_default_sim_threads(1);
    let base = build_profiles(RunScale::Small, 2003, 1);
    set_default_sim_threads(2);
    let par = build_profiles(RunScale::Small, 2003, 2);
    set_default_sim_threads(1);
    assert_eq!(fig6(&base), fig6(&par));
    assert_eq!(crossover(&base), crossover(&par));
}
