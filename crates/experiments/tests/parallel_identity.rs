//! The conservative-parallel engine must be invisible in every output:
//! for a fixed seed, each figure's rendered text is byte-identical
//! whatever the `--sim-threads` count, and the two parallelism axes
//! (`--jobs` across runs, `--sim-threads` within a run) compose
//! without perturbing a single byte.
//!
//! These tests mutate the process-global sim-threads default, so they
//! serialize on [`LOCK`] (the test harness otherwise runs them on
//! concurrent threads within this process).

use std::sync::Mutex;

use experiments::figures::{fig2, fig3, fig4, fig5};
use experiments::phase2::RunScale;
use experiments::set_default_sim_threads;

static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per (sim_threads, jobs) combination and asserts every
/// result equals the sequential single-job baseline.
fn sweep(label: &str, f: &dyn Fn(usize) -> String) {
    let _guard = LOCK.lock().unwrap();
    set_default_sim_threads(1);
    let base = f(1);
    assert!(!base.is_empty());
    for threads in [1usize, 2, 4] {
        for jobs in [1usize, 2] {
            if (threads, jobs) == (1, 1) {
                continue;
            }
            set_default_sim_threads(threads);
            let got = f(jobs);
            assert_eq!(
                base, got,
                "{label} diverged at sim-threads={threads} jobs={jobs}"
            );
        }
    }
    set_default_sim_threads(1);
}

#[test]
fn fig3_identical_across_sim_threads_and_jobs() {
    sweep("fig3", &|jobs| fig3(RunScale::Small, 2003, jobs));
}

#[test]
fn remaining_timeline_figures_identical_across_sim_threads() {
    // The full 3x2 sweep above already exercises axis composition;
    // the other timeline targets check the thread axis at both ends.
    let _guard = LOCK.lock().unwrap();
    for (label, f) in [
        ("fig2", fig2 as fn(RunScale, u64, usize) -> String),
        ("fig4", fig4),
        ("fig5", fig5),
    ] {
        set_default_sim_threads(1);
        let base = f(RunScale::Small, 2003, 1);
        set_default_sim_threads(4);
        let par = f(RunScale::Small, 2003, 2);
        set_default_sim_threads(1);
        assert_eq!(base, par, "{label} diverged at sim-threads=4 jobs=2");
    }
}

#[test]
fn profile_sweep_identical_across_sim_threads() {
    use experiments::figures::{build_profiles, crossover, fig6};
    let _guard = LOCK.lock().unwrap();
    set_default_sim_threads(1);
    let base = build_profiles(RunScale::Small, 2003, 1);
    set_default_sim_threads(2);
    let par = build_profiles(RunScale::Small, 2003, 2);
    set_default_sim_threads(1);
    assert_eq!(fig6(&base), fig6(&par));
    assert_eq!(crossover(&base), crossover(&par));
}
