//! The trace exporters must be deterministic: for a fixed seed the
//! exported bytes may not depend on the worker count, on re-runs, or on
//! anything wall-clock. This is what makes `repro -- fig3 --trace`
//! diffable and the Chrome-trace files safe to commit as goldens.

use experiments::figures::traced_timeline;
use experiments::phase2::RunScale;

#[test]
fn traced_fig3_is_byte_identical_across_job_counts() {
    let (text1, runs1) =
        traced_timeline("fig3", RunScale::Small, 2003, 1).expect("fig3 is a timeline target");
    let (text4, runs4) =
        traced_timeline("fig3", RunScale::Small, 2003, 4).expect("fig3 is a timeline target");
    // Same rendered figure text...
    assert_eq!(text1, text4);
    // ...and byte-identical exporter output for every format.
    let chrome1 = telemetry::chrome_trace_json(&runs1);
    let chrome4 = telemetry::chrome_trace_json(&runs4);
    assert_eq!(chrome1, chrome4);
    assert_eq!(telemetry::jsonl_log(&runs1), telemetry::jsonl_log(&runs4));
    let summaries = |runs: &[telemetry::RunTrace]| {
        runs.iter()
            .map(|r| r.metrics.text_summary(&r.label))
            .collect::<Vec<_>>()
    };
    assert_eq!(summaries(&runs1), summaries(&runs4));
    // The trace is substantial, not a trivially-equal empty file.
    assert!(runs1.iter().map(|r| r.events.len()).sum::<usize>() > 100);
    assert!(chrome1.len() > 10_000);
}
