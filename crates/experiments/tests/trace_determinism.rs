//! The trace exporters must be deterministic: for a fixed seed the
//! exported bytes may not depend on the worker count, on re-runs, or on
//! anything wall-clock. This is what makes `repro -- fig3 --trace`
//! diffable and the Chrome-trace files safe to commit as goldens.

use experiments::figures::traced_timeline;
use experiments::phase2::RunScale;
use experiments::scale::scale_config;
use experiments::{run_indexed, ClusterSim};
use mendosus::{Campaign, FaultKind, FaultSpec};
use press::{CacheSyncImpl, MembershipImpl, PressVersion};
use simnet::fabric::NodeId;
use simnet::{SimDuration, SimTime};

#[test]
fn traced_fig3_is_byte_identical_across_job_counts() {
    let (text1, runs1) =
        traced_timeline("fig3", RunScale::Small, 2003, 1).expect("fig3 is a timeline target");
    let (text4, runs4) =
        traced_timeline("fig3", RunScale::Small, 2003, 4).expect("fig3 is a timeline target");
    // Same rendered figure text...
    assert_eq!(text1, text4);
    // ...and byte-identical exporter output for every format.
    let chrome1 = telemetry::chrome_trace_json(&runs1);
    let chrome4 = telemetry::chrome_trace_json(&runs4);
    assert_eq!(chrome1, chrome4);
    assert_eq!(telemetry::jsonl_log(&runs1), telemetry::jsonl_log(&runs4));
    let summaries = |runs: &[telemetry::RunTrace]| {
        runs.iter()
            .map(|r| r.metrics.text_summary(&r.label))
            .collect::<Vec<_>>()
    };
    assert_eq!(summaries(&runs1), summaries(&runs4));
    // The trace is substantial, not a trivially-equal empty file.
    assert!(runs1.iter().map(|r| r.events.len()).sum::<usize>() > 100);
    assert!(chrome1.len() > 10_000);
}

/// One N = 64 node-crash run in the hardest determinism configuration:
/// the largest fabric (radix-8 fat tree with a spine), batched cache
/// digests, and the epidemic gossip detector, sharded across
/// `sim_threads` conservative workers. Load and horizon are trimmed so
/// the full 6-combo matrix stays fast under the dev profile.
type RunObservables = (
    Vec<telemetry::TraceEvent>,
    Vec<(f64, f64)>,
    Vec<(SimTime, simnet::fabric::NodeId, usize)>,
);

fn digest_gossip_run(sim_threads: usize) -> RunObservables {
    let mut config = scale_config(
        RunScale::Small,
        64,
        PressVersion::TcpHb,
        CacheSyncImpl::Digest,
        Some(MembershipImpl::Gossip),
    );
    config.rate = 8.0 * 64.0;
    config.sim_threads = sim_threads;
    config.trace = telemetry::TraceConfig::STANDARD;
    let campaign = Campaign::single(FaultSpec::transient(
        FaultKind::NodeCrash,
        NodeId(1),
        SimTime::from_secs(5),
        SimDuration::from_secs(6),
    ));
    let mut sim = ClusterSim::with_campaign(config, campaign, 29);
    sim.run_until(SimTime::from_secs(16));
    let report = sim.report();
    (
        sim.take_trace(),
        report.throughput.points.clone(),
        report.membership_log.clone(),
    )
}

#[test]
fn digest_gossip_n64_trace_is_identical_across_threads_and_jobs() {
    // The jobs axis fans the three thread counts over run_indexed;
    // jobs = 1 is the sequential baseline, jobs = 2 the worker pool.
    let run_all =
        |jobs: usize| run_indexed(jobs, vec![1usize, 2, 4], |_i, st| digest_gossip_run(st));
    let seq = run_all(1);
    let par = run_all(2);
    assert_eq!(seq.len(), 3);
    // Identical across the jobs axis for every sim-threads value...
    for (st, (a, b)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(a, b, "jobs=1 vs jobs=2 diverged at sim-threads index {st}");
    }
    // ...and across the sim-threads axis itself.
    for (i, w) in seq.iter().enumerate().skip(1) {
        assert_eq!(&seq[0], w, "sim-threads index {i} diverged from sequential");
    }
    // The comparison is substantial, not trivially-equal empty data.
    assert!(
        seq[0].0.len() > 100,
        "expected a non-trivial trace, got {} events",
        seq[0].0.len()
    );
    assert!(!seq[0].2.is_empty(), "the crash must perturb membership");
}
