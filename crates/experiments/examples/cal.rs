use experiments::{ClusterConfig, ClusterSim};
use press::PressVersion;
use simnet::SimTime;

fn main() {
    for v in PressVersion::ALL {
        let mut sim = ClusterSim::new(ClusterConfig::paper_defaults(v), 42);
        sim.run_until(SimTime::from_secs(40));
        let t = sim.mean_throughput(10.0, 40.0);
        let r = sim.report();
        println!(
            "{:<14} measured {:7.0} paper {:6.0} ratio {:.3} avail {:.4}",
            v.name(), t, v.paper_throughput(), t / v.paper_throughput(),
            r.availability.availability()
        );
    }
}
