//! Cluster-size scaling study: Tn / AT / AA / P and control-plane cost
//! as the cluster grows from the paper's 4 nodes to 64, under both
//! cache-synchronization protocols ([`CacheSyncImpl::Eager`], the
//! paper's per-action broadcast, and [`CacheSyncImpl::Digest`], the
//! batched-digest extension) and both failure detectors.
//!
//! The paper measures everything on a 4-node clan, where broadcasting
//! every caching action costs 3 frames. The broadcast is O(N) frames
//! per action, O(N²) cluster-wide — this sweep makes that visible and
//! measures what the digest protocol buys back.
//!
//! **Scenario.** Each point is a fig3-style transient node crash (node
//! 1's machine fails mid-run and rejoins), run on a *cold* cluster:
//! caches start empty, so the cooperative-cache write path carries
//! load-proportional churn for the whole run. A prewarmed cluster
//! serves every request from cache without a single caching action —
//! steady state says nothing about control-plane scaling — while cache
//! filling is exactly the regime where eager broadcast pays O(N) per
//! request. Offered load and the per-node document-set share are fixed
//! per node (rate ∝ N, files ∝ N), so the per-request cache-miss
//! profile is the same at every N and control frames *per request* are
//! directly comparable across cluster sizes: eager grows ∝ (N−1),
//! digest stays bounded by `fanout / digest_interval` per node
//! regardless of load.
//!
//! **Fabric.** Points run on a multi-switch fat tree
//! ([`FabricConfig::fat_tree`], radix 8): one leaf switch at N ≤ 8, a
//! spine above 8 leaves at N = 64. The fabric's `lookahead()` stays at
//! the same-switch path, so `--sim-threads` sharding remains sound and
//! byte-identical at every size.
//!
//! Tn is the mean served throughput over the final (warm, recovered)
//! window; AT is successes over the whole run; AA is the whole-run
//! availability; P is the paper's performability metric on (Tn, AA).
//! `ctrl` counts `CacheAdd`/`CacheEvict`/`CacheDigest` frames actually
//! handed to the transport, cluster-wide.
//!
//! Every run is an independent `(config, campaign, seed)` triple fanned
//! over [`run_indexed`], so output is byte-identical for any `--jobs` ×
//! `--sim-threads` combination.

use mendosus::{Campaign, FaultKind, FaultSpec};
use performability::metric::{performability, IDEAL_AVAILABILITY};
use press::{CacheSyncImpl, MembershipImpl, PressVersion};
use simnet::fabric::{FabricConfig, NodeId};
use simnet::{SimDuration, SimTime};

use crate::cluster::{ClusterConfig, ClusterSim};
use crate::membership::detector_name;
use crate::phase2::RunScale;
use crate::render::table;
use crate::runner::run_indexed;

/// Cluster sizes swept at paper scale (the paper's test-bed is the
/// smallest point).
pub const SWEEP_NODES: [usize; 3] = [4, 16, 64];

/// Cluster sizes swept at `--small` scale (the CI-gated golden).
pub const SMALL_SWEEP_NODES: [usize; 2] = [4, 16];

/// Leaf-switch radix of the sweep's fat-tree fabrics: N ≤ 8 fits one
/// leaf, N = 64 takes 8 leaves under a spine.
const LEAF_RADIX: usize = 8;

/// One `(N, version, sync, detector)` sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Cluster size.
    pub nodes: usize,
    /// The PRESS version under test.
    pub version: PressVersion,
    /// Cache-synchronization protocol.
    pub sync: CacheSyncImpl,
    /// Failure detector (`None` for the VIA versions, which detect
    /// failures through transport errors rather than a detector).
    pub detector: Option<MembershipImpl>,
    /// Mean served throughput over the final warm window (req/s).
    pub tn: f64,
    /// Successful requests per second over the whole run.
    pub at: f64,
    /// Fraction of requests served over the whole run.
    pub aa: f64,
    /// The performability metric `P` on (Tn, AA).
    pub p: f64,
    /// Cache-sync control frames handed to the transport, cluster-wide.
    pub ctrl_frames: u64,
    /// Control frames per successful request.
    pub ctrl_per_req: f64,
    /// Node-level metrics snapshot, when requested.
    pub metrics: Option<String>,
    /// Rendered root-cause attribution section, when requested.
    pub attr_text: Option<String>,
}

/// Short label for a sync protocol ("eager" / "digest").
pub fn sync_name(s: CacheSyncImpl) -> &'static str {
    match s {
        CacheSyncImpl::Eager => "eager",
        CacheSyncImpl::Digest => "digest",
    }
}

/// Crash instant: late enough that the cluster is partially warm and
/// the crashed node holds a real share of the cache.
fn fault_at_s(scale: RunScale) -> u64 {
    match scale {
        RunScale::Paper => 20,
        RunScale::Small => 10,
    }
}

/// Machine-down duration (transient; the node restarts and rejoins).
fn crash_secs(scale: RunScale) -> u64 {
    match scale {
        RunScale::Paper => 45,
        RunScale::Small => 20,
    }
}

/// Whole-run length.
fn run_secs(scale: RunScale) -> u64 {
    match scale {
        RunScale::Paper => 120,
        RunScale::Small => 60,
    }
}

/// Warm-window width for Tn (the run's tail: caches full, node 1 back).
fn tn_window_s(scale: RunScale) -> f64 {
    match scale {
        RunScale::Paper => 20.0,
        RunScale::Small => 10.0,
    }
}

/// The sweep's cluster config at size `n`.
///
/// Per-node quantities are held fixed as `n` grows — document-set share
/// (files ∝ N against the unchanged per-node cache) and offered load
/// (rate ∝ N, sized so even an all-miss cold start stays within the
/// per-node disk bandwidth) — so every N sees the same per-node,
/// per-request work and the sweep isolates the communication
/// architecture.
pub fn scale_config(
    scale: RunScale,
    n: usize,
    version: PressVersion,
    sync: CacheSyncImpl,
    detector: Option<MembershipImpl>,
) -> ClusterConfig {
    let mut c = match scale {
        RunScale::Paper => ClusterConfig::fault_experiment(version),
        RunScale::Small => ClusterConfig::small(version),
    };
    c.press.nodes = n;
    c.press.cache_sync = sync;
    if let Some(d) = detector {
        c.press.membership = d;
    }
    c.fabric = FabricConfig::fat_tree(n, LEAF_RADIX);
    // 2 disks × 9 ms service ≈ 222 reads/s per node: the cold-start
    // all-miss phase must fit under that, with headroom for the
    // recovery re-caching burst.
    match scale {
        RunScale::Paper => {
            c.press.files = 15_000 * n as u32;
            c.rate = 200.0 * n as f64;
        }
        RunScale::Small => {
            c.press.files = 1_500 * n as u32;
            c.rate = 150.0 * n as f64;
        }
    }
    c.prewarm = false;
    c
}

/// Optional per-point collectors: the node-level metrics snapshot
/// (`--metrics`) and the root-cause attribution report
/// (`--attribution`).
#[derive(Clone, Copy, Default)]
struct PointExtras {
    metrics: bool,
    attr: bool,
}

/// One sweep point: cold-start run with a transient node-1 crash.
fn node_crash_point(
    scale: RunScale,
    n: usize,
    version: PressVersion,
    sync: CacheSyncImpl,
    detector: Option<MembershipImpl>,
    seed: u64,
    extras: PointExtras,
) -> ScalePoint {
    let run_s = run_secs(scale);
    let campaign = Campaign::single(FaultSpec::transient(
        FaultKind::NodeCrash,
        NodeId(1),
        SimTime::from_secs(fault_at_s(scale)),
        SimDuration::from_secs(crash_secs(scale)),
    ));
    let mut config = scale_config(scale, n, version, sync, detector);
    config.attribution = extras.attr;
    let mut sim = ClusterSim::with_campaign(config, campaign, seed);
    sim.run_until(SimTime::from_secs(run_s));
    let report = sim.report();
    let metrics = extras.metrics.then(|| {
        sim.metrics_snapshot().text_summary(&format!(
            "scale node-crash {} {} n{n} seed{seed}",
            version.name(),
            sync_name(sync)
        ))
    });
    let attr_text = sim.take_attr().map(|a| {
        let totals = telemetry::RunTotals {
            attempts: report.availability.attempts,
            successes: report.availability.successes,
            failures: report.availability.failures(),
            duration_s: run_s as f64,
        };
        let label = format!(
            "scale node-crash N={n} {} {} {} seed{seed}",
            version.name(),
            sync_name(sync),
            detector.map_or("-", detector_name),
        );
        a.render_text(&label, &totals, &[])
    });
    let tn = sim
        .mean_throughput(run_s as f64 - tn_window_s(scale), run_s as f64)
        .max(f64::MIN_POSITIVE);
    let aa = report.availability.availability();
    let at = report.availability.successes as f64 / run_s as f64;
    let p = performability(tn, aa, IDEAL_AVAILABILITY);
    let ctrl_frames: u64 = (0..n)
        .map(|i| sim.press(NodeId(i)).stats().cache_sync_frames)
        .sum();
    let ctrl_per_req = ctrl_frames as f64 / report.availability.successes.max(1) as f64;
    ScalePoint {
        nodes: n,
        version,
        sync,
        detector,
        tn,
        at,
        aa,
        p,
        ctrl_frames,
        ctrl_per_req,
        metrics,
        attr_text,
    }
}

/// The per-N point list: TCP-PRESS-HB under every sync × detector
/// combination, plus VIA-PRESS-5 (the fastest version; it has no
/// detector — VIA errors are its failure signal) under both syncs.
type PointSpec = (PressVersion, CacheSyncImpl, Option<MembershipImpl>);

const POINTS_PER_N: [PointSpec; 6] = [
    (PressVersion::TcpHb, CacheSyncImpl::Eager, Some(MembershipImpl::Ring)),
    (PressVersion::TcpHb, CacheSyncImpl::Digest, Some(MembershipImpl::Ring)),
    (PressVersion::TcpHb, CacheSyncImpl::Eager, Some(MembershipImpl::Gossip)),
    (PressVersion::TcpHb, CacheSyncImpl::Digest, Some(MembershipImpl::Gossip)),
    (PressVersion::Via5, CacheSyncImpl::Eager, None),
    (PressVersion::Via5, CacheSyncImpl::Digest, None),
];

/// The node list a scale runs: {4, 16, 64} at paper scale, {4, 16} for
/// the CI-gated `--small` golden.
pub fn sweep_nodes(scale: RunScale) -> &'static [usize] {
    match scale {
        RunScale::Paper => &SWEEP_NODES,
        RunScale::Small => &SMALL_SWEEP_NODES,
    }
}

/// Runs the full sweep, fanned across `jobs` workers. Output is in
/// sweep order and byte-identical for any `jobs`/`sim_threads`.
pub fn scale_study(scale: RunScale, seed: u64, jobs: usize) -> Vec<ScalePoint> {
    study_points(sweep_nodes(scale), scale, seed, jobs, false, false)
}

/// The sweep over an explicit node list (tests run a shortened one).
pub fn study_points(
    nodes: &[usize],
    scale: RunScale,
    seed: u64,
    jobs: usize,
    with_metrics: bool,
    with_attr: bool,
) -> Vec<ScalePoint> {
    let tasks: Vec<(usize, PointSpec)> = nodes
        .iter()
        .flat_map(|&n| POINTS_PER_N.iter().map(move |&p| (n, p)))
        .collect();
    run_indexed(jobs, tasks, |i, (n, (version, sync, detector))| {
        // Independent, index-derived seeds: identical regardless of
        // which worker runs the point.
        let s = seed.wrapping_add(7919 * (i as u64 + 1));
        let extras = PointExtras {
            metrics: with_metrics,
            attr: with_attr,
        };
        node_crash_point(scale, n, version, sync, detector, s, extras)
    })
}

fn study_text(points: &[ScalePoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                p.version.name().to_string(),
                sync_name(p.sync).to_string(),
                p.detector.map_or("-", detector_name).to_string(),
                format!("{:.0}", p.tn),
                format!("{:.0}", p.at),
                format!("{:.2}", 100.0 * p.aa),
                format!("{:.2}", p.p),
                p.ctrl_frames.to_string(),
                format!("{:.3}", p.ctrl_per_req),
            ]
        })
        .collect();
    format!(
        "Scaling the communication architecture — cache-sync protocols vs cluster size\n\
         \n\
         Cold-start node-crash runs on a radix-8 fat tree: offered load and document\n\
         set grow with N (fixed per-node share), node 1's machine crashes mid-run and\n\
         rejoins. Tn is the warm tail-window throughput, AT/AA integrate the whole\n\
         run, P = performability(Tn, AA). ctrl counts cache-sync control frames\n\
         (CacheAdd/CacheEvict broadcasts or CacheDigest batches) cluster-wide.\n\
         \n\
         {}\n\
         Eager broadcast sends (N-1) frames per caching action, so ctrl/req grows\n\
         linearly with N; digests coalesce deltas and flush fanout-bounded, so\n\
         ctrl/req stays flat and the control plane scales O(1) per request.\n",
        table(
            &[
                "N",
                "version",
                "sync",
                "detector",
                "Tn(req/s)",
                "AT(req/s)",
                "AA(%)",
                "P",
                "ctrl",
                "ctrl/req",
            ],
            &rows
        ),
    )
}

/// The `repro -- scale` text: the scaling table for the sweep.
pub fn scale(scale: RunScale, seed: u64, jobs: usize) -> String {
    study_text(&scale_study(scale, seed, jobs))
}

/// The `repro -- scale --attribution` text: the scaling table followed
/// by every point's root-cause attribution section — which mechanism
/// (fault-window kill, detection lag, broadcast freeze, ...) ate each
/// point's availability, conservation-checked against its client pool.
pub fn scale_attributed(scale: RunScale, seed: u64, jobs: usize) -> String {
    let points = study_points(sweep_nodes(scale), scale, seed, jobs, false, true);
    let mut out = study_text(&points);
    for p in &points {
        if let Some(a) = &p.attr_text {
            out.push('\n');
            out.push_str(a);
        }
    }
    out
}

/// The `repro -- scale --metrics` text: the scaling table, the sweep's
/// `scale.*` gauges, and the node-level snapshot (with the
/// `press.cache.*` digest counters) of each digest-mode run.
pub fn scale_metrics(scale: RunScale, seed: u64, jobs: usize) -> String {
    let points = study_points(sweep_nodes(scale), scale, seed, jobs, true, false);
    let mut reg = telemetry::MetricsRegistry::new();
    for p in &points {
        let key = format!(
            "scale.ctrl_frames_per_req.{}.{}.n{}",
            match p.version {
                PressVersion::TcpHb => "tcphb",
                v => {
                    debug_assert_eq!(v, PressVersion::Via5);
                    "via5"
                }
            },
            sync_name(p.sync),
            p.nodes
        );
        // TcpHb appears once per detector; keep the ring row (the
        // paper's detector) as the gauge.
        if p.detector != Some(MembershipImpl::Gossip) {
            reg.gauge_set(&key, p.ctrl_per_req);
        }
    }
    let mut out = study_text(&points);
    out.push('\n');
    out.push_str(&reg.text_summary(&format!("scale sweep seed{seed}")));
    for p in &points {
        if p.sync == CacheSyncImpl::Digest && p.detector != Some(MembershipImpl::Gossip) {
            if let Some(m) = &p.metrics {
                out.push('\n');
                out.push_str(m);
            }
        }
    }
    out
}

/// The `repro -- scalebench` text: the single heaviest sweep point
/// (largest swept N, digest mode, TCP-PRESS-HB on the ring), run once.
/// This is the intended workload for `--sim-threads` benchmarking —
/// one big simulation rather than many independent ones, so `--timing`
/// measures intra-run sharding, not `--jobs` fan-out.
pub fn scalebench(scale: RunScale, seed: u64) -> String {
    let n = *sweep_nodes(scale).last().expect("sweep is non-empty");
    let p = node_crash_point(
        scale,
        n,
        PressVersion::TcpHb,
        CacheSyncImpl::Digest,
        Some(MembershipImpl::Ring),
        seed,
        PointExtras::default(),
    );
    format!(
        "scalebench: N={} {} digest ring  Tn={:.0} req/s  AT={:.0} req/s  \
         AA={:.2}%  ctrl={} ({:.3}/req)\n",
        p.nodes,
        p.version.name(),
        p.tn,
        p.at,
        100.0 * p.aa,
        p.ctrl_frames,
        p.ctrl_per_req,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use press::PressNode;

    fn tcphb_point(
        n: usize,
        sync: CacheSyncImpl,
        seed: u64,
    ) -> ScalePoint {
        node_crash_point(
            RunScale::Small,
            n,
            PressVersion::TcpHb,
            sync,
            Some(MembershipImpl::Ring),
            seed,
            PointExtras::default(),
        )
    }

    /// The headline law: eager control frames per request grow with the
    /// cluster (≈ (N-1) per caching action) while digest-mode frames
    /// per request stay flat, and digest wins outright at N = 16.
    #[test]
    fn eager_grows_linearly_and_digest_stays_flat() {
        let e4 = tcphb_point(4, CacheSyncImpl::Eager, 3);
        let e16 = tcphb_point(16, CacheSyncImpl::Eager, 3);
        let d4 = tcphb_point(4, CacheSyncImpl::Digest, 3);
        let d16 = tcphb_point(16, CacheSyncImpl::Digest, 3);
        // Pure (N-1) scaling would give 5x; the crash's eviction
        // cascade inflates the N=4 baseline (3 survivors absorb the
        // dead node's whole share), so require a 2.5x floor.
        assert!(
            e16.ctrl_per_req >= 2.5 * e4.ctrl_per_req,
            "eager ctrl/req must grow ~linearly: {} -> {}",
            e4.ctrl_per_req,
            e16.ctrl_per_req
        );
        assert!(
            d16.ctrl_per_req <= 2.0 * d4.ctrl_per_req,
            "digest ctrl/req must stay flat: {} -> {}",
            d4.ctrl_per_req,
            d16.ctrl_per_req
        );
        assert!(
            2 * d16.ctrl_frames < e16.ctrl_frames,
            "digest must at least halve control frames at N=16: {} vs {}",
            d16.ctrl_frames,
            e16.ctrl_frames
        );
        // Both modes actually served the run: the digest saving is not
        // bought by dropping requests.
        assert!(d16.aa > 0.9 * e16.aa, "digest AA {} vs eager {}", d16.aa, e16.aa);
        assert!(d16.tn > 0.0 && e16.tn > 0.0);
    }

    /// Semantic equivalence after quiescence: on a fault-free cold
    /// fill, both sync protocols converge to coherent cooperative
    /// caching state — every node's view of who caches what matches
    /// the holders' actual cache contents exactly, and the aggregate
    /// cache covers the touched working set in both modes.
    ///
    /// (A crash is deliberately excluded: a frame that would block
    /// freezes an eager sender (§5.4) and its skipped broadcasts are
    /// never resent, so the paper's protocol does *not* re-converge
    /// through a crash — the digest log, which survives blocking and
    /// flushes later, does. The eager-mode staleness is visible in the
    /// sweep's disk-serve counts, not a bug to hide here.)
    #[test]
    fn eager_and_digest_directories_converge_after_quiescence() {
        let n = 4;
        let files = 1_500 * n as u32;
        for sync in [CacheSyncImpl::Eager, CacheSyncImpl::Digest] {
            let config = scale_config(
                RunScale::Small,
                n,
                PressVersion::TcpHb,
                sync,
                Some(MembershipImpl::Ring),
            );
            let mut sim = ClusterSim::with_campaign(config, Campaign::none(), 17);
            // 40 s at 600 req/s touches most of the 6000 files (the
            // all-miss opening seconds are disk-bound, so some early
            // requests drop); the last digest rotations then drain
            // every pending delta. The cutoff sits 100 ms off the
            // 500 ms digest-tick boundary: a frame accepted at the
            // final tick advances the sender's watermark (so it is no
            // longer "pending") yet delivers a few µs later — cutting
            // exactly on the tick would strand it in flight.
            sim.run_until(SimTime::from_secs(40) + SimDuration::from_millis(100));
            let mut cached_anywhere = std::collections::BTreeSet::new();
            let mut pending: Vec<std::collections::BTreeSet<u32>> = Vec::new();
            for h in 0..n {
                // The cold tail churns at a few misses per second right
                // up to the cutoff, so the very last deltas are still
                // rotating; in eager mode the log is unused and empty.
                let p: std::collections::BTreeSet<u32> =
                    sim.press(NodeId(h)).digest_pending().into_iter().collect();
                if sync == CacheSyncImpl::Eager {
                    assert!(p.is_empty(), "eager mode must not use the digest log");
                }
                assert!(
                    p.len() < 20,
                    "{sync:?}: node {h} holds {} unflushed deltas — the log is not draining",
                    p.len()
                );
                pending.push(p);
                cached_anywhere.extend(sim.press(NodeId(h)).cached_files());
            }
            assert!(
                cached_anywhere.len() as f64 > 0.75 * f64::from(files),
                "{sync:?}: aggregate cache covers only {} of {files} files",
                cached_anywhere.len()
            );
            for o in 0..n {
                let observer: &PressNode = sim.press(NodeId(o));
                for (h, pending_h) in pending.iter().enumerate() {
                    if o == h {
                        continue;
                    }
                    let actual: std::collections::BTreeSet<u32> =
                        sim.press(NodeId(h)).cached_files().into_iter().collect();
                    let believed: std::collections::BTreeSet<u32> = (0..files)
                        .filter(|&f| observer.directory().holders(f).contains(&NodeId(h)))
                        .collect();
                    // The convergence invariant: views may differ from
                    // reality only on files whose deltas the holder has
                    // not yet flushed to every peer. Eager mode has an
                    // empty log, so this is exact equality there.
                    let divergent: Vec<u32> = believed
                        .symmetric_difference(&actual)
                        .copied()
                        .filter(|f| !pending_h.contains(f))
                        .collect();
                    assert!(
                        divergent.is_empty(),
                        "{sync:?}: node {o}'s view of node {h} diverges beyond the \
                         pending deltas on {} files: {:?}",
                        divergent.len(),
                        &divergent[..divergent.len().min(8)]
                    );
                }
            }
        }
    }

    /// Digest-mode node-crash runs are byte-identical across
    /// `--sim-threads` (the fig3-style determinism guarantee extends to
    /// the new message type and timer).
    #[test]
    fn digest_mode_is_identical_across_sim_threads() {
        let run = |threads: usize| {
            let mut config = scale_config(
                RunScale::Small,
                4,
                PressVersion::TcpHb,
                CacheSyncImpl::Digest,
                Some(MembershipImpl::Ring),
            );
            config.sim_threads = threads;
            let campaign = Campaign::single(FaultSpec::transient(
                FaultKind::NodeCrash,
                NodeId(1),
                SimTime::from_secs(10),
                SimDuration::from_secs(20),
            ));
            let mut sim = ClusterSim::with_campaign(config, campaign, 23);
            sim.run_until(SimTime::from_secs(40));
            let ctrl: Vec<u64> = (0..4)
                .map(|i| sim.press(NodeId(i)).stats().cache_sync_frames)
                .collect();
            let report = sim.report();
            (report.throughput.points, report.membership_log, ctrl)
        };
        let base = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), base, "sim-threads {threads} diverged");
        }
    }

    /// The sweep is byte-identical across jobs (the verify gate covers
    /// the full `--small` sweep against the golden; this covers the
    /// cheapest point in-process).
    #[test]
    fn study_is_deterministic_across_jobs() {
        let a = study_points(&[4], RunScale::Small, 5, 1, false, false);
        let b = study_points(&[4], RunScale::Small, 5, 2, false, false);
        assert_eq!(a, b);
    }

    /// Every attributed sweep point must satisfy the conservation law
    /// (per-cause losses sum to the pool's failures, unavailable time
    /// to (1-AA)·T), and the rendered sections must be byte-identical
    /// across job counts.
    #[test]
    fn attributed_sweep_conserves_every_point() {
        let a = study_points(&[4], RunScale::Small, 5, 1, false, true);
        let b = study_points(&[4], RunScale::Small, 5, 2, false, true);
        assert_eq!(a, b);
        for p in &a {
            let text = p.attr_text.as_deref().expect("attribution on");
            assert!(text.contains("conservation: OK"), "{text}");
        }
    }
}
