//! Ring-vs-gossip membership study: how failure-detection latency
//! scales with cluster size under the two detectors TCP-PRESS-HB can
//! run ([`MembershipImpl::Ring`], the paper's heartbeat ring, and
//! [`MembershipImpl::Gossip`], the SWIM epidemic detector in
//! `crates/gossip`).
//!
//! The ring's weakness is *sequential unmasking*: only the successor of
//! a crashed node watches it, and excluding one crashed predecessor
//! resets the heartbeat timer on the next, so `k` simultaneous adjacent
//! crashes (a rack) take ≈ `k × 15 s` to clear. Gossip probes peers in
//! parallel from every live node, so the same rack clears in a few
//! probe rounds regardless of `N`. This module sweeps `N ∈ {4, 8, 16,
//! 32}` and three fault shapes per detector:
//!
//! * **rack crash** — `N/4` adjacent machines fail permanently at once;
//!   measures full-detection latency plus throughput/availability over
//!   the same window for both detectors.
//! * **gray partition** — a 30 s partial partition between two *live*
//!   nodes; counts live nodes some other live node falsely excludes
//!   (the ring cannot tell "my predecessor's link" from "my
//!   predecessor"; gossip's indirect ping-req can).
//! * **rejoin** — one machine crashes transiently and re-enters through
//!   the rejoin protocol; measures restart-to-full-view latency.
//!
//! Every run is an independent `(config, campaign, seed)` triple, so
//! the sweep fans out over [`run_indexed`] and is byte-identical for
//! any `--jobs` × `--sim-threads` combination.

use mendosus::{Campaign, FaultKind, FaultSpec};
use press::{MembershipImpl, PressVersion};
use simnet::fabric::{FabricConfig, NodeId};
use simnet::{SimDuration, SimTime};

use crate::cluster::{ClusterConfig, ClusterSim, ProcEvent};
use crate::phase2::RunScale;
use crate::render::table;
use crate::runner::run_indexed;

/// Cluster sizes swept (the paper's test-bed is the smallest point).
pub const SWEEP_NODES: [usize; 4] = [4, 8, 16, 32];

/// Injection instant shared by all three scenarios.
const FAULT_AT_S: u64 = 10;

/// One `(N, detector)` sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipPoint {
    /// Cluster size.
    pub nodes: usize,
    /// The detector under test.
    pub detector: MembershipImpl,
    /// Rack crash: seconds from injection until every live node's view
    /// has shrunk to the surviving set.
    pub detection_s: f64,
    /// Whether every live node converged within the run (when `false`,
    /// `detection_s` is the censored run remainder).
    pub detected_all: bool,
    /// Rack crash: fraction of requests served over the whole run.
    pub availability: f64,
    /// Rack crash: successful requests per second over the whole run.
    pub throughput: f64,
    /// Gray partition: live nodes falsely considered dead by at least
    /// one other live node at the end of the run.
    pub false_exclusions: usize,
    /// Rejoin: seconds from process restart until the restarted node's
    /// view is full again.
    pub rejoin_s: f64,
    /// Node-level metrics snapshot, when requested.
    pub metrics: Option<String>,
}

/// Short label for a detector ("ring" / "gossip").
pub fn detector_name(d: MembershipImpl) -> &'static str {
    match d {
        MembershipImpl::Ring => "ring",
        MembershipImpl::Gossip => "gossip",
    }
}

/// The sweep's cluster config: TCP-PRESS-HB on an `n`-node fabric with
/// the chosen detector. Rate and workload come from `scale` unchanged,
/// so detector comparisons at one `N` share the same offered load.
pub fn membership_config(scale: RunScale, n: usize, detector: MembershipImpl) -> ClusterConfig {
    let mut c = match scale {
        RunScale::Paper => ClusterConfig::fault_experiment(PressVersion::TcpHb),
        RunScale::Small => ClusterConfig::small(PressVersion::TcpHb),
    };
    c.press.nodes = n;
    c.press.membership = detector;
    c.fabric = FabricConfig::ring(n);
    c
}

/// Rack-crash run length: injection lead-in, one ring threshold per
/// crashed node (the sequential-unmasking worst case), and settle time.
/// Identical for both detectors at a given `N`, so availability and
/// throughput integrate over the same window.
fn rack_run_secs(n: usize) -> u64 {
    FAULT_AT_S + 15 * (n / 4) as u64 + 45
}

/// Rack crash: `N/4` adjacent machines (nodes `1..=k`) fail permanently
/// at `t = 10 s`. Returns `(detection_s, detected_all, availability,
/// throughput, metrics)`.
fn rack_crash(
    scale: RunScale,
    n: usize,
    detector: MembershipImpl,
    seed: u64,
    with_metrics: bool,
) -> (f64, bool, f64, f64, Option<String>) {
    let k = n / 4;
    let fault_at = SimTime::from_secs(FAULT_AT_S);
    let run_s = rack_run_secs(n);
    let campaign = Campaign::new(
        (1..=k).map(|i| FaultSpec::permanent(FaultKind::NodeCrash, NodeId(i), fault_at)),
    );
    let mut sim = ClusterSim::with_campaign(membership_config(scale, n, detector), campaign, seed);
    sim.run_until(SimTime::from_secs(run_s));
    let report = sim.report();
    let metrics = with_metrics.then(|| {
        sim.metrics_snapshot().text_summary(&format!(
            "membership rack-crash {} n{n} seed{seed}",
            detector_name(detector)
        ))
    });
    let survivors = n - k;
    let fault_s = fault_at.as_secs_f64();
    let mut worst = 0.0f64;
    let mut detected_all = true;
    for node in (0..n).filter(|i| *i == 0 || *i > k) {
        let converged = report
            .membership_log
            .iter()
            .find(|(t, id, m)| id.0 == node && *m == survivors && t.as_secs_f64() >= fault_s)
            .map(|(t, _, _)| t.as_secs_f64() - fault_s);
        match converged {
            Some(d) => worst = worst.max(d),
            None => {
                detected_all = false;
                worst = worst.max(run_s as f64 - fault_s);
            }
        }
    }
    let availability = report.availability.availability();
    let throughput = report.availability.successes as f64 / run_s as f64;
    (worst, detected_all, availability, throughput, metrics)
}

/// Gray partition: block the fabric pair (1, 2) — both stay alive — for
/// 30 s. Returns the count of live nodes absent from at least one other
/// live node's final view (0 is the correct answer; the fault is gray).
fn gray_partition(scale: RunScale, n: usize, detector: MembershipImpl, seed: u64) -> usize {
    let campaign = Campaign::single(FaultSpec::partial_partition(
        NodeId(1),
        NodeId(2),
        SimTime::from_secs(FAULT_AT_S),
        SimDuration::from_secs(30),
    ));
    let mut sim = ClusterSim::with_campaign(membership_config(scale, n, detector), campaign, seed);
    sim.run_until(SimTime::from_secs(FAULT_AT_S + 60));
    let mut falsely_dead = std::collections::BTreeSet::new();
    for victim in 0..n {
        if !sim.process_running(NodeId(victim)) {
            continue;
        }
        for observer in 0..n {
            if observer == victim || !sim.process_running(NodeId(observer)) {
                continue;
            }
            if !sim.press(NodeId(observer)).members().contains(&NodeId(victim)) {
                falsely_dead.insert(victim);
            }
        }
    }
    falsely_dead.len()
}

/// Rejoin: node 1's machine crashes at `t = 10 s` for 20 s, restarts,
/// and re-enters through the rejoin protocol. Returns seconds from
/// process restart to the node's view being full again (the censored
/// run remainder if it never is).
fn rejoin_latency(scale: RunScale, n: usize, detector: MembershipImpl, seed: u64) -> f64 {
    let campaign = Campaign::single(FaultSpec::transient(
        FaultKind::NodeCrash,
        NodeId(1),
        SimTime::from_secs(FAULT_AT_S),
        SimDuration::from_secs(20),
    ));
    let run_s = FAULT_AT_S + 80;
    let mut sim = ClusterSim::with_campaign(membership_config(scale, n, detector), campaign, seed);
    sim.run_until(SimTime::from_secs(run_s));
    let report = sim.report();
    let Some(restart) = report
        .process_log
        .iter()
        .find(|(_, id, ev)| id.0 == 1 && *ev == ProcEvent::Restart)
        .map(|(t, _, _)| t.as_secs_f64())
    else {
        return run_s as f64;
    };
    report
        .membership_log
        .iter()
        .find(|(t, id, m)| id.0 == 1 && *m == n && t.as_secs_f64() >= restart)
        .map(|(t, _, _)| t.as_secs_f64() - restart)
        .unwrap_or(run_s as f64 - restart)
}

/// Runs the full sweep: every `N` in [`SWEEP_NODES`] × both detectors,
/// three scenario runs per point, fanned across `jobs` workers. Output
/// is in sweep order and byte-identical for any `jobs`/`sim_threads`.
pub fn membership_study(scale: RunScale, seed: u64, jobs: usize) -> Vec<MembershipPoint> {
    membership_study_inner(scale, seed, jobs, false)
}

fn membership_study_inner(
    scale: RunScale,
    seed: u64,
    jobs: usize,
    with_metrics: bool,
) -> Vec<MembershipPoint> {
    study_points(&SWEEP_NODES, scale, seed, jobs, with_metrics)
}

/// The sweep over an explicit node list (tests run a shortened one;
/// the parity suite re-runs it across `--sim-threads` × `--jobs`).
pub fn study_points(
    nodes: &[usize],
    scale: RunScale,
    seed: u64,
    jobs: usize,
    with_metrics: bool,
) -> Vec<MembershipPoint> {
    let tasks: Vec<(usize, MembershipImpl)> = nodes
        .iter()
        .flat_map(|&n| [(n, MembershipImpl::Ring), (n, MembershipImpl::Gossip)])
        .collect();
    run_indexed(jobs, tasks, |i, (n, detector)| {
        // Independent, index-derived seeds: identical regardless of
        // which worker runs the point.
        let s = seed.wrapping_add(7919 * (i as u64 + 1));
        let (detection_s, detected_all, availability, throughput, metrics) =
            rack_crash(scale, n, detector, s, with_metrics);
        let false_exclusions = gray_partition(scale, n, detector, s.wrapping_add(1));
        let rejoin_s = rejoin_latency(scale, n, detector, s.wrapping_add(2));
        MembershipPoint {
            nodes: n,
            detector,
            detection_s,
            detected_all,
            availability,
            throughput,
            false_exclusions,
            rejoin_s,
            metrics,
        }
    })
}

/// The smallest swept `N` at which gossip's rack-crash detection beats
/// the ring's, if any.
pub fn crossover_n(points: &[MembershipPoint]) -> Option<usize> {
    SWEEP_NODES.iter().copied().find(|&n| {
        let at = |d: MembershipImpl| {
            points
                .iter()
                .find(|p| p.nodes == n && p.detector == d)
                .map(|p| p.detection_s)
        };
        matches!(
            (at(MembershipImpl::Ring), at(MembershipImpl::Gossip)),
            (Some(r), Some(g)) if g < r
        )
    })
}

fn study_text(points: &[MembershipPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                detector_name(p.detector).to_string(),
                format!(
                    "{:.1}{}",
                    p.detection_s,
                    if p.detected_all { "" } else { "+" }
                ),
                format!("{:.2}", 100.0 * p.availability),
                format!("{:.0}", p.throughput),
                p.false_exclusions.to_string(),
                format!("{:.1}", p.rejoin_s),
            ]
        })
        .collect();
    let crossover = match crossover_n(points) {
        Some(n) => format!("gossip first beats the ring at N = {n}"),
        None => "gossip never beats the ring in this sweep".to_string(),
    };
    format!(
        "Membership detectors on TCP-PRESS-HB — heartbeat ring vs SWIM gossip\n\
         \n\
         rack crash: N/4 adjacent machines fail at t=10s (permanent); detect(s) is\n\
         the worst live node's view-convergence latency (+ = censored at run end).\n\
         gray fault: 30s partial partition between two live nodes; false-excl\n\
         counts live nodes some other live node ended up excluding.\n\
         rejoin: one machine crashes for 20s, restarts, re-enters the cluster.\n\
         \n\
         {}\n\
         \n\
         The ring unmasks one crashed predecessor per 15 s heartbeat threshold, so\n\
         rack detection grows linearly with N; gossip probes from every live node\n\
         in parallel and stays flat. Crossover: {}.\n",
        table(
            &[
                "N",
                "detector",
                "detect(s)",
                "avail(%)",
                "AT(req/s)",
                "false-excl",
                "rejoin(s)",
            ],
            &rows
        ),
        crossover
    )
}

/// The `repro -- membership` text: the crossover table for the sweep.
pub fn membership(scale: RunScale, seed: u64, jobs: usize) -> String {
    study_text(&membership_study(scale, seed, jobs))
}

/// Pre-rendered gauge keys: one row per `(N, detector)` sweep point, in
/// sweep order, so snapshots never allocate label strings.
static POINT_GAUGES: [[&str; 3]; 8] = [
    [
        "membership.detection_time_s.ring.n4",
        "membership.false_exclusions.ring.n4",
        "membership.rejoin_time_s.ring.n4",
    ],
    [
        "membership.detection_time_s.gossip.n4",
        "membership.false_exclusions.gossip.n4",
        "membership.rejoin_time_s.gossip.n4",
    ],
    [
        "membership.detection_time_s.ring.n8",
        "membership.false_exclusions.ring.n8",
        "membership.rejoin_time_s.ring.n8",
    ],
    [
        "membership.detection_time_s.gossip.n8",
        "membership.false_exclusions.gossip.n8",
        "membership.rejoin_time_s.gossip.n8",
    ],
    [
        "membership.detection_time_s.ring.n16",
        "membership.false_exclusions.ring.n16",
        "membership.rejoin_time_s.ring.n16",
    ],
    [
        "membership.detection_time_s.gossip.n16",
        "membership.false_exclusions.gossip.n16",
        "membership.rejoin_time_s.gossip.n16",
    ],
    [
        "membership.detection_time_s.ring.n32",
        "membership.false_exclusions.ring.n32",
        "membership.rejoin_time_s.ring.n32",
    ],
    [
        "membership.detection_time_s.gossip.n32",
        "membership.false_exclusions.gossip.n32",
        "membership.rejoin_time_s.gossip.n32",
    ],
];

/// The `repro -- membership --metrics` text: the crossover table, the
/// sweep's `membership.*` gauges, and the node-level snapshot (with the
/// `press.gossip.*` fan-out counters) of each gossip rack-crash run.
pub fn membership_metrics(scale: RunScale, seed: u64, jobs: usize) -> String {
    let points = membership_study_inner(scale, seed, jobs, true);
    let mut reg = telemetry::MetricsRegistry::new();
    for (i, p) in points.iter().enumerate() {
        let [detect, false_excl, rejoin] = POINT_GAUGES[i];
        reg.gauge_set(detect, p.detection_s);
        reg.gauge_set(false_excl, p.false_exclusions as f64);
        reg.gauge_set(rejoin, p.rejoin_s);
    }
    let mut out = study_text(&points);
    out.push('\n');
    out.push_str(&reg.text_summary(&format!("membership sweep seed{seed}")));
    for p in &points {
        if p.detector == MembershipImpl::Gossip {
            if let Some(m) = &p.metrics {
                out.push('\n');
                out.push_str(m);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small point end-to-end: both detectors detect a rack crash at
    /// N = 4, and gossip never falsely excludes under the gray fault
    /// while the ring does.
    #[test]
    fn small_point_detects_and_gray_fault_separates_detectors() {
        let (ring_det, ring_all, _, _, _) =
            rack_crash(RunScale::Small, 4, MembershipImpl::Ring, 7, false);
        let (gossip_det, gossip_all, _, _, _) =
            rack_crash(RunScale::Small, 4, MembershipImpl::Gossip, 7, false);
        assert!(ring_all && gossip_all, "both detectors must converge");
        assert!((10.0..30.0).contains(&ring_det), "ring ≈ one threshold: {ring_det}");
        assert!(gossip_det < 30.0, "gossip single-crash detection: {gossip_det}");

        let ring_false = gray_partition(RunScale::Small, 4, MembershipImpl::Ring, 8);
        let gossip_false = gray_partition(RunScale::Small, 4, MembershipImpl::Gossip, 8);
        assert!(ring_false >= 1, "the ring must false-exclude: {ring_false}");
        assert_eq!(gossip_false, 0, "ping-req must save the gray fault");
    }

    /// The sequential-unmasking scaling law: the ring's detection grows
    /// roughly linearly from N = 4 to N = 16 while gossip stays flat,
    /// and gossip wins at the larger size.
    #[test]
    fn ring_detection_grows_linearly_and_gossip_stays_flat() {
        let d = |n, det| rack_crash(RunScale::Small, n, det, 11, false).0;
        let ring4 = d(4, MembershipImpl::Ring);
        let ring16 = d(16, MembershipImpl::Ring);
        let gossip16 = d(16, MembershipImpl::Gossip);
        assert!(
            ring16 >= 2.5 * ring4,
            "ring must scale with the crashed-rack size: {ring4} -> {ring16}"
        );
        assert!(
            gossip16 < ring16,
            "gossip must beat the ring at N=16: {gossip16} vs {ring16}"
        );
    }

    /// Rejoin completes under both detectors.
    #[test]
    fn rejoin_completes_under_both_detectors() {
        for det in [MembershipImpl::Ring, MembershipImpl::Gossip] {
            let r = rejoin_latency(RunScale::Small, 4, det, 13);
            assert!(
                r < 30.0,
                "{} rejoin must complete promptly: {r}",
                detector_name(det)
            );
        }
    }

    /// The sweep is byte-identical across jobs (the verify gate covers
    /// the full sweep across sim-thread counts; this covers the
    /// cheapest point in-process).
    #[test]
    fn study_is_deterministic_across_jobs() {
        let a = study_points(&[4], RunScale::Small, 5, 1, false);
        let b = study_points(&[4], RunScale::Small, 5, 2, false);
        assert_eq!(a, b);
    }
}
