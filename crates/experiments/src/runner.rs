//! Deterministic parallel execution of independent experiment runs.
//!
//! The paper's methodology is embarrassingly parallel: every phase-1
//! experiment is one `ClusterSim` built from an explicit `(config,
//! scenario, seed)` triple, sharing no state with any other run. This
//! module fans such task lists out across a small thread pool while
//! guaranteeing **bit-identical results to sequential execution**:
//! each task's output is written into a pre-sized slot indexed by task
//! id, never by completion order, so callers that fold the results in
//! task order (including floating-point accumulation order) observe
//! exactly the sequential outcome.
//!
//! Built on `std::thread::scope` only — the build environment cannot
//! fetch external crates, and a work queue over scoped threads is all
//! this shape of parallelism needs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a user-facing `--jobs` request to a worker count:
/// `0` means "auto" (all available cores); anything else is capped by
/// available parallelism so oversubscription never helps a run lie
/// about its speed.
pub fn effective_jobs(requested: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match requested {
        0 => cores,
        n => n.min(cores),
    }
}

/// Runs `f` over every task, returning outputs in task order.
///
/// With `jobs <= 1` (or fewer than two tasks) this is a plain in-order
/// map — the reference behaviour. Otherwise `min(jobs, tasks)` scoped
/// workers pull task indices from a shared counter and write results
/// into the slot matching the task index. Because every task carries
/// its own seed and shares nothing, the output vector is identical to
/// the sequential map regardless of scheduling.
///
/// # Panics
///
/// Propagates the first worker panic after all threads are joined.
pub fn run_indexed<T, R, F>(jobs: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let workers = jobs.min(n);
    let queue: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = queue[i]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("task claimed twice");
                let out = f(i, task);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing its result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let tasks: Vec<u64> = (0..37).collect();
        let f = |i: usize, t: u64| (i as u64) * 1_000 + t * t;
        let seq = run_indexed(1, tasks.clone(), f);
        let par = run_indexed(4, tasks, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn results_are_in_task_order_not_completion_order() {
        // Early tasks sleep longer, so completion order is reversed;
        // output order must still follow task ids.
        let tasks: Vec<u64> = (0..8).collect();
        let out = run_indexed(8, tasks, |i, t| {
            std::thread::sleep(std::time::Duration::from_millis(8 - t));
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        let out = run_indexed(16, vec![5u32, 6], |_, t| t * 2);
        assert_eq!(out, [10, 12]);
    }

    #[test]
    fn empty_task_list() {
        let out: Vec<u32> = run_indexed(4, Vec::<u32>::new(), |_, t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn effective_jobs_resolves_auto_and_caps() {
        // Mirror effective_jobs' own fallback: a host that cannot report
        // its parallelism should not fail the test.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(effective_jobs(0), cores);
        assert_eq!(effective_jobs(1), 1);
        assert!(effective_jobs(usize::MAX) <= cores);
    }
}
