//! Plain-text rendering of timelines, bars, and tables for the repro
//! harness output.

use simnet::TimeSeries;

const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a time series as a one-line block sparkline of `width`
/// columns, scaled to `max` (values above `max` clip).
///
/// Degenerate inputs degrade instead of panicking: an empty series or
/// zero width renders as an empty string, non-finite samples are
/// skipped, and an unusable scale (`max <= 0`, NaN, infinite) renders
/// every sampled column at the baseline so the line keeps its width.
pub fn sparkline(series: &TimeSeries, width: usize, max: f64) -> String {
    if series.is_empty() || width == 0 {
        return String::new();
    }
    let t0 = series.points.first().expect("nonempty").0;
    let t1 = series.points.last().expect("nonempty").0;
    let span = (t1 - t0).max(1e-9);
    let scale_ok = max.is_finite() && max > 0.0;
    let mut sums = vec![0.0f64; width];
    let mut counts = vec![0u32; width];
    for &(t, v) in &series.points {
        if !v.is_finite() {
            continue;
        }
        let col = (((t - t0) / span) * (width as f64 - 1.0)).round() as usize;
        sums[col] += v;
        counts[col] += 1;
    }
    (0..width)
        .map(|c| {
            if counts[c] == 0 {
                BLOCKS[0]
            } else if !scale_ok {
                BLOCKS[1]
            } else {
                let v = (sums[c] / f64::from(counts[c])).clamp(0.0, max);
                let idx = ((v / max) * 8.0).round() as usize;
                BLOCKS[idx.min(8)]
            }
        })
        .collect()
}

/// Renders a horizontal bar of `width` columns for `value` out of `max`.
///
/// A non-finite `value` or unusable `max` (`<= 0`, NaN, infinite)
/// renders an empty track of the full width rather than panicking or
/// producing a NaN-sized fill.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if width == 0 {
        return String::new();
    }
    let filled = if max.is_finite() && max > 0.0 && value.is_finite() {
        ((value.clamp(0.0, max) / max) * width as f64).round() as usize
    } else {
        0
    };
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '█' } else { '·' });
    }
    s
}

/// Renders rows as a fixed-width text table with a header rule.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_reflects_levels() {
        let s = TimeSeries::new(vec![
            (0.0, 100.0),
            (1.0, 100.0),
            (2.0, 0.0),
            (3.0, 0.0),
            (4.0, 100.0),
            (5.0, 100.0),
        ]);
        let line = sparkline(&s, 6, 100.0);
        assert_eq!(line.chars().count(), 6);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars[0], '█');
        assert_eq!(chars[2], ' ');
        assert_eq!(chars[5], '█');
    }

    #[test]
    fn sparkline_handles_empty_and_degenerate_input() {
        assert_eq!(sparkline(&TimeSeries::default(), 10, 1.0), "");
        let s = TimeSeries::new(vec![(0.0, 5.0)]);
        assert_eq!(sparkline(&s, 0, 1.0), "");
        // Unusable scales keep the width but flatten to the baseline.
        assert_eq!(sparkline(&s, 3, 0.0), "▁  ");
        assert_eq!(sparkline(&s, 3, f64::NAN), "▁  ");
        assert_eq!(sparkline(&s, 3, -4.0), "▁  ");
        // Non-finite samples are skipped rather than poisoning columns.
        let s = TimeSeries::new(vec![(0.0, f64::NAN), (1.0, 100.0)]);
        assert_eq!(sparkline(&s, 2, 100.0), " █");
    }

    #[test]
    fn bar_fills_proportionally() {
        assert_eq!(bar(5.0, 10.0, 10), "█████·····");
        assert_eq!(bar(20.0, 10.0, 4), "████");
        assert_eq!(bar(0.0, 10.0, 4), "····");
    }

    #[test]
    fn bar_handles_degenerate_input() {
        assert_eq!(bar(5.0, 10.0, 0), "");
        // max == 0 keeps the track width with no fill.
        assert_eq!(bar(5.0, 0.0, 4), "····");
        assert_eq!(bar(f64::NAN, 10.0, 4), "····");
        assert_eq!(bar(5.0, f64::NAN, 4), "····");
        assert_eq!(bar(f64::INFINITY, 10.0, 4), "····");
    }

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["only one".into()]]);
    }
}
