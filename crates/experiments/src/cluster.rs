//! The live simulated cluster: PRESS on TCP or VIA over the cLAN
//! fabric, driven by Poisson clients, with Mendosus faults applied in
//! real time.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use mendosus::{Campaign, FaultAction, FaultKind, FaultPhase, PlannedMangle};
use press::{
    AppEffect, AppEvent, ClientAccept, NodeCtx, PressConfig, PressMsg, PressNode, PressVersion,
    Request,
};
use simnet::fabric::{Fabric, FabricConfig, Frame, LossReason, NodeId};
use simnet::{
    AvailabilityCounter, CancelToken, CpuMeter, Engine, LatencyHistogram, SimDuration, SimRng,
    SimTime, TimeSeries,
};
use transport::{
    Effect, Effects, Substrate, SubstrateImpl, TcpConfig, TcpStack, TimerKey, TimerKind, Upcall,
    ViaConfig, ViaNic, WirePayload,
};
use workload::{ClientConfig, ClientEvent, ClientPool};

#[path = "par.rs"]
mod par;

/// Default for [`ClusterConfig::sim_threads`], settable once from the
/// command line (`repro --sim-threads N`) so every constructor picks it
/// up without threading a parameter through the experiment layers.
static DEFAULT_SIM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default for [`ClusterConfig::sim_threads`].
pub fn set_default_sim_threads(n: usize) {
    DEFAULT_SIM_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The process-wide default for [`ClusterConfig::sim_threads`].
pub fn default_sim_threads() -> usize {
    DEFAULT_SIM_THREADS.load(Ordering::Relaxed)
}

/// Everything needed to build a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Which PRESS version to run.
    pub version: PressVersion,
    /// Server parameters.
    pub press: PressConfig,
    /// Network fabric parameters.
    pub fabric: FabricConfig,
    /// TCP stack parameters (TCP versions).
    pub tcp: TcpConfig,
    /// VIA NIC parameters (VIA versions).
    pub via: ViaConfig,
    /// Aggregate client request rate (requests/second).
    pub rate: f64,
    /// Pre-populate caches and directories (skip cold-cache warm-up).
    pub prewarm: bool,
    /// Delay before the Mendosus daemon restarts a dead process.
    pub restart_delay: SimDuration,
    /// Structured tracing (off by default; near-free when off).
    pub trace: telemetry::TraceConfig,
    /// Worker threads for one simulation (conservative-parallel DES).
    /// `1` runs the plain sequential loop; `N > 1` shards the nodes
    /// across `N` scoped workers advancing in fabric-lookahead windows,
    /// byte-identical to sequential (see the `par` module).
    pub sim_threads: usize,
    /// Causal root-cause attribution (off by default; near-free when
    /// off). When on, every lost or deadline-missing request is
    /// classified into exactly one [`telemetry::RootCause`].
    pub attribution: bool,
}

impl ClusterConfig {
    /// The paper's test-bed for `version`, driven slightly above the
    /// version's nominal peak so measured throughput is the near-peak
    /// capacity (Table 1's operating point).
    pub fn paper_defaults(version: PressVersion) -> Self {
        let mut via = match version.via_mode() {
            Some(transport::ViaMode::RemoteWrite) => ViaConfig::remote_write(),
            _ => ViaConfig::messaging(),
        };
        // VIA-PRESS-5 pins its whole 128 MB cache (32768 pages) plus the
        // startup communication buffers.
        via.pinned_page_limit = 40_000;
        let press = PressConfig::paper_testbed();
        ClusterConfig {
            version,
            fabric: FabricConfig::ring(press.nodes),
            press,
            tcp: TcpConfig::default(),
            via,
            rate: version.paper_throughput() * 1.06,
            prewarm: true,
            restart_delay: SimDuration::from_secs(3),
            trace: telemetry::TraceConfig::OFF,
            sim_threads: default_sim_threads(),
            attribution: false,
        }
    }

    /// The operating point for fault-injection experiments: the same
    /// test-bed driven just under peak, so the pre-fault baseline is
    /// stable and fully served ("the delivered throughput is relatively
    /// stable throughout the observation period", §2.1).
    pub fn fault_experiment(version: PressVersion) -> Self {
        let mut c = ClusterConfig::paper_defaults(version);
        c.rate = version.paper_throughput() * 0.95;
        c
    }

    /// A proportionally shrunk test-bed for fast unit/integration tests:
    /// same cache-to-working-set ratios and behaviours, an order of
    /// magnitude fewer events.
    pub fn small(version: PressVersion) -> Self {
        let mut c = ClusterConfig::paper_defaults(version);
        c.press.files = 6_000;
        c.press.cache_bytes = 1_640 * u64::from(c.press.file_bytes);
        c.rate = 900.0;
        c
    }
}

/// What happened to a process, for the run log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcEvent {
    /// The process died (fault or fail-fast).
    Exit,
    /// The process came back up.
    Restart,
}

/// Simulation events.
#[derive(Debug)]
enum Ev {
    Frame(Frame<WirePayload<PressMsg>>),
    Timer(TimerKey),
    App { node: usize, gen: u64, ev: AppEvent },
    Reply { node: usize, gen: u64, req_id: u64 },
    Client(ClientEvent),
    Fault(usize),
    ProcessRestart { node: usize, gen: u64 },
}

/// Internal work items processed synchronously within one event.
enum Work {
    Client(Request),
    AppEv(AppEvent),
    Upcall(Upcall<PressMsg>),
    FrameIn(Frame<WirePayload<PressMsg>>),
    Timer(TimerKey),
    TransmitFailed(NodeId, LossReason),
    Start { cold: bool },
    SetHung(bool),
}

struct NodeSlot {
    press: PressNode,
    /// The transport endpoint, statically dispatched: the hot path never
    /// pays a vtable indirection per frame/timer/send.
    sub: SubstrateImpl<PressMsg>,
    cpu: CpuMeter,
    mangler: mendosus::Mangler,
    running: bool,
    hung: bool,
    frozen: bool,
    gen: u64,
    freezer: Vec<Work>,
}

/// How much a gray [`FaultKind::CpuThrottle`] slows a node: every CPU
/// charge costs this many times more while the fault is active.
const GRAY_THROTTLE_FACTOR: u32 = 8;

/// Reference counts of active faults per affected component.
///
/// Single-fault campaigns flip state directly; overlapping campaigns
/// cannot — two concurrent `LinkDown`s on the same node must keep the
/// link down until *both* recover. Every condition fault increments its
/// counter on inject and decrements on recover, and the underlying
/// state (fabric flags, substrate error modes, process freeze) changes
/// only on 0→1 and →0 edges. Non-overlapping campaigns take exactly the
/// same edge transitions as the old direct flips, so all existing
/// goldens are unchanged.
#[derive(Debug, Clone, Default)]
struct NodeFaultCounts {
    link_down: u32,
    crash: u32,
    hang: u32,
    alloc_fail: u32,
    pin_fail: u32,
    app_hang: u32,
    degraded: u32,
    throttle: u32,
}

#[derive(Debug, Default)]
struct FaultLedger {
    nodes: Vec<NodeFaultCounts>,
    switch_down: u32,
    /// Active partial partitions per normalized `(lo, hi)` node pair.
    partitions: BTreeMap<(usize, usize), u32>,
}

impl FaultLedger {
    fn new(nodes: usize) -> Self {
        FaultLedger {
            nodes: vec![NodeFaultCounts::default(); nodes],
            switch_down: 0,
            partitions: BTreeMap::new(),
        }
    }

    /// Bumps `count` up or down and reports whether the component's
    /// state changed (0→1 on inject, →0 on recover). Recovering a
    /// never-injected fault is a campaign bug and panics.
    fn edge(count: &mut u32, inject: bool) -> bool {
        if inject {
            *count += 1;
            *count == 1
        } else {
            assert!(*count > 0, "recovering a fault that was never injected");
            *count -= 1;
            *count == 0
        }
    }
}

/// Reusable pool of [`Effects`] buffers, so transport/app calls fill
/// recycled capacity instead of allocating a fresh `Vec` per work item.
#[derive(Default)]
struct FxPool {
    bufs: Vec<Effects<PressMsg>>,
}

impl FxPool {
    fn take(&mut self) -> Effects<PressMsg> {
        self.bufs.pop().unwrap_or_default()
    }

    fn put(&mut self, mut buf: Effects<PressMsg>) {
        buf.clear();
        self.bufs.push(buf);
    }
}

/// Cancellation bookkeeping for one TCP connection's timers.
///
/// TCP bumps the shared per-connection `gen` on every `arm_timer` and
/// `timer_fired` demands an exact match, so *any* pending timer whose
/// gen is older than the newest `SetTimer` gen seen for the connection
/// is a guaranteed no-op — it can be cancelled out of the engine instead
/// of transiting the heap just to be discarded. VIA's gens reset when a
/// Vi is replaced (not monotone), so the index is only maintained for
/// TCP versions; VIA only arms rare connection-setup timers anyway.
#[derive(Clone, Default)]
struct ConnTimers {
    /// Gen of the newest `SetTimer` seen for this connection.
    latest_gen: u64,
    /// Per-kind pending timer: `(gen, engine token, fire time)`. The
    /// fire time is carried for the parallel driver, which must know
    /// whether a superseded timer is still engine-resident or already
    /// drained into the current window.
    pending: [Option<(u64, CancelToken, SimTime)>; TimerKind::COUNT],
}

/// Summary of a finished (or in-progress) run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Successful-request throughput, 1 s buckets.
    pub throughput: TimeSeries,
    /// Request outcome tallies.
    pub availability: AvailabilityCounter,
    /// Response-time distribution of the successful requests.
    pub latency: LatencyHistogram,
    /// Per-bucket response-time distributions, same 1 s buckets as
    /// `throughput` — merged per stage by the report generator.
    pub latency_timeline: Vec<LatencyHistogram>,
    /// `(time, node, members)` whenever a node's membership view
    /// changed size.
    pub membership_log: Vec<(SimTime, NodeId, usize)>,
    /// `(time, node, event)` process exits and restarts.
    pub process_log: Vec<(SimTime, NodeId, ProcEvent)>,
    /// Per-node membership sizes at the end of the run.
    pub final_members: Vec<usize>,
    /// Whether every process was running at the end of the run.
    pub all_running: bool,
}

impl ClusterReport {
    /// `true` if the cluster ended the run fully merged and running —
    /// i.e. no operator intervention would be needed.
    pub fn fully_recovered(&self, nodes: usize) -> bool {
        self.all_running && self.final_members.iter().all(|m| *m == nodes)
    }
}

/// Process-wide count of engine events dispatched by completed
/// simulations (flushed when each [`ClusterSim`] drops). The repro
/// harness reads deltas around each target to report events/second.
static EVENTS_DISPATCHED: AtomicU64 = AtomicU64::new(0);

/// Total engine events dispatched by all simulations finished so far,
/// across all threads.
pub fn events_dispatched_total() -> u64 {
    EVENTS_DISPATCHED.load(Ordering::Relaxed)
}

/// The simulated cluster.
pub struct ClusterSim {
    config: ClusterConfig,
    engine: Engine<Ev>,
    fabric: Fabric,
    nodes: Vec<NodeSlot>,
    clients: ClientPool,
    actions: Vec<FaultAction>,
    /// Active-fault reference counts (overlapping campaigns).
    ledger: FaultLedger,
    membership_log: Vec<(SimTime, NodeId, usize)>,
    process_log: Vec<(SimTime, NodeId, ProcEvent)>,
    last_members: Vec<usize>,
    sink: telemetry::TraceSink,
    /// Root-cause attribution accumulator (`None` when disabled). All
    /// records flow through the facade in `(time, seq)` order, so the
    /// result is byte-identical across `--jobs` and `--sim-threads`.
    attr: Option<Box<telemetry::AttrState>>,
    /// Sampled in-flight requests: id → (issue time, target node).
    traced_requests: std::collections::BTreeMap<u64, (SimTime, usize)>,
    /// Work queue reused across events (allocation-free steady state).
    work: VecDeque<(usize, Work)>,
    /// Pool of `Effects` buffers reused across work items.
    fx_pool: FxPool,
    /// App-effect buffer reused across work items.
    app_scratch: Vec<AppEffect>,
    /// Same-instant event burst buffer reused across `run_until` steps.
    batch: Vec<Ev>,
    /// Per-node `conn → ConnTimers` cancellation index (TCP versions
    /// only; `None` for VIA — see [`ConnTimers`]).
    timers: Option<Vec<BTreeMap<u64, ConnTimers>>>,
    /// Superseded timers cancelled before ever being dispatched.
    timers_suppressed: u64,
}

impl Drop for ClusterSim {
    fn drop(&mut self) {
        EVENTS_DISPATCHED.fetch_add(self.engine.dispatched(), Ordering::Relaxed);
    }
}

impl ClusterSim {
    /// Builds and boots a fault-free cluster.
    pub fn new(config: ClusterConfig, seed: u64) -> Self {
        ClusterSim::with_campaign(config, Campaign::none(), seed)
    }

    /// Builds and boots a cluster with a fault campaign armed.
    pub fn with_campaign(config: ClusterConfig, campaign: Campaign, seed: u64) -> Self {
        let mut config = config;
        // The epidemic detector derives each node's probe-order stream
        // from the run seed and its node id (no draw from the main rng,
        // so Ring runs are bit-identical with or without this field).
        config.press.gossip.seed = seed;
        let mut rng = SimRng::seed_from(seed);
        let n = config.press.nodes;
        // A booted 4-node cluster keeps a few hundred events in flight;
        // pre-sizing skips the early heap growth.
        let mut engine = Engine::with_capacity(512);
        let fabric = Fabric::new(config.fabric.clone());
        let client_config = ClientConfig {
            rate: config.rate,
            nodes: n,
            files: config.press.files,
            ..ClientConfig::paper(config.rate)
        };
        let mut clients = ClientPool::new(client_config, rng.fork());
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let id = NodeId(i);
            let sub = if config.version.uses_via() {
                SubstrateImpl::Via(ViaNic::new(id, config.via.clone(), config.version.cost_model()))
            } else {
                SubstrateImpl::Tcp(TcpStack::new(
                    id,
                    config.tcp.clone(),
                    config.version.cost_model(),
                ))
            };
            nodes.push(NodeSlot {
                press: PressNode::new(id, config.version, config.press.clone()),
                sub,
                cpu: CpuMeter::new(),
                mangler: mendosus::Mangler::new(),
                running: true,
                hung: false,
                frozen: false,
                gen: 0,
                freezer: Vec::new(),
            });
        }
        // Arm the campaign. Replaying a malformed campaign would
        // corrupt the ledger's reference counts, so reject it up front.
        if let Err(err) = campaign.validate() {
            panic!("invalid fault campaign: {err}");
        }
        let actions = campaign.actions();
        for (i, a) in actions.iter().enumerate() {
            engine.schedule_at(a.at, Ev::Fault(i));
        }
        // First client arrival.
        let first = clients.first_arrival(SimTime::ZERO);
        engine.schedule_at(first, Ev::Client(ClientEvent::Arrival));

        let sink = telemetry::TraceSink::new(config.trace);
        if sink.enabled() {
            for slot in &mut nodes {
                slot.sub.set_trace(true);
                slot.press.set_trace(true);
            }
        }
        let attr = config
            .attribution
            .then(|| Box::new(telemetry::AttrState::new(n)));
        if attr.is_some() {
            for slot in &mut nodes {
                slot.sub.set_attr(true);
                slot.press.set_attr(true);
            }
        }
        let timers = if config.version.uses_via() {
            None
        } else {
            Some(vec![BTreeMap::new(); n])
        };
        let mut sim = ClusterSim {
            last_members: vec![0; n],
            config,
            engine,
            fabric,
            nodes,
            clients,
            actions,
            ledger: FaultLedger::new(n),
            membership_log: Vec::new(),
            process_log: Vec::new(),
            sink,
            attr,
            traced_requests: std::collections::BTreeMap::new(),
            work: VecDeque::new(),
            fx_pool: FxPool::default(),
            app_scratch: Vec::new(),
            batch: Vec::new(),
            timers,
            timers_suppressed: 0,
        };
        // Cold-boot every node.
        for i in 0..n {
            sim.work.push_back((i, Work::Start { cold: true }));
        }
        sim.drain_work(SimTime::ZERO);
        if sim.config.prewarm {
            sim.prewarm();
        }
        sim
    }

    /// The configuration in use.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Engine events dispatched by this simulation so far (live view of
    /// the count folded into [`events_dispatched_total`] on drop).
    pub fn events_dispatched(&self) -> u64 {
        self.engine.dispatched()
    }

    /// Direct fabric access (tests and custom scenarios).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// A node's PRESS state (tests and reports).
    pub fn press(&self, node: NodeId) -> &PressNode {
        &self.nodes[node.0].press
    }

    /// Whether a node's process is currently running.
    pub fn process_running(&self, node: NodeId) -> bool {
        self.nodes[node.0].running
    }

    fn prewarm(&mut self) {
        // Spread the document set round-robin over the nodes, matching
        // the steady state cooperative caching converges to.
        let n = self.config.press.nodes;
        let per_node = self.config.press.cache_entries();
        let files = self.config.press.files as usize;
        // Round-robin gives node 0 the most files: ceil(files / n).
        assert!(
            files.div_ceil(n) <= per_node,
            "document set must fit in the aggregate cache for prewarm"
        );
        let assignment: Vec<NodeId> = (0..files).map(|f| NodeId(f % n)).collect();
        let now = self.engine.now();
        for i in 0..n {
            let slot = &mut self.nodes[i];
            let mut fx = self.fx_pool.take();
            let mut app = std::mem::take(&mut self.app_scratch);
            let mut ctx = NodeCtx {
                now,
                cpu: &mut slot.cpu,
                sub: &mut slot.sub,
                interposer: &mut slot.mangler,
                fx: &mut fx,
                app: &mut app,
            };
            slot.press.prewarm(&mut ctx, &assignment);
            // Prewarm is setup, not simulation: discard the effects (the
            // CPU cost of loading caches happened "before" the run).
            self.fx_pool.put(fx);
            app.clear();
            self.app_scratch = app;
        }
    }

    /// Runs the simulation until `deadline`.
    ///
    /// Events are pulled in same-instant bursts
    /// ([`Engine::pop_batch_before`]) rather than one `pop_before` call
    /// per event; events an in-burst handler schedules for the current
    /// instant land in the *next* burst, which is exactly where the
    /// per-event loop would have delivered them (they carry later seqs),
    /// so dispatch order — and therefore every report — is unchanged.
    pub fn run_until(&mut self, deadline: SimTime) {
        let threads = self.config.sim_threads.min(self.config.press.nodes).max(1);
        if threads > 1 {
            if self.config.fabric.lookahead() > SimDuration::ZERO {
                par::run_until_parallel(self, deadline, threads);
                return;
            }
            par::warn_zero_lookahead();
        }
        let mut batch = std::mem::take(&mut self.batch);
        while let Some(now) = self.engine.pop_batch_before(deadline, &mut batch) {
            for ev in batch.drain(..) {
                self.handle(now, ev);
            }
        }
        self.batch = batch;
    }

    /// Builds the report for everything seen so far.
    pub fn report(&self) -> ClusterReport {
        let end = self.engine.now();
        ClusterReport {
            throughput: self.clients.throughput(end),
            availability: self.clients.counter().clone(),
            latency: self.clients.latency().clone(),
            latency_timeline: self.clients.latency_timeline(end),
            membership_log: self.membership_log.clone(),
            process_log: self.process_log.clone(),
            final_members: self.nodes.iter().map(|s| s.press.members().len()).collect(),
            all_running: self.nodes.iter().all(|s| s.running),
        }
    }

    /// Mean successful throughput over `[t0, t1)` seconds.
    pub fn mean_throughput(&self, t0: f64, t1: f64) -> f64 {
        self.clients.mean_throughput(self.engine.now(), t0, t1)
    }

    /// Whether structured tracing is live for this run.
    pub fn trace_enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Superseded transport timers cancelled out of the engine before
    /// they were ever dispatched (also exported as the
    /// `transport.timers_stale_suppressed` metric).
    pub fn timers_stale_suppressed(&self) -> u64 {
        self.timers_suppressed
    }

    /// Drains the buffered trace events (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<telemetry::TraceEvent> {
        self.sink.take()
    }

    /// Whether root-cause attribution is live for this run.
    pub fn attribution_enabled(&self) -> bool {
        self.attr.is_some()
    }

    /// Takes the attribution accumulator frozen into its report
    /// (`None` when attribution is off or already taken).
    pub fn take_attr(&mut self) -> Option<telemetry::AttrReport> {
        self.attr.take().map(|a| a.finish())
    }

    /// Records one attribution event (no-op when attribution is off).
    #[inline]
    fn record_attr(&mut self, now: SimTime, node: usize, ev: telemetry::AttrEvent) {
        if let Some(a) = &mut self.attr {
            a.record(now, node, ev);
        }
    }

    /// Snapshots every layer's counters and gauges into one registry:
    /// transport stats, PRESS behaviour counters, per-node CPU busy
    /// fractions, client outcome tallies and the current splinter count
    /// (distinct membership views among running nodes).
    pub fn metrics_snapshot(&self) -> telemetry::MetricsRegistry {
        /// Pre-rendered per-node gauge keys: snapshots are taken inside
        /// timed runs, so they must not allocate a label per node.
        static CPU_LABELS: [&str; 16] = [
            "cpu.busy_fraction.node0",
            "cpu.busy_fraction.node1",
            "cpu.busy_fraction.node2",
            "cpu.busy_fraction.node3",
            "cpu.busy_fraction.node4",
            "cpu.busy_fraction.node5",
            "cpu.busy_fraction.node6",
            "cpu.busy_fraction.node7",
            "cpu.busy_fraction.node8",
            "cpu.busy_fraction.node9",
            "cpu.busy_fraction.node10",
            "cpu.busy_fraction.node11",
            "cpu.busy_fraction.node12",
            "cpu.busy_fraction.node13",
            "cpu.busy_fraction.node14",
            "cpu.busy_fraction.node15",
        ];
        let mut reg = telemetry::MetricsRegistry::new();
        let now = self.engine.now();
        for (i, slot) in self.nodes.iter().enumerate() {
            slot.sub.export_metrics(&mut reg);
            let busy = slot.cpu.utilization(now);
            match CPU_LABELS.get(i) {
                Some(label) => reg.gauge_set(label, busy),
                None => reg.gauge_set(&format!("cpu.busy_fraction.node{i}"), busy),
            }
            let s = slot.press.stats();
            reg.counter_add("press.served_local", s.served_local);
            reg.counter_add("press.served_remote", s.served_remote);
            reg.counter_add("press.served_disk", s.served_disk);
            reg.counter_add("press.dropped_admission", s.dropped_admission);
            reg.counter_add("press.dropped_deferred", s.dropped_deferred);
            reg.counter_add("press.efault_drops", s.efault_drops);
            reg.counter_add("press.forward_timeouts", s.forward_timeouts);
            reg.counter_add("press.pin_cache_skips", s.pin_cache_skips);
            reg.counter_add("press.exclusions", s.exclusions);
            reg.counter_add("press.rejoined", s.rejoined);
            reg.counter_add("press.merges", s.merges);
            // Epidemic-detector fan-out counters exist only when the
            // Gossip detector runs, so Ring snapshots (and their golden
            // files) are untouched by the membership subsystem.
            if let Some(g) = slot.press.swim_stats() {
                reg.counter_add("press.gossip.pings", g.pings);
                reg.counter_add("press.gossip.acks", g.acks);
                reg.counter_add("press.gossip.ping_reqs", g.ping_reqs);
                reg.counter_add("press.gossip.relays", g.relays);
                reg.counter_add("press.gossip.suspects", g.suspects);
                reg.counter_add("press.gossip.clears", g.clears);
                reg.counter_add("press.gossip.refutations", g.refutations);
                reg.counter_add("press.gossip.confirms", g.confirms);
                reg.counter_add("press.gossip.updates_sent", g.updates_sent);
            }
            // Cache-sync counters are gated the same way: Eager mode now
            // counts its broadcast frames too, so exporting them
            // unconditionally would perturb the pre-digest metrics
            // goldens.
            if self.config.press.cache_sync == press::CacheSyncImpl::Digest {
                reg.counter_add("press.cache.sync_frames", s.cache_sync_frames);
                reg.counter_add("press.cache.digest_flushes", s.digest_flushes);
                reg.counter_add("press.cache.digest_deltas", s.digest_deltas);
                reg.counter_add("press.cache.digest_retries", s.digest_retries);
            }
        }
        reg.counter_add(
            "transport.timers_stale_suppressed",
            self.timers_suppressed,
        );
        self.clients.export_metrics(&mut reg);
        let views: std::collections::BTreeSet<Vec<usize>> = self
            .nodes
            .iter()
            .filter(|s| s.running)
            .map(|s| s.press.members().iter().map(|n| n.0).collect())
            .collect();
        reg.gauge_set("cluster.splinters", views.len() as f64);
        reg
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Ev) {
        debug_assert!(self.work.is_empty());
        match ev {
            Ev::Frame(frame) => {
                let dst = frame.dst.0;
                if self.fabric.node_up(frame.dst) {
                    self.work.push_back((dst, Work::FrameIn(frame)));
                }
            }
            Ev::Timer(key) => {
                if self.note_timer_dispatched(&key) {
                    self.timers_suppressed += 1;
                } else if self.fabric.node_up(key.node) {
                    self.work.push_back((key.node.0, Work::Timer(key)));
                }
            }
            Ev::App { node, gen, ev } => {
                if self.nodes[node].running && self.nodes[node].gen == gen {
                    self.work.push_back((node, Work::AppEv(ev)));
                }
            }
            Ev::Reply { node, gen, req_id } => {
                if self.nodes[node].running && self.nodes[node].gen == gen {
                    // Mirror the pool exactly: a late reply does not
                    // score, so it must not close the causal record
                    // either (the pending deadline will classify it).
                    if self.clients.complete(now, req_id) {
                        self.record_attr(now, node, telemetry::AttrEvent::Completed { req_id });
                    }
                    if let Some((issued, target)) = self.traced_requests.remove(&req_id) {
                        self.sink.emit(
                            telemetry::TraceEvent::span(
                                "request",
                                "client",
                                target as u32,
                                issued,
                                now.saturating_since(issued),
                            )
                            .arg_u64("req_id", req_id),
                        );
                    }
                }
            }
            Ev::Client(ClientEvent::Arrival) => {
                let (req, target, next) = self.clients.arrive(now);
                self.engine.schedule_at(next, Ev::Client(ClientEvent::Arrival));
                let sample = self.config.trace.request_sample;
                let traced = self.sink.enabled() && sample != 0 && req.id % sample == 0;
                let slot = &self.nodes[target.0];
                if !self.fabric.node_up(target) || slot.frozen {
                    // Machine unresponsive: SYN goes nowhere.
                    self.clients.connect_failed();
                    self.record_attr(now, target.0, telemetry::AttrEvent::ConnFailed);
                    if traced {
                        self.sink.emit(
                            telemetry::TraceEvent::instant(
                                "request.conn_failed",
                                "client",
                                telemetry::TID_CLIENTS,
                                now,
                            )
                            .arg_u64("req_id", req.id)
                            .arg_u64("node", target.0 as u64),
                        );
                    }
                } else if !slot.running {
                    // Machine up, process dead: refused immediately.
                    self.clients.refused();
                    self.record_attr(now, target.0, telemetry::AttrEvent::Refused);
                    if traced {
                        self.sink.emit(
                            telemetry::TraceEvent::instant(
                                "request.refused",
                                "client",
                                telemetry::TID_CLIENTS,
                                now,
                            )
                            .arg_u64("req_id", req.id)
                            .arg_u64("node", target.0 as u64),
                        );
                    }
                } else if slot.hung {
                    // The kernel accepts; the application never reads.
                    if traced {
                        self.traced_requests.insert(req.id, (now, target.0));
                    }
                    let deadline = self.clients.accepted(now, req.id);
                    self.record_attr(now, target.0, telemetry::AttrEvent::Accepted { req_id: req.id });
                    // Deadlines are always `now + request_timeout`, so the
                    // stream is monotone: the O(1) lane keeps these tens
                    // of thousands of far-future events out of the heap.
                    self.engine
                        .schedule_fifo(deadline, Ev::Client(ClientEvent::Deadline(req.id)));
                    self.nodes[target.0].freezer.push(Work::Client(req));
                } else {
                    if traced {
                        self.traced_requests.insert(req.id, (now, target.0));
                    }
                    self.work.push_back((target.0, Work::Client(req)));
                }
            }
            Ev::Client(ClientEvent::Deadline(id)) => {
                self.clients.deadline(id);
                self.record_attr(now, 0, telemetry::AttrEvent::DeadlineMiss { req_id: id });
                if let Some((issued, target)) = self.traced_requests.remove(&id) {
                    self.sink.emit(
                        telemetry::TraceEvent::instant(
                            "request.timeout",
                            "client",
                            target as u32,
                            now,
                        )
                        .arg_u64("req_id", id)
                        .arg_u64("waited_us", now.saturating_since(issued).as_nanos() / 1_000),
                    );
                }
            }
            Ev::ProcessRestart { node, gen } => {
                let slot = &mut self.nodes[node];
                // A frozen machine cannot boot a process; the hang
                // recovery reschedules the restart when it thaws.
                if slot.gen == gen && !slot.running && !slot.frozen {
                    slot.running = true;
                    self.process_log.push((now, NodeId(node), ProcEvent::Restart));
                    self.record_attr(now, node, telemetry::AttrEvent::FaultEnd);
                    self.sink.emit_with(|| {
                        telemetry::TraceEvent::instant(
                            "process.restart",
                            "proc",
                            node as u32,
                            now,
                        )
                    });
                    self.work.push_back((node, Work::Start { cold: false }));
                }
            }
            Ev::Fault(idx) => {
                let action = self.actions[idx].clone();
                self.apply_fault(now, &action);
            }
        }
        self.drain_work(now);
    }

    /// Records delivery of a timer event and reports whether it is
    /// *certainly* stale (superseded by a later gen for its connection)
    /// and need not reach the transport. Cancellation at arm time
    /// already removes such timers from the engine, so this is a cheap
    /// defensive check; delivering a maybe-stale timer is always safe
    /// (the transport re-checks the gen).
    fn note_timer_dispatched(&mut self, key: &TimerKey) -> bool {
        let Some(per_node) = &mut self.timers else {
            return false;
        };
        let Some(entry) = per_node[key.node.0].get_mut(&key.conn) else {
            return false;
        };
        let slot = &mut entry.pending[key.kind.idx()];
        if slot.is_some_and(|(g, ..)| g == key.gen) {
            *slot = None;
        }
        key.gen < entry.latest_gen
    }

    /// Schedules a transport timer, cancelling any pending timer of the
    /// same connection that the new gen supersedes (see [`ConnTimers`]).
    fn schedule_timer(&mut self, at: SimTime, key: TimerKey) {
        let Some(per_node) = &mut self.timers else {
            self.engine.schedule_at(at, Ev::Timer(key));
            return;
        };
        let entry = per_node[key.node.0].entry(key.conn).or_default();
        if key.gen > entry.latest_gen {
            entry.latest_gen = key.gen;
        }
        for slot in &mut entry.pending {
            if let Some((g, token, _)) = *slot {
                if g < entry.latest_gen {
                    *slot = None;
                    if self.engine.cancel(token) {
                        self.timers_suppressed += 1;
                    }
                }
            }
        }
        let token = self.engine.schedule_cancellable(at, Ev::Timer(key));
        entry.pending[key.kind.idx()] = Some((key.gen, token, at));
    }

    fn apply_fault(&mut self, now: SimTime, action: &FaultAction) {
        let spec = &action.spec;
        let node = spec.node;
        let inject = action.phase == FaultPhase::Inject;
        if self.sink.enabled() {
            if inject {
                self.sink.emit(
                    telemetry::TraceEvent::instant(
                        "fault.inject",
                        "fault",
                        telemetry::TID_CLUSTER,
                        now,
                    )
                    .arg_str("kind", spec.kind.to_string())
                    .arg_u64("node", node.0 as u64),
                );
            } else {
                // One span covering the fault's whole active window,
                // plus the recovery instant.
                self.sink.emit(
                    telemetry::TraceEvent::span(
                        "fault.active",
                        "fault",
                        telemetry::TID_CLUSTER,
                        spec.at,
                        now.saturating_since(spec.at),
                    )
                    .arg_str("kind", spec.kind.to_string())
                    .arg_u64("node", node.0 as u64),
                );
                self.sink.emit(
                    telemetry::TraceEvent::instant(
                        "fault.recover",
                        "fault",
                        telemetry::TID_CLUSTER,
                        now,
                    )
                    .arg_str("kind", spec.kind.to_string())
                    .arg_u64("node", node.0 as u64),
                );
            }
        }
        // Condition faults go through the ledger: state changes only on
        // 0→1 / →0 count edges, so overlapping faults on the same
        // component compose instead of clobbering each other.
        match spec.kind {
            FaultKind::LinkDown => {
                if FaultLedger::edge(&mut self.ledger.nodes[node.0].link_down, inject) {
                    self.fabric.set_link_up(node, !inject);
                }
            }
            FaultKind::SwitchDown => {
                if FaultLedger::edge(&mut self.ledger.switch_down, inject) {
                    self.fabric.set_switch_up(!inject);
                }
            }
            FaultKind::NodeCrash => {
                let counts = &mut self.ledger.nodes[node.0];
                if inject {
                    if FaultLedger::edge(&mut counts.crash, true) {
                        self.fabric.set_node_up(node, false);
                        self.kill_process(now, node.0, None);
                    }
                } else if FaultLedger::edge(&mut counts.crash, false) {
                    // Machine back up (unless a concurrent hang still
                    // holds it frozen); Mendosus restarts PRESS after
                    // the boot completes.
                    if counts.hang == 0 {
                        self.fabric.set_node_up(node, true);
                    }
                    let gen = self.nodes[node.0].gen;
                    self.engine.schedule_at(
                        now + self.config.restart_delay,
                        Ev::ProcessRestart { node: node.0, gen },
                    );
                }
            }
            FaultKind::NodeHang => {
                let counts = &mut self.ledger.nodes[node.0];
                if inject {
                    if FaultLedger::edge(&mut counts.hang, true) {
                        self.fabric.set_node_up(node, false);
                        self.nodes[node.0].frozen = true;
                        self.record_attr(now, node.0, telemetry::AttrEvent::FaultBegin);
                    }
                } else if FaultLedger::edge(&mut counts.hang, false) {
                    let crashed = counts.crash > 0;
                    if !crashed {
                        self.fabric.set_node_up(node, true);
                    }
                    self.record_attr(now, node.0, telemetry::AttrEvent::FaultEnd);
                    let slot = &mut self.nodes[node.0];
                    slot.frozen = false;
                    let frozen_work = std::mem::take(&mut slot.freezer);
                    for w in frozen_work {
                        self.work.push_back((node.0, w));
                    }
                    // A crash recovery that fired while the machine was
                    // frozen could not boot the process (see
                    // Ev::ProcessRestart); resume the boot now.
                    let slot = &self.nodes[node.0];
                    if !crashed && !slot.running {
                        let gen = slot.gen;
                        self.engine.schedule_at(
                            now + self.config.restart_delay,
                            Ev::ProcessRestart { node: node.0, gen },
                        );
                    }
                }
            }
            FaultKind::KernelAllocFail => {
                if FaultLedger::edge(&mut self.ledger.nodes[node.0].alloc_fail, inject) {
                    self.nodes[node.0].sub.set_alloc_fail(inject);
                }
            }
            FaultKind::MemPinFail => {
                if FaultLedger::edge(&mut self.ledger.nodes[node.0].pin_fail, inject) {
                    self.nodes[node.0].sub.set_pin_fail(inject);
                }
            }
            FaultKind::AppHang => {
                if FaultLedger::edge(&mut self.ledger.nodes[node.0].app_hang, inject) {
                    if inject {
                        self.nodes[node.0].hung = true;
                        self.record_attr(now, node.0, telemetry::AttrEvent::FaultBegin);
                        self.work.push_back((node.0, Work::SetHung(true)));
                    } else {
                        self.nodes[node.0].hung = false;
                        self.record_attr(now, node.0, telemetry::AttrEvent::FaultEnd);
                        self.work.push_back((node.0, Work::SetHung(false)));
                        let frozen_work = std::mem::take(&mut self.nodes[node.0].freezer);
                        for w in frozen_work {
                            self.work.push_back((node.0, w));
                        }
                    }
                }
            }
            FaultKind::AppCrash => {
                if inject {
                    // kill_process is idempotent and each kill schedules
                    // its own gen-checked restart, so overlapping app
                    // crashes need no reference count.
                    self.kill_process(now, node.0, spec.duration);
                } else {
                    // Restart handled by the scheduled ProcessRestart.
                }
            }
            FaultKind::BadParamNull | FaultKind::BadParamOffPtr | FaultKind::BadParamOffSize => {
                if inject {
                    let bad = match spec.kind {
                        FaultKind::BadParamNull => mendosus::BadParam::NullPtr,
                        FaultKind::BadParamOffPtr => mendosus::BadParam::OffByPtr(spec.off_n),
                        _ => mendosus::BadParam::OffBySize(spec.off_n.max(1)),
                    };
                    self.nodes[node.0].mangler.plan(PlannedMangle {
                        at: now,
                        class: spec.class,
                        bad,
                    });
                }
            }
            FaultKind::LinkDegraded => {
                if FaultLedger::edge(&mut self.ledger.nodes[node.0].degraded, inject) {
                    self.fabric.set_link_degraded(node, inject);
                }
            }
            FaultKind::CpuThrottle => {
                if FaultLedger::edge(&mut self.ledger.nodes[node.0].throttle, inject) {
                    self.nodes[node.0]
                        .cpu
                        .set_throttle(if inject { GRAY_THROTTLE_FACTOR } else { 1 });
                }
            }
            FaultKind::PartialPartition => {
                let peer = spec.peer.expect("partition specs always carry a peer");
                let key = (node.0.min(peer.0), node.0.max(peer.0));
                let count = self.ledger.partitions.entry(key).or_insert(0);
                if FaultLedger::edge(count, inject) {
                    self.fabric.set_pair_blocked(node, peer, inject);
                }
                if *count == 0 {
                    self.ledger.partitions.remove(&key);
                }
            }
        }
    }

    fn kill_process(&mut self, now: SimTime, node: usize, restart_after: Option<SimDuration>) {
        let slot = &mut self.nodes[node];
        if !slot.running {
            return;
        }
        slot.running = false;
        slot.hung = false;
        slot.gen += 1;
        slot.cpu.reset_backlog(now);
        slot.freezer.clear();
        slot.sub.restart(now);
        self.process_log.push((now, NodeId(node), ProcEvent::Exit));
        if let Some(a) = &mut self.attr {
            a.record(now, node, telemetry::AttrEvent::FaultBegin);
        }
        self.sink
            .emit_with(|| telemetry::TraceEvent::instant("process.exit", "proc", node as u32, now));
        if let Some(delay) = restart_after {
            let gen = slot.gen;
            self.engine
                .schedule_at(now + delay, Ev::ProcessRestart { node, gen });
        }
    }

    // ------------------------------------------------------------------
    // Work processing
    // ------------------------------------------------------------------

    fn drain_work(&mut self, now: SimTime) {
        while let Some((i, w)) = self.work.pop_front() {
            // Reused buffers: zero steady-state allocation per work item.
            let mut fx = self.fx_pool.take();
            let mut app = std::mem::take(&mut self.app_scratch);
            let mut accept: Option<(u64, ClientAccept)> = None;
            {
                let slot = &mut self.nodes[i];
                // Transport-level work reaches the endpoint even when
                // the process is gone (the kernel answers with resets);
                // application work requires a live, unfrozen process.
                let transport_work = matches!(
                    w,
                    Work::FrameIn(_) | Work::Timer(_) | Work::TransmitFailed(..)
                );
                if !transport_work {
                    if !slot.running && !matches!(w, Work::Start { .. }) {
                        self.fx_pool.put(fx);
                        self.app_scratch = app;
                        continue;
                    }
                    if (slot.frozen || slot.hung)
                        && !matches!(w, Work::SetHung(_) | Work::Start { .. })
                    {
                        slot.freezer.push(w);
                        self.fx_pool.put(fx);
                        self.app_scratch = app;
                        continue;
                    }
                }
                let mut ctx = NodeCtx {
                    now,
                    cpu: &mut slot.cpu,
                    sub: &mut slot.sub,
                    interposer: &mut slot.mangler,
                    fx: &mut fx,
                    app: &mut app,
                };
                match w {
                    Work::Client(req) => {
                        let a = slot.press.client_request(&mut ctx, req);
                        accept = Some((req.id, a));
                    }
                    Work::AppEv(ev) => slot.press.on_app_event(&mut ctx, ev),
                    Work::Upcall(u) => {
                        if slot.running && !slot.frozen {
                            if slot.hung {
                                // Ends ctx's borrow of the slot so the
                                // freezer can take the work item.
                                let _ = ctx;
                                slot.freezer.push(Work::Upcall(u));
                            } else {
                                slot.press.on_upcall(&mut ctx, u);
                            }
                        }
                    }
                    Work::FrameIn(frame) => ctx.sub.frame_arrived(now, frame, ctx.fx),
                    Work::Timer(key) => ctx.sub.timer_fired(now, key, ctx.fx),
                    Work::TransmitFailed(peer, reason) => {
                        ctx.sub.transmit_failed(now, peer, reason, ctx.fx)
                    }
                    Work::Start { cold } => {
                        slot.press.start(&mut ctx, cold);
                    }
                    Work::SetHung(h) => {
                        // The transport fills the shared fx buffer
                        // directly; no intermediate Vec.
                        ctx.sub.set_app_receiving(now, !h, ctx.fx);
                    }
                }
            }
            if let Some((req_id, a)) = accept {
                match a {
                    ClientAccept::Accepted => {
                        let deadline = self.clients.accepted(now, req_id);
                        self.record_attr(now, i, telemetry::AttrEvent::Accepted { req_id });
                        self.engine
                            .schedule_fifo(deadline, Ev::Client(ClientEvent::Deadline(req_id)));
                    }
                    ClientAccept::Dropped(reason) => {
                        self.clients.connect_failed();
                        let ev = match reason {
                            press::DropReason::DeferOverflow => {
                                telemetry::AttrEvent::DroppedOverflow
                            }
                            press::DropReason::Admission => telemetry::AttrEvent::DroppedBacklog,
                        };
                        self.record_attr(now, i, ev);
                    }
                }
            }
            self.apply_effects(now, i, &mut fx, &mut app);
            self.fx_pool.put(fx);
            app.clear();
            self.app_scratch = app;
        }
    }

    fn apply_effects(
        &mut self,
        now: SimTime,
        i: usize,
        fx: &mut Effects<PressMsg>,
        app: &mut Vec<AppEffect>,
    ) {
        for e in fx.drain(..) {
            match e {
                Effect::Transmit(frame) => match self.fabric.transmit(now, &frame) {
                    simnet::fabric::TransmitOutcome::Delivered { at } => {
                        self.engine.schedule_at(at, Ev::Frame(frame));
                    }
                    simnet::fabric::TransmitOutcome::Lost { reason } => {
                        // Gray losses are silent: no NIC error reaches
                        // the transport, so TCP never sees a connection
                        // break and VIA never tears a Vi down — only
                        // end-to-end timeouts can notice. The frame
                        // still counts as lost in the fabric stats.
                        if !reason.silent() {
                            self.work.push_back((i, Work::TransmitFailed(frame.dst, reason)));
                        } else {
                            self.record_attr(now, i, telemetry::AttrEvent::GrayLoss);
                        }
                    }
                },
                Effect::SetTimer { at, key } => {
                    self.schedule_timer(at, key);
                }
                Effect::ChargeCpu(d) => {
                    self.nodes[i].cpu.charge(now, d);
                }
                Effect::Upcall(u) => {
                    self.work.push_back((i, Work::Upcall(u)));
                }
                Effect::Trace(ev) => {
                    self.sink.emit(ev);
                }
                Effect::Attr(ev) => {
                    self.record_attr(now, i, ev);
                }
            }
        }
        for a in app.drain(..) {
            match a {
                AppEffect::Schedule { at, ev } => {
                    let gen = self.nodes[i].gen;
                    self.engine.schedule_at(at, Ev::App { node: i, gen, ev });
                }
                AppEffect::ScheduleMonotone { at, ev } => {
                    let gen = self.nodes[i].gen;
                    self.engine.schedule_fifo(at, Ev::App { node: i, gen, ev });
                }
                AppEffect::Reply { req_id, at } => {
                    let gen = self.nodes[i].gen;
                    self.engine.schedule_at(
                        at,
                        Ev::Reply {
                            node: i,
                            gen,
                            req_id,
                        },
                    );
                }
                AppEffect::ProcessExit { reason: _ } => {
                    self.kill_process(now, i, Some(self.config.restart_delay));
                }
            }
        }
        // Log membership changes for stage-marker extraction.
        let m = self.nodes[i].press.members().len();
        if m != self.last_members[i] {
            self.last_members[i] = m;
            self.membership_log.push((now, NodeId(i), m));
            self.sink.emit_with(|| {
                telemetry::TraceEvent::instant(
                    "membership.size",
                    "cluster",
                    telemetry::TID_CLUSTER,
                    now,
                )
                .arg_u64("node", i as u64)
                .arg_u64("members", m as u64)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_small_cluster_serves_requests() {
        let config = ClusterConfig::small(PressVersion::Via5);
        let mut sim = ClusterSim::new(config, 1);
        sim.run_until(SimTime::from_secs(10));
        let report = sim.report();
        assert!(report.availability.attempts > 5_000);
        assert!(
            report.availability.availability() > 0.999,
            "availability {} with {} failures",
            report.availability.availability(),
            report.availability.failures()
        );
        assert!(report.fully_recovered(4));
        // Throughput tracks the offered (sub-saturation) load.
        let mean = sim.mean_throughput(2.0, 10.0);
        assert!((mean - 900.0).abs() < 90.0, "mean throughput {mean}");
    }

    #[test]
    fn all_versions_boot_and_serve() {
        for version in PressVersion::ALL {
            let config = ClusterConfig::small(version);
            let mut sim = ClusterSim::new(config, 2);
            sim.run_until(SimTime::from_secs(5));
            let report = sim.report();
            assert!(
                report.availability.availability() > 0.99,
                "{version}: availability {}",
                report.availability.availability()
            );
        }
    }

    #[test]
    fn deterministic_given_a_seed() {
        let run = |seed| {
            let mut sim = ClusterSim::new(ClusterConfig::small(PressVersion::Tcp), seed);
            sim.run_until(SimTime::from_secs(5));
            let r = sim.report();
            (r.availability.clone(), r.throughput.points)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn superseded_timers_are_cancelled_before_dispatch() {
        // Steady TCP traffic constantly re-arms per-connection
        // retransmit timers with fresh gens; the pending-timer index
        // must cancel the superseded ones out of the engine rather
        // than letting them transit the heap as no-ops.
        let mut sim = ClusterSim::new(ClusterConfig::small(PressVersion::Tcp), 1);
        sim.run_until(SimTime::from_secs(5));
        let suppressed = sim.timers_stale_suppressed();
        assert!(suppressed > 0, "no superseded timers were cancelled");
        let reg = sim.metrics_snapshot();
        assert_eq!(reg.counter("transport.timers_stale_suppressed"), suppressed);
    }

    #[test]
    fn via_runs_without_a_timer_index() {
        // VIA gens are not monotone per connection (Vi replacement
        // resets them), so the index is TCP-only and VIA must simply
        // never count a suppression.
        let mut sim = ClusterSim::new(ClusterConfig::small(PressVersion::Via5), 1);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.timers_stale_suppressed(), 0);
    }

    /// Runs the small TCP scenario stepped in `chunk_ms` increments and
    /// returns everything a report compares on. Used to prove the event
    /// loop delivers identical results regardless of how callers batch
    /// `run_until` (the `--jobs N` worker threads each step their own
    /// sims like this).
    fn chunked_run(chunk_ms: u64) -> (AvailabilityCounter, Vec<(f64, f64)>, Vec<usize>, u64) {
        let mut sim = ClusterSim::new(ClusterConfig::small(PressVersion::Tcp), 7);
        let end = SimTime::from_secs(5);
        let mut t = SimTime::ZERO;
        while t < end {
            t = (t + SimDuration::from_millis(chunk_ms)).min(end);
            sim.run_until(t);
        }
        let r = sim.report();
        (
            r.availability.clone(),
            r.throughput.points,
            r.final_members,
            sim.timers_stale_suppressed(),
        )
    }

    /// Runs the small scenario for `version` with `sim_threads` worker
    /// threads and returns everything a report compares on, plus the
    /// dispatched-event count (the parallel driver must account
    /// events exactly like the sequential loop).
    fn threaded_run(
        version: PressVersion,
        threads: usize,
        seed: u64,
    ) -> (AvailabilityCounter, Vec<(f64, f64)>, Vec<usize>, u64, u64) {
        let mut config = ClusterConfig::small(version);
        config.sim_threads = threads;
        let mut sim = ClusterSim::new(config, seed);
        sim.run_until(SimTime::from_secs(5));
        let r = sim.report();
        (
            r.availability.clone(),
            r.throughput.points,
            r.final_members,
            sim.timers_stale_suppressed(),
            sim.events_dispatched(),
        )
    }

    #[test]
    fn parallel_windows_match_sequential_exactly() {
        for version in [PressVersion::Tcp, PressVersion::Via5] {
            let base = threaded_run(version, 1, 7);
            for threads in [2, 4] {
                let par = threaded_run(version, threads, 7);
                assert_eq!(base, par, "{version} diverged at sim_threads={threads}");
            }
        }
    }

    /// A fault campaign exercises the driver's serialization path:
    /// windows must stop at each fault instant, fold the shards back
    /// together, run the instant sequentially, and re-split — with
    /// the timer index, freezers and fabric ports surviving the round
    /// trip bit for bit.
    fn faulted_run(version: PressVersion, threads: usize) -> (ClusterReport, u64, u64) {
        use mendosus::FaultSpec;
        let mut config = ClusterConfig::small(version);
        config.sim_threads = threads;
        let s = SimDuration::from_secs;
        let campaign = Campaign::new([
            FaultSpec::transient(FaultKind::NodeCrash, NodeId(1), SimTime::from_secs(2), s(2)),
            FaultSpec::transient(FaultKind::AppHang, NodeId(2), SimTime::from_secs(3), s(1)),
            FaultSpec::transient(FaultKind::LinkDown, NodeId(0), SimTime::from_secs(6), s(1)),
            FaultSpec::transient(FaultKind::AppCrash, NodeId(3), SimTime::from_secs(8), s(1)),
            FaultSpec::bad_param(
                FaultKind::BadParamNull,
                NodeId(0),
                SimTime::from_secs(10),
                transport::MsgClass::FileData,
                0,
            ),
        ]);
        let mut sim = ClusterSim::with_campaign(config, campaign, 11);
        sim.run_until(SimTime::from_secs(12));
        let events = sim.events_dispatched();
        (sim.report(), sim.timers_stale_suppressed(), events)
    }

    /// With zero fabric latency there is no lookahead window to
    /// exploit, so `sim_threads > 1` must degrade to the sequential
    /// loop (with a one-time warning) rather than produce zero-width
    /// windows or wrong answers.
    #[test]
    fn zero_lookahead_falls_back_to_sequential() {
        let run = |threads: usize| {
            let mut config = ClusterConfig::small(PressVersion::Tcp);
            config.fabric.link_latency = SimDuration::ZERO;
            config.fabric.switch_latency = SimDuration::ZERO;
            config.sim_threads = threads;
            let mut sim = ClusterSim::new(config, 5);
            sim.run_until(SimTime::from_secs(2));
            (sim.report().throughput.points, sim.events_dispatched())
        };
        assert_eq!(run(1), run(4));
    }

    /// Tracing stresses the replay path hardest: every sampled request
    /// emits ordered instants and spans from both facade-side scoring
    /// and worker-side effects, and the merged stream must interleave
    /// them in exactly the sequential emission order.
    #[test]
    fn parallel_windows_preserve_trace_streams() {
        for version in [PressVersion::Tcp, PressVersion::Via5] {
            let run = |threads: usize| {
                use mendosus::FaultSpec;
                let mut config = ClusterConfig::small(version);
                config.sim_threads = threads;
                config.trace = telemetry::TraceConfig {
                    enabled: true,
                    request_sample: 4,
                };
                let campaign = Campaign::single(FaultSpec::transient(
                    FaultKind::NodeCrash,
                    NodeId(1),
                    SimTime::from_secs(2),
                    SimDuration::from_secs(2),
                ));
                let mut sim = ClusterSim::with_campaign(config, campaign, 23);
                sim.run_until(SimTime::from_secs(6));
                (sim.take_trace(), sim.report().throughput.points)
            };
            let base = run(1);
            for threads in [2, 4] {
                let par = run(threads);
                assert_eq!(base.1, par.1, "{version} throughput @ {threads}");
                assert_eq!(
                    base.0, par.0,
                    "{version} trace stream diverged at sim_threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_windows_survive_fault_campaigns() {
        for version in [PressVersion::Tcp, PressVersion::Via5] {
            let (base, base_sup, base_ev) = faulted_run(version, 1);
            for threads in [2, 4] {
                let (par, sup, ev) = faulted_run(version, threads);
                assert_eq!(base.throughput.points, par.throughput.points, "{version}");
                assert_eq!(base.availability, par.availability, "{version}");
                assert_eq!(base.membership_log, par.membership_log, "{version}");
                assert_eq!(base.process_log, par.process_log, "{version}");
                assert_eq!(base.final_members, par.final_members, "{version}");
                assert_eq!(base.all_running, par.all_running, "{version}");
                assert_eq!(base_sup, sup, "{version} suppressed-timer count");
                assert_eq!(base_ev, ev, "{version} dispatched-event count");
            }
        }
    }

    /// Attribution must conserve against the pool (every scored loss
    /// classified exactly once) and be byte-identical across thread
    /// counts — the records flow through the same replayed channel as
    /// traces, so this exercises the whole evidence pipeline.
    #[test]
    fn attribution_conserves_and_is_thread_invariant() {
        for version in [PressVersion::Tcp, PressVersion::Via5] {
            let run = |threads: usize| {
                use mendosus::FaultSpec;
                let mut config = ClusterConfig::small(version);
                config.sim_threads = threads;
                config.attribution = true;
                let campaign = Campaign::single(FaultSpec::transient(
                    FaultKind::NodeCrash,
                    NodeId(1),
                    SimTime::from_secs(2),
                    SimDuration::from_secs(2),
                ));
                let mut sim = ClusterSim::with_campaign(config, campaign, 23);
                sim.run_until(SimTime::from_secs(8));
                let report = sim.report();
                let attr = sim.take_attr().expect("attribution was enabled");
                (attr, report)
            };
            let (base, report) = run(1);
            let totals = telemetry::RunTotals {
                attempts: report.availability.attempts,
                successes: report.availability.successes,
                failures: report.availability.failures(),
                duration_s: 8.0,
            };
            assert!(totals.failures > 0, "{version}: the crash must cost requests");
            let (ok, detail) = base.conservation(&totals);
            assert!(ok, "{version}: conservation failed: {detail}");
            // The crash window must show up as attributed fault kills.
            assert!(
                base.counts[telemetry::RootCause::FaultKill as usize] > 0,
                "{version}: no fault-kill attributions across a node crash: {:?}",
                base.counts
            );
            for threads in [2, 4] {
                let (par, _) = run(threads);
                assert_eq!(base, par, "{version} attribution diverged at sim_threads={threads}");
            }
        }
    }

    /// With attribution off nothing is recorded and the run results are
    /// byte-identical to a run that never heard of attribution.
    #[test]
    fn attribution_off_changes_nothing() {
        let run = |attribution: bool| {
            let mut config = ClusterConfig::small(PressVersion::Tcp);
            config.attribution = attribution;
            let mut sim = ClusterSim::new(config, 7);
            sim.run_until(SimTime::from_secs(5));
            (sim.report().throughput.points, sim.take_attr().is_some())
        };
        let (off, had_off) = run(false);
        let (on, had_on) = run(true);
        assert!(!had_off && had_on);
        assert_eq!(off, on, "attribution perturbed the simulation");
    }

    #[test]
    fn report_identical_across_batching_and_jobs() {
        let whole = chunked_run(5_000);
        // Odd chunk sizes land run_until deadlines mid-burst.
        assert_eq!(whole, chunked_run(137));
        assert_eq!(whole, chunked_run(1_000));
        // Same seed on worker threads (the `--jobs N` path) must agree
        // with the in-process run bit for bit.
        let handles: Vec<_> = (0..2)
            .map(|_| std::thread::spawn(|| chunked_run(5_000)))
            .collect();
        for h in handles {
            assert_eq!(whole, h.join().expect("worker run panicked"));
        }
    }
}

