//! The live simulated cluster: PRESS on TCP or VIA over the cLAN
//! fabric, driven by Poisson clients, with Mendosus faults applied in
//! real time.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use mendosus::{Campaign, FaultAction, FaultKind, FaultPhase, PlannedMangle};
use press::{
    AppEffect, AppEvent, ClientAccept, NodeCtx, PressConfig, PressMsg, PressNode, PressVersion,
    Request,
};
use simnet::fabric::{Fabric, FabricConfig, Frame, LossReason, NodeId};
use simnet::{
    AvailabilityCounter, CpuMeter, Engine, LatencyHistogram, SimDuration, SimRng, SimTime,
    TimeSeries,
};
use transport::{
    Effect, Effects, Substrate, TcpConfig, TcpStack, TimerKey, Upcall, ViaConfig, ViaNic,
    WirePayload,
};
use workload::{ClientConfig, ClientEvent, ClientPool};

/// Everything needed to build a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Which PRESS version to run.
    pub version: PressVersion,
    /// Server parameters.
    pub press: PressConfig,
    /// Network fabric parameters.
    pub fabric: FabricConfig,
    /// TCP stack parameters (TCP versions).
    pub tcp: TcpConfig,
    /// VIA NIC parameters (VIA versions).
    pub via: ViaConfig,
    /// Aggregate client request rate (requests/second).
    pub rate: f64,
    /// Pre-populate caches and directories (skip cold-cache warm-up).
    pub prewarm: bool,
    /// Delay before the Mendosus daemon restarts a dead process.
    pub restart_delay: SimDuration,
    /// Structured tracing (off by default; near-free when off).
    pub trace: telemetry::TraceConfig,
}

impl ClusterConfig {
    /// The paper's test-bed for `version`, driven slightly above the
    /// version's nominal peak so measured throughput is the near-peak
    /// capacity (Table 1's operating point).
    pub fn paper_defaults(version: PressVersion) -> Self {
        let mut via = match version.via_mode() {
            Some(transport::ViaMode::RemoteWrite) => ViaConfig::remote_write(),
            _ => ViaConfig::messaging(),
        };
        // VIA-PRESS-5 pins its whole 128 MB cache (32768 pages) plus the
        // startup communication buffers.
        via.pinned_page_limit = 40_000;
        ClusterConfig {
            version,
            press: PressConfig::paper_testbed(),
            fabric: FabricConfig::clan_four_nodes(),
            tcp: TcpConfig::default(),
            via,
            rate: version.paper_throughput() * 1.06,
            prewarm: true,
            restart_delay: SimDuration::from_secs(3),
            trace: telemetry::TraceConfig::OFF,
        }
    }

    /// The operating point for fault-injection experiments: the same
    /// test-bed driven just under peak, so the pre-fault baseline is
    /// stable and fully served ("the delivered throughput is relatively
    /// stable throughout the observation period", §2.1).
    pub fn fault_experiment(version: PressVersion) -> Self {
        let mut c = ClusterConfig::paper_defaults(version);
        c.rate = version.paper_throughput() * 0.95;
        c
    }

    /// A proportionally shrunk test-bed for fast unit/integration tests:
    /// same cache-to-working-set ratios and behaviours, an order of
    /// magnitude fewer events.
    pub fn small(version: PressVersion) -> Self {
        let mut c = ClusterConfig::paper_defaults(version);
        c.press.files = 6_000;
        c.press.cache_bytes = 1_640 * u64::from(c.press.file_bytes);
        c.rate = 900.0;
        c
    }
}

/// What happened to a process, for the run log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcEvent {
    /// The process died (fault or fail-fast).
    Exit,
    /// The process came back up.
    Restart,
}

/// Simulation events.
#[derive(Debug)]
enum Ev {
    Frame(Frame<WirePayload<PressMsg>>),
    Timer(TimerKey),
    App { node: usize, gen: u64, ev: AppEvent },
    Reply { node: usize, gen: u64, req_id: u64 },
    Client(ClientEvent),
    Fault(usize),
    ProcessRestart { node: usize, gen: u64 },
}

/// Internal work items processed synchronously within one event.
enum Work {
    Client(Request),
    AppEv(AppEvent),
    Upcall(Upcall<PressMsg>),
    FrameIn(Frame<WirePayload<PressMsg>>),
    Timer(TimerKey),
    TransmitFailed(NodeId, LossReason),
    Start { cold: bool },
    SetHung(bool),
}

struct NodeSlot {
    press: PressNode,
    sub: Box<dyn Substrate<PressMsg>>,
    cpu: CpuMeter,
    mangler: mendosus::Mangler,
    running: bool,
    hung: bool,
    frozen: bool,
    gen: u64,
    freezer: Vec<Work>,
}

/// Summary of a finished (or in-progress) run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Successful-request throughput, 1 s buckets.
    pub throughput: TimeSeries,
    /// Request outcome tallies.
    pub availability: AvailabilityCounter,
    /// Response-time distribution of the successful requests.
    pub latency: LatencyHistogram,
    /// `(time, node, members)` whenever a node's membership view
    /// changed size.
    pub membership_log: Vec<(SimTime, NodeId, usize)>,
    /// `(time, node, event)` process exits and restarts.
    pub process_log: Vec<(SimTime, NodeId, ProcEvent)>,
    /// Per-node membership sizes at the end of the run.
    pub final_members: Vec<usize>,
    /// Whether every process was running at the end of the run.
    pub all_running: bool,
}

impl ClusterReport {
    /// `true` if the cluster ended the run fully merged and running —
    /// i.e. no operator intervention would be needed.
    pub fn fully_recovered(&self, nodes: usize) -> bool {
        self.all_running && self.final_members.iter().all(|m| *m == nodes)
    }
}

/// Process-wide count of engine events dispatched by completed
/// simulations (flushed when each [`ClusterSim`] drops). The repro
/// harness reads deltas around each target to report events/second.
static EVENTS_DISPATCHED: AtomicU64 = AtomicU64::new(0);

/// Total engine events dispatched by all simulations finished so far,
/// across all threads.
pub fn events_dispatched_total() -> u64 {
    EVENTS_DISPATCHED.load(Ordering::Relaxed)
}

/// The simulated cluster.
pub struct ClusterSim {
    config: ClusterConfig,
    engine: Engine<Ev>,
    fabric: Fabric,
    nodes: Vec<NodeSlot>,
    clients: ClientPool,
    actions: Vec<FaultAction>,
    membership_log: Vec<(SimTime, NodeId, usize)>,
    process_log: Vec<(SimTime, NodeId, ProcEvent)>,
    last_members: Vec<usize>,
    sink: telemetry::TraceSink,
    /// Sampled in-flight requests: id → (issue time, target node).
    traced_requests: std::collections::BTreeMap<u64, (SimTime, usize)>,
}

impl Drop for ClusterSim {
    fn drop(&mut self) {
        EVENTS_DISPATCHED.fetch_add(self.engine.dispatched(), Ordering::Relaxed);
    }
}

impl ClusterSim {
    /// Builds and boots a fault-free cluster.
    pub fn new(config: ClusterConfig, seed: u64) -> Self {
        ClusterSim::with_campaign(config, Campaign::none(), seed)
    }

    /// Builds and boots a cluster with a fault campaign armed.
    pub fn with_campaign(config: ClusterConfig, campaign: Campaign, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let n = config.press.nodes;
        // A booted 4-node cluster keeps a few hundred events in flight;
        // pre-sizing skips the early heap growth.
        let mut engine = Engine::with_capacity(512);
        let fabric = Fabric::new(config.fabric.clone());
        let client_config = ClientConfig {
            rate: config.rate,
            nodes: n,
            files: config.press.files,
            ..ClientConfig::paper(config.rate)
        };
        let mut clients = ClientPool::new(client_config, rng.fork());
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let id = NodeId(i);
            let sub: Box<dyn Substrate<PressMsg>> = if config.version.uses_via() {
                Box::new(ViaNic::new(id, config.via.clone(), config.version.cost_model()))
            } else {
                Box::new(TcpStack::new(id, config.tcp.clone(), config.version.cost_model()))
            };
            nodes.push(NodeSlot {
                press: PressNode::new(id, config.version, config.press.clone()),
                sub,
                cpu: CpuMeter::new(),
                mangler: mendosus::Mangler::new(),
                running: true,
                hung: false,
                frozen: false,
                gen: 0,
                freezer: Vec::new(),
            });
        }
        // Arm the campaign.
        let actions = campaign.actions();
        for (i, a) in actions.iter().enumerate() {
            engine.schedule_at(a.at, Ev::Fault(i));
        }
        // First client arrival.
        let first = clients.first_arrival(SimTime::ZERO);
        engine.schedule_at(first, Ev::Client(ClientEvent::Arrival));

        let sink = telemetry::TraceSink::new(config.trace);
        if sink.enabled() {
            for slot in &mut nodes {
                slot.sub.set_trace(true);
                slot.press.set_trace(true);
            }
        }
        let mut sim = ClusterSim {
            last_members: vec![0; n],
            config,
            engine,
            fabric,
            nodes,
            clients,
            actions,
            membership_log: Vec::new(),
            process_log: Vec::new(),
            sink,
            traced_requests: std::collections::BTreeMap::new(),
        };
        // Cold-boot every node.
        let mut work = VecDeque::new();
        for i in 0..n {
            work.push_back((i, Work::Start { cold: true }));
        }
        sim.drain_work(SimTime::ZERO, work);
        if sim.config.prewarm {
            sim.prewarm();
        }
        sim
    }

    /// The configuration in use.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Direct fabric access (tests and custom scenarios).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// A node's PRESS state (tests and reports).
    pub fn press(&self, node: NodeId) -> &PressNode {
        &self.nodes[node.0].press
    }

    /// Whether a node's process is currently running.
    pub fn process_running(&self, node: NodeId) -> bool {
        self.nodes[node.0].running
    }

    fn prewarm(&mut self) {
        // Spread the document set round-robin over the nodes, matching
        // the steady state cooperative caching converges to.
        let n = self.config.press.nodes;
        let per_node = self.config.press.cache_entries();
        let assignment: Vec<NodeId> = (0..self.config.press.files)
            .map(|f| NodeId(f as usize % n))
            .collect();
        for (f, node) in assignment.iter().enumerate() {
            assert!(
                f / n < per_node,
                "document set must fit in the aggregate cache for prewarm"
            );
            let _ = node;
        }
        let now = self.engine.now();
        for i in 0..n {
            let slot = &mut self.nodes[i];
            let mut fx = Vec::new();
            let mut app = Vec::new();
            let mut ctx = NodeCtx {
                now,
                cpu: &mut slot.cpu,
                sub: slot.sub.as_mut(),
                interposer: &mut slot.mangler,
                fx: &mut fx,
                app: &mut app,
            };
            slot.press.prewarm(&mut ctx, &assignment);
            // Prewarm is setup, not simulation: discard the effects (the
            // CPU cost of loading caches happened "before" the run).
            fx.clear();
            app.clear();
        }
    }

    /// Runs the simulation until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((now, ev)) = self.engine.pop_before(deadline) {
            self.handle(now, ev);
        }
    }

    /// Builds the report for everything seen so far.
    pub fn report(&self) -> ClusterReport {
        let end = self.engine.now();
        ClusterReport {
            throughput: self.clients.throughput(end),
            availability: self.clients.counter().clone(),
            latency: self.clients.latency().clone(),
            membership_log: self.membership_log.clone(),
            process_log: self.process_log.clone(),
            final_members: self.nodes.iter().map(|s| s.press.members().len()).collect(),
            all_running: self.nodes.iter().all(|s| s.running),
        }
    }

    /// Mean successful throughput over `[t0, t1)` seconds.
    pub fn mean_throughput(&self, t0: f64, t1: f64) -> f64 {
        self.clients.mean_throughput(self.engine.now(), t0, t1)
    }

    /// Whether structured tracing is live for this run.
    pub fn trace_enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Drains the buffered trace events (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<telemetry::TraceEvent> {
        self.sink.take()
    }

    /// Snapshots every layer's counters and gauges into one registry:
    /// transport stats, PRESS behaviour counters, per-node CPU busy
    /// fractions, client outcome tallies and the current splinter count
    /// (distinct membership views among running nodes).
    pub fn metrics_snapshot(&self) -> telemetry::MetricsRegistry {
        let mut reg = telemetry::MetricsRegistry::new();
        let now = self.engine.now();
        for (i, slot) in self.nodes.iter().enumerate() {
            slot.sub.export_metrics(&mut reg);
            reg.gauge_set(
                &format!("cpu.busy_fraction.node{i}"),
                slot.cpu.utilization(now),
            );
            let s = slot.press.stats();
            reg.counter_add("press.served_local", s.served_local);
            reg.counter_add("press.served_remote", s.served_remote);
            reg.counter_add("press.served_disk", s.served_disk);
            reg.counter_add("press.dropped_admission", s.dropped_admission);
            reg.counter_add("press.dropped_deferred", s.dropped_deferred);
            reg.counter_add("press.efault_drops", s.efault_drops);
            reg.counter_add("press.forward_timeouts", s.forward_timeouts);
            reg.counter_add("press.pin_cache_skips", s.pin_cache_skips);
            reg.counter_add("press.exclusions", s.exclusions);
            reg.counter_add("press.rejoined", s.rejoined);
            reg.counter_add("press.merges", s.merges);
        }
        self.clients.export_metrics(&mut reg);
        let views: std::collections::BTreeSet<Vec<usize>> = self
            .nodes
            .iter()
            .filter(|s| s.running)
            .map(|s| s.press.members().iter().map(|n| n.0).collect())
            .collect();
        reg.gauge_set("cluster.splinters", views.len() as f64);
        reg
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Ev) {
        let mut work: VecDeque<(usize, Work)> = VecDeque::new();
        match ev {
            Ev::Frame(frame) => {
                let dst = frame.dst.0;
                if self.fabric.node_up(frame.dst) {
                    work.push_back((dst, Work::FrameIn(frame)));
                }
            }
            Ev::Timer(key) => {
                let node = key.node.0;
                if self.fabric.node_up(key.node) {
                    work.push_back((node, Work::Timer(key)));
                }
            }
            Ev::App { node, gen, ev } => {
                if self.nodes[node].running && self.nodes[node].gen == gen {
                    work.push_back((node, Work::AppEv(ev)));
                }
            }
            Ev::Reply { node, gen, req_id } => {
                if self.nodes[node].running && self.nodes[node].gen == gen {
                    self.clients.complete(now, req_id);
                    if let Some((issued, target)) = self.traced_requests.remove(&req_id) {
                        self.sink.emit(
                            telemetry::TraceEvent::span(
                                "request",
                                "client",
                                target as u32,
                                issued,
                                now.saturating_since(issued),
                            )
                            .arg_u64("req_id", req_id),
                        );
                    }
                }
            }
            Ev::Client(ClientEvent::Arrival) => {
                let (req, target, next) = self.clients.arrive(now);
                self.engine.schedule_at(next, Ev::Client(ClientEvent::Arrival));
                let sample = self.config.trace.request_sample;
                let traced = self.sink.enabled() && sample != 0 && req.id % sample == 0;
                let slot = &self.nodes[target.0];
                if !self.fabric.node_up(target) || slot.frozen {
                    // Machine unresponsive: SYN goes nowhere.
                    self.clients.connect_failed();
                    if traced {
                        self.sink.emit(
                            telemetry::TraceEvent::instant(
                                "request.conn_failed",
                                "client",
                                telemetry::TID_CLIENTS,
                                now,
                            )
                            .arg_u64("req_id", req.id)
                            .arg_u64("node", target.0 as u64),
                        );
                    }
                } else if !slot.running {
                    // Machine up, process dead: refused immediately.
                    self.clients.refused();
                    if traced {
                        self.sink.emit(
                            telemetry::TraceEvent::instant(
                                "request.refused",
                                "client",
                                telemetry::TID_CLIENTS,
                                now,
                            )
                            .arg_u64("req_id", req.id)
                            .arg_u64("node", target.0 as u64),
                        );
                    }
                } else if slot.hung {
                    // The kernel accepts; the application never reads.
                    if traced {
                        self.traced_requests.insert(req.id, (now, target.0));
                    }
                    let deadline = self.clients.accepted(now, req.id);
                    self.engine
                        .schedule_at(deadline, Ev::Client(ClientEvent::Deadline(req.id)));
                    self.nodes[target.0].freezer.push(Work::Client(req));
                } else {
                    if traced {
                        self.traced_requests.insert(req.id, (now, target.0));
                    }
                    work.push_back((target.0, Work::Client(req)));
                }
            }
            Ev::Client(ClientEvent::Deadline(id)) => {
                self.clients.deadline(id);
                if let Some((issued, target)) = self.traced_requests.remove(&id) {
                    self.sink.emit(
                        telemetry::TraceEvent::instant(
                            "request.timeout",
                            "client",
                            target as u32,
                            now,
                        )
                        .arg_u64("req_id", id)
                        .arg_u64("waited_us", now.saturating_since(issued).as_nanos() / 1_000),
                    );
                }
            }
            Ev::ProcessRestart { node, gen } => {
                let slot = &mut self.nodes[node];
                if slot.gen == gen && !slot.running {
                    slot.running = true;
                    self.process_log.push((now, NodeId(node), ProcEvent::Restart));
                    self.sink.emit_with(|| {
                        telemetry::TraceEvent::instant(
                            "process.restart",
                            "proc",
                            node as u32,
                            now,
                        )
                    });
                    work.push_back((node, Work::Start { cold: false }));
                }
            }
            Ev::Fault(idx) => {
                let action = self.actions[idx].clone();
                self.apply_fault(now, &action, &mut work);
            }
        }
        self.drain_work(now, work);
    }

    fn apply_fault(&mut self, now: SimTime, action: &FaultAction, work: &mut VecDeque<(usize, Work)>) {
        let spec = &action.spec;
        let node = spec.node;
        let inject = action.phase == FaultPhase::Inject;
        if self.sink.enabled() {
            if inject {
                self.sink.emit(
                    telemetry::TraceEvent::instant(
                        "fault.inject",
                        "fault",
                        telemetry::TID_CLUSTER,
                        now,
                    )
                    .arg_str("kind", spec.kind.to_string())
                    .arg_u64("node", node.0 as u64),
                );
            } else {
                // One span covering the fault's whole active window,
                // plus the recovery instant.
                self.sink.emit(
                    telemetry::TraceEvent::span(
                        "fault.active",
                        "fault",
                        telemetry::TID_CLUSTER,
                        spec.at,
                        now.saturating_since(spec.at),
                    )
                    .arg_str("kind", spec.kind.to_string())
                    .arg_u64("node", node.0 as u64),
                );
                self.sink.emit(
                    telemetry::TraceEvent::instant(
                        "fault.recover",
                        "fault",
                        telemetry::TID_CLUSTER,
                        now,
                    )
                    .arg_str("kind", spec.kind.to_string())
                    .arg_u64("node", node.0 as u64),
                );
            }
        }
        match spec.kind {
            FaultKind::LinkDown => self.fabric.set_link_up(node, !inject),
            FaultKind::SwitchDown => self.fabric.set_switch_up(!inject),
            FaultKind::NodeCrash => {
                if inject {
                    self.fabric.set_node_up(node, false);
                    self.kill_process(now, node.0, None);
                } else {
                    // Machine back up; Mendosus restarts PRESS after the
                    // boot completes.
                    self.fabric.set_node_up(node, true);
                    let gen = self.nodes[node.0].gen;
                    self.engine.schedule_at(
                        now + self.config.restart_delay,
                        Ev::ProcessRestart { node: node.0, gen },
                    );
                }
            }
            FaultKind::NodeHang => {
                let slot = &mut self.nodes[node.0];
                if inject {
                    self.fabric.set_node_up(node, false);
                    slot.frozen = true;
                } else {
                    self.fabric.set_node_up(node, true);
                    slot.frozen = false;
                    let frozen_work = std::mem::take(&mut slot.freezer);
                    for w in frozen_work {
                        work.push_back((node.0, w));
                    }
                }
            }
            FaultKind::KernelAllocFail => {
                self.nodes[node.0].sub.set_alloc_fail(inject);
            }
            FaultKind::MemPinFail => {
                self.nodes[node.0].sub.set_pin_fail(inject);
            }
            FaultKind::AppHang => {
                if inject {
                    self.nodes[node.0].hung = true;
                    work.push_back((node.0, Work::SetHung(true)));
                } else {
                    self.nodes[node.0].hung = false;
                    work.push_back((node.0, Work::SetHung(false)));
                    let frozen_work = std::mem::take(&mut self.nodes[node.0].freezer);
                    for w in frozen_work {
                        work.push_back((node.0, w));
                    }
                }
            }
            FaultKind::AppCrash => {
                if inject {
                    self.kill_process(now, node.0, spec.duration);
                } else {
                    // Restart handled by the scheduled ProcessRestart.
                }
            }
            FaultKind::BadParamNull | FaultKind::BadParamOffPtr | FaultKind::BadParamOffSize => {
                if inject {
                    let bad = match spec.kind {
                        FaultKind::BadParamNull => mendosus::BadParam::NullPtr,
                        FaultKind::BadParamOffPtr => mendosus::BadParam::OffByPtr(spec.off_n),
                        _ => mendosus::BadParam::OffBySize(spec.off_n.max(1)),
                    };
                    self.nodes[node.0].mangler.plan(PlannedMangle {
                        at: now,
                        class: spec.class,
                        bad,
                    });
                }
            }
        }
    }

    fn kill_process(&mut self, now: SimTime, node: usize, restart_after: Option<SimDuration>) {
        let slot = &mut self.nodes[node];
        if !slot.running {
            return;
        }
        slot.running = false;
        slot.hung = false;
        slot.gen += 1;
        slot.cpu.reset_backlog(now);
        slot.freezer.clear();
        slot.sub.restart(now);
        self.process_log.push((now, NodeId(node), ProcEvent::Exit));
        self.sink
            .emit_with(|| telemetry::TraceEvent::instant("process.exit", "proc", node as u32, now));
        if let Some(delay) = restart_after {
            let gen = slot.gen;
            self.engine
                .schedule_at(now + delay, Ev::ProcessRestart { node, gen });
        }
    }

    // ------------------------------------------------------------------
    // Work processing
    // ------------------------------------------------------------------

    fn drain_work(&mut self, now: SimTime, mut work: VecDeque<(usize, Work)>) {
        while let Some((i, w)) = work.pop_front() {
            let mut fx: Effects<PressMsg> = Vec::new();
            let mut app: Vec<AppEffect> = Vec::new();
            let mut accept: Option<(u64, ClientAccept)> = None;
            {
                let slot = &mut self.nodes[i];
                // Transport-level work reaches the endpoint even when
                // the process is gone (the kernel answers with resets);
                // application work requires a live, unfrozen process.
                let transport_work = matches!(
                    w,
                    Work::FrameIn(_) | Work::Timer(_) | Work::TransmitFailed(..)
                );
                if !transport_work {
                    if !slot.running && !matches!(w, Work::Start { .. }) {
                        continue;
                    }
                    if (slot.frozen || slot.hung)
                        && !matches!(w, Work::SetHung(_) | Work::Start { .. })
                    {
                        slot.freezer.push(w);
                        continue;
                    }
                }
                let mut ctx = NodeCtx {
                    now,
                    cpu: &mut slot.cpu,
                    sub: slot.sub.as_mut(),
                    interposer: &mut slot.mangler,
                    fx: &mut fx,
                    app: &mut app,
                };
                match w {
                    Work::Client(req) => {
                        let a = slot.press.client_request(&mut ctx, req);
                        accept = Some((req.id, a));
                    }
                    Work::AppEv(ev) => slot.press.on_app_event(&mut ctx, ev),
                    Work::Upcall(u) => {
                        if slot.running && !slot.frozen {
                            if slot.hung {
                                // Ends ctx's borrow of the slot so the
                                // freezer can take the work item.
                                let _ = ctx;
                                slot.freezer.push(Work::Upcall(u));
                            } else {
                                slot.press.on_upcall(&mut ctx, u);
                            }
                        }
                    }
                    Work::FrameIn(frame) => ctx.sub.frame_arrived(now, frame, ctx.fx),
                    Work::Timer(key) => ctx.sub.timer_fired(now, key, ctx.fx),
                    Work::TransmitFailed(peer, reason) => {
                        ctx.sub.transmit_failed(now, peer, reason, ctx.fx)
                    }
                    Work::Start { cold } => {
                        slot.press.start(&mut ctx, cold);
                    }
                    Work::SetHung(h) => {
                        let mut sub_fx = Vec::new();
                        ctx.sub.set_app_receiving(now, !h, &mut sub_fx);
                        fx_append(ctx.fx, sub_fx);
                    }
                }
            }
            if let Some((req_id, a)) = accept {
                match a {
                    ClientAccept::Accepted => {
                        let deadline = self.clients.accepted(now, req_id);
                        self.engine
                            .schedule_at(deadline, Ev::Client(ClientEvent::Deadline(req_id)));
                    }
                    ClientAccept::Dropped => self.clients.connect_failed(),
                }
            }
            self.apply_effects(now, i, fx, app, &mut work);
        }
    }

    fn apply_effects(
        &mut self,
        now: SimTime,
        i: usize,
        fx: Effects<PressMsg>,
        app: Vec<AppEffect>,
        work: &mut VecDeque<(usize, Work)>,
    ) {
        for e in fx {
            match e {
                Effect::Transmit(frame) => match self.fabric.transmit(now, &frame) {
                    simnet::fabric::TransmitOutcome::Delivered { at } => {
                        self.engine.schedule_at(at, Ev::Frame(frame));
                    }
                    simnet::fabric::TransmitOutcome::Lost { reason } => {
                        work.push_back((i, Work::TransmitFailed(frame.dst, reason)));
                    }
                },
                Effect::SetTimer { at, key } => {
                    self.engine.schedule_at(at, Ev::Timer(key));
                }
                Effect::ChargeCpu(d) => {
                    self.nodes[i].cpu.charge(now, d);
                }
                Effect::Upcall(u) => {
                    work.push_back((i, Work::Upcall(u)));
                }
                Effect::Trace(ev) => {
                    self.sink.emit(ev);
                }
            }
        }
        for a in app {
            match a {
                AppEffect::Schedule { at, ev } => {
                    let gen = self.nodes[i].gen;
                    self.engine.schedule_at(at, Ev::App { node: i, gen, ev });
                }
                AppEffect::Reply { req_id, at } => {
                    let gen = self.nodes[i].gen;
                    self.engine.schedule_at(
                        at,
                        Ev::Reply {
                            node: i,
                            gen,
                            req_id,
                        },
                    );
                }
                AppEffect::ProcessExit { reason: _ } => {
                    self.kill_process(now, i, Some(self.config.restart_delay));
                }
            }
        }
        // Log membership changes for stage-marker extraction.
        let m = self.nodes[i].press.members().len();
        if m != self.last_members[i] {
            self.last_members[i] = m;
            self.membership_log.push((now, NodeId(i), m));
            self.sink.emit_with(|| {
                telemetry::TraceEvent::instant(
                    "membership.size",
                    "cluster",
                    telemetry::TID_CLUSTER,
                    now,
                )
                .arg_u64("node", i as u64)
                .arg_u64("members", m as u64)
            });
        }
    }
}

fn fx_append(dst: &mut Effects<PressMsg>, src: Effects<PressMsg>) {
    dst.extend(src);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_small_cluster_serves_requests() {
        let config = ClusterConfig::small(PressVersion::Via5);
        let mut sim = ClusterSim::new(config, 1);
        sim.run_until(SimTime::from_secs(10));
        let report = sim.report();
        assert!(report.availability.attempts > 5_000);
        assert!(
            report.availability.availability() > 0.999,
            "availability {} with {} failures",
            report.availability.availability(),
            report.availability.failures()
        );
        assert!(report.fully_recovered(4));
        // Throughput tracks the offered (sub-saturation) load.
        let mean = sim.mean_throughput(2.0, 10.0);
        assert!((mean - 900.0).abs() < 90.0, "mean throughput {mean}");
    }

    #[test]
    fn all_versions_boot_and_serve() {
        for version in PressVersion::ALL {
            let config = ClusterConfig::small(version);
            let mut sim = ClusterSim::new(config, 2);
            sim.run_until(SimTime::from_secs(5));
            let report = sim.report();
            assert!(
                report.availability.availability() > 0.99,
                "{version}: availability {}",
                report.availability.availability()
            );
        }
    }

    #[test]
    fn deterministic_given_a_seed() {
        let run = |seed| {
            let mut sim = ClusterSim::new(ClusterConfig::small(PressVersion::Tcp), seed);
            sim.run_until(SimTime::from_secs(5));
            let r = sim.report();
            (r.availability.clone(), r.throughput.points)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1);
    }
}
