//! Phase 2: from phase-1 measurements to performability (§6).
//!
//! A [`VersionProfile`] holds, for one PRESS version, the measured
//! 7-stage behaviour under every fault class of Table 3 plus the
//! normal-operation throughput and the cold-start warm-up transient.
//! [`behaviors_for_load`] then instantiates the profile against any
//! fault load (stage C stretched to each class's MTTR, operator-reset
//! stages appended where phase 1 showed the cluster does not heal), and
//! [`evaluate`] runs the §2.2 equations.

use std::collections::BTreeMap;

use mendosus::FaultKind;
use performability::fault_load::{FaultEntry, ModelFault};
use performability::metric::{performability, IDEAL_AVAILABILITY};
use performability::model::{
    average_availability, unavailability_breakdown, FaultBehavior,
};
use performability::stages::{SevenStage, Stage};
use press::PressVersion;
use simnet::fabric::NodeId;
use simnet::SimDuration;

use crate::cluster::ClusterConfig;
use crate::phase1::{measure_warmup, run_fault_experiment, FaultRunResult, FaultScenario};
use crate::runner;

/// How long the operator takes to notice a splintered cluster and start
/// a reset (environmental parameter of the model; consistent with the
/// 3-minute repair times of Table 3).
pub const OPERATOR_RESPONSE_SECS: f64 = 180.0;

/// How long the reset itself takes (all processes restarted).
pub const RESET_SECS: f64 = 30.0;

/// Experiment fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// The paper's test-bed dimensions (minutes of simulated time per
    /// fault; use release builds).
    Paper,
    /// A shrunk test-bed for fast tests.
    Small,
}

/// One fault class's measured behaviour, with its healing outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredFault {
    /// Stage parameters extracted from the run (stage C at the injected
    /// duration; rescaled per fault load later).
    pub stages: SevenStage,
    /// Whether the run ended needing an operator reset.
    pub needs_reset: bool,
    /// Stable post-recovery throughput (stage E level) if degraded.
    pub residual_throughput: f64,
}

/// Everything phase 2 needs to know about one PRESS version.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionProfile {
    /// The version.
    pub version: PressVersion,
    /// Normal-operation throughput.
    pub tn: f64,
    /// Measured behaviour per fault class.
    pub faults: BTreeMap<ModelFault, MeasuredFault>,
    /// Cold-start warm-up `(duration s, mean throughput)` — stage G
    /// after an operator reset.
    pub warmup: (f64, f64),
}

/// The phase-1 experiment that measures `fault` for the model.
///
/// Conditions target node 3; bad parameters corrupt a file-data send on
/// node 3 (a service node for ~a quarter of the documents).
pub fn scenario_for(fault: ModelFault, scale: RunScale) -> Option<FaultScenario> {
    let kind = match fault {
        ModelFault::LinkDown => FaultKind::LinkDown,
        ModelFault::SwitchDown => FaultKind::SwitchDown,
        ModelFault::NodeCrash => FaultKind::NodeCrash,
        ModelFault::NodeFreeze => FaultKind::NodeHang,
        ModelFault::MemPin => FaultKind::MemPinFail,
        ModelFault::MemAlloc => FaultKind::KernelAllocFail,
        ModelFault::ProcessCrash => FaultKind::AppCrash,
        ModelFault::ProcessHang => FaultKind::AppHang,
        ModelFault::BadNull => FaultKind::BadParamNull,
        ModelFault::BadOffPtr => FaultKind::BadParamOffPtr,
        ModelFault::BadOffSize => FaultKind::BadParamOffSize,
        // Sensitivity classes reuse measured behaviours.
        ModelFault::ViaPacketDrop | ModelFault::ViaExtraBug | ModelFault::ViaSystemCrash => {
            return None
        }
    };
    Some(match scale {
        RunScale::Paper => FaultScenario::standard(kind, NodeId(3)),
        RunScale::Small => FaultScenario::quick(kind, NodeId(3)),
    })
}

/// The model fault class a phase-1 [`FaultKind`] measures — the
/// inverse of [`scenario_for`]'s mapping (total over Table 2: every
/// catalogued kind lands in one of Table 3's base classes).
///
/// # Panics
///
/// Panics for the gray extensions ([`FaultKind::GRAY`]): the
/// closed-form single-fault model has no availability class for a
/// component that never fail-stops — gray faults are scored by the
/// Monte-Carlo estimator instead.
pub fn model_for_kind(kind: FaultKind) -> ModelFault {
    match kind {
        FaultKind::LinkDown => ModelFault::LinkDown,
        FaultKind::SwitchDown => ModelFault::SwitchDown,
        FaultKind::NodeCrash => ModelFault::NodeCrash,
        FaultKind::NodeHang => ModelFault::NodeFreeze,
        FaultKind::MemPinFail => ModelFault::MemPin,
        FaultKind::KernelAllocFail => ModelFault::MemAlloc,
        FaultKind::AppCrash => ModelFault::ProcessCrash,
        FaultKind::AppHang => ModelFault::ProcessHang,
        FaultKind::BadParamNull => ModelFault::BadNull,
        FaultKind::BadParamOffPtr => ModelFault::BadOffPtr,
        FaultKind::BadParamOffSize => ModelFault::BadOffSize,
        FaultKind::LinkDegraded | FaultKind::CpuThrottle | FaultKind::PartialPartition => {
            panic!("{kind} is gray: the closed-form model has no class for it (use montecarlo)")
        }
    }
}

pub(crate) fn config_for(version: PressVersion, scale: RunScale) -> ClusterConfig {
    match scale {
        RunScale::Paper => ClusterConfig::fault_experiment(version),
        RunScale::Small => ClusterConfig::small(version),
    }
}

/// The eleven fault classes phase 1 measures directly (Table 3's base
/// classes), in profile-assembly order.
pub const MEASURED_FAULTS: [ModelFault; 11] = [
    ModelFault::LinkDown,
    ModelFault::SwitchDown,
    ModelFault::NodeCrash,
    ModelFault::NodeFreeze,
    ModelFault::MemPin,
    ModelFault::MemAlloc,
    ModelFault::ProcessCrash,
    ModelFault::ProcessHang,
    ModelFault::BadNull,
    ModelFault::BadOffPtr,
    ModelFault::BadOffSize,
];

/// Output of one unit of profile-building work (one simulation).
enum ProfileRun {
    Fault {
        fault: ModelFault,
        tn: f64,
        measured: MeasuredFault,
    },
    Warmup((f64, f64)),
}

/// Runs every phase-1 experiment for `version` and assembles its
/// profile. Expensive at [`RunScale::Paper`] (tens of millions of
/// events); prefer release builds.
pub fn version_profile(version: PressVersion, scale: RunScale, seed: u64) -> VersionProfile {
    version_profiles(&[version], scale, seed, 1)
        .pop()
        .expect("one version in, one profile out")
}

/// Builds the profiles for several versions at once, fanning the
/// underlying simulations (11 fault runs + 1 warm-up per version, all
/// taking explicit seeds and sharing nothing) across `jobs` workers.
///
/// Results are **bit-identical** to the sequential path for any `jobs`:
/// runs land in task-id order, so even the floating-point accumulation
/// of the mean throughput happens in the same order.
pub fn version_profiles(
    versions: &[PressVersion],
    scale: RunScale,
    seed: u64,
    jobs: usize,
) -> Vec<VersionProfile> {
    let mut tasks = Vec::with_capacity(versions.len() * (MEASURED_FAULTS.len() + 1));
    for v in versions {
        for fault in MEASURED_FAULTS {
            tasks.push((*v, Some(fault)));
        }
        tasks.push((*v, None));
    }
    let runs = runner::run_indexed(jobs, tasks, |_i, (version, fault)| match fault {
        Some(fault) => {
            let scenario = scenario_for(fault, scale).expect("base classes have scenarios");
            let r = run_fault_experiment(config_for(version, scale), scenario, seed);
            ProfileRun::Fault {
                fault,
                tn: r.tn,
                measured: measured_from_run(&r),
            }
        }
        None => {
            let warmup_run = match scale {
                RunScale::Paper => SimDuration::from_secs(180),
                RunScale::Small => SimDuration::from_secs(60),
            };
            ProfileRun::Warmup(measure_warmup(config_for(version, scale), warmup_run, seed))
        }
    });

    let mut runs = runs.into_iter();
    versions
        .iter()
        .map(|version| {
            let mut faults = BTreeMap::new();
            let mut tn_sum = 0.0;
            let mut tn_n = 0u32;
            for _ in 0..MEASURED_FAULTS.len() {
                match runs.next().expect("one run per measured fault") {
                    ProfileRun::Fault { fault, tn, measured } => {
                        tn_sum += tn;
                        tn_n += 1;
                        faults.insert(fault, measured);
                    }
                    ProfileRun::Warmup(_) => unreachable!("warm-up is the last task per version"),
                }
            }
            let warmup = match runs.next().expect("one warm-up per version") {
                ProfileRun::Warmup(w) => w,
                ProfileRun::Fault { .. } => unreachable!("fault tasks precede the warm-up"),
            };
            VersionProfile {
                version: *version,
                tn: tn_sum / f64::from(tn_n),
                faults,
                warmup,
            }
        })
        .collect()
}

/// Runs every measured phase-1 experiment for `versions` and returns
/// the **full** results, version-major in [`MEASURED_FAULTS`] order —
/// the stage-segmentation audit needs the raw timelines and markers,
/// which [`version_profiles`] folds away. Fanned across `jobs` workers
/// with bit-identical results for any job count.
pub fn profile_fault_runs(
    versions: &[PressVersion],
    scale: RunScale,
    seed: u64,
    jobs: usize,
) -> Vec<FaultRunResult> {
    let mut tasks = Vec::with_capacity(versions.len() * MEASURED_FAULTS.len());
    for v in versions {
        for fault in MEASURED_FAULTS {
            tasks.push((*v, fault));
        }
    }
    runner::run_indexed(jobs, tasks, |_i, (version, fault)| {
        let scenario = scenario_for(fault, scale).expect("base classes have scenarios");
        run_fault_experiment(config_for(version, scale), scenario, seed)
    })
}

/// Converts one phase-1 run into the profile entry.
pub fn measured_from_run(r: &FaultRunResult) -> MeasuredFault {
    let e = r.stages.get(Stage::E);
    MeasuredFault {
        stages: r.stages.clone(),
        needs_reset: r.needs_operator_reset,
        residual_throughput: if e.duration > 0.0 { e.throughput } else { r.tn },
    }
}

/// Instantiates the profile against a fault load: every entry borrows
/// the measured behaviour of `entry.fault.behaves_like()`, with stage C
/// stretched to the entry's MTTR and — where phase 1 showed the cluster
/// stays degraded — operator-reset stages E/F/G appended.
pub fn behaviors_for_load(profile: &VersionProfile, load: &[FaultEntry]) -> Vec<FaultBehavior> {
    load.iter()
        .map(|entry| {
            let measured = profile
                .faults
                .get(&entry.fault.behaves_like())
                .unwrap_or_else(|| panic!("profile lacks {:?}", entry.fault.behaves_like()));
            let mut stages = measured.stages.scaled_to_repair(entry.mttr);
            if measured.needs_reset {
                stages.set(
                    Stage::E,
                    OPERATOR_RESPONSE_SECS,
                    measured.residual_throughput.min(profile.tn),
                );
                stages.set(Stage::F, RESET_SECS, 0.0);
                let (g_dur, g_tput) = profile.warmup;
                stages.set(Stage::G, g_dur, g_tput.min(profile.tn));
            } else {
                // Post-recovery normal operation is not a degraded stage.
                let e = stages.get(Stage::E);
                if e.throughput >= 0.95 * profile.tn {
                    stages.set(Stage::E, 0.0, 0.0);
                }
            }
            FaultBehavior {
                entry: *entry,
                stages,
            }
        })
        .collect()
}

/// One version's phase-2 outcome under a fault load.
#[derive(Debug, Clone)]
pub struct Phase2Result {
    /// The version.
    pub version: PressVersion,
    /// Normal throughput.
    pub tn: f64,
    /// Average availability (AA).
    pub availability: f64,
    /// 1 − AA.
    pub unavailability: f64,
    /// The performability metric `P`.
    pub performability: f64,
    /// Per-fault-class unavailability contributions.
    pub breakdown: Vec<(FaultEntry, f64)>,
}

/// Runs the §2.2 model for one profile and fault load.
pub fn evaluate(profile: &VersionProfile, load: &[FaultEntry]) -> Phase2Result {
    let behaviors = behaviors_for_load(profile, load);
    let aa = average_availability(profile.tn, &behaviors);
    Phase2Result {
        version: profile.version,
        tn: profile.tn,
        availability: aa,
        unavailability: 1.0 - aa,
        performability: performability(profile.tn, aa, IDEAL_AVAILABILITY),
        breakdown: unavailability_breakdown(profile.tn, &behaviors),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use performability::fault_load::{paper_fault_load, DAY, MONTH};

    fn quick_profile(version: PressVersion) -> VersionProfile {
        version_profile(version, RunScale::Small, 17)
    }

    #[test]
    fn profiles_build_and_evaluate_for_tcp_and_via() {
        for version in [PressVersion::TcpHb, PressVersion::Via5] {
            let profile = quick_profile(version);
            assert!(profile.tn > 500.0, "{version}: tn {}", profile.tn);
            assert_eq!(profile.faults.len(), 11);
            let result = evaluate(&profile, &paper_fault_load(DAY));
            assert!(
                result.availability > 0.9 && result.availability < 1.0,
                "{version}: availability {}",
                result.availability
            );
            assert!(result.performability > 0.0);
            // Breakdown sums to total unavailability.
            let sum: f64 = result.breakdown.iter().map(|(_, u)| u).sum();
            assert!((sum - result.unavailability).abs() < 1e-9);
        }
    }

    #[test]
    fn lower_app_fault_rate_improves_availability() {
        let profile = quick_profile(PressVersion::Via0);
        let daily = evaluate(&profile, &paper_fault_load(DAY));
        let monthly = evaluate(&profile, &paper_fault_load(MONTH));
        assert!(
            monthly.availability > daily.availability,
            "monthly {} daily {}",
            monthly.availability,
            daily.availability
        );
        assert!(monthly.performability > daily.performability);
    }

    #[test]
    fn sensitivity_classes_reuse_measured_behaviour() {
        let profile = quick_profile(PressVersion::Via3);
        let mut load = paper_fault_load(MONTH);
        load.push(FaultEntry {
            fault: ModelFault::ViaPacketDrop,
            mttf: DAY,
            mttr: 180.0,
            instances: 4,
        });
        let behaviors = behaviors_for_load(&profile, &load);
        assert_eq!(behaviors.len(), 12);
        let with = evaluate(&profile, &load);
        let without = evaluate(&profile, &paper_fault_load(MONTH));
        assert!(with.availability < without.availability);
    }
}
