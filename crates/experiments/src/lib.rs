//! Composition layer: wires the discrete-event engine, network fabric,
//! transports, PRESS nodes, clients, and the Mendosus injector into one
//! runnable cluster, and defines the paper's experiments on top of it.
//!
//! * [`cluster`] — [`ClusterSim`]: the live 4-node cluster.
//! * [`phase1`] — single-fault injection runs: throughput timelines,
//!   stage markers, and 7-stage extraction (§5).
//! * [`phase2`] — analytic combination under Table 3 fault loads:
//!   unavailability, performability, sensitivity scenarios (§6).
//! * [`montecarlo`] — Monte-Carlo performability over generated fault
//!   timelines: correlated groups, gray faults, overlapping arrivals.
//! * [`membership`] — ring-vs-gossip detector study: detection-latency
//!   scaling, gray-fault false exclusions, rejoin latency over
//!   N ∈ {4, 8, 16, 32}.
//! * [`scale`] — cluster-size scaling study over N ∈ {4, 16, 64}:
//!   eager-broadcast vs batched-digest cache synchronization on a
//!   fat-tree fabric, reporting Tn/AT/AA/P and control-frame cost.
//! * [`figures`] — one entry point per table/figure of the paper.
//! * [`render`] — plain-text rendering of timelines and bar charts.
//! * [`runner`] — deterministic parallel execution of independent runs.

pub mod cluster;
pub mod figures;
pub mod membership;
pub mod montecarlo;
pub mod phase1;
pub mod phase2;
pub mod render;
pub mod runner;
pub mod scale;

pub use cluster::{
    default_sim_threads, events_dispatched_total, set_default_sim_threads, ClusterConfig,
    ClusterReport, ClusterSim,
};

pub use membership::{
    crossover_n, membership_metrics, membership_study, MembershipPoint,
};
pub use montecarlo::{
    closed_form_crosscheck, montecarlo_results, overlap_profile, run_montecarlo, CrossCheck,
    McReplication, McRun, MonteCarloSetup, OverlapProfile,
};
pub use phase1::{
    attr_stage_spans, attr_totals, measure_warmup, run_fault_experiment,
    run_fault_experiment_attributed, run_fault_experiment_traced, FaultRunResult, FaultScenario,
};
pub use phase2::{
    behaviors_for_load, evaluate, version_profile, version_profiles, Phase2Result, RunScale,
    VersionProfile,
};
pub use runner::{effective_jobs, run_indexed};
pub use scale::{scale_attributed, scale_metrics, scale_study, ScalePoint};
