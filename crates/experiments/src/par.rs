//! Conservative-parallel window driver for [`ClusterSim`].
//!
//! The sequential loop in `cluster.rs` pops one global `(time, seq)`
//! ordered engine. This module keeps that engine as the *ordering
//! skeleton* but fans the expensive per-node work (PRESS, transport,
//! CPU accounting, fault mangling) out to shard workers in bounded
//! time windows, then replays the workers' buffered global effects
//! sequentially in exact `(time, seq)` order. The result is
//! byte-identical to the sequential run for every seed, shard count
//! and thread count — not approximately, but by construction, and the
//! replay *verifies* the construction at runtime.
//!
//! # Why the window bound is safe
//!
//! The only cross-node interaction is a fabric frame. A frame sent at
//! time `t` is delivered no earlier than
//! `t + wire_time (>= 1ns) + link + switch + link`, i.e. strictly
//! later than `t + lookahead()`. So with windows of width
//! `lookahead() + 1ns`, anything a node does inside the window
//! `[t0, bound)` cannot affect another node until `>= bound` — every
//! shard can execute its own window events independently. Timers,
//! replies and restart events are node-local, and fault injection
//! (the one global mutator) is serialized: windows never cross a
//! fault instant, which is run through the ordinary sequential
//! `handle()` loop instead.
//!
//! # One window
//!
//! 1. **Drain** (facade): pop every engine event `< bound` with its
//!    seq ([`Engine::pop_window`]), unrolling the client arrival
//!    chain (arrivals are the only RNG consumers, and the pool fields
//!    they touch are disjoint from scoring). Per-node events go to
//!    their shard's inbox in global order; client events stay on the
//!    facade.
//! 2. **Execute** (workers, `std::thread::scope`): each shard runs
//!    its inbox through a worker-local [`Engine<WEv>`] (in-window
//!    self-scheduled events are always same-node), mutating only its
//!    own `NodeSlot`s and buffering every global effect as an ordered
//!    [`Op`] list plus one [`Record`] per executed event.
//! 3. **Replay** (facade): merge the drained slots with in-window
//!    generated events (seqs allocated via [`Engine::alloc_seq`] at
//!    exactly the point the sequential loop would have scheduled
//!    them) and apply each record's ops in true `(time, seq)` order:
//!    engine inserts, client scoring, traces, logs, receive-side
//!    fabric serialization. Each consumed record is checked against
//!    the expected `(time, kind)`; any divergence panics rather than
//!    silently drifting from the sequential run.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use press::{AppEffect, ClientAccept, NodeCtx, PressMsg, Request};
use simnet::fabric::TransmitOutcome;
use simnet::{
    CancelToken, Engine, Fabric, FabricConfig, FabricFlags, Frame, NodeId, SimDuration, SimTime,
    TxOutcome, TxPort,
};
use transport::{Effect, Effects, Substrate, TimerKey, TimerKind, WirePayload};
use workload::ClientEvent;

use super::{ClusterSim, ConnTimers, Ev, FxPool, NodeSlot, ProcEvent, Work};

/// Facade-side map from a pending transport timer to its engine
/// cancellation token: `(node, conn, kind index) → token`. Workers
/// decide *that* an engine-resident timer is superseded; the facade
/// owns the tokens and performs the cancel at replay.
type TokenMap = HashMap<(usize, u64, usize), CancelToken>;

/// Worker-side event: the in-window, node-local mirror of [`Ev`].
enum WEv {
    Frame(Frame<WirePayload<PressMsg>>),
    Timer(TimerKey),
    App { node: usize, gen: u64, ev: press::AppEvent },
    Reply { node: usize, gen: u64, req_id: u64 },
    Restart { node: usize, gen: u64 },
    Arrival { node: usize, req: Request, traced: bool },
}

/// Record kinds — the executed event's discriminant, verified against
/// the facade's expectation when the record is consumed.
const K_FRAME: u8 = 0;
const K_TIMER: u8 = 1;
/// A timer event the worker skipped because an in-window re-arm
/// superseded it (the sequential loop would have cancelled it out of
/// the engine before it fired, so it is *not* counted as dispatched).
const K_TIMER_CANCELLED: u8 = 2;
const K_APP: u8 = 3;
const K_REPLY: u8 = 4;
const K_RESTART: u8 = 5;
const K_ARRIVAL: u8 = 6;
/// Facade expectation wildcard for in-window generated events.
const K_ANY: u8 = 255;

fn kind_matches(expected: u8, got: u8) -> bool {
    expected == got
        || expected == K_ANY
        || (expected == K_TIMER && got == K_TIMER_CANCELLED)
}

/// One executed worker event: when it ran, what it was, and where its
/// ops end in the shard's op list (ops are consumed cursor-style).
#[derive(Clone, Copy)]
struct Record {
    at: SimTime,
    kind: u8,
    ops_end: u32,
}

/// A buffered global effect, applied by the facade at replay in the
/// exact order the sequential loop would have performed it.
enum Op {
    /// Placeholder left behind when an op is moved out for application.
    Nop,
    /// `engine.schedule_at(at, ev)` — allocates the next seq.
    Sched { at: SimTime, ev: Ev },
    /// `engine.schedule_fifo(at, ev)` — allocates the next seq.
    SchedFifo { at: SimTime, ev: Ev },
    /// An in-window event the worker scheduled locally: burn the seq
    /// the sequential loop would have given it and queue the slot on
    /// the replay heap.
    Local { at: SimTime },
    /// `schedule_cancellable` + token registration (TCP timer index).
    TimerArm { at: SimTime, key: TimerKey },
    /// Plain timer schedule (VIA — no cancellation index).
    TimerArmPlain { at: SimTime, key: TimerKey },
    /// Cancel an engine-resident superseded timer via the token map.
    TimerCancel { node: usize, conn: u64, kind: usize },
    /// Count one suppressed timer (cancellation already effected
    /// worker-side, or detected stale at dispatch).
    Suppress,
    /// Launched frame: receive-side serialization + delivery schedule.
    TxFrame {
        frame: Frame<WirePayload<PressMsg>>,
        at_dst_port: SimTime,
    },
    /// `clients.accepted` + deadline schedule (monotone lane).
    ClientAccepted { req_id: u64 },
    ClientConnFailed,
    ClientRefused,
    /// `clients.complete` + traced-request span emission.
    ClientComplete { req_id: u64 },
    /// Register a sampled request in the traced-request table.
    TracedInsert { req_id: u64, target: usize },
    LogMembership { node: usize, members: usize },
    LogProcessExit { node: usize },
    LogProcessRestart { node: usize },
    /// Pre-built trace event (transport traces, client instants).
    Trace(Box<telemetry::TraceEvent>),
    /// Attribution record, applied into the facade's `AttrState` at
    /// the replay slot (so the record order is exactly sequential).
    Attr {
        node: usize,
        ev: telemetry::AttrEvent,
    },
}

/// Worker-side mirror of [`ConnTimers`]: the facade keeps the engine
/// tokens, the worker keeps the gens and fire times it needs to make
/// supersede decisions.
#[derive(Clone, Default)]
struct WTimers {
    latest_gen: u64,
    /// Per-kind pending timer: `(gen, fire time)`.
    pending: [Option<(u64, SimTime)>; TimerKind::COUNT],
}

/// Everything one shard owns while the simulation is split.
struct ShardState {
    /// First global node index of this shard (nodes are contiguous).
    start: usize,
    nodes: Vec<NodeSlot>,
    /// Sender-side fabric port state for this shard's nodes.
    tx: Vec<TxPort>,
    /// Snapshot of the fabric's up/down flags (constant per window —
    /// faults are serialized).
    flags: FabricFlags,
    /// Per-local-node timer index (TCP versions only).
    timers: Option<Vec<BTreeMap<u64, WTimers>>>,
    /// In-window locally-cancelled timers, keyed
    /// `(node, conn, gen, kind index)`; their events are skipped when
    /// popped from the local engine.
    cancelled: HashSet<(usize, u64, u64, usize)>,
    last_members: Vec<usize>,
    /// In-window event queue (drained inbox + self-scheduled events).
    local: Engine<WEv>,
    /// Events handed over by the facade for the current window.
    inbox: Vec<(SimTime, WEv)>,
    records: Vec<Record>,
    ops: Vec<Op>,
    rec_cursor: usize,
    op_cursor: usize,
    work: VecDeque<(usize, Work)>,
    fx_pool: FxPool,
    app_scratch: Vec<AppEffect>,
    fabcfg: FabricConfig,
    restart_delay: SimDuration,
    /// Exclusive end of the current window.
    bound: SimTime,
    /// Sender-side frame losses this split (merged via `note_lost`).
    lost: u64,
    /// Whether attribution is live (gates the worker-side lifecycle
    /// ops so the disabled path stays allocation-free).
    attr_on: bool,
}

impl ShardState {
    /// Empty placeholder left in a mutex while the real state is
    /// merged back into the facade (never executed).
    fn husk() -> ShardState {
        ShardState {
            start: 0,
            nodes: Vec::new(),
            tx: Vec::new(),
            flags: FabricFlags::default(),
            timers: None,
            cancelled: HashSet::new(),
            last_members: Vec::new(),
            local: Engine::new(),
            inbox: Vec::new(),
            records: Vec::new(),
            ops: Vec::new(),
            rec_cursor: 0,
            op_cursor: 0,
            work: VecDeque::new(),
            fx_pool: FxPool::default(),
            app_scratch: Vec::new(),
            fabcfg: FabricConfig::default(),
            restart_delay: SimDuration::ZERO,
            bound: SimTime::ZERO,
            lost: 0,
            attr_on: false,
        }
    }

    fn begin_window(&mut self, bound: SimTime) {
        self.bound = bound;
        self.inbox.clear();
        self.records.clear();
        self.ops.clear();
        self.rec_cursor = 0;
        self.op_cursor = 0;
    }
}

/// Worker coordination: the facade publishes a window generation, the
/// workers run it and report back. Spin-then-yield keeps latency low
/// on idle cores without starving single-core hosts.
struct Ctl {
    epoch: AtomicU64,
    done: Vec<AtomicU64>,
    panicked: AtomicBool,
}

/// Epoch value that tells workers to exit.
const STOP: u64 = u64::MAX;

fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

impl Ctl {
    fn new(shards: usize) -> Ctl {
        Ctl {
            epoch: AtomicU64::new(0),
            done: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            panicked: AtomicBool::new(false),
        }
    }

    fn stop(&self) {
        self.epoch.store(STOP, Ordering::Release);
    }

    /// Worker side: block until a new window (or stop) is published.
    fn wait_epoch(&self, seen: u64) -> Option<u64> {
        let mut spins = 0;
        loop {
            let e = self.epoch.load(Ordering::Acquire);
            if e == STOP {
                return None;
            }
            if e != seen {
                return Some(e);
            }
            backoff(&mut spins);
        }
    }

    /// Facade side: block until every worker shard finished epoch `e`.
    fn wait_done(&self, e: u64) {
        for d in self.done.iter().skip(1) {
            let mut spins = 0;
            while d.load(Ordering::Acquire) != e {
                if self.panicked.load(Ordering::Acquire) {
                    self.stop();
                    panic!("parallel window driver: a shard worker panicked");
                }
                backoff(&mut spins);
            }
        }
    }
}

/// Ensures workers are released even if the facade panics mid-window
/// (otherwise `thread::scope` would deadlock joining them).
struct StopGuard<'a>(&'a Ctl);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.stop();
    }
}

/// One facade-retired slot of the window: an event the drain popped
/// from the global engine, with its real seq.
#[derive(Clone, Copy)]
struct Slot {
    at: SimTime,
    seq: u64,
    tag: SlotTag,
}

#[derive(Clone, Copy)]
enum SlotTag {
    /// Client deadline — handled wholly on the facade.
    Deadline(u64),
    /// Client arrival — pool mutation on the facade, node checks on
    /// the worker (the chain queue holds its next-arrival time+shard).
    Arrival,
    /// Node event executed by `shard`; `kind` is the expected record.
    Node { shard: u32, kind: u8 },
}

/// Replay-heap tag marking an in-window generated *arrival* (all
/// other entries carry their shard index).
const TAG_ARRIVAL: u32 = u32::MAX;

/// Facade-side driver state that lives across windows.
struct Driver {
    /// Drained engine events of the current window, with real seqs.
    stream: Vec<Slot>,
    /// Per-arrival `(next arrival time, target shard)` queue, in
    /// arrival order.
    chain: VecDeque<(SimTime, u32)>,
    /// In-window generated events awaiting replay:
    /// `(time, seq, shard | TAG_ARRIVAL)`.
    pending: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    tokens: TokenMap,
    node_shard: Vec<u32>,
    drained: Vec<(SimTime, u64, Ev)>,
    bound: SimTime,
    trace_on: bool,
    sample: u64,
    /// Next unrolled (virtual) arrival to interleave into the drain.
    next_arrival: Option<SimTime>,
}

/// Entry point: runs `sim` to `deadline` with `threads` shards,
/// byte-identical to the sequential `run_until`.
pub(super) fn run_until_parallel(sim: &mut ClusterSim, deadline: SimTime, threads: usize) {
    let window = sim.config.fabric.lookahead() + SimDuration::from_nanos(1);
    // Fault instants remaining in this run are serialized through the
    // sequential loop; windows never cross one. `>=` keeps an
    // already-dispatched same-instant fault harmless (its time simply
    // can't come up again) while never missing a pending one.
    let mut fault_times: Vec<SimTime> = sim
        .actions
        .iter()
        .map(|a| a.at)
        .filter(|&t| t >= sim.engine.now() && t <= deadline)
        .collect();
    fault_times.sort_unstable();
    fault_times.dedup();

    let n = sim.config.press.nodes;
    let shard_count = threads.min(n);
    let mut node_shard = vec![0u32; n];
    for k in 0..shard_count {
        for s in node_shard.iter_mut().take((k + 1) * n / shard_count).skip(k * n / shard_count) {
            *s = k as u32;
        }
    }

    let mut driver = Driver {
        stream: Vec::new(),
        chain: VecDeque::new(),
        pending: BinaryHeap::new(),
        tokens: TokenMap::new(),
        node_shard,
        drained: Vec::new(),
        bound: SimTime::ZERO,
        trace_on: sim.sink.enabled(),
        sample: sim.config.trace.request_sample,
        next_arrival: None,
    };

    let shards = split(sim, shard_count, &mut driver.tokens);
    let locks: Vec<Mutex<ShardState>> = shards.into_iter().map(Mutex::new).collect();
    let ctl = Ctl::new(locks.len());

    std::thread::scope(|scope| {
        let _guard = StopGuard(&ctl);
        for (w, lock) in locks.iter().enumerate().skip(1) {
            let ctl = &ctl;
            scope.spawn(move || worker_loop(ctl, w, lock));
        }
        drive(sim, deadline, window, &fault_times, &locks, &ctl, &mut driver);
    });

    sim.engine.advance_now(deadline);
}

/// The facade loop: windows, fault instants, final merge.
fn drive(
    sim: &mut ClusterSim,
    deadline: SimTime,
    window: SimDuration,
    fault_times: &[SimTime],
    locks: &[Mutex<ShardState>],
    ctl: &Ctl,
    driver: &mut Driver,
) {
    let shard_count = locks.len();
    let mut fi = 0;
    let mut epoch = 0u64;
    while let Some(t0) = sim.engine.peek_time() {
        if t0 > deadline {
            break;
        }
        while fi < fault_times.len() && fault_times[fi] < t0 {
            fi += 1;
        }
        if fi < fault_times.len() && fault_times[fi] == t0 {
            // Fault instant: fold the shards back together and run the
            // whole burst through the ordinary sequential loop — exact
            // fault semantics with zero duplicated logic — then re-split.
            merge(sim, take_all(locks), &driver.tokens);
            let mut batch = std::mem::take(&mut sim.batch);
            while let Some(t) = sim.engine.pop_batch_before(t0, &mut batch) {
                for ev in batch.drain(..) {
                    sim.handle(t, ev);
                }
            }
            sim.batch = batch;
            fi += 1;
            put_all(locks, split(sim, shard_count, &mut driver.tokens));
            continue;
        }

        let mut bound = t0 + window;
        if fi < fault_times.len() {
            bound = bound.min(fault_times[fi]);
        }
        bound = bound.min(deadline + SimDuration::from_nanos(1));

        driver.drained.clear();
        sim.engine.pop_window(bound, &mut driver.drained);
        if driver.drained.is_empty() {
            // Stale cancelled entry pruned; nothing to run this round.
            continue;
        }

        let mut guards: Vec<MutexGuard<'_, ShardState>> =
            locks.iter().map(|l| l.lock().expect("shard mutex poisoned")).collect();
        for g in guards.iter_mut() {
            g.begin_window(bound);
        }
        driver.bound = bound;
        distribute(sim, driver, &mut guards);
        drop(guards);

        epoch += 1;
        ctl.epoch.store(epoch, Ordering::Release);
        {
            // The facade executes shard 0 itself while workers run 1..
            let mut sh0 = locks[0].lock().expect("shard mutex poisoned");
            run_window(&mut sh0);
        }
        ctl.wait_done(epoch);

        let mut guards: Vec<MutexGuard<'_, ShardState>> =
            locks.iter().map(|l| l.lock().expect("shard mutex poisoned")).collect();
        replay(sim, driver, &mut guards);
        for (k, g) in guards.iter().enumerate() {
            assert_eq!(
                g.rec_cursor,
                g.records.len(),
                "window replay: shard {k} executed events the facade never retired"
            );
            assert_eq!(g.op_cursor, g.ops.len(), "window replay: shard {k} left ops unapplied");
            assert!(g.cancelled.is_empty(), "window replay: shard {k} cancellation leaked");
        }
        assert!(driver.chain.is_empty(), "window replay: arrival chain not fully retired");
        drop(guards);
    }

    merge(sim, take_all(locks), &driver.tokens);
}

/// Drain phase: route the popped window events to shard inboxes and
/// facade slots, unrolling the client arrival chain in merged time
/// order (a virtual arrival ties *after* a drained event at the same
/// instant — its seq is allocated later, in-window).
fn distribute(sim: &mut ClusterSim, driver: &mut Driver, guards: &mut [MutexGuard<'_, ShardState>]) {
    driver.stream.clear();
    driver.chain.clear();
    driver.next_arrival = None;
    debug_assert!(driver.pending.is_empty());
    let mut drained = std::mem::take(&mut driver.drained);
    for (at, seq, ev) in drained.drain(..) {
        while driver.next_arrival.is_some_and(|t| t < at) {
            let t = driver.next_arrival.take().unwrap();
            emit_arrival(sim, driver, guards, t, None);
        }
        match ev {
            Ev::Client(ClientEvent::Arrival) => {
                assert!(driver.next_arrival.is_none(), "two live arrival chains");
                emit_arrival(sim, driver, guards, at, Some(seq));
            }
            Ev::Client(ClientEvent::Deadline(id)) => {
                driver.stream.push(Slot { at, seq, tag: SlotTag::Deadline(id) });
            }
            Ev::Fault(_) => unreachable!("fault instants are serialized outside windows"),
            Ev::Frame(f) => {
                let shard = driver.node_shard[f.dst.0];
                guards[shard as usize].inbox.push((at, WEv::Frame(f)));
                driver.stream.push(Slot { at, seq, tag: SlotTag::Node { shard, kind: K_FRAME } });
            }
            Ev::Timer(key) => {
                let shard = driver.node_shard[key.node.0];
                guards[shard as usize].inbox.push((at, WEv::Timer(key)));
                driver.stream.push(Slot { at, seq, tag: SlotTag::Node { shard, kind: K_TIMER } });
            }
            Ev::App { node, gen, ev } => {
                let shard = driver.node_shard[node];
                guards[shard as usize].inbox.push((at, WEv::App { node, gen, ev }));
                driver.stream.push(Slot { at, seq, tag: SlotTag::Node { shard, kind: K_APP } });
            }
            Ev::Reply { node, gen, req_id } => {
                let shard = driver.node_shard[node];
                guards[shard as usize].inbox.push((at, WEv::Reply { node, gen, req_id }));
                driver.stream.push(Slot { at, seq, tag: SlotTag::Node { shard, kind: K_REPLY } });
            }
            Ev::ProcessRestart { node, gen } => {
                let shard = driver.node_shard[node];
                guards[shard as usize].inbox.push((at, WEv::Restart { node, gen }));
                driver.stream.push(Slot { at, seq, tag: SlotTag::Node { shard, kind: K_RESTART } });
            }
        }
    }
    while let Some(t) = driver.next_arrival.take() {
        emit_arrival(sim, driver, guards, t, None);
    }
    driver.drained = drained;
}

/// Consumes one arrival from the client pool at drain time (the pool
/// fields `arrive` touches — RNG, ids, attempt counter — are disjoint
/// from the scoring fields replay touches, so pre-consuming here
/// leaves all replay-time scoring byte-identical).
fn emit_arrival(
    sim: &mut ClusterSim,
    driver: &mut Driver,
    guards: &mut [MutexGuard<'_, ShardState>],
    t: SimTime,
    real_seq: Option<u64>,
) {
    let (req, target, next) = sim.clients.arrive(t);
    let traced = driver.trace_on && driver.sample != 0 && req.id % driver.sample == 0;
    let shard = driver.node_shard[target.0];
    guards[shard as usize].inbox.push((t, WEv::Arrival { node: target.0, req, traced }));
    if let Some(seq) = real_seq {
        driver.stream.push(Slot { at: t, seq, tag: SlotTag::Arrival });
    }
    driver.chain.push_back((next, shard));
    driver.next_arrival = if next < driver.bound { Some(next) } else { None };
}

/// Replay phase: two-source merge of the drained stream (real seqs)
/// and the in-window generated events (seqs allocated at their
/// parents' replay slots), applying each record's buffered ops.
fn replay(sim: &mut ClusterSim, driver: &mut Driver, guards: &mut [MutexGuard<'_, ShardState>]) {
    let mut si = 0;
    loop {
        let s_key = driver.stream.get(si).map(|s| (s.at, s.seq));
        let p_key = driver.pending.peek().map(|Reverse((at, seq, _))| (*at, *seq));
        let use_stream = match (s_key, p_key) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(s), Some(p)) => s < p,
        };
        if use_stream {
            let slot = driver.stream[si];
            si += 1;
            sim.engine.advance_now(slot.at);
            match slot.tag {
                SlotTag::Deadline(id) => {
                    facade_deadline(sim, slot.at, id);
                    sim.engine.note_dispatched(1);
                }
                SlotTag::Arrival => replay_arrival(sim, driver, guards, slot.at),
                SlotTag::Node { shard, kind } => {
                    if consume_record(sim, driver, guards, shard, slot.at, kind) {
                        sim.engine.note_dispatched(1);
                    }
                }
            }
        } else {
            let Reverse((at, _seq, tag)) = driver.pending.pop().unwrap();
            sim.engine.advance_now(at);
            if tag == TAG_ARRIVAL {
                replay_arrival(sim, driver, guards, at);
            } else if consume_record(sim, driver, guards, tag, at, K_ANY) {
                sim.engine.note_dispatched(1);
            }
        }
    }
}

/// Replays one arrival slot: schedule (or queue) the next arrival at
/// exactly the point the sequential handler did, then retire the
/// worker's node-side record.
fn replay_arrival(
    sim: &mut ClusterSim,
    driver: &mut Driver,
    guards: &mut [MutexGuard<'_, ShardState>],
    at: SimTime,
) {
    let (next, shard) = driver.chain.pop_front().expect("arrival chain underrun");
    if next < driver.bound {
        let seq = sim.engine.alloc_seq();
        driver.pending.push(Reverse((next, seq, TAG_ARRIVAL)));
    } else {
        sim.engine.schedule_at(next, Ev::Client(ClientEvent::Arrival));
    }
    consume_record(sim, driver, guards, shard, at, K_ARRIVAL);
    sim.engine.note_dispatched(1);
}

/// Sequential `Ev::Client(Deadline)` handling, verbatim.
fn facade_deadline(sim: &mut ClusterSim, now: SimTime, id: u64) {
    sim.clients.deadline(id);
    sim.record_attr(now, 0, telemetry::AttrEvent::DeadlineMiss { req_id: id });
    if let Some((issued, target)) = sim.traced_requests.remove(&id) {
        sim.sink.emit(
            telemetry::TraceEvent::instant("request.timeout", "client", target as u32, now)
                .arg_u64("req_id", id)
                .arg_u64("waited_us", now.saturating_since(issued).as_nanos() / 1_000),
        );
    }
}

/// Retires the next record of `shard`, verifying `(time, kind)` and
/// applying its ops. Returns whether the event counts as dispatched.
fn consume_record(
    sim: &mut ClusterSim,
    driver: &mut Driver,
    guards: &mut [MutexGuard<'_, ShardState>],
    shard: u32,
    at: SimTime,
    expected: u8,
) -> bool {
    let sh = &mut *guards[shard as usize];
    let rec = *sh
        .records
        .get(sh.rec_cursor)
        .unwrap_or_else(|| panic!("window replay: shard {shard} ran out of records at {at:?}"));
    sh.rec_cursor += 1;
    assert!(
        rec.at == at && kind_matches(expected, rec.kind),
        "window replay: shard {shard} diverged from the sequential order \
         (expected kind {expected} at {at:?}, worker executed kind {} at {:?})",
        rec.kind,
        rec.at,
    );
    let end = rec.ops_end as usize;
    while sh.op_cursor < end {
        let op = std::mem::replace(&mut sh.ops[sh.op_cursor], Op::Nop);
        sh.op_cursor += 1;
        apply_op(sim, driver, shard, at, op);
    }
    rec.kind != K_TIMER_CANCELLED
}

/// Applies one buffered op on the facade — each arm is the verbatim
/// global half of the corresponding sequential code path.
fn apply_op(sim: &mut ClusterSim, driver: &mut Driver, shard: u32, at: SimTime, op: Op) {
    match op {
        Op::Nop => {}
        Op::Sched { at, ev } => sim.engine.schedule_at(at, ev),
        Op::SchedFifo { at, ev } => sim.engine.schedule_fifo(at, ev),
        Op::Local { at } => {
            let seq = sim.engine.alloc_seq();
            driver.pending.push(Reverse((at, seq, shard)));
        }
        Op::TimerArm { at, key } => {
            let token = sim.engine.schedule_cancellable(at, Ev::Timer(key));
            driver.tokens.insert((key.node.0, key.conn, key.kind.idx()), token);
        }
        Op::TimerArmPlain { at, key } => sim.engine.schedule_at(at, Ev::Timer(key)),
        Op::TimerCancel { node, conn, kind } => {
            let token = *driver
                .tokens
                .get(&(node, conn, kind))
                .expect("window replay: cancel of an unregistered timer token");
            if sim.engine.cancel(token) {
                sim.timers_suppressed += 1;
            }
        }
        Op::Suppress => sim.timers_suppressed += 1,
        Op::TxFrame { frame, at_dst_port } => {
            match sim.fabric.rx_phase(at_dst_port, frame.dst, frame.bytes) {
                TransmitOutcome::Delivered { at } => sim.engine.schedule_at(at, Ev::Frame(frame)),
                TransmitOutcome::Lost { reason } => panic!(
                    "window replay: receive-side loss ({reason:?}) after the sender already \
                     committed — transport flow control keeps per-peer backlog far below the \
                     rx queue bound, so this indicates a model change that breaks the \
                     parallel driver's delivery assumption"
                ),
            }
        }
        Op::ClientAccepted { req_id } => {
            let deadline = sim.clients.accepted(at, req_id);
            sim.engine.schedule_fifo(deadline, Ev::Client(ClientEvent::Deadline(req_id)));
        }
        Op::ClientConnFailed => sim.clients.connect_failed(),
        Op::ClientRefused => sim.clients.refused(),
        Op::ClientComplete { req_id } => {
            // Same late-reply rule as the sequential path: only a
            // scored completion closes the causal record.
            if sim.clients.complete(at, req_id) {
                // The node index is irrelevant for `Completed`.
                sim.record_attr(at, 0, telemetry::AttrEvent::Completed { req_id });
            }
            if let Some((issued, target)) = sim.traced_requests.remove(&req_id) {
                sim.sink.emit(
                    telemetry::TraceEvent::span(
                        "request",
                        "client",
                        target as u32,
                        issued,
                        at.saturating_since(issued),
                    )
                    .arg_u64("req_id", req_id),
                );
            }
        }
        Op::TracedInsert { req_id, target } => {
            sim.traced_requests.insert(req_id, (at, target));
        }
        Op::LogMembership { node, members } => {
            sim.membership_log.push((at, NodeId(node), members));
            sim.sink.emit_with(|| {
                telemetry::TraceEvent::instant(
                    "membership.size",
                    "cluster",
                    telemetry::TID_CLUSTER,
                    at,
                )
                .arg_u64("node", node as u64)
                .arg_u64("members", members as u64)
            });
        }
        Op::LogProcessExit { node } => {
            sim.process_log.push((at, NodeId(node), ProcEvent::Exit));
            sim.record_attr(at, node, telemetry::AttrEvent::FaultBegin);
            sim.sink.emit_with(|| {
                telemetry::TraceEvent::instant("process.exit", "proc", node as u32, at)
            });
        }
        Op::LogProcessRestart { node } => {
            sim.process_log.push((at, NodeId(node), ProcEvent::Restart));
            sim.record_attr(at, node, telemetry::AttrEvent::FaultEnd);
            sim.sink.emit_with(|| {
                telemetry::TraceEvent::instant("process.restart", "proc", node as u32, at)
            });
        }
        Op::Trace(ev) => sim.sink.emit(*ev),
        Op::Attr { node, ev } => sim.record_attr(at, node, ev),
    }
}

// ----------------------------------------------------------------------
// Worker side
// ----------------------------------------------------------------------

fn worker_loop(ctl: &Ctl, w: usize, lock: &Mutex<ShardState>) {
    let mut seen = 0u64;
    while let Some(e) = ctl.wait_epoch(seen) {
        let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut sh = lock.lock().expect("shard mutex poisoned");
            run_window(&mut sh);
        }));
        if ran.is_err() {
            // The panic hook already printed the worker's message.
            ctl.panicked.store(true, Ordering::Release);
            return;
        }
        ctl.done[w].store(e, Ordering::Release);
        seen = e;
    }
}

/// Executes one shard's window: feed the inbox into the local engine
/// and run node-local state machines to exhaustion, one record per
/// event.
fn run_window(sh: &mut ShardState) {
    let mut inbox = std::mem::take(&mut sh.inbox);
    for (at, wev) in inbox.drain(..) {
        sh.local.schedule_at(at, wev);
    }
    sh.inbox = inbox;
    while let Some((now, wev)) = sh.local.pop() {
        debug_assert!(sh.work.is_empty());
        let kind = step(sh, now, wev);
        drain_work_local(sh, now);
        sh.records.push(Record { at: now, kind, ops_end: sh.ops.len() as u32 });
    }
}

/// Worker transliteration of the sequential `handle()` dispatch.
fn step(sh: &mut ShardState, now: SimTime, wev: WEv) -> u8 {
    match wev {
        WEv::Frame(frame) => {
            if sh.flags.node_up[frame.dst.0] {
                sh.work.push_back((frame.dst.0, Work::FrameIn(frame)));
            }
            K_FRAME
        }
        WEv::Timer(key) => {
            if sh.cancelled.remove(&(key.node.0, key.conn, key.gen, key.kind.idx())) {
                // An in-window re-arm superseded this timer; the
                // sequential loop cancelled it out of the engine.
                return K_TIMER_CANCELLED;
            }
            if note_timer_dispatched_local(sh, &key) {
                sh.ops.push(Op::Suppress);
            } else if sh.flags.node_up[key.node.0] {
                sh.work.push_back((key.node.0, Work::Timer(key)));
            }
            K_TIMER
        }
        WEv::App { node, gen, ev } => {
            let slot = &sh.nodes[node - sh.start];
            if slot.running && slot.gen == gen {
                sh.work.push_back((node, Work::AppEv(ev)));
            }
            K_APP
        }
        WEv::Reply { node, gen, req_id } => {
            let slot = &sh.nodes[node - sh.start];
            if slot.running && slot.gen == gen {
                sh.ops.push(Op::ClientComplete { req_id });
            }
            K_REPLY
        }
        WEv::Restart { node, gen } => {
            let slot = &mut sh.nodes[node - sh.start];
            if slot.gen == gen && !slot.running {
                slot.running = true;
                sh.ops.push(Op::LogProcessRestart { node });
                sh.work.push_back((node, Work::Start { cold: false }));
            }
            K_RESTART
        }
        WEv::Arrival { node, req, traced } => {
            let li = node - sh.start;
            if !sh.flags.node_up[node] || sh.nodes[li].frozen {
                sh.ops.push(Op::ClientConnFailed);
                if sh.attr_on {
                    sh.ops.push(Op::Attr { node, ev: telemetry::AttrEvent::ConnFailed });
                }
                if traced {
                    sh.ops.push(Op::Trace(Box::new(
                        telemetry::TraceEvent::instant(
                            "request.conn_failed",
                            "client",
                            telemetry::TID_CLIENTS,
                            now,
                        )
                        .arg_u64("req_id", req.id)
                        .arg_u64("node", node as u64),
                    )));
                }
            } else if !sh.nodes[li].running {
                sh.ops.push(Op::ClientRefused);
                if sh.attr_on {
                    sh.ops.push(Op::Attr { node, ev: telemetry::AttrEvent::Refused });
                }
                if traced {
                    sh.ops.push(Op::Trace(Box::new(
                        telemetry::TraceEvent::instant(
                            "request.refused",
                            "client",
                            telemetry::TID_CLIENTS,
                            now,
                        )
                        .arg_u64("req_id", req.id)
                        .arg_u64("node", node as u64),
                    )));
                }
            } else if sh.nodes[li].hung {
                if traced {
                    sh.ops.push(Op::TracedInsert { req_id: req.id, target: node });
                }
                sh.ops.push(Op::ClientAccepted { req_id: req.id });
                if sh.attr_on {
                    sh.ops.push(Op::Attr {
                        node,
                        ev: telemetry::AttrEvent::Accepted { req_id: req.id },
                    });
                }
                sh.nodes[li].freezer.push(Work::Client(req));
            } else {
                if traced {
                    sh.ops.push(Op::TracedInsert { req_id: req.id, target: node });
                }
                sh.work.push_back((node, Work::Client(req)));
            }
            K_ARRIVAL
        }
    }
}

/// Worker mirror of `note_timer_dispatched`.
fn note_timer_dispatched_local(sh: &mut ShardState, key: &TimerKey) -> bool {
    let Some(per_node) = &mut sh.timers else {
        return false;
    };
    let Some(entry) = per_node[key.node.0 - sh.start].get_mut(&key.conn) else {
        return false;
    };
    let slot = &mut entry.pending[key.kind.idx()];
    if slot.is_some_and(|(g, _)| g == key.gen) {
        *slot = None;
    }
    key.gen < entry.latest_gen
}

/// Worker mirror of `schedule_timer`: the supersede decision runs
/// here; the engine mutation is buffered as an op. A superseded timer
/// that fires inside this window (`at < bound`) is already out of the
/// global engine — it is cancelled locally via the `cancelled` set —
/// while one resting beyond the window is cancelled by token at
/// replay.
fn schedule_timer_local(sh: &mut ShardState, at: SimTime, key: TimerKey) {
    let bound = sh.bound;
    let Some(per_node) = &mut sh.timers else {
        if at < bound {
            sh.local.schedule_at(at, WEv::Timer(key));
            sh.ops.push(Op::Local { at });
        } else {
            sh.ops.push(Op::TimerArmPlain { at, key });
        }
        return;
    };
    let entry = per_node[key.node.0 - sh.start].entry(key.conn).or_default();
    if key.gen > entry.latest_gen {
        entry.latest_gen = key.gen;
    }
    for (k, slot) in entry.pending.iter_mut().enumerate() {
        if let Some((g, pat)) = *slot {
            if g < entry.latest_gen {
                *slot = None;
                if pat < bound {
                    let fresh = sh.cancelled.insert((key.node.0, key.conn, g, k));
                    assert!(fresh, "duplicate local timer cancellation");
                    sh.ops.push(Op::Suppress);
                } else {
                    sh.ops.push(Op::TimerCancel { node: key.node.0, conn: key.conn, kind: k });
                }
            }
        }
    }
    if at < bound {
        sh.local.schedule_at(at, WEv::Timer(key));
        sh.ops.push(Op::Local { at });
    } else {
        sh.ops.push(Op::TimerArm { at, key });
    }
    entry.pending[key.kind.idx()] = Some((key.gen, at));
}

/// Worker transliteration of the sequential `drain_work`.
fn drain_work_local(sh: &mut ShardState, now: SimTime) {
    while let Some((i, w)) = sh.work.pop_front() {
        let li = i - sh.start;
        let mut fx = sh.fx_pool.take();
        let mut app = std::mem::take(&mut sh.app_scratch);
        let mut accept: Option<(u64, ClientAccept)> = None;
        {
            let slot = &mut sh.nodes[li];
            let transport_work =
                matches!(w, Work::FrameIn(_) | Work::Timer(_) | Work::TransmitFailed(..));
            if !transport_work {
                if !slot.running && !matches!(w, Work::Start { .. }) {
                    sh.fx_pool.put(fx);
                    sh.app_scratch = app;
                    continue;
                }
                if (slot.frozen || slot.hung) && !matches!(w, Work::SetHung(_) | Work::Start { .. })
                {
                    slot.freezer.push(w);
                    sh.fx_pool.put(fx);
                    sh.app_scratch = app;
                    continue;
                }
            }
            let mut ctx = NodeCtx {
                now,
                cpu: &mut slot.cpu,
                sub: &mut slot.sub,
                interposer: &mut slot.mangler,
                fx: &mut fx,
                app: &mut app,
            };
            match w {
                Work::Client(req) => {
                    let a = slot.press.client_request(&mut ctx, req);
                    accept = Some((req.id, a));
                }
                Work::AppEv(ev) => slot.press.on_app_event(&mut ctx, ev),
                Work::Upcall(u) => {
                    if slot.running && !slot.frozen {
                        if slot.hung {
                            let _ = ctx;
                            slot.freezer.push(Work::Upcall(u));
                        } else {
                            slot.press.on_upcall(&mut ctx, u);
                        }
                    }
                }
                Work::FrameIn(frame) => ctx.sub.frame_arrived(now, frame, ctx.fx),
                Work::Timer(key) => ctx.sub.timer_fired(now, key, ctx.fx),
                Work::TransmitFailed(peer, reason) => {
                    ctx.sub.transmit_failed(now, peer, reason, ctx.fx)
                }
                Work::Start { cold } => {
                    slot.press.start(&mut ctx, cold);
                }
                Work::SetHung(h) => {
                    ctx.sub.set_app_receiving(now, !h, ctx.fx);
                }
            }
        }
        if let Some((req_id, a)) = accept {
            match a {
                ClientAccept::Accepted => {
                    sh.ops.push(Op::ClientAccepted { req_id });
                    if sh.attr_on {
                        sh.ops.push(Op::Attr {
                            node: i,
                            ev: telemetry::AttrEvent::Accepted { req_id },
                        });
                    }
                }
                ClientAccept::Dropped(reason) => {
                    sh.ops.push(Op::ClientConnFailed);
                    if sh.attr_on {
                        let ev = match reason {
                            press::DropReason::DeferOverflow => {
                                telemetry::AttrEvent::DroppedOverflow
                            }
                            press::DropReason::Admission => telemetry::AttrEvent::DroppedBacklog,
                        };
                        sh.ops.push(Op::Attr { node: i, ev });
                    }
                }
            }
        }
        apply_effects_local(sh, now, i, &mut fx, &mut app);
        sh.fx_pool.put(fx);
        app.clear();
        sh.app_scratch = app;
    }
}

/// Worker transliteration of the sequential `apply_effects`: the
/// sender-side fabric phase runs here against the shard's own port
/// and the window-constant flag snapshot; everything global becomes
/// an op.
fn apply_effects_local(
    sh: &mut ShardState,
    now: SimTime,
    i: usize,
    fx: &mut Effects<PressMsg>,
    app: &mut Vec<AppEffect>,
) {
    let li = i - sh.start;
    for e in fx.drain(..) {
        match e {
            Effect::Transmit(frame) => {
                debug_assert_eq!(frame.src.0, i, "transport sent from a foreign node");
                match Fabric::tx_phase(&sh.fabcfg, &sh.flags, &mut sh.tx[li], now, &frame) {
                    TxOutcome::Launched { at_dst_port } => {
                        sh.ops.push(Op::TxFrame { frame, at_dst_port });
                    }
                    TxOutcome::Lost { reason } => {
                        sh.lost += 1;
                        // Mirror of the sequential path: silent (gray)
                        // losses never surface a transport error.
                        if !reason.silent() {
                            sh.work.push_back((i, Work::TransmitFailed(frame.dst, reason)));
                        } else if sh.attr_on {
                            sh.ops.push(Op::Attr { node: i, ev: telemetry::AttrEvent::GrayLoss });
                        }
                    }
                }
            }
            Effect::SetTimer { at, key } => schedule_timer_local(sh, at, key),
            Effect::ChargeCpu(d) => {
                sh.nodes[li].cpu.charge(now, d);
            }
            Effect::Upcall(u) => sh.work.push_back((i, Work::Upcall(u))),
            Effect::Trace(ev) => sh.ops.push(Op::Trace(Box::new(ev))),
            Effect::Attr(ev) => sh.ops.push(Op::Attr { node: i, ev }),
        }
    }
    for a in app.drain(..) {
        let gen = sh.nodes[li].gen;
        match a {
            AppEffect::Schedule { at, ev } => {
                if at < sh.bound {
                    sh.local.schedule_at(at, WEv::App { node: i, gen, ev });
                    sh.ops.push(Op::Local { at });
                } else {
                    sh.ops.push(Op::Sched { at, ev: Ev::App { node: i, gen, ev } });
                }
            }
            AppEffect::ScheduleMonotone { at, ev } => {
                if at < sh.bound {
                    sh.local.schedule_at(at, WEv::App { node: i, gen, ev });
                    sh.ops.push(Op::Local { at });
                } else {
                    sh.ops.push(Op::SchedFifo { at, ev: Ev::App { node: i, gen, ev } });
                }
            }
            AppEffect::Reply { req_id, at } => {
                if at < sh.bound {
                    sh.local.schedule_at(at, WEv::Reply { node: i, gen, req_id });
                    sh.ops.push(Op::Local { at });
                } else {
                    sh.ops.push(Op::Sched { at, ev: Ev::Reply { node: i, gen, req_id } });
                }
            }
            AppEffect::ProcessExit { reason: _ } => kill_process_local(sh, now, i),
        }
    }
    let m = sh.nodes[li].press.members().len();
    if m != sh.last_members[li] {
        sh.last_members[li] = m;
        sh.ops.push(Op::LogMembership { node: i, members: m });
    }
}

/// Worker mirror of `kill_process` for the fail-fast (`ProcessExit`)
/// path — fault-driven kills run in sequential mode.
fn kill_process_local(sh: &mut ShardState, now: SimTime, i: usize) {
    let slot = &mut sh.nodes[i - sh.start];
    if !slot.running {
        return;
    }
    slot.running = false;
    slot.hung = false;
    slot.gen += 1;
    slot.cpu.reset_backlog(now);
    slot.freezer.clear();
    slot.sub.restart(now);
    let gen = slot.gen;
    sh.ops.push(Op::LogProcessExit { node: i });
    let at = now + sh.restart_delay;
    if at < sh.bound {
        sh.local.schedule_at(at, WEv::Restart { node: i, gen });
        sh.ops.push(Op::Local { at });
    } else {
        sh.ops.push(Op::Sched { at, ev: Ev::ProcessRestart { node: i, gen } });
    }
}

// ----------------------------------------------------------------------
// Split / merge
// ----------------------------------------------------------------------

/// Moves the per-node simulation state out of `sim` into shard
/// states: node slots, sender-side fabric ports, flag snapshots, the
/// timer index (tokens stay on the facade), membership watermarks.
fn split(sim: &mut ClusterSim, shard_count: usize, tokens: &mut TokenMap) -> Vec<ShardState> {
    let n = sim.config.press.nodes;
    tokens.clear();
    let mut all_nodes = std::mem::take(&mut sim.nodes).into_iter();
    let mut seq_timers = sim.timers.take().map(Vec::into_iter);
    let mut shards = Vec::with_capacity(shard_count);
    for k in 0..shard_count {
        let start = k * n / shard_count;
        let end = (k + 1) * n / shard_count;
        let timers = seq_timers.as_mut().map(|it| {
            (start..end)
                .map(|i| {
                    let m = it.next().expect("one timer map per node");
                    convert_conn_timers(i, m, tokens)
                })
                .collect()
        });
        shards.push(ShardState {
            start,
            nodes: all_nodes.by_ref().take(end - start).collect(),
            tx: (start..end).map(|i| sim.fabric.take_tx_port(NodeId(i))).collect(),
            flags: sim.fabric.flags(),
            timers,
            cancelled: HashSet::new(),
            last_members: sim.last_members[start..end].to_vec(),
            local: Engine::new(),
            inbox: Vec::new(),
            records: Vec::new(),
            ops: Vec::new(),
            rec_cursor: 0,
            op_cursor: 0,
            work: VecDeque::new(),
            fx_pool: FxPool::default(),
            app_scratch: Vec::new(),
            fabcfg: sim.config.fabric.clone(),
            restart_delay: sim.config.restart_delay,
            bound: SimTime::ZERO,
            lost: 0,
            attr_on: sim.attr.is_some(),
        });
    }
    shards
}

fn convert_conn_timers(
    node: usize,
    m: BTreeMap<u64, ConnTimers>,
    tokens: &mut TokenMap,
) -> BTreeMap<u64, WTimers> {
    m.into_iter()
        .map(|(conn, ct)| {
            let mut wt = WTimers { latest_gen: ct.latest_gen, pending: Default::default() };
            for (k, p) in ct.pending.iter().enumerate() {
                if let Some((g, token, at)) = *p {
                    wt.pending[k] = Some((g, at));
                    tokens.insert((node, conn, k), token);
                }
            }
            (conn, wt)
        })
        .collect()
}

/// Moves everything back into `sim`, reconstructing the sequential
/// timer index from the workers' gens and the facade's token map. A
/// live pending timer always rests in the global engine (in-window
/// timers resolve within their window), so its token is always here.
fn merge(sim: &mut ClusterSim, shards: Vec<ShardState>, tokens: &TokenMap) {
    let n = sim.config.press.nodes;
    let mut nodes = Vec::with_capacity(n);
    let mut seq_timers: Option<Vec<BTreeMap<u64, ConnTimers>>> =
        shards.first().and_then(|s| s.timers.as_ref().map(|_| Vec::with_capacity(n)));
    for sh in shards {
        assert_eq!(sh.rec_cursor, sh.records.len(), "merge with unconsumed records");
        assert_eq!(sh.op_cursor, sh.ops.len(), "merge with unapplied ops");
        assert!(sh.cancelled.is_empty(), "merge with a leaked local cancellation");
        assert_eq!(sh.local.pending(), 0, "merge with events still in a worker engine");
        let start = sh.start;
        sim.fabric.note_lost(sh.lost);
        for (li, port) in sh.tx.into_iter().enumerate() {
            sim.fabric.restore_tx_port(NodeId(start + li), port);
        }
        for (li, m) in sh.last_members.into_iter().enumerate() {
            sim.last_members[start + li] = m;
        }
        if let Some(out) = &mut seq_timers {
            for (li, m) in sh.timers.expect("timer index vanished mid-run").into_iter().enumerate()
            {
                let node = start + li;
                out.push(
                    m.into_iter()
                        .map(|(conn, w)| {
                            let mut ct = ConnTimers {
                                latest_gen: w.latest_gen,
                                pending: Default::default(),
                            };
                            for (k, p) in w.pending.iter().enumerate() {
                                if let Some((g, at)) = *p {
                                    let token = *tokens
                                        .get(&(node, conn, k))
                                        .expect("pending timer lost its engine token");
                                    ct.pending[k] = Some((g, token, at));
                                }
                            }
                            (conn, ct)
                        })
                        .collect(),
                );
            }
        }
        nodes.extend(sh.nodes);
    }
    sim.nodes = nodes;
    sim.timers = seq_timers;
}

fn take_all(locks: &[Mutex<ShardState>]) -> Vec<ShardState> {
    locks
        .iter()
        .map(|l| std::mem::replace(&mut *l.lock().expect("shard mutex poisoned"), ShardState::husk()))
        .collect()
}

fn put_all(locks: &[Mutex<ShardState>], shards: Vec<ShardState>) {
    for (l, s) in locks.iter().zip(shards) {
        *l.lock().expect("shard mutex poisoned") = s;
    }
}

/// One-time warning when `--sim-threads > 1` meets a zero-lookahead
/// fabric (no safe window exists; the sequential loop runs instead).
pub(super) fn warn_zero_lookahead() {
    static WARNED: AtomicBool = AtomicBool::new(false);
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "sim-threads: fabric lookahead (link + switch latency) is zero; \
             no conservative window exists — running sequentially"
        );
    }
}
