//! Phase 1: measuring server behaviour under single-fault loads (§5).
//!
//! Each experiment drives one PRESS version at its near-peak operating
//! point, injects one fault (plus its recovery), and produces the
//! throughput timeline, the stage markers derived from the run log, and
//! the extracted [`SevenStage`] parameters.

use mendosus::{Campaign, FaultKind, FaultSpec};
use performability::stages::{stabilization_time, SevenStage, Stage, StageMarkers};
use press::PressVersion;
use simnet::fabric::NodeId;
use simnet::{SimDuration, SimTime, TimeSeries};

use crate::cluster::{ClusterConfig, ClusterReport, ClusterSim, ProcEvent};

/// One single-fault experiment.
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// The fault to inject (including its target and duration).
    pub fault: FaultSpec,
    /// Total simulated run length.
    pub run: SimDuration,
}

impl FaultScenario {
    /// The paper's standard profile: steady state for 30 s, fault for
    /// 90 s, then observe recovery until 240 s.
    pub fn standard(kind: FaultKind, node: NodeId) -> Self {
        let at = SimTime::from_secs(30);
        let fault = if kind.is_one_shot() {
            FaultSpec::bad_param(kind, node, at, transport::MsgClass::FileData, 20)
        } else {
            FaultSpec::transient(kind, node, at, SimDuration::from_secs(90))
        };
        FaultScenario {
            fault,
            run: SimDuration::from_secs(240),
        }
    }

    /// Same profile on the small test-bed time scale (for tests).
    pub fn quick(kind: FaultKind, node: NodeId) -> Self {
        let at = SimTime::from_secs(10);
        let fault = if kind.is_one_shot() {
            FaultSpec::bad_param(kind, node, at, transport::MsgClass::FileData, 20)
        } else {
            FaultSpec::transient(kind, node, at, SimDuration::from_secs(30))
        };
        FaultScenario {
            fault,
            run: SimDuration::from_secs(90),
        }
    }
}

/// Everything a phase-1 run produced.
#[derive(Debug, Clone)]
pub struct FaultRunResult {
    /// The version measured.
    pub version: PressVersion,
    /// The fault injected.
    pub fault: FaultSpec,
    /// Requests-per-second timeline (1 s buckets).
    pub series: TimeSeries,
    /// Full run report.
    pub report: ClusterReport,
    /// Normal-operation throughput measured before the fault.
    pub tn: f64,
    /// Stage boundaries derived from the run log.
    pub markers: StageMarkers,
    /// The extracted 7-stage parameters.
    pub stages: SevenStage,
    /// Whether the run ended splintered or with processes down — i.e.
    /// an operator reset would be required to return to normal.
    pub needs_operator_reset: bool,
}

impl FaultRunResult {
    /// Mean throughput over the fault period (diagnostics).
    pub fn during_fault(&self) -> f64 {
        let t0 = self.fault.at.as_secs_f64();
        let t1 = self
            .fault
            .recovery_at()
            .unwrap_or(SimTime::MAX)
            .as_secs_f64()
            .min(self.series.points.last().map_or(t0, |p| p.0));
        self.series.mean_between(t0, t1).unwrap_or(0.0)
    }
}

/// Runs one single-fault experiment.
pub fn run_fault_experiment(
    config: ClusterConfig,
    scenario: FaultScenario,
    seed: u64,
) -> FaultRunResult {
    run_fault_experiment_inner(config, scenario, seed).0
}

/// Runs one single-fault experiment with structured tracing on and
/// returns the run's [`telemetry::RunTrace`] alongside the result: all
/// emitted events, the derived stage A–E spans on the
/// [`telemetry::TID_STAGES`] lane, named lanes for every node, and the
/// final metrics snapshot.
pub fn run_fault_experiment_traced(
    mut config: ClusterConfig,
    scenario: FaultScenario,
    seed: u64,
) -> (FaultRunResult, telemetry::RunTrace) {
    if !config.trace.enabled {
        config.trace = telemetry::TraceConfig::STANDARD;
    }
    let nodes = config.press.nodes;
    let (result, mut sim) = run_fault_experiment_inner(config, scenario, seed);
    let mut events = sim.take_trace();
    events.extend(stage_spans(&result));
    let metrics = sim.metrics_snapshot();
    let mut threads: Vec<(u32, String)> =
        (0..nodes).map(|i| (i as u32, format!("node{i}"))).collect();
    threads.push((telemetry::TID_CLUSTER, "cluster".to_string()));
    threads.push((telemetry::TID_CLIENTS, "clients".to_string()));
    threads.push((telemetry::TID_STAGES, "stages".to_string()));
    let label = format!(
        "{} {} node{} seed{}",
        result.version, result.fault.kind, result.fault.node.0, seed
    );
    (
        result,
        telemetry::RunTrace {
            label,
            threads,
            events,
            metrics,
        },
    )
}

/// Derives the seven-stage spans (the ones this run exhibits) from the
/// markers, so the trace shows the A–G structure directly above the
/// per-node lanes. Stage F/G (operator reset) never occur inside a
/// single run.
fn stage_spans(result: &FaultRunResult) -> Vec<telemetry::TraceEvent> {
    const NAMES: [&str; 7] = [
        "stage.A", "stage.B", "stage.C", "stage.D", "stage.E", "stage.F", "stage.G",
    ];
    let to_time = |s: f64| SimTime::from_nanos((s * 1e9) as u64);
    result
        .markers
        .intervals()
        .into_iter()
        .filter(|&(_, t0, t1)| t1 > t0)
        .map(|(stage, t0, t1)| {
            let name = NAMES[Stage::ALL.iter().position(|s| *s == stage).expect("stage")];
            telemetry::TraceEvent::span(
                name,
                "stage",
                telemetry::TID_STAGES,
                to_time(t0),
                to_time(t1).saturating_since(to_time(t0)),
            )
            .arg_u64(
                "throughput_rps",
                result.stages.get(stage).throughput.max(0.0) as u64,
            )
            .arg_u64("tn_rps", result.tn.max(0.0) as u64)
        })
        .collect()
}

/// Runs one single-fault experiment with causal attribution on and
/// returns the run's [`telemetry::AttrReport`] alongside the result:
/// every lost or deadline-missing request classified into exactly one
/// root cause, conservation-checkable against the run's client-pool
/// totals ([`attr_totals`]).
pub fn run_fault_experiment_attributed(
    mut config: ClusterConfig,
    scenario: FaultScenario,
    seed: u64,
) -> (FaultRunResult, telemetry::AttrReport) {
    config.attribution = true;
    let (result, mut sim) = run_fault_experiment_inner(config, scenario, seed);
    let attr = sim.take_attr().expect("attribution enabled");
    (result, attr)
}

/// The client-pool totals an attribution report is conserved against:
/// the scored attempts/successes/failures and the run length.
pub fn attr_totals(result: &FaultRunResult) -> telemetry::RunTotals {
    let a = &result.report.availability;
    telemetry::RunTotals {
        attempts: a.attempts,
        successes: a.successes,
        failures: a.failures(),
        duration_s: result.markers.end,
    }
}

/// The run's non-empty stage spans as `(name, t0, t1)` — the stage axis
/// of the attribution loss tables.
pub fn attr_stage_spans(result: &FaultRunResult) -> Vec<(String, f64, f64)> {
    result
        .markers
        .intervals()
        .into_iter()
        .filter(|&(_, t0, t1)| t1 > t0)
        .map(|(stage, t0, t1)| (stage.to_string(), t0, t1))
        .collect()
}

fn run_fault_experiment_inner(
    config: ClusterConfig,
    scenario: FaultScenario,
    seed: u64,
) -> (FaultRunResult, ClusterSim) {
    let version = config.version;
    let nodes = config.press.nodes;
    let fault = scenario.fault.clone();
    let campaign = Campaign::single(fault.clone());
    let mut sim = ClusterSim::with_campaign(config, campaign, seed);
    let end = SimTime::ZERO + scenario.run;
    sim.run_until(end);
    let report = sim.report();
    let series = report.throughput.clone();

    let fault_s = fault.at.as_secs_f64();
    let end_s = end.as_secs_f64();
    // Normal throughput: the pre-fault steady state, skipping the first
    // couple of seconds of client ramp.
    let tn = series.mean_between(2.0, fault_s).unwrap_or(0.0).max(1.0);

    // Detection: the first membership change or process exit after the
    // injection.
    let detected = detection_time(&report, &fault, fault_s);

    // Component repair: when the faulty component (and, for process
    // faults, its process) is back.
    let recovered = recovery_time(&report, &fault, end_s);

    // Stabilization boundaries from the measured curve.
    let stabilized = detected.and_then(|d| {
        let target = series
            .mean_between((recovered - 10.0).max(d), recovered)
            .unwrap_or(tn);
        stabilization_time(&series, d, target, 0.15, 3).filter(|t| *t < recovered)
    });
    let tail_target = series
        .mean_between((end_s - 15.0).max(recovered), end_s)
        .unwrap_or(tn);
    let restabilized = stabilization_time(&series, recovered, tail_target, 0.15, 3)
        .filter(|t| *t < end_s)
        .or(Some(recovered));

    let needs_operator_reset = !report.fully_recovered(nodes);
    let markers = StageMarkers {
        fault: fault_s,
        detected,
        stabilized,
        recovered,
        restabilized,
        reset: None,
        reset_done: None,
        end: end_s,
    };
    let mut stages = SevenStage::from_series(&series, &markers, tn);
    // Stage E at effectively normal throughput is not a stage at all.
    let e = stages.get(Stage::E);
    if !needs_operator_reset && e.throughput >= 0.95 * tn {
        stages.set(Stage::E, 0.0, 0.0);
    }
    (
        FaultRunResult {
            version,
            fault,
            series,
            report,
            tn,
            markers,
            stages,
            needs_operator_reset,
        },
        sim,
    )
}

fn detection_time(report: &ClusterReport, _fault: &FaultSpec, fault_s: f64) -> Option<f64> {
    let m = report
        .membership_log
        .iter()
        .map(|(t, _, _)| t.as_secs_f64())
        .find(|t| *t >= fault_s);
    let p = report
        .process_log
        .iter()
        .filter(|(_, _, e)| *e == ProcEvent::Exit)
        .map(|(t, _, _)| t.as_secs_f64())
        .find(|t| *t >= fault_s);
    match (m, p) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

fn recovery_time(report: &ClusterReport, fault: &FaultSpec, end_s: f64) -> f64 {
    let nominal = fault.recovery_at().map_or(end_s, |t| t.as_secs_f64());
    match fault.kind {
        FaultKind::NodeCrash | FaultKind::AppCrash => {
            // Repair completes when the process is running again.
            report
                .process_log
                .iter()
                .filter(|(t, _, e)| *e == ProcEvent::Restart && t.as_secs_f64() >= nominal)
                .map(|(t, _, _)| t.as_secs_f64())
                .next()
                .unwrap_or(nominal)
        }
        k if k.is_one_shot() => {
            // Bad parameters: repair is the restart of whichever
            // process(es) fail-fasted; if none did (TCP EFAULT), the
            // "component" recovers instantly.
            report
                .process_log
                .iter()
                .filter(|(t, _, e)| *e == ProcEvent::Restart && t.as_secs_f64() >= nominal)
                .map(|(t, _, _)| t.as_secs_f64())
                .next_back()
                .unwrap_or(fault.at.as_secs_f64())
        }
        _ => nominal,
    }
}

/// Measures the cold-start warm-up transient of a version: boots with
/// cold caches under load and reports `(duration, mean throughput)` of
/// the climb to steady state — the stage G parameters after an operator
/// reset.
pub fn measure_warmup(mut config: ClusterConfig, run: SimDuration, seed: u64) -> (f64, f64) {
    config.prewarm = false;
    let mut sim = ClusterSim::new(config, seed);
    let end = SimTime::ZERO + run;
    sim.run_until(end);
    let report = sim.report();
    let end_s = end.as_secs_f64();
    let target = report
        .throughput
        .mean_between(end_s * 0.8, end_s)
        .unwrap_or(0.0);
    let stable =
        stabilization_time(&report.throughput, 0.0, target, 0.1, 5).unwrap_or(end_s);
    let mean = report.throughput.mean_between(0.0, stable).unwrap_or(0.0);
    (stable, mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(version: PressVersion) -> ClusterConfig {
        ClusterConfig::small(version)
    }

    /// Helper running the quick profile.
    fn quick(version: PressVersion, kind: FaultKind, node: usize) -> FaultRunResult {
        run_fault_experiment(
            small(version),
            FaultScenario::quick(kind, NodeId(node)),
            11,
        )
    }

    #[test]
    fn via_detects_link_fault_fast_and_splinters() {
        let r = quick(PressVersion::Via5, FaultKind::LinkDown, 3);
        let detected = r.markers.detected.expect("VIA must detect");
        assert!(
            detected - r.markers.fault < 2.0,
            "VIA detection took {}s",
            detected - r.markers.fault
        );
        // No re-merge after a link fault: PRESS assumes nodes fail, not
        // links (§5.2).
        assert!(r.needs_operator_reset);
        // The 3-node side keeps serving during the fault.
        assert!(r.during_fault() > 0.4 * r.tn, "during fault {}", r.during_fault());
    }

    #[test]
    fn tcp_press_stalls_through_a_link_fault_then_recovers() {
        let r = quick(PressVersion::Tcp, FaultKind::LinkDown, 3);
        // No detection: TCP keeps retrying (the 90s fault is far below
        // the ~13 minute abort).
        assert!(r.markers.detected.is_none(), "markers {:?}", r.markers);
        // Throughput collapses during the fault...
        assert!(
            r.during_fault() < 0.25 * r.tn,
            "during fault {} vs tn {}",
            r.during_fault(),
            r.tn
        );
        // ...and returns to normal after, with no splinter.
        assert!(!r.needs_operator_reset);
        let tail = r
            .series
            .mean_between(r.markers.end - 10.0, r.markers.end)
            .unwrap();
        assert!(tail > 0.8 * r.tn, "tail {} vs tn {}", tail, r.tn);
    }

    #[test]
    fn tcp_hb_detects_link_fault_at_the_heartbeat_threshold() {
        let r = quick(PressVersion::TcpHb, FaultKind::LinkDown, 3);
        let detected = r.markers.detected.expect("heartbeats must detect");
        let lag = detected - r.markers.fault;
        assert!(
            (10.0..25.0).contains(&lag),
            "heartbeat detection took {lag}s (threshold is 15s)"
        );
        assert!(r.needs_operator_reset, "HB version splinters and stays split");
    }

    #[test]
    fn node_crash_recovers_fully_on_hb_and_via_but_not_tcp() {
        let hb = quick(PressVersion::TcpHb, FaultKind::NodeCrash, 3);
        assert!(!hb.needs_operator_reset, "HB version must reintegrate");
        let via = quick(PressVersion::Via3, FaultKind::NodeCrash, 3);
        assert!(!via.needs_operator_reset, "VIA version must reintegrate");
        let tcp = quick(PressVersion::Tcp, FaultKind::NodeCrash, 3);
        assert!(
            tcp.needs_operator_reset,
            "TCP-PRESS rejoin must be disregarded (members {:?})",
            tcp.report.final_members
        );
    }

    #[test]
    fn warmup_measures_a_cold_start_transient() {
        let (dur, mean) = measure_warmup(small(PressVersion::Via0), SimDuration::from_secs(60), 5);
        assert!(dur > 0.0 && dur <= 60.0);
        assert!(mean >= 0.0);
    }
}
