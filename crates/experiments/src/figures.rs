//! One entry point per table and figure of the paper.
//!
//! Each function returns the regenerated content as renderable text
//! (plus structured data where useful). The `repro` binary in the
//! `bench` crate maps subcommands onto these.

use mendosus::FaultKind;
use performability::fault_load::{paper_fault_load, FaultEntry, ModelFault, DAY, MONTH, WEEK};
use performability::metric::IDEAL_AVAILABILITY;
use performability::sensitivity::{crossover_multiplier, performability_at};
use press::PressVersion;
use simnet::fabric::NodeId;
use simnet::SimTime;

use crate::cluster::{ClusterConfig, ClusterSim};
use crate::phase1::{
    attr_stage_spans, attr_totals, run_fault_experiment, run_fault_experiment_attributed,
    run_fault_experiment_traced, FaultRunResult, FaultScenario,
};
use crate::phase2::{behaviors_for_load, evaluate, version_profiles, RunScale, VersionProfile};
use crate::render::{bar, sparkline, table};
use crate::runner::run_indexed;

/// Default seed used by the repro harness.
pub const REPRO_SEED: u64 = 2003;

/// Builds the per-version profiles shared by Figures 6–10 and the
/// crossover analysis. Expensive at paper scale — `jobs > 1` fans the
/// 60 underlying simulations out across workers with bit-identical
/// results (every run takes an explicit seed).
pub fn build_profiles(scale: RunScale, seed: u64, jobs: usize) -> Vec<VersionProfile> {
    version_profiles(&PressVersion::ALL, scale, seed, jobs)
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Table 1: near-peak throughput of the five versions, one independent
/// saturation run each (fanned across `jobs` workers).
pub fn table1(scale: RunScale, seed: u64, jobs: usize) -> (String, Vec<(PressVersion, f64)>) {
    let data = table1_data(scale, seed, jobs, false);
    let text = table1_text(&data);
    (text, data.into_iter().map(|(v, t, _)| (v, t)).collect())
}

/// Table 1 plus each version's deterministic metrics summary (counters,
/// gauges — including the `client.latency_p50/p95/p99_ms` percentiles —
/// and histograms), from the same single pass of saturation runs.
pub fn table1_metrics(scale: RunScale, seed: u64, jobs: usize) -> String {
    let data = table1_data(scale, seed, jobs, true);
    let mut out = table1_text(&data);
    for (_, _, metrics) in &data {
        out.push('\n');
        out.push_str(metrics.as_deref().expect("metrics captured"));
    }
    out
}

fn table1_data(
    scale: RunScale,
    seed: u64,
    jobs: usize,
    with_metrics: bool,
) -> Vec<(PressVersion, f64, Option<String>)> {
    let (measure_until, window) = match scale {
        RunScale::Paper => (40u64, (10.0, 40.0)),
        RunScale::Small => (15u64, (5.0, 15.0)),
    };
    run_indexed(jobs, PressVersion::ALL.to_vec(), |_i, v| {
        let config = match scale {
            RunScale::Paper => ClusterConfig::paper_defaults(v),
            RunScale::Small => {
                let mut c = ClusterConfig::small(v);
                c.rate = 2_500.0; // saturate the shrunk test-bed
                c
            }
        };
        let mut sim = ClusterSim::new(config, seed);
        sim.run_until(SimTime::from_secs(measure_until));
        let throughput = sim.mean_throughput(window.0, window.1);
        let metrics = with_metrics.then(|| {
            sim.metrics_snapshot()
                .text_summary(&format!("table1 {} seed{seed}", v.name()))
        });
        (v, throughput, metrics)
    })
}

fn table1_text(data: &[(PressVersion, f64, Option<String>)]) -> String {
    let mut rows = Vec::new();
    for (v, t, _) in data {
        let (v, t) = (*v, *t);
        rows.push(vec![
            v.name().to_string(),
            format!("{t:.0}"),
            format!("{:.0}", v.paper_throughput()),
            format!("{:+.1}%", 100.0 * (t - v.paper_throughput()) / v.paper_throughput()),
            v.main_features().to_string(),
        ]);
    }
    format!(
        "Table 1 — near-peak throughput of the PRESS versions (4 nodes)\n\n{}",
        table(
            &["version", "measured req/s", "paper req/s", "delta", "main features"],
            &rows
        )
    )
}

/// Table 2: the fault catalogue.
pub fn table2() -> String {
    let rows: Vec<Vec<String>> = FaultKind::ALL
        .iter()
        .map(|k| {
            vec![
                k.category().to_string(),
                k.name().to_string(),
                k.example_sources().to_string(),
                k.mechanism().to_string(),
            ]
        })
        .collect();
    format!(
        "Table 2 — faults injected and their sources\n\n{}",
        table(&["category", "fault", "example error sources", "injection mechanism"], &rows)
    )
}

/// Table 3: the fault load (MTTF/MTTR), at a given application fault
/// rate.
pub fn table3(app_mttf: f64) -> String {
    let rows: Vec<Vec<String>> = paper_fault_load(app_mttf)
        .iter()
        .map(|e| {
            vec![
                e.fault.name().to_string(),
                human_secs(e.mttf),
                human_secs(e.mttr),
                e.instances.to_string(),
            ]
        })
        .collect();
    format!(
        "Table 3 — fault loads (application MTTF = {})\n\n{}",
        human_secs(app_mttf),
        table(&["fault", "MTTF", "MTTR", "instances"], &rows)
    )
}

fn human_secs(s: f64) -> String {
    if s >= 364.0 * DAY {
        format!("{:.0} year", s / (365.0 * DAY))
    } else if s >= 59.0 * DAY {
        format!("{:.0} months", s / MONTH)
    } else if s >= 13.9 * DAY {
        format!("{:.0} weeks", s / WEEK)
    } else if s >= DAY {
        format!("{:.0} days", s / DAY)
    } else if s >= 3600.0 {
        format!("{:.0} hour", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.0} minutes", s / 60.0)
    } else {
        format!("{s:.0} s")
    }
}

// ---------------------------------------------------------------------
// Timeline figures (2-5)
// ---------------------------------------------------------------------

fn timeline_run(
    version: PressVersion,
    kind: FaultKind,
    node: NodeId,
    scale: RunScale,
    seed: u64,
) -> FaultRunResult {
    let config = match scale {
        RunScale::Paper => ClusterConfig::fault_experiment(version),
        RunScale::Small => ClusterConfig::small(version),
    };
    let scenario = match scale {
        RunScale::Paper => FaultScenario::standard(kind, node),
        RunScale::Small => FaultScenario::quick(kind, node),
    };
    run_fault_experiment(config, scenario, seed)
}

/// Renders one run as a titled sparkline plus its stage extraction.
pub fn render_timeline(r: &FaultRunResult) -> String {
    let width = 72;
    let max = r.tn * 1.2;
    let line = sparkline(&r.series, width, max);
    let span = r.markers.end.max(1e-9);
    let col = |t: f64| ((t / span) * (width as f64 - 1.0)).round() as usize;
    let mut marks = vec![' '; width];
    marks[col(r.markers.fault)] = 'F';
    if let Some(rec) = r.fault.recovery_at() {
        marks[col(rec.as_secs_f64())] = 'R';
    }
    let marks: String = marks.into_iter().collect();
    let mut out = format!(
        "{} under {} (Tn = {:.0} req/s, fault at F, component recovery at R)\n  |{line}|\n  |{marks}|\n",
        r.version.name(),
        r.fault.kind.name(),
        r.tn,
    );
    let mut rows = Vec::new();
    for (stage, p) in r.stages.iter() {
        if p.duration > 0.0 {
            rows.push(vec![
                stage.to_string(),
                format!("{:.1} s", p.duration),
                format!("{:.0} req/s", p.throughput),
                format!("{:.0}% of Tn", 100.0 * p.throughput / r.tn),
            ]);
        }
    }
    if rows.is_empty() {
        out.push_str("  (no degraded stages: the fault had no visible effect)\n");
    } else {
        out.push_str(&indent(&table(&["stage", "duration", "throughput", "level"], &rows), 2));
    }
    out.push_str(&format!(
        "  detection: {}; outcome: {}\n",
        match r.markers.detected {
            Some(d) => format!("{:.1} s after injection", d - r.markers.fault),
            None => "never (rode the fault out)".to_string(),
        },
        if r.needs_operator_reset {
            "cluster left splintered/degraded — operator reset required"
        } else {
            "returned to normal operation"
        }
    ));
    let lat = &r.report.latency;
    if lat.count() > 0 {
        out.push_str(&format!(
            "  response time over the run: p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms\n",
            lat.quantile(0.50) * 1e3,
            lat.quantile(0.95) * 1e3,
            lat.quantile(0.99) * 1e3,
        ));
    }
    out
}

fn indent(s: &str, n: usize) -> String {
    let pad = " ".repeat(n);
    s.lines().map(|l| format!("{pad}{l}\n")).collect()
}

/// A timeline figure's header, `(version, fault)` run list, and
/// footnote.
type TimelineSpec = (&'static str, Vec<(PressVersion, FaultKind)>, &'static str);

/// The runs behind each timeline figure (`fig2`–`fig5`), with the
/// figure's header and footnote. `None` for non-timeline targets.
fn timeline_spec(target: &str) -> Option<TimelineSpec> {
    match target {
        "fig2" => Some((
            "Figure 2 — transient link failure (intra-cluster link of node 3)",
            [PressVersion::Tcp, PressVersion::TcpHb, PressVersion::Via5]
                .map(|v| (v, FaultKind::LinkDown))
                .to_vec(),
            "(VIA-PRESS-0 and VIA-PRESS-3 behave essentially like VIA-PRESS-5, as in the paper.)\n",
        )),
        "fig3" => Some((
            "Figure 3 — node crash (hard reboot of node 3)",
            [PressVersion::Tcp, PressVersion::TcpHb, PressVersion::Via5]
                .map(|v| (v, FaultKind::NodeCrash))
                .to_vec(),
            "",
        )),
        "fig4" => Some((
            "Figure 4 — memory exhaustion (kernel allocation for TCP; pinnable memory for VIA-5)",
            vec![
                (PressVersion::Tcp, FaultKind::KernelAllocFail),
                (PressVersion::TcpHb, FaultKind::KernelAllocFail),
                (PressVersion::Via0, FaultKind::MemPinFail),
                (PressVersion::Via5, FaultKind::MemPinFail),
            ],
            "(VIA versions pre-allocate, so kernel allocation faults do not touch them;\n only the zero-copy VIA-PRESS-5 is exposed to pinning exhaustion.)\n",
        )),
        "fig5" => Some((
            "Figure 5 — NULL data pointer passed to a file-data send on node 3",
            [PressVersion::Tcp, PressVersion::Via0, PressVersion::Via5]
                .map(|v| (v, FaultKind::BadParamNull))
                .to_vec(),
            "",
        )),
        _ => None,
    }
}

/// Runs one timeline figure (`fig2`–`fig5`) and returns both its
/// rendered text and the underlying runs in task order — the HTML
/// report generator consumes the runs so `--report` never repeats a
/// simulation. Output is byte-identical for any `jobs`. `None` when
/// `target` is not a timeline figure.
pub fn timeline_results(
    target: &str,
    scale: RunScale,
    seed: u64,
    jobs: usize,
) -> Option<(String, Vec<FaultRunResult>)> {
    let (header, runs, footer) = timeline_spec(target)?;
    let results = run_indexed(jobs, runs, |_i, (v, kind)| {
        timeline_run(v, kind, NodeId(3), scale, seed)
    });
    let mut out = format!("{header}\n\n");
    for r in &results {
        out.push_str(&render_timeline(r));
        out.push('\n');
    }
    out.push_str(footer);
    Some((out, results))
}

fn timeline_figure_text(target: &str, scale: RunScale, seed: u64, jobs: usize) -> String {
    timeline_results(target, scale, seed, jobs)
        .expect("known timeline target")
        .0
}

/// Traced variant of the timeline figures (`fig2`–`fig5`): the same
/// rendered text, plus one [`telemetry::RunTrace`] per underlying run,
/// in task order — so the bundle is byte-identical for any `jobs`.
/// `None` when `target` has no traced timeline.
pub fn traced_timeline(
    target: &str,
    scale: RunScale,
    seed: u64,
    jobs: usize,
) -> Option<(String, Vec<telemetry::RunTrace>)> {
    let (header, runs, footer) = timeline_spec(target)?;
    let results = run_indexed(jobs, runs, |_i, (v, kind)| {
        let config = match scale {
            RunScale::Paper => ClusterConfig::fault_experiment(v),
            RunScale::Small => ClusterConfig::small(v),
        };
        let scenario = match scale {
            RunScale::Paper => FaultScenario::standard(kind, NodeId(3)),
            RunScale::Small => FaultScenario::quick(kind, NodeId(3)),
        };
        run_fault_experiment_traced(config, scenario, seed)
    });
    let mut out = format!("{header}\n\n");
    let mut traces = Vec::new();
    for (r, t) in results {
        out.push_str(&render_timeline(&r));
        out.push('\n');
        traces.push(t);
    }
    out.push_str(footer);
    Some((out, traces))
}

/// Attributed variant of the timeline figures (`fig2`–`fig5`): the
/// figure text with each run followed by its root-cause attribution
/// section (Pareto table, conservation verdict, losses by stage,
/// critical-path percentiles), plus the `(result, report)` pairs in
/// task order for the HTML report. Byte-identical for any `jobs` ×
/// `sim_threads`. `None` when `target` is not a timeline figure.
pub fn attributed_timeline(
    target: &str,
    scale: RunScale,
    seed: u64,
    jobs: usize,
) -> Option<(String, Vec<(FaultRunResult, telemetry::AttrReport)>)> {
    let (header, runs, footer) = timeline_spec(target)?;
    let results = run_indexed(jobs, runs, |_i, (v, kind)| {
        let config = match scale {
            RunScale::Paper => ClusterConfig::fault_experiment(v),
            RunScale::Small => ClusterConfig::small(v),
        };
        let scenario = match scale {
            RunScale::Paper => FaultScenario::standard(kind, NodeId(3)),
            RunScale::Small => FaultScenario::quick(kind, NodeId(3)),
        };
        run_fault_experiment_attributed(config, scenario, seed)
    });
    let mut out = format!("{header}\n\n");
    for (r, attr) in &results {
        out.push_str(&render_timeline(r));
        out.push('\n');
        let label = format!(
            "{} under {} (seed {seed})",
            r.version.name(),
            r.fault.kind.name()
        );
        out.push_str(&attr.render_text(&label, &attr_totals(r), &attr_stage_spans(r)));
        out.push('\n');
    }
    out.push_str(footer);
    Some((out, results))
}

/// Figure 2: throughput under a transient link failure.
pub fn fig2(scale: RunScale, seed: u64, jobs: usize) -> String {
    timeline_figure_text("fig2", scale, seed, jobs)
}

/// Figure 3: throughput under a node crash.
pub fn fig3(scale: RunScale, seed: u64, jobs: usize) -> String {
    timeline_figure_text("fig3", scale, seed, jobs)
}

/// Figure 4: kernel memory exhaustion (TCP versions) and pinnable
/// memory exhaustion (VIA-PRESS-5).
pub fn fig4(scale: RunScale, seed: u64, jobs: usize) -> String {
    timeline_figure_text("fig4", scale, seed, jobs)
}

/// Figure 5: NULL pointer passed to the send API.
pub fn fig5(scale: RunScale, seed: u64, jobs: usize) -> String {
    timeline_figure_text("fig5", scale, seed, jobs)
}

// ---------------------------------------------------------------------
// Figures 6-10 and the crossover (phase 2)
// ---------------------------------------------------------------------

fn breakdown_by_category(breakdown: &[(FaultEntry, f64)]) -> Vec<(&'static str, f64)> {
    let cat = |f: ModelFault| match f {
        ModelFault::LinkDown | ModelFault::SwitchDown => "network",
        ModelFault::NodeCrash | ModelFault::NodeFreeze => "node",
        ModelFault::MemPin | ModelFault::MemAlloc => "memory",
        ModelFault::ProcessCrash | ModelFault::ViaPacketDrop | ModelFault::ViaExtraBug => "crash",
        ModelFault::ProcessHang => "hang",
        ModelFault::BadNull | ModelFault::BadOffPtr | ModelFault::BadOffSize => "bad-param",
        ModelFault::ViaSystemCrash => "network",
    };
    let mut cats: Vec<(&'static str, f64)> = vec![
        ("network", 0.0),
        ("node", 0.0),
        ("memory", 0.0),
        ("crash", 0.0),
        ("hang", 0.0),
        ("bad-param", 0.0),
    ];
    for (e, u) in breakdown {
        let c = cat(e.fault);
        if let Some(slot) = cats.iter_mut().find(|(name, _)| *name == c) {
            slot.1 += u;
        }
    }
    cats
}

/// Figure 6: unavailability (with per-category contributions) and
/// performability at application fault rates of 1/day and 1/month.
pub fn fig6(profiles: &[VersionProfile]) -> String {
    let mut out = String::from(
        "Figure 6 — modeled (a) unavailability and (b) performability\n\
         (per version: left bar = app fault rate 1/day, right bar = 1/month)\n\n",
    );
    let mut rows_u = Vec::new();
    let mut rows_p = Vec::new();
    let mut max_p: f64 = 0.0;
    let mut results = Vec::new();
    for p in profiles {
        for (label, mttf) in [("1/day", DAY), ("1/month", MONTH)] {
            let r = evaluate(p, &paper_fault_load(mttf));
            max_p = max_p.max(r.performability);
            results.push((p.version, label, r));
        }
    }
    for (version, label, r) in &results {
        let cats = breakdown_by_category(&r.breakdown);
        let detail = cats
            .iter()
            .filter(|(_, u)| *u > 1e-9)
            .map(|(c, u)| format!("{c} {:.0}ppm", u * 1e6))
            .collect::<Vec<_>>()
            .join(", ");
        rows_u.push(vec![
            version.name().to_string(),
            label.to_string(),
            format!("{:.4}%", r.unavailability * 100.0),
            format!("{:.5}", r.availability),
            detail,
        ]);
        rows_p.push(vec![
            version.name().to_string(),
            label.to_string(),
            format!("{:.0}", r.performability),
            bar(r.performability, max_p, 36),
        ]);
    }
    out.push_str("(a) unavailability\n");
    out.push_str(&table(
        &["version", "app rate", "unavailability", "AA", "contributions"],
        &rows_u,
    ));
    out.push_str("\n(b) performability\n");
    out.push_str(&table(&["version", "app rate", "P", ""], &rows_p));
    out
}

fn via_extra(fault: ModelFault, mttf: f64) -> FaultEntry {
    // Substrate system crashes are modeled as switch crashes (§6.3), so
    // they inherit the switch's repair time from Table 3 (1 hour); the
    // process-level classes repair like application faults (3 minutes).
    let (mttr, instances) = if fault == ModelFault::ViaSystemCrash {
        (3_600.0, 1)
    } else {
        (180.0, 4)
    };
    FaultEntry {
        fault,
        mttf,
        mttr,
        instances,
    }
}

fn sensitivity_figure(
    title: &str,
    profiles: &[VersionProfile],
    base_app_mttf: f64,
    columns: &[(&str, f64)],
    make_load: impl Fn(&VersionProfile, f64) -> Vec<FaultEntry>,
) -> String {
    let mut out = format!("{title}\n\n");
    let mut rows = Vec::new();
    for p in profiles {
        let mut cells = vec![p.version.name().to_string()];
        for (_, param) in columns {
            let load = if p.version.uses_via() {
                make_load(p, *param)
            } else {
                paper_fault_load(base_app_mttf)
            };
            let r = evaluate(p, &load);
            cells.push(format!("{:.0}", r.performability));
        }
        rows.push(cells);
    }
    let mut headers = vec!["version"];
    for (label, _) in columns {
        headers.push(label);
    }
    out.push_str(&table(&headers, &rows));
    out
}

/// Figure 7: VIA-only transient packet drops (modeled as process
/// crashes) at 1/day, 1/week, 1/month; TCP unaffected.
pub fn fig7(profiles: &[VersionProfile]) -> String {
    sensitivity_figure(
        "Figure 7 — performability with VIA-only transient packet drops\n\
         (TCP rides out drops; a VIA drop resets the channel and the process fail-fasts)",
        profiles,
        MONTH,
        &[("P @ 1/day", DAY), ("P @ 1/week", WEEK), ("P @ 1/month", MONTH)],
        |_p, mttf| {
            let mut load = paper_fault_load(MONTH);
            load.push(via_extra(ModelFault::ViaPacketDrop, mttf));
            load
        },
    )
}

/// Figure 8: extra application bugs on VIA (TCP fixed at 1/month).
pub fn fig8(profiles: &[VersionProfile]) -> String {
    let mut out = String::from(
        "Figure 8 — performability with extra software bugs from VIA's programming model\n\
         (TCP versions at app fault rate 1/month; VIA versions swept)\n\n",
    );
    let mut rows = Vec::new();
    for p in profiles {
        let mut cells = vec![p.version.name().to_string()];
        for mttf in [DAY, WEEK, MONTH] {
            let load = if p.version.uses_via() {
                paper_fault_load(mttf)
            } else {
                paper_fault_load(MONTH)
            };
            let r = evaluate(p, &load);
            cells.push(format!("{:.0}", r.performability));
        }
        rows.push(cells);
    }
    out.push_str(&table(
        &["version", "P @ 1/day", "P @ 1/week", "P @ 1/month"],
        &rows,
    ));
    out
}

/// Figure 9: system crashes from substrate immaturity (modeled as
/// switch crashes), VIA only, at 1/week, 1/month, 1/3 months.
pub fn fig9(profiles: &[VersionProfile]) -> String {
    sensitivity_figure(
        "Figure 9 — performability with system faults from an immature substrate\n\
         (modeled as switch crashes; TCP assumed on mature Gigabit Ethernet)",
        profiles,
        MONTH,
        &[
            ("P @ 1/week", WEEK),
            ("P @ 1/month", MONTH),
            ("P @ 1/3months", 3.0 * MONTH),
        ],
        |_p, mttf| {
            let mut load = paper_fault_load(MONTH);
            load.push(via_extra(ModelFault::ViaSystemCrash, mttf));
            load
        },
    )
}

/// Figure 10: the combined pessimistic VIA load — packet drops 1/month,
/// extra application faults 1/2 weeks, system faults 1/month.
pub fn fig10(profiles: &[VersionProfile]) -> String {
    let mut out = String::from(
        "Figure 10 — performability under a combined pessimistic VIA fault load\n\
         (VIA: packet drops 1/month + extra app faults 1/2 weeks + system faults 1/month)\n\n",
    );
    let mut results = Vec::new();
    let mut max_p: f64 = 0.0;
    for p in profiles {
        let load = if p.version.uses_via() {
            let mut load = paper_fault_load(MONTH);
            load.push(via_extra(ModelFault::ViaPacketDrop, MONTH));
            load.push(via_extra(ModelFault::ViaExtraBug, 2.0 * WEEK));
            load.push(via_extra(ModelFault::ViaSystemCrash, MONTH));
            load
        } else {
            paper_fault_load(MONTH)
        };
        let r = evaluate(p, &load);
        max_p = max_p.max(r.performability);
        results.push(r);
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.version.name().to_string(),
                format!("{:.0}", r.performability),
                format!("{:.5}", r.availability),
                bar(r.performability, max_p, 36),
            ]
        })
        .collect();
    out.push_str(&table(&["version", "P", "AA", ""], &rows));
    let tcp_best = results
        .iter()
        .filter(|r| !r.version.uses_via())
        .map(|r| r.performability)
        .fold(0.0, f64::max);
    let below = results
        .iter()
        .filter(|r| r.version.uses_via() && r.performability < tcp_best)
        .count();
    out.push_str(&format!(
        "\nUnder this load, {below} of 3 VIA versions fall below the best TCP version\n\
         (the paper observes two of three).\n"
    ));
    out
}

/// The §9 headline: the fault-rate multiplier on VIA's switch, link and
/// application fault classes at which each VIA version's performability
/// drops to each TCP version's (paper: ≈4×).
pub fn crossover(profiles: &[VersionProfile]) -> String {
    let mut out = String::from(
        "Crossover — rate multiplier on VIA's switch/link/application faults\n\
         at which VIA and TCP performability equalize (paper: ~4x)\n\n",
    );
    let mut rows = Vec::new();
    let mut multipliers = Vec::new();
    for (label, app_mttf) in [("1/month", MONTH), ("1/day", DAY)] {
        let base = paper_fault_load(app_mttf);
        for tcp in profiles.iter().filter(|p| !p.version.uses_via()) {
            let tcp_behaviors = behaviors_for_load(tcp, &base);
            let tcp_p =
                performability_at(tcp.tn, &tcp_behaviors, 1.0, IDEAL_AVAILABILITY, |_| false);
            for via in profiles.iter().filter(|p| p.version.uses_via()) {
                let via_behaviors = behaviors_for_load(via, &base);
                let result = crossover_multiplier(
                    via.tn,
                    &via_behaviors,
                    tcp_p,
                    IDEAL_AVAILABILITY,
                    64.0,
                    ModelFault::scales_for_via_pessimism,
                );
                if label == "1/month" {
                    if let Some(c) = result {
                        multipliers.push(c.multiplier);
                    }
                }
                rows.push(vec![
                    label.to_string(),
                    via.version.name().to_string(),
                    tcp.version.name().to_string(),
                    match result {
                        Some(c) => format!("{:.1}x", c.multiplier),
                        None => "no crossover <= 64x".to_string(),
                    },
                ]);
            }
        }
    }
    out.push_str(&table(
        &["app rate", "VIA version", "vs TCP version", "equal at"],
        &rows,
    ));
    if !multipliers.is_empty() {
        let mean = multipliers.iter().sum::<f64>() / multipliers.len() as f64;
        out.push_str(&format!(
            "\nMean crossover at the 1/month application-fault baseline: {mean:.1}x (paper: ~4x).\n"
        ));
    }
    out
}

/// Reproduces the §5.5 off-by-N observation: where errors surface.
pub fn off_by_n_summary(scale: RunScale, seed: u64, jobs: usize) -> String {
    let mut out = String::from(
        "Off-by-N bad parameters — where the error surfaces (§5.5)\n\n",
    );
    let mut tasks = Vec::new();
    for v in [PressVersion::Tcp, PressVersion::Via0, PressVersion::Via5] {
        for kind in [FaultKind::BadParamOffPtr, FaultKind::BadParamOffSize] {
            tasks.push((v, kind));
        }
    }
    let results = run_indexed(jobs, tasks, |_i, (v, kind)| {
        (v, kind, timeline_run(v, kind, NodeId(3), scale, seed))
    });
    for (v, kind, r) in &results {
        let exits = r.report.process_log.iter().filter(|(_, _, e)| {
            matches!(e, crate::cluster::ProcEvent::Exit)
        });
        let nodes: Vec<String> = exits.map(|(_, n, _)| n.to_string()).collect();
        out.push_str(&format!(
            "{:<14} {:<40} processes terminated: {}\n",
            v.name(),
            kind.name(),
            if nodes.is_empty() { "none".to_string() } else { nodes.join(", ") },
        ));
    }
    out
}


// ---------------------------------------------------------------------
// Ablations (extensions beyond the paper)
// ---------------------------------------------------------------------

/// Ablation: the membership-repair extension the paper's §6.2 asks for.
/// Re-runs the splinter-producing faults with periodic merge probes
/// enabled and shows the operator reset disappearing.
pub fn ablation_membership(scale: RunScale, seed: u64, jobs: usize) -> String {
    let mut out = String::from(
        "Ablation — membership repair (the \"rigorous membership algorithm\" of §6.2)\n\
         Splinter-producing faults with and without periodic merge probes:\n\n",
    );
    let mut tasks = Vec::new();
    for version in [PressVersion::TcpHb, PressVersion::Via5, PressVersion::Tcp] {
        for kind in [FaultKind::LinkDown, FaultKind::NodeCrash] {
            for repair in [false, true] {
                tasks.push((version, kind, repair));
            }
        }
    }
    let results = run_indexed(jobs, tasks, |_i, (version, kind, repair)| {
        let mut config = match scale {
            RunScale::Paper => ClusterConfig::fault_experiment(version),
            RunScale::Small => ClusterConfig::small(version),
        };
        config.press.membership_repair = repair;
        let scenario = match scale {
            RunScale::Paper => FaultScenario::standard(kind, NodeId(3)),
            RunScale::Small => FaultScenario::quick(kind, NodeId(3)),
        };
        (version, kind, repair, run_fault_experiment(config, scenario, seed))
    });
    let mut rows = Vec::new();
    for (version, kind, repair, r) in &results {
        let tail = r
            .series
            .mean_between(r.markers.end - 10.0, r.markers.end)
            .unwrap_or(0.0)
            / r.tn;
        rows.push(vec![
            version.name().to_string(),
            kind.name().to_string(),
            if *repair { "on" } else { "off" }.to_string(),
            format!("{:.3}%", r.report.availability.availability() * 100.0),
            format!("{:.0}% of Tn", tail * 100.0),
            if r.needs_operator_reset {
                "operator reset required".to_string()
            } else {
                "self-healed".to_string()
            },
        ]);
    }
    out.push_str(&table(
        &[
            "version",
            "fault",
            "repair",
            "run availability",
            "final throughput",
            "end state",
        ],
        &rows,
    ));
    out.push_str(
        "\nWith repair on, splintered sub-clusters re-merge once the fabric heals,\n\
         removing the operator-reset stages (E/F/G) from the performability model.\n",
    );
    out
}

/// Ablation: heartbeat tuning — detection latency against the cost of
/// the beats, sweeping the detection threshold.
pub fn ablation_heartbeat(scale: RunScale, seed: u64, jobs: usize) -> String {
    let mut out = String::from(
        "Ablation — heartbeat detection threshold (interval x misses) under a link fault\n\n",
    );
    let tasks = vec![(1u64, 3u32), (5, 3), (5, 5), (10, 3)];
    let results = run_indexed(jobs, tasks, |_i, (interval_s, misses)| {
        let mut config = match scale {
            RunScale::Paper => ClusterConfig::fault_experiment(PressVersion::TcpHb),
            RunScale::Small => ClusterConfig::small(PressVersion::TcpHb),
        };
        config.press.hb_interval = simnet::SimDuration::from_secs(interval_s);
        config.press.hb_misses = misses;
        let scenario = match scale {
            RunScale::Paper => FaultScenario::standard(FaultKind::LinkDown, NodeId(3)),
            RunScale::Small => FaultScenario::quick(FaultKind::LinkDown, NodeId(3)),
        };
        (interval_s, misses, run_fault_experiment(config, scenario, seed))
    });
    let mut rows = Vec::new();
    for (interval_s, misses, r) in &results {
        let lag = r.markers.detected.map(|d| d - r.markers.fault);
        rows.push(vec![
            format!("{interval_s} s x {misses}"),
            format!("{} s", interval_s * u64::from(*misses)),
            match lag {
                Some(l) => format!("{l:.1} s"),
                None => "none".to_string(),
            },
            format!("{:.3}%", r.report.availability.availability() * 100.0),
        ]);
    }
    out.push_str(&table(
        &["interval x misses", "threshold", "measured detection", "run availability"],
        &rows,
    ));
    out.push_str(
        "\nShorter thresholds shrink stage A (the blind window) and raise availability,\n\
         at the price of more heartbeat traffic and a higher false-positive risk when\n\
         beats are merely delayed (§6.2).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let t2 = table2();
        assert!(t2.contains("Node crash"));
        assert!(t2.contains("stale memory handle"));
        let t3 = table3(DAY);
        assert!(t3.contains("6 months"));
        assert!(t3.contains("3 minutes"));
    }

    #[test]
    fn human_secs_is_sane() {
        assert_eq!(human_secs(180.0), "3 minutes");
        assert_eq!(human_secs(3600.0), "1 hour");
        assert_eq!(human_secs(DAY), "1 days");
        assert_eq!(human_secs(2.0 * WEEK), "2 weeks");
        assert_eq!(human_secs(61.0 * DAY), "2 months");
        assert_eq!(human_secs(365.0 * DAY), "1 year");
    }

    #[test]
    fn timeline_figures_render_at_small_scale() {
        let s = fig5(RunScale::Small, 5, 1);
        assert!(s.contains("TCP-PRESS"));
        assert!(s.contains("VIA-PRESS-0"));
        assert!(s.contains("stage") || s.contains("no degraded stages"));
    }

    #[test]
    fn figure_output_is_identical_across_job_counts() {
        assert_eq!(
            fig5(RunScale::Small, 5, 1),
            fig5(RunScale::Small, 5, 3),
            "parallel timeline figure must render byte-identically"
        );
    }

    #[test]
    fn profiles_are_identical_across_job_counts() {
        let sequential = build_profiles(RunScale::Small, 5, 1);
        let parallel = build_profiles(RunScale::Small, 5, 4);
        assert_eq!(
            sequential, parallel,
            "profile building must be bit-identical for any job count"
        );
    }
}
