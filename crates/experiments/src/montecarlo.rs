//! Monte-Carlo performability estimation over generated fault
//! timelines (the `repro -- montecarlo` target).
//!
//! The closed-form phase-2 model assumes faults arrive one at a time
//! and each plays out its seven-stage response in isolation. The fault
//! universe this repository can now inject — correlated groups
//! ([`mendosus::CorrelationRule`]), gray faults ([`FaultKind::GRAY`]),
//! and overlapping Poisson arrivals ([`mendosus::generate_trace`]) —
//! violates both assumptions, so this module measures instead of
//! deriving: it replays many independently-seeded fault timelines
//! against the live cluster simulation and reports mean throughput and
//! availability with confidence intervals
//! ([`performability::MonteCarloResult`]).
//!
//! Every replication takes an explicit seed derived from the target
//! seed, so the whole estimate is byte-identical across reruns,
//! `--jobs`, and `--sim-threads`.
//!
//! The module also carries the sanity bridge between the two
//! methodologies: [`closed_form_crosscheck`] runs a fault load the
//! closed-form model *can* express (a single fail-stop class, no
//! correlation rules) through both paths and checks that the
//! Monte-Carlo availability brackets the analytic one.

use std::collections::BTreeMap;

use mendosus::{
    generate_trace, ArrivalClass, Campaign, CorrelationRule, FaultInterval, FaultKind,
};
use performability::fault_load::ModelFault;
use performability::{FaultEntry, MonteCarloResult, Replication};
use press::PressVersion;
use simnet::fabric::NodeId;
use simnet::stats::FitSegment;
use simnet::{SimDuration, SimTime, TimeSeries};

use crate::cluster::ClusterSim;
use crate::phase1::{measure_warmup, run_fault_experiment, FaultScenario};
use crate::phase2::{config_for, evaluate, measured_from_run, Phase2Result, RunScale, VersionProfile};
use crate::runner::run_indexed;

/// One Monte-Carlo experiment definition: which version to drive, what
/// fault universe to sample, and how many timelines to average.
#[derive(Debug, Clone)]
pub struct MonteCarloSetup {
    /// The PRESS version under test.
    pub version: PressVersion,
    /// Poisson arrival classes sampled per replication.
    pub classes: Vec<ArrivalClass>,
    /// Correlation rules expanded into each generated trace.
    pub rules: Vec<CorrelationRule>,
    /// Number of independently-seeded timelines.
    pub replications: usize,
    /// Settle time before arrivals start and measurement begins (the
    /// cluster boots and reaches steady state first).
    pub settle: SimDuration,
    /// Arrival + measurement window length; the run ends at
    /// `settle + window`.
    pub window: SimDuration,
}

impl MonteCarloSetup {
    /// The showcase fault universe: a fail-stop class (node crash), a
    /// correlated root (switch down, which takes every attached link
    /// with it), and all three gray classes, at rates high enough that
    /// timelines routinely hold several concurrent faults.
    pub fn showcase(version: PressVersion, scale: RunScale) -> Self {
        let (settle, window) = match scale {
            RunScale::Paper => (SimDuration::from_secs(30), SimDuration::from_secs(300)),
            RunScale::Small => (SimDuration::from_secs(20), SimDuration::from_secs(160)),
        };
        MonteCarloSetup {
            version,
            classes: vec![
                ArrivalClass::new(
                    FaultKind::NodeCrash,
                    SimDuration::from_secs(80),
                    SimDuration::from_secs(25),
                ),
                ArrivalClass::new(
                    FaultKind::SwitchDown,
                    SimDuration::from_secs(90),
                    SimDuration::from_secs(15),
                ),
                ArrivalClass::new(
                    FaultKind::LinkDegraded,
                    SimDuration::from_secs(70),
                    SimDuration::from_secs(40),
                ),
                ArrivalClass::new(
                    FaultKind::CpuThrottle,
                    SimDuration::from_secs(90),
                    SimDuration::from_secs(35),
                ),
                ArrivalClass::new(
                    FaultKind::PartialPartition,
                    SimDuration::from_secs(130),
                    SimDuration::from_secs(30),
                ),
            ],
            rules: vec![CorrelationRule::switch_takes_links(4)],
            replications: 5,
            settle,
            window,
        }
    }

    /// A fault load the closed-form model can also express: one
    /// fail-stop class, no correlation rules. Used by
    /// [`closed_form_crosscheck`].
    pub fn single_fault(version: PressVersion, scale: RunScale) -> Self {
        let (settle, window) = match scale {
            RunScale::Paper => (SimDuration::from_secs(30), SimDuration::from_secs(420)),
            RunScale::Small => (SimDuration::from_secs(20), SimDuration::from_secs(280)),
        };
        MonteCarloSetup {
            version,
            classes: vec![ArrivalClass::new(
                FaultKind::NodeCrash,
                SimDuration::from_secs(120),
                SimDuration::from_secs(30),
            )],
            rules: Vec::new(),
            replications: 5,
            settle,
            window,
        }
    }
}

/// Concurrency statistics of one replication's fault timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapProfile {
    /// Total faults active at some point in the run (after rule
    /// expansion, clipped to the horizon).
    pub faults: usize,
    /// How many of those were added by correlation-rule expansion.
    pub correlated: usize,
    /// Maximum number of concurrently active faults.
    pub max_concurrent: usize,
    /// Seconds during which two or more faults were active at once.
    pub multi_fault_secs: f64,
    /// Seconds during which at least one gray fault and at least one
    /// fail-stop fault were active at the same time — the regime
    /// neither the closed-form model nor the fail-stop-only injector
    /// could produce.
    pub gray_failstop_secs: f64,
}

/// Sweeps a timeline's active intervals and tallies its concurrency
/// profile. `correlated` is how many of the intervals came from rule
/// expansion rather than the arrival draw.
pub fn overlap_profile(intervals: &[FaultInterval], correlated: usize) -> OverlapProfile {
    let mut bounds: Vec<SimTime> = intervals
        .iter()
        .flat_map(|iv| [iv.start, iv.end])
        .collect();
    bounds.sort_unstable();
    bounds.dedup();
    let mut max_concurrent = 0usize;
    let mut multi_fault_secs = 0.0;
    let mut gray_failstop_secs = 0.0;
    for w in bounds.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        let mut gray = 0usize;
        let mut fail_stop = 0usize;
        for iv in intervals {
            // Active over the whole open segment [t0, t1): interval
            // boundaries only occur at segment boundaries.
            if iv.start <= t0 && iv.end >= t1 {
                if iv.spec.kind.is_gray() {
                    gray += 1;
                } else {
                    fail_stop += 1;
                }
            }
        }
        let active = gray + fail_stop;
        max_concurrent = max_concurrent.max(active);
        let secs = t1.as_secs_f64() - t0.as_secs_f64();
        if active >= 2 {
            multi_fault_secs += secs;
        }
        if gray >= 1 && fail_stop >= 1 {
            gray_failstop_secs += secs;
        }
    }
    OverlapProfile {
        faults: intervals.len(),
        correlated,
        max_concurrent,
        multi_fault_secs,
        gray_failstop_secs,
    }
}

/// One replication's full record: the generated campaign, its
/// concurrency profile, and the measured timeline (plus a blind
/// piecewise-constant fit for the report overlay).
#[derive(Debug, Clone)]
pub struct McReplication {
    /// Seed that generated the trace and drove the simulation.
    pub seed: u64,
    /// The expanded campaign that ran.
    pub campaign: Campaign,
    /// Active windows of every fault, clipped to the run horizon.
    pub intervals: Vec<FaultInterval>,
    /// Concurrency statistics of the timeline.
    pub overlap: OverlapProfile,
    /// Measured throughput, 1 s buckets over the whole run.
    pub series: TimeSeries,
    /// Fraction of requests served successfully over the whole run.
    pub availability: f64,
    /// Blind change-point fit of the throughput series — the audit
    /// methodology generalized from one stage ladder to arbitrary
    /// fault timelines.
    pub fit: Vec<FitSegment>,
}

impl McReplication {
    /// How many of the blind fit's interior change points land within
    /// `slack_secs` of some fault injection or recovery, as
    /// `(matched, total)`. With overlapping faults there is no unique
    /// ground-truth segmentation, so this is reported as a rate rather
    /// than gated pass/fail like the single-fault audit.
    pub fn change_points_near_fault_edges(&self, slack_secs: f64) -> (usize, usize) {
        let edges: Vec<f64> = self
            .intervals
            .iter()
            .flat_map(|iv| [iv.start.as_secs_f64(), iv.end.as_secs_f64()])
            .collect();
        let cuts: Vec<f64> = self
            .fit
            .iter()
            .skip(1)
            .filter_map(|seg| self.series.points.get(seg.start).map(|p| p.0))
            .collect();
        let matched = cuts
            .iter()
            .filter(|c| edges.iter().any(|e| (*c - e).abs() <= slack_secs))
            .count();
        (matched, cuts.len())
    }
}

/// A finished Monte-Carlo experiment: the baseline, the per-replication
/// records, and the aggregate estimate.
#[derive(Debug, Clone)]
pub struct McRun {
    /// The experiment definition.
    pub setup: MonteCarloSetup,
    /// Measurement window start (arrivals also start here).
    pub measure_from: SimTime,
    /// Run end (= measurement window end = trace horizon).
    pub end: SimTime,
    /// Fault-free baseline throughput timeline.
    pub baseline: TimeSeries,
    /// The AT/AA estimates over the replications.
    pub result: MonteCarloResult,
    /// Per-replication records, in seed order.
    pub reps: Vec<McReplication>,
}

/// The blind segmentation of one replication's series, using the same
/// noise-scaled penalty recipe as the single-fault audit: segments must
/// beat the larger of the series' own noise floor and 4% of baseline.
fn blind_fit(series: &TimeSeries, tn: f64, intervals: usize) -> Vec<FitSegment> {
    let n = series.points.len();
    if n == 0 {
        return Vec::new();
    }
    let penalty =
        series.noise_variance().max((0.04 * tn).powi(2)) * 2.0 * (n.max(2) as f64).ln();
    let max_segments = (2 * intervals + 1).clamp(1, 24);
    series.piecewise_fit(max_segments, penalty)
}

/// Runs one Monte-Carlo experiment: a fault-free baseline plus
/// `setup.replications` independently-seeded fault timelines, fanned
/// across `jobs` workers (byte-identical to sequential — every run
/// takes an explicit seed and results land in task order).
///
/// # Panics
///
/// Panics if the baseline measures no throughput in the window (a
/// misconfigured operating point).
pub fn run_montecarlo(setup: &MonteCarloSetup, scale: RunScale, seed: u64, jobs: usize) -> McRun {
    let config = config_for(setup.version, scale);
    let nodes = config.press.nodes;
    let start = SimTime::ZERO + setup.settle;
    let end = start + setup.window;
    let (t0, t1) = (start.as_secs_f64(), end.as_secs_f64());

    enum Task {
        Baseline,
        Rep(u64),
    }
    enum Out {
        Baseline(TimeSeries),
        Rep(Box<McReplication>),
    }
    // Replication seeds: a golden-ratio stride from the target seed,
    // so neighbouring replications land far apart in seed space
    // (consecutive integers can share arrival-stream luck).
    const STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut tasks = vec![Task::Baseline];
    tasks.extend(
        (0..setup.replications)
            .map(|r| Task::Rep(seed.wrapping_add(STRIDE.wrapping_mul(1 + r as u64)))),
    );

    let outs = run_indexed(jobs, tasks, |_i, task| match task {
        Task::Baseline => {
            let mut sim = ClusterSim::new(config.clone(), seed);
            sim.run_until(end);
            Out::Baseline(sim.report().throughput)
        }
        Task::Rep(rep_seed) => {
            let drawn = generate_trace(&setup.classes, start, setup.window, nodes, rep_seed);
            let injected = drawn.faults().len();
            let campaign = drawn.expand(&setup.rules);
            let correlated = campaign.faults().len() - injected;
            let mut sim = ClusterSim::with_campaign(config.clone(), campaign.clone(), rep_seed);
            sim.run_until(end);
            let report = sim.report();
            let intervals = campaign.active_intervals(end);
            let overlap = overlap_profile(&intervals, correlated);
            Out::Rep(Box::new(McReplication {
                seed: rep_seed,
                campaign,
                intervals,
                overlap,
                series: report.throughput,
                availability: report.availability.availability(),
                fit: Vec::new(),
            }))
        }
    });

    let mut baseline = TimeSeries::new(Vec::new());
    let mut reps: Vec<McReplication> = Vec::with_capacity(setup.replications);
    for out in outs {
        match out {
            Out::Baseline(series) => baseline = series,
            Out::Rep(rep) => reps.push(*rep),
        }
    }
    let tn = baseline.mean_between(t0, t1).unwrap_or(0.0);
    assert!(tn > 0.0, "baseline measured no throughput in the window");
    for rep in &mut reps {
        rep.fit = blind_fit(&rep.series, tn, rep.intervals.len());
    }
    let result = MonteCarloResult::new(
        tn,
        reps.iter()
            .map(|r| Replication {
                seed: r.seed,
                throughput: r.series.mean_between(t0, t1).unwrap_or(0.0),
                availability: r.availability,
                faults: r.overlap.faults,
                max_concurrent: r.overlap.max_concurrent,
            })
            .collect(),
    );
    McRun {
        setup: setup.clone(),
        measure_from: start,
        end,
        baseline,
        result,
        reps,
    }
}

/// The two-path sanity check: the same single-fail-stop-class fault
/// load evaluated by the closed-form model and by the Monte-Carlo
/// estimator.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// The Monte-Carlo side (single fault class, no rules).
    pub run: McRun,
    /// The closed-form side, from a measured single-fault profile.
    pub closed: Phase2Result,
    /// Allowed AA disagreement beyond the Monte-Carlo 95% CI.
    pub tolerance: f64,
}

impl CrossCheck {
    /// Absolute difference between the two availability estimates.
    pub fn delta(&self) -> f64 {
        (self.closed.availability - self.run.result.aa.mean).abs()
    }

    /// Whether the closed-form AA lands inside the Monte-Carlo 95%
    /// interval widened by the tolerance.
    pub fn pass(&self) -> bool {
        self.run.result.aa.covers(self.closed.availability, self.tolerance)
    }
}

/// Runs [`MonteCarloSetup::single_fault`] through both methodologies.
///
/// The closed-form side builds a one-class profile the phase-2 pipeline
/// accepts: the node-crash behaviour measured by a standard phase-1
/// run, the warm-up transient, and the Monte-Carlo baseline as Tn (so
/// both paths normalize against the same operating point). The fault
/// entry's MTTF is chosen so its cluster-wide rate
/// (`instances / mttf`) equals the arrival generator's rate
/// (`1 / mean_between`), and its MTTR is the generator's fault
/// duration.
pub fn closed_form_crosscheck(
    version: PressVersion,
    scale: RunScale,
    seed: u64,
    jobs: usize,
) -> CrossCheck {
    let setup = MonteCarloSetup::single_fault(version, scale);
    let run = run_montecarlo(&setup, scale, seed, jobs);

    let config = config_for(version, scale);
    let nodes = config.press.nodes;
    let scenario = match scale {
        RunScale::Paper => FaultScenario::standard(FaultKind::NodeCrash, NodeId(3)),
        RunScale::Small => FaultScenario::quick(FaultKind::NodeCrash, NodeId(3)),
    };
    let warmup_run = match scale {
        RunScale::Paper => SimDuration::from_secs(180),
        RunScale::Small => SimDuration::from_secs(60),
    };
    let fault_run = run_fault_experiment(config.clone(), scenario, seed);
    let warmup = measure_warmup(config, warmup_run, seed);

    let mut faults = BTreeMap::new();
    faults.insert(ModelFault::NodeCrash, measured_from_run(&fault_run));
    let profile = VersionProfile {
        version,
        tn: run.result.tn,
        faults,
        warmup,
    };
    let class = &setup.classes[0];
    let entry = FaultEntry {
        fault: ModelFault::NodeCrash,
        // instances / mttf == 1 / mean_between: same cluster-wide rate
        // as the Poisson generator's single stream.
        mttf: nodes as f64 * class.mean_between.as_secs_f64(),
        mttr: class.duration.as_secs_f64(),
        instances: nodes as u32,
    };
    let closed = evaluate(&profile, &[entry]);
    CrossCheck {
        run,
        closed,
        tolerance: 0.05,
    }
}

/// Renders one Monte-Carlo run as the repro target's text block.
fn render_mc(title: &str, run: &McRun) -> String {
    let mut s = String::new();
    let setup = &run.setup;
    s.push_str(&format!(
        "== {title} ({}, {} replications x {:.0} s window, measured [{:.0} s, {:.0} s)) ==\n",
        setup.version,
        setup.replications,
        run.end.as_secs_f64(),
        run.measure_from.as_secs_f64(),
        run.end.as_secs_f64(),
    ));
    s.push_str("arrival classes:\n");
    for class in &setup.classes {
        s.push_str(&format!(
            "  {:<28} mean between {:>5.0} s, duration {:>4.0} s\n",
            class.kind.to_string(),
            class.mean_between.as_secs_f64(),
            class.duration.as_secs_f64(),
        ));
    }
    if setup.rules.is_empty() {
        s.push_str("correlation rules: none\n");
    } else {
        for rule in &setup.rules {
            s.push_str(&format!("correlation rule: {}\n", rule.name));
        }
    }
    s.push_str(&format!("baseline Tn = {:.1} req/s\n\n", run.result.tn));
    s.push_str(
        "rep              seed  faults  corr  max-conc  multi_s  gray&fs_s   AT req/s  avail\n",
    );
    for (i, (rep, agg)) in run.reps.iter().zip(&run.result.replications).enumerate() {
        s.push_str(&format!(
            "{:>3} {:>17} {:>7} {:>5} {:>9} {:>8.1} {:>10.1} {:>10.1}  {:.3}\n",
            i,
            format!("{:016x}", rep.seed),
            rep.overlap.faults,
            rep.overlap.correlated,
            rep.overlap.max_concurrent,
            rep.overlap.multi_fault_secs,
            rep.overlap.gray_failstop_secs,
            agg.throughput,
            rep.availability,
        ));
    }
    let at = &run.result.at;
    let aa = &run.result.aa;
    s.push_str(&format!(
        "\nAT = {:.1} +/- {:.1} req/s (95% CI, n = {})\nAA = {:.4} +/- {:.4}\n",
        at.mean, at.ci95, at.n, aa.mean, aa.ci95,
    ));
    let faults: usize = run.reps.iter().map(|r| r.overlap.faults).sum();
    let correlated: usize = run.reps.iter().map(|r| r.overlap.correlated).sum();
    let max_conc = run.reps.iter().map(|r| r.overlap.max_concurrent).max().unwrap_or(0);
    let gray_fs: f64 = run.reps.iter().map(|r| r.overlap.gray_failstop_secs).sum();
    s.push_str(&format!(
        "overlap: {faults} faults total ({correlated} correlated), max {max_conc} concurrent, \
         gray & fail-stop overlap {gray_fs:.1} s\n",
    ));
    let (matched, total) = run.reps.iter().fold((0, 0), |(m, t), rep| {
        let (rm, rt) = rep.change_points_near_fault_edges(3.0);
        (m + rm, t + rt)
    });
    s.push_str(&format!(
        "blind fit: {matched}/{total} change points within 3 s of a fault edge\n",
    ));
    s
}

/// Renders the cross-check block, ending in the PASS/FAIL verdict line
/// the verification script gates on.
fn render_crosscheck(check: &CrossCheck) -> String {
    let mut s = render_mc(
        "closed-form cross-check: Monte-Carlo side (node crash only)",
        &check.run,
    );
    let (lo, hi) = check.run.result.aa.interval();
    s.push_str(&format!(
        "\nclosed-form AA = {:.4} (same rate and MTTR through the phase-2 model)\n\
         Monte-Carlo AA = {:.4} [{:.4}, {:.4}] -> |delta| = {:.4}, tolerance {:.2}: {}\n",
        check.closed.availability,
        check.run.result.aa.mean,
        lo,
        hi,
        check.delta(),
        check.tolerance,
        if check.pass() { "PASS" } else { "FAIL" },
    ));
    s
}

/// The full `montecarlo` target: the showcase estimate plus the
/// closed-form cross-check. Returns the printable text and the
/// showcase run (for the HTML report).
pub fn montecarlo_results(scale: RunScale, seed: u64, jobs: usize) -> (String, McRun) {
    let version = PressVersion::TcpHb;
    let showcase = run_montecarlo(&MonteCarloSetup::showcase(version, scale), scale, seed, jobs);
    let check = closed_form_crosscheck(version, scale, seed, jobs);
    let text = format!(
        "{}\n{}",
        render_mc(
            "Monte-Carlo performability: correlated + gray + overlapping faults",
            &showcase
        ),
        render_crosscheck(&check),
    );
    (text, showcase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mendosus::FaultSpec;

    fn interval(kind: FaultKind, node: usize, at: u64, dur: u64) -> FaultInterval {
        let spec = FaultSpec::transient(
            kind,
            NodeId(node),
            SimTime::from_secs(at),
            SimDuration::from_secs(dur),
        );
        FaultInterval {
            start: spec.at,
            end: SimTime::from_secs(at + dur),
            spec,
        }
    }

    #[test]
    fn overlap_profile_counts_concurrency_and_gray_failstop_time() {
        // crash 10..40, degraded 30..70, crash 60..65: two overlaps.
        let ivs = vec![
            interval(FaultKind::NodeCrash, 0, 10, 30),
            interval(FaultKind::LinkDegraded, 1, 30, 40),
            interval(FaultKind::NodeCrash, 2, 60, 5),
        ];
        let p = overlap_profile(&ivs, 1);
        assert_eq!(p.faults, 3);
        assert_eq!(p.correlated, 1);
        assert_eq!(p.max_concurrent, 2);
        // 30..40 (crash+degraded) and 60..65 (degraded+crash).
        assert!((p.multi_fault_secs - 15.0).abs() < 1e-9);
        assert!((p.gray_failstop_secs - 15.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_profile_of_disjoint_faults_has_no_overlap() {
        let ivs = vec![
            interval(FaultKind::NodeCrash, 0, 10, 5),
            interval(FaultKind::NodeCrash, 1, 20, 5),
        ];
        let p = overlap_profile(&ivs, 0);
        assert_eq!(p.max_concurrent, 1);
        assert_eq!(p.multi_fault_secs, 0.0);
        assert_eq!(p.gray_failstop_secs, 0.0);
    }

    #[test]
    fn montecarlo_runs_are_deterministic_and_overlapping() {
        let mut setup = MonteCarloSetup::showcase(PressVersion::TcpHb, RunScale::Small);
        setup.replications = 2;
        let a = run_montecarlo(&setup, RunScale::Small, 2003, 1);
        let b = run_montecarlo(&setup, RunScale::Small, 2003, 2);
        assert_eq!(a.result, b.result, "jobs must not change the estimate");
        assert!(a.result.tn > 500.0, "baseline Tn {}", a.result.tn);
        assert!(a.result.at.mean > 0.0 && a.result.at.mean < a.result.tn);
        let faults: usize = a.reps.iter().map(|r| r.overlap.faults).sum();
        assert!(faults > 0, "the showcase universe must inject faults");
    }

    #[test]
    fn crosscheck_structure_is_consistent() {
        // A tiny replication count keeps this test cheap; the full-size
        // tolerance gate runs in verify.sh against the repro target.
        let version = PressVersion::TcpHb;
        let scale = RunScale::Small;
        let mut setup = MonteCarloSetup::single_fault(version, scale);
        setup.replications = 2;
        let run = run_montecarlo(&setup, scale, 2003, 2);
        assert!(run.reps.iter().all(|r| r.overlap.correlated == 0));
        assert!(run
            .reps
            .iter()
            .flat_map(|r| r.intervals.iter())
            .all(|iv| iv.spec.kind == FaultKind::NodeCrash));
        assert!(run.result.aa.mean > 0.5 && run.result.aa.mean <= 1.0);
    }
}
