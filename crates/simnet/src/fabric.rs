//! Intra-cluster network fabric model.
//!
//! The paper's test-bed is four nodes on a 1 Gb/s Giganet cLAN: one NIC
//! per node, one link per NIC, and a single switch. [`Fabric`] models that
//! topology with per-endpoint serialization (bandwidth), per-hop latency,
//! bounded queueing, and fail-stop faults on links, the switch, and nodes.
//!
//! The fabric is *mechanism only*: it reports why a frame was lost
//! ([`LossReason`]) and leaves the reaction to the transport. TCP treats
//! every loss as silent (retransmit later); VIA's fail-stop model treats
//! losses as connection-fatal. This split is the heart of the paper's
//! "match the fault model of the fabric" argument.

use crate::time::{SimDuration, SimTime};

/// Identifies a cluster node (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A frame handed to the fabric for transmission.
///
/// The fabric only inspects the header fields; `payload` rides along for
/// the caller to deliver to the destination transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<P> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Wire size in bytes (payload plus protocol headers).
    pub bytes: u32,
    /// Opaque transport payload.
    pub payload: P,
}

/// Why a frame did not arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossReason {
    /// The sender's own link is down — observable by the sending NIC.
    SrcLinkDown,
    /// The destination's link is down.
    DstLinkDown,
    /// The switch is down.
    SwitchDown,
    /// The destination node is crashed (NIC unpowered).
    DstNodeDown,
    /// The sending node is crashed; nothing leaves a dead NIC.
    SrcNodeDown,
    /// Sender-side queue exceeded its backlog bound.
    TxQueueOverrun,
    /// Receiver-side queue exceeded its backlog bound.
    RxQueueOverrun,
    /// Dropped by explicit fault injection (transient packet loss).
    Injected,
}

impl LossReason {
    /// Whether the *sending NIC* can observe this loss synchronously.
    ///
    /// A SAN with hop-by-hop flow control reports local link failures and
    /// backpressure at the source; remote conditions are only visible
    /// end-to-end.
    pub fn sender_observable(self) -> bool {
        matches!(
            self,
            LossReason::SrcLinkDown | LossReason::SrcNodeDown | LossReason::TxQueueOverrun
        )
    }
}

/// Result of handing one frame to [`Fabric::transmit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// The frame will arrive at the destination NIC at `at`.
    Delivered {
        /// Arrival time at the destination.
        at: SimTime,
    },
    /// The frame was lost.
    Lost {
        /// Why it was lost.
        reason: LossReason,
    },
}

impl TransmitOutcome {
    /// The arrival time if delivered.
    pub fn delivery_time(self) -> Option<SimTime> {
        match self {
            TransmitOutcome::Delivered { at } => Some(at),
            TransmitOutcome::Lost { .. } => None,
        }
    }
}

/// Static fabric parameters.
///
/// Defaults approximate the paper's 1 Gb/s cLAN: ~5 µs per link hop plus
/// a ~1 µs switch, 125 MB/s of bandwidth per endpoint, and a few
/// milliseconds of NIC queueing.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of nodes attached to the switch.
    pub nodes: usize,
    /// One-way propagation + NIC processing latency per link hop.
    pub link_latency: SimDuration,
    /// Switch forwarding latency.
    pub switch_latency: SimDuration,
    /// Per-endpoint bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Maximum sender-side backlog (time depth) before frames drop.
    pub max_tx_backlog: SimDuration,
    /// Maximum receiver-side backlog (time depth) before frames drop.
    pub max_rx_backlog: SimDuration,
}

impl FabricConfig {
    /// Configuration matching the paper's 4-node cLAN test-bed.
    pub fn clan_four_nodes() -> Self {
        FabricConfig {
            nodes: 4,
            link_latency: SimDuration::from_micros(5),
            switch_latency: SimDuration::from_micros(1),
            bandwidth: 125_000_000, // 1 Gb/s
            max_tx_backlog: SimDuration::from_millis(20),
            max_rx_backlog: SimDuration::from_millis(20),
        }
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig::clan_four_nodes()
    }
}

/// Counters describing fabric activity, for assertions and reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Frames delivered.
    pub delivered: u64,
    /// Frames lost for any reason.
    pub lost: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
}

/// The switched cluster network.
///
/// # Example
///
/// ```
/// use simnet::fabric::{Fabric, FabricConfig, Frame, NodeId, TransmitOutcome};
/// use simnet::SimTime;
///
/// let mut fabric = Fabric::new(FabricConfig::clan_four_nodes());
/// let frame = Frame { src: NodeId(0), dst: NodeId(1), bytes: 1024, payload: () };
/// match fabric.transmit(SimTime::ZERO, &frame) {
///     TransmitOutcome::Delivered { at } => assert!(at > SimTime::ZERO),
///     TransmitOutcome::Lost { reason } => panic!("healthy fabric lost a frame: {reason:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    config: FabricConfig,
    link_up: Vec<bool>,
    node_up: Vec<bool>,
    switch_up: bool,
    tx_busy: Vec<SimTime>,
    rx_busy: Vec<SimTime>,
    /// Number of upcoming frames to drop per (src) — fault injection.
    drop_next_from: Vec<u32>,
    stats: FabricStats,
}

impl Fabric {
    /// Creates a healthy fabric.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes or zero bandwidth.
    pub fn new(config: FabricConfig) -> Self {
        assert!(config.nodes > 0, "fabric needs at least one node");
        assert!(config.bandwidth > 0, "bandwidth must be positive");
        let n = config.nodes;
        Fabric {
            config,
            link_up: vec![true; n],
            node_up: vec![true; n],
            switch_up: true,
            tx_busy: vec![SimTime::ZERO; n],
            rx_busy: vec![SimTime::ZERO; n],
            drop_next_from: vec![0; n],
            stats: FabricStats::default(),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Sets the state of `node`'s link (fault injection).
    pub fn set_link_up(&mut self, node: NodeId, up: bool) {
        self.link_up[node.0] = up;
    }

    /// Sets the switch state (fault injection).
    pub fn set_switch_up(&mut self, up: bool) {
        self.switch_up = up;
    }

    /// Marks a node as crashed (NIC dead) or alive.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        self.node_up[node.0] = up;
    }

    /// Whether `node`'s link is currently up.
    pub fn link_up(&self, node: NodeId) -> bool {
        self.link_up[node.0]
    }

    /// Whether the switch is currently up.
    pub fn switch_up(&self) -> bool {
        self.switch_up
    }

    /// Whether `node`'s NIC is powered.
    pub fn node_up(&self, node: NodeId) -> bool {
        self.node_up[node.0]
    }

    /// Whether a frame sent now from `a` could reach `b`.
    pub fn path_up(&self, a: NodeId, b: NodeId) -> bool {
        self.node_up[a.0]
            && self.node_up[b.0]
            && self.link_up[a.0]
            && self.link_up[b.0]
            && self.switch_up
    }

    /// Arranges for the next `count` frames sent by `src` to be dropped
    /// (transient packet-loss injection).
    pub fn inject_drops_from(&mut self, src: NodeId, count: u32) {
        self.drop_next_from[src.0] += count;
    }

    /// Attempts to transmit `frame` at time `now`.
    ///
    /// On success, the returned arrival time accounts for sender
    /// serialization, two link hops, the switch, and receiver
    /// serialization. The caller is responsible for scheduling delivery.
    pub fn transmit<P>(&mut self, now: SimTime, frame: &Frame<P>) -> TransmitOutcome {
        let src = frame.src.0;
        let dst = frame.dst.0;
        assert!(src < self.config.nodes && dst < self.config.nodes);

        let reason = if !self.node_up[src] {
            Some(LossReason::SrcNodeDown)
        } else if !self.link_up[src] {
            Some(LossReason::SrcLinkDown)
        } else if self.drop_next_from[src] > 0 {
            self.drop_next_from[src] -= 1;
            Some(LossReason::Injected)
        } else if !self.switch_up {
            Some(LossReason::SwitchDown)
        } else if !self.link_up[dst] {
            Some(LossReason::DstLinkDown)
        } else if !self.node_up[dst] {
            Some(LossReason::DstNodeDown)
        } else {
            None
        };
        if let Some(reason) = reason {
            self.stats.lost += 1;
            return TransmitOutcome::Lost { reason };
        }

        let wire = self.wire_time(frame.bytes);

        // Sender serialization.
        let tx_start = self.tx_busy[src].max(now);
        if tx_start.saturating_since(now) > self.config.max_tx_backlog {
            self.stats.lost += 1;
            return TransmitOutcome::Lost {
                reason: LossReason::TxQueueOverrun,
            };
        }
        let tx_end = tx_start + wire;
        self.tx_busy[src] = tx_end;

        // Propagation through the switch.
        let at_switch = tx_end + self.config.link_latency + self.config.switch_latency;
        let at_dst_port = at_switch + self.config.link_latency;

        // Receiver serialization.
        let rx_start = self.rx_busy[dst].max(at_dst_port);
        if rx_start.saturating_since(at_dst_port) > self.config.max_rx_backlog {
            self.stats.lost += 1;
            return TransmitOutcome::Lost {
                reason: LossReason::RxQueueOverrun,
            };
        }
        let rx_end = rx_start + wire;
        self.rx_busy[dst] = rx_end;

        self.stats.delivered += 1;
        self.stats.bytes_delivered += u64::from(frame.bytes);
        TransmitOutcome::Delivered { at: rx_end }
    }

    fn wire_time(&self, bytes: u32) -> SimDuration {
        let nanos = u64::from(bytes) * 1_000_000_000 / self.config.bandwidth;
        SimDuration::from_nanos(nanos.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(src: usize, dst: usize, bytes: u32) -> Frame<()> {
        Frame {
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            payload: (),
        }
    }

    #[test]
    fn healthy_fabric_delivers_with_latency() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        let out = f.transmit(SimTime::ZERO, &frame(0, 1, 1000));
        let at = out.delivery_time().expect("delivered");
        // 1000B at 125MB/s = 8us wire time at each endpoint, plus
        // 5+1+5 us of hops.
        let expected_nanos = 8_000 + 5_000 + 1_000 + 5_000 + 8_000;
        assert_eq!(at.as_nanos(), expected_nanos);
        assert_eq!(f.stats().delivered, 1);
    }

    #[test]
    fn sender_link_down_is_sender_observable() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.set_link_up(NodeId(0), false);
        match f.transmit(SimTime::ZERO, &frame(0, 1, 100)) {
            TransmitOutcome::Lost { reason } => {
                assert_eq!(reason, LossReason::SrcLinkDown);
                assert!(reason.sender_observable());
            }
            other => panic!("expected loss, got {other:?}"),
        }
    }

    #[test]
    fn destination_conditions_are_not_sender_observable() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.set_link_up(NodeId(1), false);
        let TransmitOutcome::Lost { reason } = f.transmit(SimTime::ZERO, &frame(0, 1, 100))
        else {
            panic!("expected loss");
        };
        assert_eq!(reason, LossReason::DstLinkDown);
        assert!(!reason.sender_observable());

        f.set_link_up(NodeId(1), true);
        f.set_node_up(NodeId(1), false);
        let TransmitOutcome::Lost { reason } = f.transmit(SimTime::ZERO, &frame(0, 1, 100))
        else {
            panic!("expected loss");
        };
        assert_eq!(reason, LossReason::DstNodeDown);
    }

    #[test]
    fn switch_down_partitions_everything() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.set_switch_up(false);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(!f.path_up(NodeId(a), NodeId(b)));
                }
            }
        }
        let TransmitOutcome::Lost { reason } = f.transmit(SimTime::ZERO, &frame(2, 3, 64))
        else {
            panic!("expected loss");
        };
        assert_eq!(reason, LossReason::SwitchDown);
    }

    #[test]
    fn transmissions_serialize_on_the_sender_link() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        let a = f.transmit(SimTime::ZERO, &frame(0, 1, 125_000)).delivery_time().unwrap();
        let b = f.transmit(SimTime::ZERO, &frame(0, 2, 125_000)).delivery_time().unwrap();
        // Each frame needs 1ms of wire time; the second must queue behind
        // the first on the shared sender link.
        assert!(b > a);
        assert!(b.as_nanos() - a.as_nanos() >= 1_000_000);
    }

    #[test]
    fn tx_backlog_bound_drops_frames() {
        let mut cfg = FabricConfig::clan_four_nodes();
        cfg.max_tx_backlog = SimDuration::from_micros(10);
        let mut f = Fabric::new(cfg);
        // Saturate the sender link.
        let mut dropped = false;
        for _ in 0..100 {
            if let TransmitOutcome::Lost { reason } = f.transmit(SimTime::ZERO, &frame(0, 1, 10_000))
            {
                assert_eq!(reason, LossReason::TxQueueOverrun);
                dropped = true;
                break;
            }
        }
        assert!(dropped, "expected the bounded queue to overrun");
    }

    #[test]
    fn injected_drops_consume_exactly_count_frames() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.inject_drops_from(NodeId(0), 2);
        assert!(matches!(
            f.transmit(SimTime::ZERO, &frame(0, 1, 64)),
            TransmitOutcome::Lost {
                reason: LossReason::Injected
            }
        ));
        assert!(matches!(
            f.transmit(SimTime::ZERO, &frame(0, 1, 64)),
            TransmitOutcome::Lost {
                reason: LossReason::Injected
            }
        ));
        assert!(matches!(
            f.transmit(SimTime::ZERO, &frame(0, 1, 64)),
            TransmitOutcome::Delivered { .. }
        ));
    }

    #[test]
    fn crashed_sender_cannot_transmit() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.set_node_up(NodeId(0), false);
        let TransmitOutcome::Lost { reason } = f.transmit(SimTime::ZERO, &frame(0, 1, 64))
        else {
            panic!("expected loss");
        };
        assert_eq!(reason, LossReason::SrcNodeDown);
        assert!(reason.sender_observable());
    }

    #[test]
    fn recovery_restores_the_path() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.set_link_up(NodeId(3), false);
        assert!(!f.path_up(NodeId(0), NodeId(3)));
        f.set_link_up(NodeId(3), true);
        assert!(f.path_up(NodeId(0), NodeId(3)));
        assert!(matches!(
            f.transmit(SimTime::ZERO, &frame(0, 3, 64)),
            TransmitOutcome::Delivered { .. }
        ));
    }
}
