//! Intra-cluster network fabric model.
//!
//! The paper's test-bed is four nodes on a 1 Gb/s Giganet cLAN: one NIC
//! per node, one link per NIC, and a single switch. [`Fabric`] models that
//! topology with per-endpoint serialization (bandwidth), per-hop latency,
//! bounded queueing, and fail-stop faults on links, the switch, and nodes.
//!
//! The fabric is *mechanism only*: it reports why a frame was lost
//! ([`LossReason`]) and leaves the reaction to the transport. TCP treats
//! every loss as silent (retransmit later); VIA's fail-stop model treats
//! losses as connection-fatal. This split is the heart of the paper's
//! "match the fault model of the fabric" argument.

use crate::time::{SimDuration, SimTime};

/// Identifies a cluster node (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A frame handed to the fabric for transmission.
///
/// The fabric only inspects the header fields; `payload` rides along for
/// the caller to deliver to the destination transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<P> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Wire size in bytes (payload plus protocol headers).
    pub bytes: u32,
    /// Opaque transport payload.
    pub payload: P,
}

/// Why a frame did not arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossReason {
    /// The sender's own link is down — observable by the sending NIC.
    SrcLinkDown,
    /// The destination's link is down.
    DstLinkDown,
    /// The switch is down.
    SwitchDown,
    /// The destination node is crashed (NIC unpowered).
    DstNodeDown,
    /// The sending node is crashed; nothing leaves a dead NIC.
    SrcNodeDown,
    /// Sender-side queue exceeded its backlog bound.
    TxQueueOverrun,
    /// Receiver-side queue exceeded its backlog bound.
    RxQueueOverrun,
    /// Dropped by explicit fault injection (transient packet loss).
    Injected,
    /// Dropped on a gray (degraded) link: the link is nominally up, so
    /// neither NIC raises an error — the frame just never arrives.
    LinkDegraded,
    /// Dropped inside the switch by a partial partition: the switch can
    /// no longer forward between this pair of ports, but both links
    /// stay up and no error is reported anywhere.
    Partitioned,
}

impl LossReason {
    /// Whether the *sending NIC* can observe this loss synchronously.
    ///
    /// A SAN with hop-by-hop flow control reports local link failures and
    /// backpressure at the source; remote conditions are only visible
    /// end-to-end.
    pub fn sender_observable(self) -> bool {
        matches!(
            self,
            LossReason::SrcLinkDown | LossReason::SrcNodeDown | LossReason::TxQueueOverrun
        )
    }

    /// Whether the loss is *gray*: no component anywhere reports an
    /// error, so the transport must not receive a failure notification
    /// — the frame silently vanishes and only end-to-end timeouts can
    /// notice. This is what distinguishes gray faults from the
    /// fail-stop loss reasons above (which the composition layer turns
    /// into `transmit_failed` callbacks).
    pub fn silent(self) -> bool {
        matches!(self, LossReason::LinkDegraded | LossReason::Partitioned)
    }
}

/// Result of handing one frame to [`Fabric::transmit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// The frame will arrive at the destination NIC at `at`.
    Delivered {
        /// Arrival time at the destination.
        at: SimTime,
    },
    /// The frame was lost.
    Lost {
        /// Why it was lost.
        reason: LossReason,
    },
}

impl TransmitOutcome {
    /// The arrival time if delivered.
    pub fn delivery_time(self) -> Option<SimTime> {
        match self {
            TransmitOutcome::Delivered { at } => Some(at),
            TransmitOutcome::Lost { .. } => None,
        }
    }
}

/// Physical switch arrangement of the fabric.
///
/// [`Topology::Star`] is the paper's single-switch cLAN: every pair of
/// nodes is two link hops and one switch apart. [`Topology::FatTree`]
/// is a two-level leaf/spine fabric for clusters that outgrow one
/// switch: node `i` attaches to leaf switch `i / leaf_radix`; same-leaf
/// traffic crosses only its leaf, while cross-leaf traffic additionally
/// climbs to a spine switch and back down (two extra link hops, one
/// extra leaf, and the spine's forwarding latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// One switch; uniform pairwise latency.
    Star,
    /// Two-level leaf/spine fat tree.
    FatTree {
        /// Nodes per leaf switch (node `i` sits under leaf
        /// `i / leaf_radix`).
        leaf_radix: usize,
        /// Spine-switch forwarding latency, paid once per cross-leaf
        /// path (leaf switches use the common `switch_latency`).
        spine_latency: SimDuration,
    },
}

/// Static fabric parameters.
///
/// Defaults approximate the paper's 1 Gb/s cLAN: ~5 µs per link hop plus
/// a ~1 µs switch, 125 MB/s of bandwidth per endpoint, and a few
/// milliseconds of NIC queueing.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of nodes attached to the switch.
    pub nodes: usize,
    /// One-way propagation + NIC processing latency per link hop.
    pub link_latency: SimDuration,
    /// Switch forwarding latency (every switch a frame crosses except
    /// the fat tree's spine, which has its own).
    pub switch_latency: SimDuration,
    /// Per-endpoint bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Maximum sender-side backlog (time depth) before frames drop.
    pub max_tx_backlog: SimDuration,
    /// Maximum receiver-side backlog (time depth) before frames drop.
    pub max_rx_backlog: SimDuration,
    /// Switch arrangement. The up/down fault flags are fabric-wide
    /// regardless of topology: `switch_up = false` kills forwarding
    /// everywhere (modelled as the common spine failing closed).
    pub topology: Topology,
}

impl FabricConfig {
    /// The minimum time between handing a frame to the fabric and its
    /// arrival at the destination switch port, over all node pairs —
    /// the shortest path through the topology, with serialization
    /// contributing at least one more nanosecond. This is the
    /// conservative-parallel lookahead: no event executed at time `t`
    /// can make another node observe anything before `t + lookahead()`,
    /// so windows of this width can run concurrently without violating
    /// causality. Longer paths (cross-leaf hops, gray-latency
    /// penalties) only *increase* delay, so the floor stays valid. A
    /// degenerate configuration (zero link and switch latency) yields
    /// `SimDuration::ZERO` and callers must fall back to sequential
    /// execution.
    pub fn lookahead(&self) -> SimDuration {
        let same_switch = self.link_latency + self.switch_latency + self.link_latency;
        match self.topology {
            Topology::Star => same_switch,
            Topology::FatTree { leaf_radix, .. } => {
                // Some pair shares a leaf as soon as one leaf holds two
                // nodes; otherwise (radix-1 corner, buildable only by
                // hand) every path crosses the spine.
                if leaf_radix >= 2 && self.nodes >= 2 {
                    same_switch
                } else {
                    same_switch + self.cross_leaf_extra()
                }
            }
        }
    }

    /// Additional one-way latency of a cross-leaf path over a same-leaf
    /// one: up to the spine and back down (two extra link hops), the
    /// spine's forwarding latency, and the second leaf switch.
    fn cross_leaf_extra(&self) -> SimDuration {
        match self.topology {
            Topology::Star => SimDuration::ZERO,
            Topology::FatTree { spine_latency, .. } => {
                self.link_latency + self.link_latency + spine_latency + self.switch_latency
            }
        }
    }

    /// One-way propagation latency from `src`'s NIC to `dst`'s switch
    /// port through this topology (excludes serialization and gray
    /// penalties). Equals `lookahead()` for the closest pair.
    pub fn path_latency(&self, src: NodeId, dst: NodeId) -> SimDuration {
        let same_switch = self.link_latency + self.switch_latency + self.link_latency;
        match self.topology {
            Topology::Star => same_switch,
            Topology::FatTree { leaf_radix, .. } => {
                if src.0 / leaf_radix == dst.0 / leaf_radix {
                    same_switch
                } else {
                    same_switch + self.cross_leaf_extra()
                }
            }
        }
    }

    /// Serialization time of `bytes` at this fabric's bandwidth (at
    /// least one nanosecond).
    pub fn wire_time(&self, bytes: u32) -> SimDuration {
        let nanos = u64::from(bytes) * 1_000_000_000 / self.bandwidth;
        SimDuration::from_nanos(nanos.max(1))
    }

    /// An `n`-node single-switch cLAN star with the paper test-bed's
    /// per-hop parameters. PRESS arranges the nodes into its logical
    /// heartbeat ring on top of this; the fabric itself is a star, so
    /// latency and lookahead do not change with `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (a one-node cluster has no fabric paths, and
    /// the conservative-parallel lookahead would be meaningless).
    pub fn ring(n: usize) -> Self {
        let cfg = FabricConfig {
            nodes: n,
            link_latency: SimDuration::from_micros(5),
            switch_latency: SimDuration::from_micros(1),
            bandwidth: 125_000_000, // 1 Gb/s
            max_tx_backlog: SimDuration::from_millis(20),
            max_rx_backlog: SimDuration::from_millis(20),
            topology: Topology::Star,
        };
        cfg.validated()
    }

    /// An `n`-node two-level leaf/spine fat tree: `leaf_radix` nodes
    /// per leaf switch, cLAN per-hop parameters, and a 2 µs spine.
    /// Same-leaf pairs see star latency; cross-leaf pairs pay
    /// [`Self::path_latency`]'s climb through the spine.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `leaf_radix < 2` (a radix-1 "leaf" is a
    /// patch cable, and `lookahead()` relies on at least one same-leaf
    /// pair existing).
    pub fn fat_tree(n: usize, leaf_radix: usize) -> Self {
        assert!(
            leaf_radix >= 2,
            "fat tree needs at least 2 nodes per leaf switch (got {leaf_radix})"
        );
        let cfg = FabricConfig {
            topology: Topology::FatTree {
                leaf_radix,
                spine_latency: SimDuration::from_micros(2),
            },
            ..FabricConfig::ring(2)
        };
        FabricConfig { nodes: n, ..cfg }.validated()
    }

    /// Builder validation: every constructed fabric must have at least
    /// two nodes and strictly positive per-stage latencies, so
    /// `lookahead()` is a usable (nonzero) conservative-parallel bound.
    fn validated(self) -> Self {
        assert!(
            self.nodes >= 2,
            "a fabric needs at least 2 nodes (got {})",
            self.nodes
        );
        assert!(
            self.link_latency > SimDuration::ZERO && self.switch_latency > SimDuration::ZERO,
            "zero-latency fabric stages would collapse the lookahead to zero"
        );
        if let Topology::FatTree { spine_latency, .. } = self.topology {
            assert!(
                spine_latency > SimDuration::ZERO,
                "zero-latency spine stage in a fat-tree fabric"
            );
        }
        self
    }

    /// Configuration matching the paper's 4-node cLAN test-bed.
    pub fn clan_four_nodes() -> Self {
        FabricConfig::ring(4)
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig::clan_four_nodes()
    }
}

/// Result of the sender-side half of a transmission
/// ([`Fabric::tx_phase`]): everything observable at the source NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The frame left the sender; it reaches the destination switch
    /// port at `at_dst_port` (receiver serialization still pending —
    /// [`Fabric::rx_phase`] turns this into the final arrival time).
    Launched {
        /// Arrival time at the destination's switch port.
        at_dst_port: SimTime,
    },
    /// The frame was lost before reaching the destination port.
    Lost {
        /// Why it was lost.
        reason: LossReason,
    },
}

/// Sender-side transmission state for one node: the serialization
/// horizon of its link plus any pending injected drops. Split out of
/// [`Fabric`] so the parallel driver can hand each worker thread the
/// tx state of exactly the nodes it owns.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxPort {
    /// The sender link is serializing until this time.
    pub busy: SimTime,
    /// Upcoming frames from this node to drop (fault injection).
    pub drop_next: u32,
    /// Frames this node has sent across a degraded (gray) link; every
    /// [`GRAY_DROP_PERIOD`]-th such frame is dropped. Sender-side state
    /// so the loss decision is made entirely at the source — the
    /// parallel driver's replay assumes committed launches always
    /// deliver.
    pub gray_seq: u32,
}

/// One in every this-many frames crossing a degraded link is lost.
pub const GRAY_DROP_PERIOD: u32 = 50;

/// Extra one-way latency added per degraded endpoint a frame crosses
/// (a flapping negotiation / CRC-retry penalty). Latency only ever
/// *increases*, so the conservative-parallel lookahead bound — a floor
/// on cross-node visibility — remains valid.
pub const GRAY_EXTRA_LATENCY: SimDuration = SimDuration::from_micros(150);

/// A point-in-time snapshot of the fabric's up/down flags. Flags only
/// change at fault-injection instants, which the parallel driver
/// serializes, so a snapshot taken at a window boundary is valid for
/// the whole window.
#[derive(Debug, Clone, Default)]
pub struct FabricFlags {
    /// Per-node link state.
    pub link_up: Vec<bool>,
    /// Per-node NIC power state.
    pub node_up: Vec<bool>,
    /// Switch state.
    pub switch_up: bool,
    /// Per-node gray-degradation state (elevated latency + loss).
    pub degraded: Vec<bool>,
    /// Per-node bitmask of peers the switch silently refuses to reach
    /// (partial partition; symmetric).
    pub blocked: Vec<u64>,
}

/// Counters describing fabric activity, for assertions and reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Frames delivered.
    pub delivered: u64,
    /// Frames lost for any reason.
    pub lost: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
}

/// The switched cluster network.
///
/// # Example
///
/// ```
/// use simnet::fabric::{Fabric, FabricConfig, Frame, NodeId, TransmitOutcome};
/// use simnet::SimTime;
///
/// let mut fabric = Fabric::new(FabricConfig::clan_four_nodes());
/// let frame = Frame { src: NodeId(0), dst: NodeId(1), bytes: 1024, payload: () };
/// match fabric.transmit(SimTime::ZERO, &frame) {
///     TransmitOutcome::Delivered { at } => assert!(at > SimTime::ZERO),
///     TransmitOutcome::Lost { reason } => panic!("healthy fabric lost a frame: {reason:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    config: FabricConfig,
    link_up: Vec<bool>,
    node_up: Vec<bool>,
    switch_up: bool,
    tx_busy: Vec<SimTime>,
    rx_busy: Vec<SimTime>,
    /// Number of upcoming frames to drop per (src) — fault injection.
    drop_next_from: Vec<u32>,
    /// Per-node degraded-link counter state (see [`TxPort::gray_seq`]).
    gray_seq: Vec<u32>,
    /// Gray state: per-node degradation and pairwise partition masks.
    degraded: Vec<bool>,
    blocked: Vec<u64>,
    stats: FabricStats,
}

impl Fabric {
    /// Creates a healthy fabric.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes or zero bandwidth.
    pub fn new(config: FabricConfig) -> Self {
        assert!(config.nodes > 0, "fabric needs at least one node");
        assert!(config.bandwidth > 0, "bandwidth must be positive");
        let n = config.nodes;
        Fabric {
            config,
            link_up: vec![true; n],
            node_up: vec![true; n],
            switch_up: true,
            tx_busy: vec![SimTime::ZERO; n],
            rx_busy: vec![SimTime::ZERO; n],
            drop_next_from: vec![0; n],
            gray_seq: vec![0; n],
            degraded: vec![false; n],
            blocked: vec![0; n],
            stats: FabricStats::default(),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Sets the state of `node`'s link (fault injection).
    pub fn set_link_up(&mut self, node: NodeId, up: bool) {
        self.link_up[node.0] = up;
    }

    /// Sets the switch state (fault injection).
    pub fn set_switch_up(&mut self, up: bool) {
        self.switch_up = up;
    }

    /// Marks a node as crashed (NIC dead) or alive.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        self.node_up[node.0] = up;
    }

    /// Marks `node`'s link as gray-degraded (or healthy again): frames
    /// crossing it pick up [`GRAY_EXTRA_LATENCY`] per degraded endpoint
    /// and every [`GRAY_DROP_PERIOD`]-th one is silently lost. The link
    /// still reports "up" everywhere.
    pub fn set_link_degraded(&mut self, node: NodeId, degraded: bool) {
        self.degraded[node.0] = degraded;
    }

    /// Whether `node`'s link is currently gray-degraded.
    pub fn link_degraded(&self, node: NodeId) -> bool {
        self.degraded[node.0]
    }

    /// Blocks (or unblocks) switch forwarding between `a` and `b` in
    /// both directions — a partial partition. Both links stay up and no
    /// error is reported; frames between the pair silently vanish.
    ///
    /// # Panics
    ///
    /// Panics if either node index is ≥ 64 (the mask width) or the two
    /// nodes are the same.
    pub fn set_pair_blocked(&mut self, a: NodeId, b: NodeId, blocked: bool) {
        assert!(a.0 < 64 && b.0 < 64, "partition masks cover 64 nodes");
        assert_ne!(a.0, b.0, "a node cannot be partitioned from itself");
        if blocked {
            self.blocked[a.0] |= 1 << b.0;
            self.blocked[b.0] |= 1 << a.0;
        } else {
            self.blocked[a.0] &= !(1 << b.0);
            self.blocked[b.0] &= !(1 << a.0);
        }
    }

    /// Whether the switch currently refuses to forward between `a` and
    /// `b` (partial partition).
    pub fn pair_blocked(&self, a: NodeId, b: NodeId) -> bool {
        self.blocked[a.0] & (1 << b.0) != 0
    }

    /// Whether `node`'s link is currently up.
    pub fn link_up(&self, node: NodeId) -> bool {
        self.link_up[node.0]
    }

    /// Whether the switch is currently up.
    pub fn switch_up(&self) -> bool {
        self.switch_up
    }

    /// Whether `node`'s NIC is powered.
    pub fn node_up(&self, node: NodeId) -> bool {
        self.node_up[node.0]
    }

    /// Whether a frame sent now from `a` could reach `b`.
    pub fn path_up(&self, a: NodeId, b: NodeId) -> bool {
        self.node_up[a.0]
            && self.node_up[b.0]
            && self.link_up[a.0]
            && self.link_up[b.0]
            && self.switch_up
    }

    /// Arranges for the next `count` frames sent by `src` to be dropped
    /// (transient packet-loss injection).
    pub fn inject_drops_from(&mut self, src: NodeId, count: u32) {
        self.drop_next_from[src.0] += count;
    }

    /// Attempts to transmit `frame` at time `now`.
    ///
    /// On success, the returned arrival time accounts for sender
    /// serialization, two link hops, the switch, and receiver
    /// serialization. The caller is responsible for scheduling delivery.
    ///
    /// This is exactly [`Fabric::tx_phase`] followed by
    /// [`Fabric::rx_phase`] against the master flag and port state.
    pub fn transmit<P>(&mut self, now: SimTime, frame: &Frame<P>) -> TransmitOutcome {
        let src = frame.src.0;
        let dst = frame.dst.0;
        assert!(src < self.config.nodes && dst < self.config.nodes);

        let flags = FlagView {
            link_up: &self.link_up,
            node_up: &self.node_up,
            switch_up: self.switch_up,
            degraded: &self.degraded,
            blocked: &self.blocked,
        };
        let mut port = TxPort {
            busy: self.tx_busy[src],
            drop_next: self.drop_next_from[src],
            gray_seq: self.gray_seq[src],
        };
        let outcome = tx_phase_inner(&self.config, flags, &mut port, now, frame.src, frame.dst, frame.bytes);
        self.tx_busy[src] = port.busy;
        self.drop_next_from[src] = port.drop_next;
        self.gray_seq[src] = port.gray_seq;
        match outcome {
            TxOutcome::Lost { reason } => {
                self.stats.lost += 1;
                TransmitOutcome::Lost { reason }
            }
            TxOutcome::Launched { at_dst_port } => self.rx_phase(at_dst_port, frame.dst, frame.bytes),
        }
    }

    /// Sender-side half of [`Fabric::transmit`] against caller-supplied
    /// flag and port state: loss checks observable from the source,
    /// sender serialization, and propagation to the destination switch
    /// port. Pure with respect to the fabric — workers run this against
    /// their own [`FabricFlags`] replica and per-node [`TxPort`]s. Lost
    /// frames are *not* counted in any stats; the caller tallies them.
    pub fn tx_phase<P>(
        config: &FabricConfig,
        flags: &FabricFlags,
        port: &mut TxPort,
        now: SimTime,
        frame: &Frame<P>,
    ) -> TxOutcome {
        let view = FlagView {
            link_up: &flags.link_up,
            node_up: &flags.node_up,
            switch_up: flags.switch_up,
            degraded: &flags.degraded,
            blocked: &flags.blocked,
        };
        tx_phase_inner(config, view, port, now, frame.src, frame.dst, frame.bytes)
    }

    /// Receiver-side half of [`Fabric::transmit`]: serialization on the
    /// destination link, backlog bounding, and delivery accounting.
    /// Order-sensitive (each call advances `rx_busy[dst]`), so the
    /// parallel driver replays launched frames in exact sequential
    /// order through this method.
    pub fn rx_phase(&mut self, at_dst_port: SimTime, dst: NodeId, bytes: u32) -> TransmitOutcome {
        let wire = self.config.wire_time(bytes);
        let rx_start = self.rx_busy[dst.0].max(at_dst_port);
        if rx_start.saturating_since(at_dst_port) > self.config.max_rx_backlog {
            self.stats.lost += 1;
            return TransmitOutcome::Lost {
                reason: LossReason::RxQueueOverrun,
            };
        }
        let rx_end = rx_start + wire;
        self.rx_busy[dst.0] = rx_end;

        self.stats.delivered += 1;
        self.stats.bytes_delivered += u64::from(bytes);
        TransmitOutcome::Delivered { at: rx_end }
    }

    /// Snapshots the up/down flags (see [`FabricFlags`]).
    pub fn flags(&self) -> FabricFlags {
        FabricFlags {
            link_up: self.link_up.clone(),
            node_up: self.node_up.clone(),
            switch_up: self.switch_up,
            degraded: self.degraded.clone(),
            blocked: self.blocked.clone(),
        }
    }

    /// Copies the current flags into an existing snapshot, reusing its
    /// allocations.
    pub fn flags_into(&self, out: &mut FabricFlags) {
        out.link_up.clear();
        out.link_up.extend_from_slice(&self.link_up);
        out.node_up.clear();
        out.node_up.extend_from_slice(&self.node_up);
        out.switch_up = self.switch_up;
        out.degraded.clear();
        out.degraded.extend_from_slice(&self.degraded);
        out.blocked.clear();
        out.blocked.extend_from_slice(&self.blocked);
    }

    /// Extracts `node`'s sender-side port state. The master copy keeps
    /// running; the parallel driver pairs this with
    /// [`Fabric::restore_tx_port`] around each parallel region.
    pub fn take_tx_port(&mut self, node: NodeId) -> TxPort {
        TxPort {
            busy: std::mem::take(&mut self.tx_busy[node.0]),
            drop_next: std::mem::take(&mut self.drop_next_from[node.0]),
            gray_seq: std::mem::take(&mut self.gray_seq[node.0]),
        }
    }

    /// Writes back `node`'s sender-side port state taken with
    /// [`Fabric::take_tx_port`].
    pub fn restore_tx_port(&mut self, node: NodeId, port: TxPort) {
        self.tx_busy[node.0] = port.busy;
        self.drop_next_from[node.0] = port.drop_next;
        self.gray_seq[node.0] = port.gray_seq;
    }

    /// Adds `n` frames to the lost tally (worker-side tx losses folded
    /// back into the master stats).
    pub fn note_lost(&mut self, n: u64) {
        self.stats.lost += n;
    }
}

/// Borrowed flag state shared by the sequential and worker tx paths.
#[derive(Clone, Copy)]
struct FlagView<'a> {
    link_up: &'a [bool],
    node_up: &'a [bool],
    switch_up: bool,
    degraded: &'a [bool],
    blocked: &'a [u64],
}

/// The one true sender-side transmission routine: loss-check order and
/// arithmetic here define both `Fabric::transmit` (sequential) and
/// `Fabric::tx_phase` (parallel workers), so the two paths cannot
/// drift apart.
fn tx_phase_inner(
    config: &FabricConfig,
    flags: FlagView<'_>,
    port: &mut TxPort,
    now: SimTime,
    src_id: NodeId,
    dst_id: NodeId,
    bytes: u32,
) -> TxOutcome {
    let src = src_id.0;
    let dst = dst_id.0;
    let reason = if !flags.node_up[src] {
        Some(LossReason::SrcNodeDown)
    } else if !flags.link_up[src] {
        Some(LossReason::SrcLinkDown)
    } else if port.drop_next > 0 {
        port.drop_next -= 1;
        Some(LossReason::Injected)
    } else if !flags.switch_up {
        Some(LossReason::SwitchDown)
    } else if !flags.link_up[dst] {
        Some(LossReason::DstLinkDown)
    } else if !flags.node_up[dst] {
        Some(LossReason::DstNodeDown)
    } else if flags.blocked[src] & (1 << dst) != 0 {
        Some(LossReason::Partitioned)
    } else {
        None
    };
    if let Some(reason) = reason {
        return TxOutcome::Lost { reason };
    }

    // Gray degradation: the path is nominally up, but frames crossing a
    // degraded endpoint suffer periodic silent loss. The counter lives
    // in the sender's port state so the decision is made entirely at
    // the source (the parallel replay assumes committed launches always
    // deliver) and is deterministic for a given frame sequence.
    let gray_endpoints =
        usize::from(flags.degraded[src]) + usize::from(flags.degraded[dst]);
    if gray_endpoints > 0 {
        port.gray_seq += 1;
        if port.gray_seq.is_multiple_of(GRAY_DROP_PERIOD) {
            return TxOutcome::Lost {
                reason: LossReason::LinkDegraded,
            };
        }
    }

    let wire = config.wire_time(bytes);

    // Sender serialization.
    let tx_start = port.busy.max(now);
    if tx_start.saturating_since(now) > config.max_tx_backlog {
        return TxOutcome::Lost {
            reason: LossReason::TxQueueOverrun,
        };
    }
    let tx_end = tx_start + wire;
    port.busy = tx_end;

    // Propagation along the topology's path for this pair, plus the
    // gray penalty per degraded endpoint crossed. Extra latency only
    // ever increases, so the lookahead floor on cross-node visibility
    // stays valid.
    TxOutcome::Launched {
        at_dst_port: tx_end
            + config.path_latency(src_id, dst_id)
            + GRAY_EXTRA_LATENCY * gray_endpoints as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(src: usize, dst: usize, bytes: u32) -> Frame<()> {
        Frame {
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            payload: (),
        }
    }

    #[test]
    fn ring_parameterizes_node_count_only() {
        for n in [4usize, 8, 16, 32] {
            let cfg = FabricConfig::ring(n);
            assert_eq!(cfg.nodes, n);
            // The star fabric's timing does not change with n.
            assert_eq!(cfg.lookahead(), FabricConfig::clan_four_nodes().lookahead());
        }
        let four = FabricConfig::clan_four_nodes();
        assert_eq!(four.nodes, 4);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn ring_rejects_single_node() {
        let _ = FabricConfig::ring(1);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn fat_tree_rejects_single_node() {
        let _ = FabricConfig::fat_tree(1, 4);
    }

    #[test]
    #[should_panic(expected = "2 nodes per leaf")]
    fn fat_tree_rejects_radix_one() {
        let _ = FabricConfig::fat_tree(8, 1);
    }

    #[test]
    #[should_panic(expected = "zero-latency")]
    fn builders_reject_zero_latency_stages() {
        let _ = FabricConfig {
            switch_latency: SimDuration::ZERO,
            ..FabricConfig::ring(4)
        }
        .validated();
    }

    #[test]
    #[should_panic(expected = "zero-latency spine")]
    fn fat_tree_rejects_zero_latency_spine() {
        let _ = FabricConfig {
            topology: Topology::FatTree {
                leaf_radix: 4,
                spine_latency: SimDuration::ZERO,
            },
            ..FabricConfig::ring(8)
        }
        .validated();
    }

    /// `lookahead()` must equal the true minimum one-way propagation
    /// over all node pairs for every builder — it is the causality
    /// floor of the conservative-parallel engine, so an overestimate
    /// would silently corrupt `--sim-threads` runs.
    #[test]
    fn lookahead_is_the_minimum_cross_node_path_for_every_builder() {
        let builders: Vec<FabricConfig> = vec![
            FabricConfig::ring(2),
            FabricConfig::ring(4),
            FabricConfig::ring(33),
            FabricConfig::fat_tree(4, 8),   // one (underfull) leaf
            FabricConfig::fat_tree(16, 8),  // two leaves
            FabricConfig::fat_tree(64, 8),  // eight leaves
            FabricConfig::fat_tree(9, 2),   // ragged last leaf
        ];
        for cfg in builders {
            let min_path = (0..cfg.nodes)
                .flat_map(|a| (0..cfg.nodes).map(move |b| (a, b)))
                .filter(|(a, b)| a != b)
                .map(|(a, b)| cfg.path_latency(NodeId(a), NodeId(b)))
                .min()
                .expect("builders guarantee >= 2 nodes");
            assert_eq!(
                cfg.lookahead(),
                min_path,
                "lookahead mismatch for {:?} n={}",
                cfg.topology,
                cfg.nodes
            );
        }
    }

    #[test]
    fn fat_tree_cross_leaf_paths_pay_the_spine() {
        let cfg = FabricConfig::fat_tree(16, 8);
        let same_leaf = cfg.path_latency(NodeId(0), NodeId(7));
        let cross_leaf = cfg.path_latency(NodeId(0), NodeId(8));
        // Same-leaf = star latency; cross-leaf adds two link hops, the
        // second leaf switch, and the spine.
        assert_eq!(same_leaf, FabricConfig::ring(16).lookahead());
        assert_eq!(
            cross_leaf,
            same_leaf
                + cfg.link_latency
                + cfg.link_latency
                + cfg.switch_latency
                + SimDuration::from_micros(2)
        );
        assert_eq!(cfg.lookahead(), same_leaf);
    }

    #[test]
    fn fat_tree_transmit_times_follow_the_topology() {
        let mut f = Fabric::new(FabricConfig::fat_tree(16, 8));
        // 1000B at 125MB/s = 8us serialization at each endpoint.
        let same = f
            .transmit(SimTime::ZERO, &frame(0, 1, 1000))
            .delivery_time()
            .expect("delivered");
        assert_eq!(same.as_nanos(), 8_000 + 5_000 + 1_000 + 5_000 + 8_000);
        let mut f = Fabric::new(FabricConfig::fat_tree(16, 8));
        let cross = f
            .transmit(SimTime::ZERO, &frame(0, 8, 1000))
            .delivery_time()
            .expect("delivered");
        // Four link hops, two leaf switches, the 2us spine.
        assert_eq!(
            cross.as_nanos(),
            8_000 + 4 * 5_000 + 2 * 1_000 + 2_000 + 8_000
        );
    }

    #[test]
    fn fat_tree_switch_down_kills_cross_and_same_leaf_forwarding() {
        let mut f = Fabric::new(FabricConfig::fat_tree(16, 8));
        f.set_switch_up(false);
        for dst in [1usize, 8] {
            let TransmitOutcome::Lost { reason } = f.transmit(SimTime::ZERO, &frame(0, dst, 100))
            else {
                panic!("switch down must lose the frame to n{dst}");
            };
            assert_eq!(reason, LossReason::SwitchDown);
        }
    }

    #[test]
    fn healthy_fabric_delivers_with_latency() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        let out = f.transmit(SimTime::ZERO, &frame(0, 1, 1000));
        let at = out.delivery_time().expect("delivered");
        // 1000B at 125MB/s = 8us wire time at each endpoint, plus
        // 5+1+5 us of hops.
        let expected_nanos = 8_000 + 5_000 + 1_000 + 5_000 + 8_000;
        assert_eq!(at.as_nanos(), expected_nanos);
        assert_eq!(f.stats().delivered, 1);
    }

    #[test]
    fn sender_link_down_is_sender_observable() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.set_link_up(NodeId(0), false);
        match f.transmit(SimTime::ZERO, &frame(0, 1, 100)) {
            TransmitOutcome::Lost { reason } => {
                assert_eq!(reason, LossReason::SrcLinkDown);
                assert!(reason.sender_observable());
            }
            other => panic!("expected loss, got {other:?}"),
        }
    }

    #[test]
    fn destination_conditions_are_not_sender_observable() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.set_link_up(NodeId(1), false);
        let TransmitOutcome::Lost { reason } = f.transmit(SimTime::ZERO, &frame(0, 1, 100))
        else {
            panic!("expected loss");
        };
        assert_eq!(reason, LossReason::DstLinkDown);
        assert!(!reason.sender_observable());

        f.set_link_up(NodeId(1), true);
        f.set_node_up(NodeId(1), false);
        let TransmitOutcome::Lost { reason } = f.transmit(SimTime::ZERO, &frame(0, 1, 100))
        else {
            panic!("expected loss");
        };
        assert_eq!(reason, LossReason::DstNodeDown);
    }

    #[test]
    fn switch_down_partitions_everything() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.set_switch_up(false);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(!f.path_up(NodeId(a), NodeId(b)));
                }
            }
        }
        let TransmitOutcome::Lost { reason } = f.transmit(SimTime::ZERO, &frame(2, 3, 64))
        else {
            panic!("expected loss");
        };
        assert_eq!(reason, LossReason::SwitchDown);
    }

    #[test]
    fn transmissions_serialize_on_the_sender_link() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        let a = f.transmit(SimTime::ZERO, &frame(0, 1, 125_000)).delivery_time().unwrap();
        let b = f.transmit(SimTime::ZERO, &frame(0, 2, 125_000)).delivery_time().unwrap();
        // Each frame needs 1ms of wire time; the second must queue behind
        // the first on the shared sender link.
        assert!(b > a);
        assert!(b.as_nanos() - a.as_nanos() >= 1_000_000);
    }

    #[test]
    fn tx_backlog_bound_drops_frames() {
        let mut cfg = FabricConfig::clan_four_nodes();
        cfg.max_tx_backlog = SimDuration::from_micros(10);
        let mut f = Fabric::new(cfg);
        // Saturate the sender link.
        let mut dropped = false;
        for _ in 0..100 {
            if let TransmitOutcome::Lost { reason } = f.transmit(SimTime::ZERO, &frame(0, 1, 10_000))
            {
                assert_eq!(reason, LossReason::TxQueueOverrun);
                dropped = true;
                break;
            }
        }
        assert!(dropped, "expected the bounded queue to overrun");
    }

    #[test]
    fn injected_drops_consume_exactly_count_frames() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.inject_drops_from(NodeId(0), 2);
        assert!(matches!(
            f.transmit(SimTime::ZERO, &frame(0, 1, 64)),
            TransmitOutcome::Lost {
                reason: LossReason::Injected
            }
        ));
        assert!(matches!(
            f.transmit(SimTime::ZERO, &frame(0, 1, 64)),
            TransmitOutcome::Lost {
                reason: LossReason::Injected
            }
        ));
        assert!(matches!(
            f.transmit(SimTime::ZERO, &frame(0, 1, 64)),
            TransmitOutcome::Delivered { .. }
        ));
    }

    #[test]
    fn crashed_sender_cannot_transmit() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.set_node_up(NodeId(0), false);
        let TransmitOutcome::Lost { reason } = f.transmit(SimTime::ZERO, &frame(0, 1, 64))
        else {
            panic!("expected loss");
        };
        assert_eq!(reason, LossReason::SrcNodeDown);
        assert!(reason.sender_observable());
    }

    #[test]
    fn recovery_restores_the_path() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.set_link_up(NodeId(3), false);
        assert!(!f.path_up(NodeId(0), NodeId(3)));
        f.set_link_up(NodeId(3), true);
        assert!(f.path_up(NodeId(0), NodeId(3)));
        assert!(matches!(
            f.transmit(SimTime::ZERO, &frame(0, 3, 64)),
            TransmitOutcome::Delivered { .. }
        ));
    }

    #[test]
    fn degraded_link_adds_latency_and_drops_periodically() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        let healthy = f
            .transmit(SimTime::ZERO, &frame(0, 1, 1000))
            .delivery_time()
            .unwrap();

        f.set_link_degraded(NodeId(0), true);
        assert!(f.link_degraded(NodeId(0)));
        // The path still reports healthy: gray faults are invisible to
        // link-level health checks.
        assert!(f.path_up(NodeId(0), NodeId(1)));

        let mut g = Fabric::new(FabricConfig::clan_four_nodes());
        g.set_link_degraded(NodeId(0), true);
        let gray = g
            .transmit(SimTime::ZERO, &frame(0, 1, 1000))
            .delivery_time()
            .unwrap();
        assert_eq!(
            gray.as_nanos() - healthy.as_nanos(),
            GRAY_EXTRA_LATENCY.as_nanos(),
            "one degraded endpoint adds exactly one gray penalty"
        );

        // Every GRAY_DROP_PERIOD-th frame across the gray link is lost,
        // silently: no sender-observable error.
        let mut losses = 0u32;
        let mut sent = 0u32;
        for i in 0..(2 * GRAY_DROP_PERIOD) {
            let t = SimTime::ZERO + SimDuration::from_millis(u64::from(i + 1));
            match g.transmit(t, &frame(0, 1, 64)) {
                TransmitOutcome::Lost { reason } => {
                    assert_eq!(reason, LossReason::LinkDegraded);
                    assert!(reason.silent());
                    assert!(!reason.sender_observable());
                    losses += 1;
                }
                TransmitOutcome::Delivered { .. } => {}
            }
            sent += 1;
        }
        assert_eq!(sent, 2 * GRAY_DROP_PERIOD);
        assert_eq!(losses, 2, "exactly one drop per period");
    }

    #[test]
    fn both_endpoints_degraded_doubles_the_penalty() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        let healthy = f
            .transmit(SimTime::ZERO, &frame(0, 1, 1000))
            .delivery_time()
            .unwrap();
        let mut g = Fabric::new(FabricConfig::clan_four_nodes());
        g.set_link_degraded(NodeId(0), true);
        g.set_link_degraded(NodeId(1), true);
        let gray = g
            .transmit(SimTime::ZERO, &frame(0, 1, 1000))
            .delivery_time()
            .unwrap();
        assert_eq!(
            gray.as_nanos() - healthy.as_nanos(),
            2 * GRAY_EXTRA_LATENCY.as_nanos()
        );
    }

    #[test]
    fn partial_partition_is_symmetric_silent_and_pairwise() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.set_pair_blocked(NodeId(0), NodeId(2), true);
        assert!(f.pair_blocked(NodeId(0), NodeId(2)));
        assert!(f.pair_blocked(NodeId(2), NodeId(0)));
        // Health checks still say the path is fine.
        assert!(f.path_up(NodeId(0), NodeId(2)));

        for (src, dst) in [(0usize, 2usize), (2, 0)] {
            let TransmitOutcome::Lost { reason } =
                f.transmit(SimTime::ZERO, &frame(src, dst, 64))
            else {
                panic!("expected {src}->{dst} to be partitioned");
            };
            assert_eq!(reason, LossReason::Partitioned);
            assert!(reason.silent());
            assert!(!reason.sender_observable());
        }
        // Unrelated pairs are untouched.
        assert!(matches!(
            f.transmit(SimTime::ZERO, &frame(0, 1, 64)),
            TransmitOutcome::Delivered { .. }
        ));
        assert!(matches!(
            f.transmit(SimTime::ZERO, &frame(1, 2, 64)),
            TransmitOutcome::Delivered { .. }
        ));

        f.set_pair_blocked(NodeId(0), NodeId(2), false);
        assert!(!f.pair_blocked(NodeId(0), NodeId(2)));
        assert!(matches!(
            f.transmit(SimTime::ZERO, &frame(0, 2, 64)),
            TransmitOutcome::Delivered { .. }
        ));
    }

    #[test]
    fn gray_state_rides_the_tx_port_through_take_and_restore() {
        let mut f = Fabric::new(FabricConfig::clan_four_nodes());
        f.set_link_degraded(NodeId(0), true);
        // Advance the counter partway through a period on the master.
        for i in 0..10u64 {
            let t = SimTime::ZERO + SimDuration::from_millis(i + 1);
            f.transmit(t, &frame(0, 1, 64));
        }
        let flags = f.flags();
        assert!(flags.degraded[0]);
        let mut port = f.take_tx_port(NodeId(0));
        assert_eq!(port.gray_seq, 10);

        // Worker-side phase continues the same counter.
        let cfg = f.config().clone();
        let mut lost = 0u32;
        for i in 0..GRAY_DROP_PERIOD {
            let t = SimTime::ZERO + SimDuration::from_millis(u64::from(i) + 100);
            if matches!(
                Fabric::tx_phase(&cfg, &flags, &mut port, t, &frame(0, 1, 64)),
                TxOutcome::Lost { .. }
            ) {
                lost += 1;
            }
        }
        assert_eq!(lost, 1);
        f.restore_tx_port(NodeId(0), port);
    }
}
