//! Deterministic discrete-event simulation substrate for cluster experiments.
//!
//! `simnet` provides the pieces every other crate in this workspace builds
//! on:
//!
//! * [`time`] — fixed-point simulated time ([`SimTime`]) and durations
//!   ([`SimDuration`]) with nanosecond resolution.
//! * [`engine`] — a generic event queue ([`Engine`]) with deterministic
//!   FIFO tie-breaking for simultaneous events.
//! * [`rng`] — a seeded random source ([`SimRng`]) so every simulation run
//!   is exactly reproducible.
//! * [`cpu`] — per-node CPU time accounting ([`CpuMeter`]).
//! * [`stats`] — throughput recording and time-series utilities used to
//!   produce the paper's figures.
//! * [`fabric`] — a model of the intra-cluster network: NICs, links and a
//!   single switch with latency, bandwidth, queueing and fail-stop faults.
//!
//! # Example
//!
//! ```
//! use simnet::{Engine, SimDuration, SimTime};
//!
//! let mut engine: Engine<&str> = Engine::new();
//! engine.schedule_in(SimDuration::from_millis(5), "hello");
//! engine.schedule_in(SimDuration::from_millis(1), "world");
//!
//! let (t, ev) = engine.pop().unwrap();
//! assert_eq!(ev, "world");
//! assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(1));
//! ```

pub mod cpu;
pub mod engine;
pub mod fabric;
pub mod rng;
pub mod stats;
pub mod time;

pub use cpu::CpuMeter;
pub use engine::{CancelToken, Engine};
pub use fabric::{
    Fabric, FabricConfig, FabricFlags, Frame, NodeId, Topology, TransmitOutcome, TxOutcome, TxPort,
};
pub use rng::SimRng;
pub use stats::{AvailabilityCounter, LatencyHistogram, ThroughputRecorder, TimeSeries};
pub use time::{SimDuration, SimTime};
