//! The discrete-event engine.
//!
//! [`Engine`] is a priority queue of `(time, event)` pairs. Events
//! scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO), which keeps simulations deterministic without
//! requiring the event type to be ordered.
//!
//! The queue is a hand-rolled 4-ary min-heap over 24-byte
//! `(time, seq, slot, idx)` keys, with the event payloads parked in a
//! free-listed slab beside it, rather than `std::collections::BinaryHeap`:
//!
//! - the comparator is inlined on the `(time, seq)` key pair (no `Ord`
//!   trait dispatch, no `Reverse` wrappers);
//! - sift operations move only the small `Copy` keys — large event
//!   payloads (frames carrying whole wire messages) never move once
//!   written into the slab, which matters because queues with tens of
//!   thousands of pending request-deadline timers make every push/pop a
//!   multi-level sift;
//! - the 4-ary layout halves the tree depth of a binary heap and keeps
//!   sibling comparisons inside one cache line of keys;
//! - heap, slab, and free list all recycle their storage, so the
//!   steady-state schedule/dispatch cycle performs no heap allocation;
//! - the batch primitives ([`Engine::pop_batch`], [`Engine::drain_until`])
//!   let driver loops dispatch same-instant bursts without re-checking
//!   the deadline per event or building intermediate tuples;
//! - a separate O(1) FIFO lane ([`Engine::schedule_fifo`]) absorbs
//!   monotone event streams — constant-offset timeouts like request
//!   deadlines and forward watchdogs, which otherwise dominate heap
//!   depth — and is merged with the heap on pop by the same
//!   `(time, seq)` total order, so delivery is indistinguishable from
//!   a single queue;
//! - [`Engine::schedule_cancellable`] returns a [`CancelToken`] that
//!   removes an event before delivery (lazy tombstones plus periodic
//!   compaction when dead entries outnumber live ones), so superseded
//!   retransmit timers stop transiting the queue.
//!
//! This queue is the hottest structure in the whole simulation — every
//! frame, timer, CPU completion, and client arrival passes through it.

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// Sentinel slot id for ordinary (non-cancellable) events.
const NO_SLOT: u32 = u32::MAX;

/// Slot value meaning "no live entry": cancelled or already delivered.
const SLOT_DEAD: u64 = u64::MAX;

/// Handle to a cancellable event returned by
/// [`Engine::schedule_cancellable`]. Passing it to [`Engine::cancel`]
/// removes the event before it is ever delivered; a token whose event
/// already fired (or was already cancelled) cancels nothing. Tokens are
/// cheap value types — storing a stale one is harmless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelToken {
    slot: u32,
    seq: u64,
}

/// A deterministic discrete-event queue over events of type `E`.
///
/// The engine tracks the current simulated time: popping an event advances
/// the clock to that event's timestamp. Scheduling an event in the past is
/// a programming error and panics.
///
/// # Example
///
/// ```
/// use simnet::{Engine, SimDuration};
///
/// let mut engine = Engine::new();
/// engine.schedule_in(SimDuration::from_secs(1), 42u32);
/// engine.schedule_in(SimDuration::from_secs(1), 43u32);
///
/// // Same timestamp: FIFO order.
/// assert_eq!(engine.pop().unwrap().1, 42);
/// assert_eq!(engine.pop().unwrap().1, 43);
/// assert!(engine.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    /// Monotone lane: events scheduled in non-decreasing time order via
    /// [`Engine::schedule_fifo`]. Kept sorted by construction, so both
    /// ends are O(1); merged with the heap on pop by `(time, seq)`.
    fifo: VecDeque<(SimTime, u64, E)>,
    /// 4-ary min-heap of small `Copy` keys; payloads live in `slab`.
    heap: Vec<HeapEntry>,
    /// Event payloads, indexed by `HeapEntry::idx`. `None` marks a free
    /// cell (tracked in `free`).
    slab: Vec<Option<E>>,
    /// Free slab cells, reused before the slab grows.
    free: Vec<u32>,
    dispatched: u64,
    /// `slot -> seq` of the live cancellable entry occupying the slot
    /// ([`SLOT_DEAD`] when free). Liveness of a popped entry is
    /// `slots[entry.slot] == entry.seq`; seqs are globally unique, so a
    /// recycled slot can never resurrect a cancelled entry.
    slots: Vec<u64>,
    free_slots: Vec<u32>,
    /// Cancelled entries still sitting in the heap (discarded, without
    /// being delivered or counted, when they reach the root).
    dead_pending: usize,
}

/// One queued event's ordering key: 24 bytes, `Copy`, so sift
/// operations never move the (potentially large) payload.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    /// [`NO_SLOT`] for ordinary events; otherwise the cancellation slot
    /// this entry is registered under.
    slot: u32,
    /// Slab cell holding the payload.
    idx: u32,
}

impl HeapEntry {
    /// Min-heap priority: earlier time first, ties broken by insertion
    /// order so simultaneous events stay FIFO.
    #[inline(always)]
    fn before(&self, other: &Self) -> bool {
        self.at < other.at || (self.at == other.at && self.seq < other.seq)
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine::with_capacity(0)
    }

    /// Creates an empty engine with pre-allocated queue storage, so the
    /// first burst of scheduling does not reallocate.
    pub fn with_capacity(capacity: usize) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            fifo: VecDeque::new(),
            heap: Vec::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            dispatched: 0,
            slots: Vec::new(),
            free_slots: Vec::new(),
            dead_pending: 0,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of events queued but not yet delivered (cancelled
    /// events are not counted, even while their heap entry lingers).
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len() - self.dead_pending + self.fifo.len()
    }

    /// Total events delivered so far.
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.push_entry(at, NO_SLOT, event);
    }

    /// Schedules `event` at `at` on the monotone lane: an O(1)
    /// alternative to [`Engine::schedule_at`] for event streams whose
    /// timestamps never decrease from one `schedule_fifo` call to the
    /// next (e.g. fixed-offset timeouts stamped `now + T`). Such events
    /// are already sorted, so keeping them out of the heap leaves it
    /// holding only the near-term working set — every sift gets
    /// shallower. Delivery order relative to heap events is unchanged:
    /// ties at one instant are still FIFO by schedule order.
    ///
    /// ```
    /// use simnet::{Engine, SimTime};
    ///
    /// let mut engine = Engine::new();
    /// engine.schedule_at(SimTime::from_secs(2), "heap");
    /// engine.schedule_fifo(SimTime::from_secs(1), "early");
    /// engine.schedule_fifo(SimTime::from_secs(3), "late");
    /// let order: Vec<_> = std::iter::from_fn(|| engine.pop()).map(|(_, e)| e).collect();
    /// assert_eq!(order, ["early", "heap", "late"]);
    /// ```
    ///
    /// An event breaking monotonicity (earlier than the lane's newest
    /// entry) is placed on the heap instead — same delivery order,
    /// ordinary cost — so monotonicity is a performance hint, never a
    /// correctness obligation.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_fifo(&mut self, at: SimTime, event: E) {
        if let Some(&(back, _, _)) = self.fifo.back() {
            if at < back {
                self.push_entry(at, NO_SLOT, event);
                return;
            }
        }
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.fifo.push_back((at, seq, event));
    }

    /// Schedules `event` at `at` like [`Engine::schedule_at`], returning
    /// a token that can later [`Engine::cancel`] it. A cancelled event
    /// is never delivered and never counts as dispatched — this is how
    /// superseded transport timers are kept out of the dispatch path.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_cancellable(&mut self, at: SimTime, event: E) -> CancelToken {
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                assert!(self.slots.len() < NO_SLOT as usize, "cancellable slots exhausted");
                self.slots.push(SLOT_DEAD);
                (self.slots.len() - 1) as u32
            }
        };
        let seq = self.seq; // push_entry consumes this seq
        self.slots[slot as usize] = seq;
        self.push_entry(at, slot, event);
        CancelToken { slot, seq }
    }

    /// Cancels a pending event scheduled with
    /// [`Engine::schedule_cancellable`]. Returns `true` if the event was
    /// still pending (it will now never be delivered); `false` if it had
    /// already fired or been cancelled. O(1): the heap entry is
    /// tombstoned and silently discarded when it surfaces.
    pub fn cancel(&mut self, token: CancelToken) -> bool {
        let live = self
            .slots
            .get(token.slot as usize)
            .is_some_and(|&s| s == token.seq);
        if live {
            self.release_slot(token.slot);
            self.dead_pending += 1;
            // Keep the heap at most half tombstones: workloads that
            // cancel nearly everything they schedule (request deadlines
            // superseded by completions milliseconds later) would
            // otherwise drag a mostly-dead heap around for the full
            // timer horizon, paying deep sifts on every live pop.
            if self.dead_pending * 2 > self.heap.len() && self.heap.len() >= 64 {
                self.compact();
            }
        }
        live
    }

    /// Drops every tombstoned entry and restores the heap property over
    /// the survivors. O(len), amortized O(1) per cancellation by the
    /// half-dead trigger in [`Engine::cancel`]. Pop order is a total
    /// order on `(time, seq)`, so rebuilding cannot reorder deliveries.
    fn compact(&mut self) {
        let Engine {
            heap,
            slab,
            free,
            slots,
            ..
        } = self;
        heap.retain(|s| {
            let live = s.slot == NO_SLOT || slots[s.slot as usize] == s.seq;
            if !live {
                slab[s.idx as usize] = None;
                free.push(s.idx);
            }
            live
        });
        self.dead_pending = 0;
        if self.heap.len() > 1 {
            for i in (0..=(self.heap.len() - 2) / 4).rev() {
                self.sift_down(i);
            }
        }
    }

    fn push_entry(&mut self, at: SimTime, slot: u32, event: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(event);
                i
            }
            None => {
                self.slab.push(Some(event));
                (self.slab.len() - 1) as u32
            }
        };
        self.heap.push(HeapEntry { at, seq, slot, idx });
        self.sift_up(self.heap.len() - 1);
    }

    /// Vacates slab cell `idx`, returning its payload.
    #[inline]
    fn take_event(&mut self, idx: u32) -> E {
        self.free.push(idx);
        self.slab[idx as usize].take().expect("slab cell occupied")
    }

    /// Marks `slot` free for reuse (on cancellation or delivery).
    #[inline]
    fn release_slot(&mut self, slot: u32) {
        self.slots[slot as usize] = SLOT_DEAD;
        self.free_slots.push(slot);
    }

    /// Whether a heap entry is still deliverable.
    #[inline(always)]
    fn is_live(&self, s: &HeapEntry) -> bool {
        s.slot == NO_SLOT || self.slots[s.slot as usize] == s.seq
    }

    /// Discards cancelled entries sitting at the heap root, so the root
    /// (if any) is a deliverable event.
    #[inline]
    fn prune_dead_roots(&mut self) {
        while let Some(s) = self.heap.first() {
            if self.is_live(s) {
                break;
            }
            let s = self.pop_root().expect("peeked root exists");
            drop(self.take_event(s.idx));
            self.dead_pending -= 1;
        }
    }

    /// Schedules `event` after a delay relative to the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next event, if any. May report the timestamp of
    /// a cancelled entry that has not been discarded yet — i.e. a lower
    /// bound on the next deliverable event's time.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        let h = self.heap.first().map(|s| s.at);
        let f = self.fifo.front().map(|&(at, _, _)| at);
        match (h, f) {
            (Some(h), Some(f)) => Some(h.min(f)),
            (x, y) => x.or(y),
        }
    }

    /// Ordering key `(time, seq)` of the next deliverable event, plus
    /// whether it sits on the monotone lane. Prunes cancelled heap
    /// entries, so the reported key is always live.
    #[inline]
    fn next_key(&mut self) -> Option<(SimTime, u64, bool)> {
        self.prune_dead_roots();
        let h = self.heap.first().map(|s| (s.at, s.seq));
        let f = self.fifo.front().map(|&(at, seq, _)| (at, seq));
        match (h, f) {
            (Some(h), Some(f)) => {
                if f < h {
                    Some((f.0, f.1, true))
                } else {
                    Some((h.0, h.1, false))
                }
            }
            (Some(h), None) => Some((h.0, h.1, false)),
            (None, Some(f)) => Some((f.0, f.1, true)),
            (None, None) => None,
        }
    }

    /// Removes the next deliverable event from whichever lane holds it.
    /// Caller must have just obtained `from_fifo` from
    /// [`Engine::next_key`] (the heap root is then known live).
    #[inline]
    fn take_next(&mut self, from_fifo: bool) -> E {
        if from_fifo {
            self.fifo.pop_front().expect("peeked fifo front").2
        } else {
            let s = self.pop_root().expect("peeked heap root");
            debug_assert!(self.is_live(&s));
            if s.slot != NO_SLOT {
                self.release_slot(s.slot);
            }
            self.take_event(s.idx)
        }
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Cancelled entries are discarded silently.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, _, from_fifo) = self.next_key()?;
        let event = self.take_next(from_fifo);
        debug_assert!(at >= self.now);
        self.now = at;
        self.dispatched += 1;
        Some((at, event))
    }

    /// Like [`Engine::pop`], but leaves events after `deadline` queued and
    /// instead advances the clock to `deadline` and returns `None`.
    ///
    /// This is the main driver loop primitive:
    ///
    /// ```
    /// use simnet::{Engine, SimDuration, SimTime};
    ///
    /// let mut engine = Engine::new();
    /// engine.schedule_in(SimDuration::from_secs(5), ());
    /// let deadline = SimTime::from_secs(2);
    /// while let Some((_t, _ev)) = engine.pop_before(deadline) {
    ///     // handle event
    /// }
    /// assert_eq!(engine.now(), deadline);
    /// assert_eq!(engine.pending(), 1);
    /// ```
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.next_key() {
            Some((at, _, from_fifo)) if at <= deadline => {
                let event = self.take_next(from_fifo);
                self.now = at;
                self.dispatched += 1;
                Some((at, event))
            }
            _ => {
                if self.now < deadline {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Pops the entire burst of events sharing the earliest timestamp
    /// into `buf` (appended in FIFO order), advances the clock to that
    /// instant, and returns it. Returns `None` (leaving `buf` untouched)
    /// when the queue is empty.
    ///
    /// ```
    /// use simnet::{Engine, SimTime};
    ///
    /// let mut engine = Engine::new();
    /// engine.schedule_at(SimTime::from_secs(1), "a");
    /// engine.schedule_at(SimTime::from_secs(1), "b");
    /// engine.schedule_at(SimTime::from_secs(2), "c");
    /// let mut burst = Vec::new();
    /// assert_eq!(engine.pop_batch(&mut burst), Some(SimTime::from_secs(1)));
    /// assert_eq!(burst, ["a", "b"]);
    /// ```
    pub fn pop_batch(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        let (t, _, from_fifo) = self.next_key()?;
        buf.push(self.take_next(from_fifo));
        self.dispatched += 1;
        while let Some((at, _, from_fifo)) = self.next_key() {
            if at != t {
                break;
            }
            buf.push(self.take_next(from_fifo));
            self.dispatched += 1;
        }
        self.now = t;
        Some(t)
    }

    /// Like [`Engine::pop_batch`], but only takes a burst at or before
    /// `deadline`; when the next deliverable event lies beyond it (or
    /// the queue is empty) the clock advances to `deadline` and `None`
    /// is returned. This is the batched driver-loop primitive:
    ///
    /// ```
    /// use simnet::{Engine, SimTime};
    ///
    /// let mut engine = Engine::new();
    /// engine.schedule_at(SimTime::from_secs(1), "a");
    /// engine.schedule_at(SimTime::from_secs(1), "b");
    /// engine.schedule_at(SimTime::from_secs(9), "late");
    /// let deadline = SimTime::from_secs(5);
    /// let mut burst = Vec::new();
    /// assert_eq!(engine.pop_batch_before(deadline, &mut burst), Some(SimTime::from_secs(1)));
    /// assert_eq!(burst, ["a", "b"]);
    /// burst.clear();
    /// assert_eq!(engine.pop_batch_before(deadline, &mut burst), None);
    /// assert_eq!(engine.now(), deadline);
    /// assert_eq!(engine.pending(), 1);
    /// ```
    pub fn pop_batch_before(&mut self, deadline: SimTime, buf: &mut Vec<E>) -> Option<SimTime> {
        match self.next_key() {
            Some((at, _, _)) if at <= deadline => self.pop_batch(buf),
            _ => {
                if self.now < deadline {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Dispatches every event up to and including `deadline` straight to
    /// `f`, advancing the clock through each timestamp and leaving it at
    /// `deadline`. Equivalent to the `pop_before` loop, without the
    /// per-event deadline re-check and `Option<(SimTime, E)>` plumbing.
    ///
    /// `f` must not schedule into the engine (it does not have access);
    /// use this for terminal dispatch such as draining into a recorder.
    pub fn drain_until<F: FnMut(SimTime, E)>(&mut self, deadline: SimTime, mut f: F) {
        while let Some((at, _, from_fifo)) = self.next_key() {
            if at > deadline {
                break;
            }
            let event = self.take_next(from_fifo);
            self.now = at;
            self.dispatched += 1;
            f(at, event);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Burns one sequence number without queueing anything, returning it.
    ///
    /// The conservative-parallel driver executes some events on worker
    /// threads without ever inserting them into this engine; allocating
    /// their seqs here (at exactly the point the sequential loop would
    /// have scheduled them) keeps every later event's `(time, seq)` key
    /// identical to the sequential run's.
    #[inline]
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Pops every deliverable event strictly before `bound` into `out`
    /// as `(time, seq, event)` triples, in delivery order. Unlike
    /// [`Engine::pop_before`] this neither advances the clock past the
    /// popped events' timestamps beyond what popping implies nor counts
    /// the events as dispatched — the parallel window driver re-plays
    /// the window and accounts for dispatch itself.
    pub fn pop_window(&mut self, bound: SimTime, out: &mut Vec<(SimTime, u64, E)>) {
        while let Some((at, seq, from_fifo)) = self.next_key() {
            if at >= bound {
                break;
            }
            let event = self.take_next(from_fifo);
            debug_assert!(at >= self.now);
            self.now = at;
            out.push((at, seq, event));
        }
    }

    /// Advances the clock to `t` if `t` is later (no-op otherwise).
    /// Used by drivers that deliver events outside [`Engine::pop`].
    #[inline]
    pub fn advance_now(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Adds `n` to the dispatched-event count, for drivers that deliver
    /// events popped via [`Engine::pop_window`] (which does not count)
    /// or executed outside the engine entirely.
    #[inline]
    pub fn note_dispatched(&mut self, n: u64) {
        self.dispatched += n;
    }

    /// Discards all queued events without delivering them. The backing
    /// allocation is retained for reuse.
    pub fn clear(&mut self) {
        self.fifo.clear();
        self.heap.clear();
        self.slab.clear();
        self.free.clear();
        self.slots.clear();
        self.free_slots.clear();
        self.dead_pending = 0;
    }

    /// Removes the minimum element, restoring the heap property.
    #[inline]
    fn pop_root(&mut self) -> Option<HeapEntry> {
        let len = self.heap.len();
        if len == 0 {
            return None;
        }
        let root = self.heap.swap_remove(0);
        if self.heap.len() > 1 {
            self.sift_down(0);
        }
        Some(root)
    }

    /// Moves `heap[idx]` towards the root until its parent is no later.
    /// Hole technique: parents shift down into the hole and the entry is
    /// written once at its final position.
    #[inline]
    fn sift_up(&mut self, mut idx: usize) {
        let entry = self.heap[idx];
        while idx > 0 {
            let parent = (idx - 1) / 4;
            if entry.before(&self.heap[parent]) {
                self.heap[idx] = self.heap[parent];
                idx = parent;
            } else {
                break;
            }
        }
        self.heap[idx] = entry;
    }

    /// Moves `heap[idx]` towards the leaves until no child is earlier.
    /// 4-ary: half the depth of a binary heap, and the up-to-four child
    /// keys scanned per level sit adjacent in memory.
    #[inline]
    fn sift_down(&mut self, mut idx: usize) {
        let len = self.heap.len();
        let entry = self.heap[idx];
        loop {
            let first = 4 * idx + 1;
            if first >= len {
                break;
            }
            let last = (first + 4).min(len);
            let mut best = first;
            for c in first + 1..last {
                if self.heap[c].before(&self.heap[best]) {
                    best = c;
                }
            }
            if self.heap[best].before(&entry) {
                self.heap[idx] = self.heap[best];
                idx = best;
            } else {
                break;
            }
        }
        self.heap[idx] = entry;
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(3), "c");
        e.schedule_at(SimTime::from_secs(1), "a");
        e.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut e = Engine::new();
        for i in 0..100 {
            e.schedule_at(SimTime::from_secs(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(9), ());
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(5), ());
        e.pop();
        e.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn pop_before_respects_deadline_and_advances_clock() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(10), 2);
        let deadline = SimTime::from_secs(5);
        let mut seen = vec![];
        while let Some((_, ev)) = e.pop_before(deadline) {
            seen.push(ev);
        }
        assert_eq!(seen, [1]);
        assert_eq!(e.now(), deadline);
        assert_eq!(e.pending(), 1);
        // The remaining event is still deliverable later.
        assert_eq!(e.pop_before(SimTime::from_secs(20)).unwrap().1, 2);
    }

    #[test]
    fn dispatched_counts_deliveries() {
        let mut e = Engine::new();
        e.schedule_in(SimDuration::from_secs(1), ());
        e.schedule_in(SimDuration::from_secs(2), ());
        e.pop();
        assert_eq!(e.dispatched(), 1);
        e.pop();
        assert_eq!(e.dispatched(), 2);
    }

    #[test]
    fn pop_batch_takes_exactly_the_earliest_instant() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(2), 20);
        e.schedule_at(SimTime::from_secs(1), 10);
        e.schedule_at(SimTime::from_secs(1), 11);
        e.schedule_at(SimTime::from_secs(1), 12);
        let mut burst = Vec::new();
        assert_eq!(e.pop_batch(&mut burst), Some(SimTime::from_secs(1)));
        assert_eq!(burst, [10, 11, 12]);
        assert_eq!(e.now(), SimTime::from_secs(1));
        assert_eq!(e.pending(), 1);
        assert_eq!(e.dispatched(), 3);
        burst.clear();
        assert_eq!(e.pop_batch(&mut burst), Some(SimTime::from_secs(2)));
        assert_eq!(burst, [20]);
        assert_eq!(e.pop_batch(&mut burst), None);
    }

    #[test]
    fn drain_until_matches_pop_before_loop() {
        let build = || {
            let mut e = Engine::new();
            for i in 0u64..50 {
                e.schedule_at(SimTime::from_nanos((i * 7) % 13), i);
            }
            e
        };
        let mut via_pop = Vec::new();
        let mut a = build();
        let deadline = SimTime::from_nanos(9);
        while let Some((t, ev)) = a.pop_before(deadline) {
            via_pop.push((t, ev));
        }
        let mut via_drain = Vec::new();
        let mut b = build();
        b.drain_until(deadline, |t, ev| via_drain.push((t, ev)));
        assert_eq!(via_pop, via_drain);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.pending(), b.pending());
        assert_eq!(a.dispatched(), b.dispatched());
    }

    #[test]
    fn cancelled_event_is_never_delivered() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), "a");
        let tok = e.schedule_cancellable(SimTime::from_secs(2), "cancelled");
        e.schedule_at(SimTime::from_secs(3), "c");
        assert_eq!(e.pending(), 3);
        assert!(e.cancel(tok));
        assert_eq!(e.pending(), 2);
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, ["a", "c"]);
        assert_eq!(e.dispatched(), 2);
    }

    #[test]
    fn cancel_after_fire_returns_false() {
        let mut e = Engine::new();
        let tok = e.schedule_cancellable(SimTime::from_secs(1), ());
        assert_eq!(e.pop().unwrap().0, SimTime::from_secs(1));
        assert!(!e.cancel(tok));
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut e = Engine::new();
        let tok = e.schedule_cancellable(SimTime::from_secs(1), ());
        assert!(e.cancel(tok));
        assert!(!e.cancel(tok));
        assert_eq!(e.pending(), 0);
        assert!(e.pop().is_none());
    }

    #[test]
    fn stale_token_does_not_cancel_slot_reuser() {
        let mut e = Engine::new();
        let old = e.schedule_cancellable(SimTime::from_secs(1), "old");
        assert!(e.cancel(old));
        // The freed slot is reused by the next cancellable entry; the old
        // token must not be able to kill it.
        let _new = e.schedule_cancellable(SimTime::from_secs(2), "new");
        assert!(!e.cancel(old));
        assert_eq!(e.pop().unwrap().1, "new");
    }

    #[test]
    fn fifo_order_is_unaffected_by_interleaved_cancellations() {
        let mut e = Engine::new();
        let t = SimTime::from_secs(4);
        let mut tokens = Vec::new();
        for i in 0..20 {
            if i % 3 == 0 {
                tokens.push(e.schedule_cancellable(t, i));
            } else {
                e.schedule_at(t, i);
            }
        }
        for tok in tokens {
            assert!(e.cancel(tok));
        }
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, v)| v).collect();
        let expect: Vec<_> = (0..20).filter(|i| i % 3 != 0).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn pop_batch_and_drain_skip_cancelled_entries() {
        let build = |cancel: bool| {
            let mut e = Engine::new();
            e.schedule_at(SimTime::from_secs(1), 0);
            let tok = e.schedule_cancellable(SimTime::from_secs(1), 99);
            e.schedule_at(SimTime::from_secs(1), 1);
            let tok2 = e.schedule_cancellable(SimTime::from_secs(2), 98);
            e.schedule_at(SimTime::from_secs(3), 2);
            if cancel {
                assert!(e.cancel(tok));
                assert!(e.cancel(tok2));
            }
            e
        };
        let mut e = build(true);
        let mut burst = Vec::new();
        assert_eq!(e.pop_batch(&mut burst), Some(SimTime::from_secs(1)));
        assert_eq!(burst, [0, 1]);
        // The instant-2 entry is cancelled, so the next burst is at t=3.
        burst.clear();
        assert_eq!(e.pop_batch(&mut burst), Some(SimTime::from_secs(3)));
        assert_eq!(burst, [2]);
        assert_eq!(e.dispatched(), 3);

        let mut d = build(true);
        let mut seen = Vec::new();
        d.drain_until(SimTime::from_secs(10), |t, ev| seen.push((t, ev)));
        assert_eq!(
            seen,
            [
                (SimTime::from_secs(1), 0),
                (SimTime::from_secs(1), 1),
                (SimTime::from_secs(3), 2)
            ]
        );
    }

    #[test]
    fn pop_batch_before_advances_past_cancelled_tail() {
        let mut e = Engine::new();
        let tok = e.schedule_cancellable(SimTime::from_secs(1), ());
        assert!(e.cancel(tok));
        let mut burst = Vec::new();
        let deadline = SimTime::from_secs(5);
        assert_eq!(e.pop_batch_before(deadline, &mut burst), None);
        assert!(burst.is_empty());
        assert_eq!(e.now(), deadline);
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn uncancelled_cancellable_events_deliver_normally() {
        let mut e = Engine::new();
        let _tok = e.schedule_cancellable(SimTime::from_secs(1), "kept");
        assert_eq!(e.pop(), Some((SimTime::from_secs(1), "kept")));
        assert_eq!(e.dispatched(), 1);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut e = Engine::with_capacity(64);
        for i in 0..40 {
            e.schedule_at(SimTime::from_secs(i), i);
        }
        let cap = e.heap.capacity();
        e.clear();
        assert_eq!(e.pending(), 0);
        assert!(e.heap.capacity() >= cap);
    }

    #[test]
    fn fifo_lane_merges_with_heap_in_global_order() {
        // Interleave heap and monotone-lane scheduling; delivery must
        // follow the single global (time, insertion-seq) order exactly
        // as if everything had gone through the heap.
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(2), "heap-2");
        e.schedule_fifo(SimTime::from_secs(1), "fifo-1");
        e.schedule_at(SimTime::from_secs(3), "heap-3a");
        e.schedule_fifo(SimTime::from_secs(3), "fifo-3");
        e.schedule_at(SimTime::from_secs(3), "heap-3b");
        assert_eq!(e.pending(), 5);
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, ["fifo-1", "heap-2", "heap-3a", "fifo-3", "heap-3b"]);
        assert_eq!(e.dispatched(), 5);
    }

    #[test]
    fn fifo_out_of_order_push_falls_back_to_heap() {
        // The monotone lane is a performance hint, not a contract: a
        // timestamp below the lane's back is routed to the heap and
        // still delivers in time order.
        let mut e = Engine::new();
        e.schedule_fifo(SimTime::from_secs(10), "late");
        e.schedule_fifo(SimTime::from_secs(5), "early");
        assert_eq!(e.pending(), 2);
        assert_eq!(e.pop(), Some((SimTime::from_secs(5), "early")));
        assert_eq!(e.pop(), Some((SimTime::from_secs(10), "late")));
    }

    #[test]
    fn fifo_lane_ties_preserve_submission_order() {
        let mut e = Engine::new();
        let t = SimTime::from_secs(4);
        for i in 0..50 {
            if i % 2 == 0 {
                e.schedule_at(t, i);
            } else {
                e.schedule_fifo(t, i);
            }
        }
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn batch_and_drain_cover_the_fifo_lane() {
        let mut e = Engine::new();
        e.schedule_fifo(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(1), 2);
        e.schedule_fifo(SimTime::from_secs(2), 3);
        let mut burst = Vec::new();
        assert_eq!(e.pop_batch(&mut burst), Some(SimTime::from_secs(1)));
        assert_eq!(burst, [1, 2]);
        let mut rest = Vec::new();
        e.drain_until(SimTime::from_secs(5), |_, ev| rest.push(ev));
        assert_eq!(rest, [3]);
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn clear_empties_the_fifo_lane() {
        let mut e = Engine::new();
        e.schedule_fifo(SimTime::from_secs(1), ());
        e.schedule_at(SimTime::from_secs(2), ());
        e.clear();
        assert_eq!(e.pending(), 0);
        assert_eq!(e.pop(), None);
    }

    #[test]
    fn pop_window_excludes_event_exactly_at_bound() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_nanos(10), "in");
        e.schedule_at(SimTime::from_nanos(99), "edge-in");
        e.schedule_at(SimTime::from_nanos(100), "at-bound");
        let mut out = Vec::new();
        e.pop_window(SimTime::from_nanos(100), &mut out);
        let names: Vec<_> = out.iter().map(|(_, _, v)| *v).collect();
        assert_eq!(names, ["in", "edge-in"]);
        // The bound event stays queued for the next window and the
        // clock sits at the last drained timestamp, not the bound.
        assert_eq!(e.now(), SimTime::from_nanos(99));
        assert_eq!(e.pop(), Some((SimTime::from_nanos(100), "at-bound")));
    }

    #[test]
    fn pop_window_does_not_count_dispatched() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_nanos(1), ());
        e.schedule_at(SimTime::from_nanos(2), ());
        let mut out = Vec::new();
        e.pop_window(SimTime::from_nanos(10), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(e.dispatched(), 0);
        e.note_dispatched(out.len() as u64);
        assert_eq!(e.dispatched(), 2);
    }

    #[test]
    fn pop_window_keeps_fifo_order_for_ties() {
        let mut e = Engine::new();
        for i in 0..50 {
            e.schedule_at(SimTime::from_nanos(5), i);
        }
        let mut out = Vec::new();
        e.pop_window(SimTime::from_nanos(6), &mut out);
        let order: Vec<_> = out.iter().map(|(_, _, v)| *v).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
        // Seqs are strictly increasing: the replay merge relies on the
        // (time, seq) key being a total order identical to pop order.
        assert!(out.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn alloc_seq_burns_the_same_seq_a_schedule_would_have() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(SimTime::from_nanos(1), "x");
        let burned = e.alloc_seq();
        e.schedule_at(SimTime::from_nanos(1), "y");
        let mut out = Vec::new();
        e.pop_window(SimTime::from_nanos(2), &mut out);
        // "x" took seq 0, the burn took 1, "y" took 2: a worker-local
        // event slotted at the burned seq sorts between them.
        assert_eq!(out[0].1, burned - 1);
        assert_eq!(out[1].1, burned + 1);
    }
}
