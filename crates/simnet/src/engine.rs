//! The discrete-event engine.
//!
//! [`Engine`] is a priority queue of `(time, event)` pairs. Events
//! scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO), which keeps simulations deterministic without
//! requiring the event type to be ordered.
//!
//! The queue is a hand-rolled `Vec`-backed binary min-heap rather than
//! `std::collections::BinaryHeap`: the comparator is inlined on the
//! `(time, seq)` key pair (no `Ord` trait dispatch, no `Reverse`
//! wrappers), the backing storage is reused across [`Engine::clear`],
//! and the batch primitives ([`Engine::pop_batch`],
//! [`Engine::drain_until`]) let driver loops dispatch same-instant
//! bursts without re-checking the deadline per event or building
//! intermediate tuples. This queue is the hottest structure in the
//! whole simulation — every frame, timer, CPU completion, and client
//! arrival passes through it.

use crate::time::{SimDuration, SimTime};

/// A deterministic discrete-event queue over events of type `E`.
///
/// The engine tracks the current simulated time: popping an event advances
/// the clock to that event's timestamp. Scheduling an event in the past is
/// a programming error and panics.
///
/// # Example
///
/// ```
/// use simnet::{Engine, SimDuration};
///
/// let mut engine = Engine::new();
/// engine.schedule_in(SimDuration::from_secs(1), 42u32);
/// engine.schedule_in(SimDuration::from_secs(1), 43u32);
///
/// // Same timestamp: FIFO order.
/// assert_eq!(engine.pop().unwrap().1, 42);
/// assert_eq!(engine.pop().unwrap().1, 43);
/// assert!(engine.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    heap: Vec<Scheduled<E>>,
    dispatched: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Scheduled<E> {
    /// Min-heap priority: earlier time first, ties broken by insertion
    /// order so simultaneous events stay FIFO.
    #[inline(always)]
    fn before(&self, other: &Self) -> bool {
        self.at < other.at || (self.at == other.at && self.seq < other.seq)
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine::with_capacity(0)
    }

    /// Creates an empty engine with pre-allocated queue storage, so the
    /// first burst of scheduling does not reallocate.
    pub fn with_capacity(capacity: usize) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            heap: Vec::with_capacity(capacity),
            dispatched: 0,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of events queued but not yet delivered.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Total events delivered so far.
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
        self.sift_up(self.heap.len() - 1);
    }

    /// Schedules `event` after a delay relative to the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|s| s.at)
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.pop_root()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        self.dispatched += 1;
        Some((s.at, s.event))
    }

    /// Like [`Engine::pop`], but leaves events after `deadline` queued and
    /// instead advances the clock to `deadline` and returns `None`.
    ///
    /// This is the main driver loop primitive:
    ///
    /// ```
    /// use simnet::{Engine, SimDuration, SimTime};
    ///
    /// let mut engine = Engine::new();
    /// engine.schedule_in(SimDuration::from_secs(5), ());
    /// let deadline = SimTime::from_secs(2);
    /// while let Some((_t, _ev)) = engine.pop_before(deadline) {
    ///     // handle event
    /// }
    /// assert_eq!(engine.now(), deadline);
    /// assert_eq!(engine.pending(), 1);
    /// ```
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.heap.first() {
            Some(s) if s.at <= deadline => self.pop(),
            _ => {
                if self.now < deadline {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Pops the entire burst of events sharing the earliest timestamp
    /// into `buf` (appended in FIFO order), advances the clock to that
    /// instant, and returns it. Returns `None` (leaving `buf` untouched)
    /// when the queue is empty.
    ///
    /// ```
    /// use simnet::{Engine, SimTime};
    ///
    /// let mut engine = Engine::new();
    /// engine.schedule_at(SimTime::from_secs(1), "a");
    /// engine.schedule_at(SimTime::from_secs(1), "b");
    /// engine.schedule_at(SimTime::from_secs(2), "c");
    /// let mut burst = Vec::new();
    /// assert_eq!(engine.pop_batch(&mut burst), Some(SimTime::from_secs(1)));
    /// assert_eq!(burst, ["a", "b"]);
    /// ```
    pub fn pop_batch(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        let t = self.peek_time()?;
        while let Some(s) = self.heap.first() {
            if s.at != t {
                break;
            }
            let s = self.pop_root().expect("peeked root exists");
            self.dispatched += 1;
            buf.push(s.event);
        }
        self.now = t;
        Some(t)
    }

    /// Dispatches every event up to and including `deadline` straight to
    /// `f`, advancing the clock through each timestamp and leaving it at
    /// `deadline`. Equivalent to the `pop_before` loop, without the
    /// per-event deadline re-check and `Option<(SimTime, E)>` plumbing.
    ///
    /// `f` must not schedule into the engine (it does not have access);
    /// use this for terminal dispatch such as draining into a recorder.
    pub fn drain_until<F: FnMut(SimTime, E)>(&mut self, deadline: SimTime, mut f: F) {
        while let Some(s) = self.heap.first() {
            if s.at > deadline {
                break;
            }
            let s = self.pop_root().expect("peeked root exists");
            self.now = s.at;
            self.dispatched += 1;
            f(s.at, s.event);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Discards all queued events without delivering them. The backing
    /// allocation is retained for reuse.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Removes the minimum element, restoring the heap property.
    #[inline]
    fn pop_root(&mut self) -> Option<Scheduled<E>> {
        let len = self.heap.len();
        if len == 0 {
            return None;
        }
        let root = self.heap.swap_remove(0);
        if self.heap.len() > 1 {
            self.sift_down(0);
        }
        Some(root)
    }

    #[inline]
    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.heap[idx].before(&self.heap[parent]) {
                self.heap.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut idx: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * idx + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < len && self.heap[right].before(&self.heap[left]) {
                smallest = right;
            }
            if self.heap[smallest].before(&self.heap[idx]) {
                self.heap.swap(idx, smallest);
                idx = smallest;
            } else {
                break;
            }
        }
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(3), "c");
        e.schedule_at(SimTime::from_secs(1), "a");
        e.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut e = Engine::new();
        for i in 0..100 {
            e.schedule_at(SimTime::from_secs(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(9), ());
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(5), ());
        e.pop();
        e.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn pop_before_respects_deadline_and_advances_clock() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(10), 2);
        let deadline = SimTime::from_secs(5);
        let mut seen = vec![];
        while let Some((_, ev)) = e.pop_before(deadline) {
            seen.push(ev);
        }
        assert_eq!(seen, [1]);
        assert_eq!(e.now(), deadline);
        assert_eq!(e.pending(), 1);
        // The remaining event is still deliverable later.
        assert_eq!(e.pop_before(SimTime::from_secs(20)).unwrap().1, 2);
    }

    #[test]
    fn dispatched_counts_deliveries() {
        let mut e = Engine::new();
        e.schedule_in(SimDuration::from_secs(1), ());
        e.schedule_in(SimDuration::from_secs(2), ());
        e.pop();
        assert_eq!(e.dispatched(), 1);
        e.pop();
        assert_eq!(e.dispatched(), 2);
    }

    #[test]
    fn pop_batch_takes_exactly_the_earliest_instant() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(2), 20);
        e.schedule_at(SimTime::from_secs(1), 10);
        e.schedule_at(SimTime::from_secs(1), 11);
        e.schedule_at(SimTime::from_secs(1), 12);
        let mut burst = Vec::new();
        assert_eq!(e.pop_batch(&mut burst), Some(SimTime::from_secs(1)));
        assert_eq!(burst, [10, 11, 12]);
        assert_eq!(e.now(), SimTime::from_secs(1));
        assert_eq!(e.pending(), 1);
        assert_eq!(e.dispatched(), 3);
        burst.clear();
        assert_eq!(e.pop_batch(&mut burst), Some(SimTime::from_secs(2)));
        assert_eq!(burst, [20]);
        assert_eq!(e.pop_batch(&mut burst), None);
    }

    #[test]
    fn drain_until_matches_pop_before_loop() {
        let build = || {
            let mut e = Engine::new();
            for i in 0u64..50 {
                e.schedule_at(SimTime::from_nanos((i * 7) % 13), i);
            }
            e
        };
        let mut via_pop = Vec::new();
        let mut a = build();
        let deadline = SimTime::from_nanos(9);
        while let Some((t, ev)) = a.pop_before(deadline) {
            via_pop.push((t, ev));
        }
        let mut via_drain = Vec::new();
        let mut b = build();
        b.drain_until(deadline, |t, ev| via_drain.push((t, ev)));
        assert_eq!(via_pop, via_drain);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.pending(), b.pending());
        assert_eq!(a.dispatched(), b.dispatched());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut e = Engine::with_capacity(64);
        for i in 0..40 {
            e.schedule_at(SimTime::from_secs(i), i);
        }
        let cap = e.heap.capacity();
        e.clear();
        assert_eq!(e.pending(), 0);
        assert!(e.heap.capacity() >= cap);
    }
}
