//! The discrete-event engine.
//!
//! [`Engine`] is a priority queue of `(time, event)` pairs. Events
//! scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO), which keeps simulations deterministic without
//! requiring the event type to be ordered.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A deterministic discrete-event queue over events of type `E`.
///
/// The engine tracks the current simulated time: popping an event advances
/// the clock to that event's timestamp. Scheduling an event in the past is
/// a programming error and panics.
///
/// # Example
///
/// ```
/// use simnet::{Engine, SimDuration};
///
/// let mut engine = Engine::new();
/// engine.schedule_in(SimDuration::from_secs(1), 42u32);
/// engine.schedule_in(SimDuration::from_secs(1), 43u32);
///
/// // Same timestamp: FIFO order.
/// assert_eq!(engine.pop().unwrap().1, 42);
/// assert_eq!(engine.pop().unwrap().1, 43);
/// assert!(engine.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled<E>>,
    dispatched: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Reverse ordering so the BinaryHeap (a max-heap) pops the earliest event;
// ties broken by ascending sequence number for FIFO delivery.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Engine<E> {
    /// Creates an empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            dispatched: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of events queued but not yet delivered.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Total events delivered so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        self.dispatched += 1;
        Some((s.at, s.event))
    }

    /// Like [`Engine::pop`], but leaves events after `deadline` queued and
    /// instead advances the clock to `deadline` and returns `None`.
    ///
    /// This is the main driver loop primitive:
    ///
    /// ```
    /// use simnet::{Engine, SimDuration, SimTime};
    ///
    /// let mut engine = Engine::new();
    /// engine.schedule_in(SimDuration::from_secs(5), ());
    /// let deadline = SimTime::from_secs(2);
    /// while let Some((_t, _ev)) = engine.pop_before(deadline) {
    ///     // handle event
    /// }
    /// assert_eq!(engine.now(), deadline);
    /// assert_eq!(engine.pending(), 1);
    /// ```
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => {
                if self.now < deadline {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Discards all queued events without delivering them.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(3), "c");
        e.schedule_at(SimTime::from_secs(1), "a");
        e.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut e = Engine::new();
        for i in 0..100 {
            e.schedule_at(SimTime::from_secs(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(9), ());
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(5), ());
        e.pop();
        e.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn pop_before_respects_deadline_and_advances_clock() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(10), 2);
        let deadline = SimTime::from_secs(5);
        let mut seen = vec![];
        while let Some((_, ev)) = e.pop_before(deadline) {
            seen.push(ev);
        }
        assert_eq!(seen, [1]);
        assert_eq!(e.now(), deadline);
        assert_eq!(e.pending(), 1);
        // The remaining event is still deliverable later.
        assert_eq!(e.pop_before(SimTime::from_secs(20)).unwrap().1, 2);
    }

    #[test]
    fn dispatched_counts_deliveries() {
        let mut e = Engine::new();
        e.schedule_in(SimDuration::from_secs(1), ());
        e.schedule_in(SimDuration::from_secs(2), ());
        e.pop();
        assert_eq!(e.dispatched(), 1);
        e.pop();
        assert_eq!(e.dispatched(), 2);
    }
}
