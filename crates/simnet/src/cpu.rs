//! Per-node CPU time accounting.
//!
//! Each simulated node has a single CPU modeled as a busy-until register:
//! work items are charged sequentially, and the completion time of a piece
//! of work is when the CPU finishes everything charged before it plus the
//! work itself. Peak throughput of a node therefore emerges from the sum
//! of per-operation costs — the same way it does on real hardware.

use crate::time::{SimDuration, SimTime};

/// A single-core CPU with FIFO work accounting.
///
/// # Example
///
/// ```
/// use simnet::{CpuMeter, SimDuration, SimTime};
///
/// let mut cpu = CpuMeter::new();
/// let now = SimTime::from_secs(1);
/// let done1 = cpu.charge(now, SimDuration::from_millis(2));
/// let done2 = cpu.charge(now, SimDuration::from_millis(3));
/// assert_eq!(done1, now + SimDuration::from_millis(2));
/// assert_eq!(done2, now + SimDuration::from_millis(5)); // queued behind the first
/// ```
#[derive(Debug, Clone)]
pub struct CpuMeter {
    busy_until: SimTime,
    total_busy: SimDuration,
    /// Every charged cost is multiplied by this factor — a gray
    /// "slow-but-alive" node runs at `1/throttle` speed while still
    /// answering everything (heartbeats included), so failure detectors
    /// that only check liveness never fire.
    throttle: u32,
}

impl Default for CpuMeter {
    fn default() -> Self {
        CpuMeter {
            busy_until: SimTime::ZERO,
            total_busy: SimDuration::ZERO,
            throttle: 1,
        }
    }
}

impl CpuMeter {
    /// A CPU that is idle at time zero.
    pub fn new() -> Self {
        CpuMeter::default()
    }

    /// Charges `cost` of CPU work submitted at `now` and returns the time
    /// the work completes. Work queues FIFO behind anything already
    /// charged. While throttled (see [`CpuMeter::set_throttle`]) the
    /// effective cost is `cost * throttle`.
    pub fn charge(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let cost = cost * u64::from(self.throttle);
        let start = self.busy_until.max(now);
        self.busy_until = start + cost;
        self.total_busy += cost;
        self.busy_until
    }

    /// Sets the slowdown multiplier applied to every subsequent charge
    /// (gray-fault injection). `1` restores full speed. Already-queued
    /// work is unaffected — the throttle changes how fast new work
    /// executes, not history.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero (a stopped CPU is a crash, not a
    /// throttle).
    pub fn set_throttle(&mut self, factor: u32) {
        assert!(factor > 0, "throttle factor must be at least 1");
        self.throttle = factor;
    }

    /// The current slowdown multiplier (1 = full speed).
    pub fn throttle(&self) -> u32 {
        self.throttle
    }

    /// The time at which all currently charged work completes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// How far the backlog extends beyond `now`; zero when idle.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Total CPU time charged since construction (or the last reset).
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Fraction of wall time `[SimTime::ZERO, now]` the CPU spent busy.
    /// Returns 0 when `now` is zero.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let wall = now.as_secs_f64();
        if wall == 0.0 {
            return 0.0;
        }
        (self.total_busy.as_secs_f64() / wall).min(1.0)
    }

    /// Drops any queued backlog — used when a node reboots: in-flight work
    /// dies with the process.
    pub fn reset_backlog(&mut self, now: SimTime) {
        if self.busy_until > now {
            // The dropped backlog never actually executed; give the busy
            // accounting back so utilization stays honest.
            self.total_busy = self
                .total_busy
                .saturating_sub(self.busy_until.saturating_since(now));
            self.busy_until = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_queues_fifo() {
        let mut cpu = CpuMeter::new();
        let t0 = SimTime::from_secs(10);
        let a = cpu.charge(t0, SimDuration::from_millis(5));
        let b = cpu.charge(t0, SimDuration::from_millis(5));
        assert_eq!(a, t0 + SimDuration::from_millis(5));
        assert_eq!(b, t0 + SimDuration::from_millis(10));
    }

    #[test]
    fn idle_gaps_do_not_accumulate_busy_time() {
        let mut cpu = CpuMeter::new();
        cpu.charge(SimTime::from_secs(0), SimDuration::from_secs(1));
        cpu.charge(SimTime::from_secs(5), SimDuration::from_secs(1));
        assert_eq!(cpu.total_busy(), SimDuration::from_secs(2));
        let u = cpu.utilization(SimTime::from_secs(10));
        assert!((u - 0.2).abs() < 1e-9);
    }

    #[test]
    fn backlog_measures_queue_depth_in_time() {
        let mut cpu = CpuMeter::new();
        let t0 = SimTime::from_secs(1);
        cpu.charge(t0, SimDuration::from_secs(3));
        assert_eq!(cpu.backlog(t0), SimDuration::from_secs(3));
        assert_eq!(cpu.backlog(SimTime::from_secs(10)), SimDuration::ZERO);
    }

    #[test]
    fn reset_backlog_discards_queued_work() {
        let mut cpu = CpuMeter::new();
        let t0 = SimTime::from_secs(1);
        cpu.charge(t0, SimDuration::from_secs(60));
        cpu.reset_backlog(SimTime::from_secs(2));
        assert_eq!(cpu.busy_until(), SimTime::from_secs(2));
        // Only the 1 second that actually ran remains accounted.
        assert_eq!(cpu.total_busy(), SimDuration::from_secs(1));
    }

    #[test]
    fn utilization_is_zero_at_time_zero() {
        let cpu = CpuMeter::new();
        assert_eq!(cpu.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn throttle_scales_new_charges_only() {
        let mut cpu = CpuMeter::new();
        assert_eq!(cpu.throttle(), 1);
        let t0 = SimTime::from_secs(1);
        let a = cpu.charge(t0, SimDuration::from_millis(10));
        assert_eq!(a, t0 + SimDuration::from_millis(10));

        cpu.set_throttle(4);
        // Queued horizon is untouched; the next charge costs 4x.
        let b = cpu.charge(t0, SimDuration::from_millis(10));
        assert_eq!(b, t0 + SimDuration::from_millis(10 + 40));
        assert_eq!(cpu.total_busy(), SimDuration::from_millis(50));

        cpu.set_throttle(1);
        let c = cpu.charge(t0, SimDuration::from_millis(10));
        assert_eq!(c, t0 + SimDuration::from_millis(60));
    }

    #[test]
    #[should_panic(expected = "throttle factor")]
    fn zero_throttle_is_rejected() {
        CpuMeter::new().set_throttle(0);
    }
}
